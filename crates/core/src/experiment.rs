//! Multi-run experiments: parameter sweeps with parallel seeds.
//!
//! "Each point in these plots is the average of several runs of the
//! protocol" (§7). [`run_many`] executes a run function over seeds
//! `base..base+runs` in parallel (std scoped threads) and
//! [`summarize`] folds the reports into the statistics the figures plot.

use crate::json::{Json, ToJson};
use crate::metrics::RunReport;

/// Aggregated statistics over a batch of runs at one parameter point.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of runs.
    pub runs: usize,
    /// Mean of per-run mean incompleteness (the figures' y-axis).
    pub mean_incompleteness: f64,
    /// Sample standard deviation of per-run mean incompleteness.
    pub std_incompleteness: f64,
    /// Mean of per-run mean completeness (over completed members).
    pub mean_completeness: f64,
    /// Mean messages per run (message complexity).
    pub mean_messages: f64,
    /// Mean rounds to last completion (time complexity).
    pub mean_rounds: f64,
    /// Mean relative value error versus ground truth.
    pub mean_value_error: f64,
    /// Mean fraction of members that crashed.
    pub mean_crashed: f64,
}

impl ToJson for Summary {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("runs".into(), self.runs.to_json()),
            (
                "mean_incompleteness".into(),
                self.mean_incompleteness.to_json(),
            ),
            (
                "std_incompleteness".into(),
                self.std_incompleteness.to_json(),
            ),
            ("mean_completeness".into(), self.mean_completeness.to_json()),
            ("mean_messages".into(), self.mean_messages.to_json()),
            ("mean_rounds".into(), self.mean_rounds.to_json()),
            ("mean_value_error".into(), self.mean_value_error.to_json()),
            ("mean_crashed".into(), self.mean_crashed.to_json()),
        ])
    }
}

/// Run `f(seed)` for `runs` seeds starting at `base_seed`, in parallel.
///
/// Reports come back ordered by seed, so the result is independent of
/// thread scheduling.
///
/// ```
/// use gridagg_core::{run_many, summarize};
/// use gridagg_core::config::ExperimentConfig;
/// use gridagg_core::runner::run_hiergossip;
/// use gridagg_aggregate::Average;
///
/// let cfg = ExperimentConfig::paper_defaults().with_n(32);
/// let reports = run_many(4, 1, |seed| run_hiergossip::<Average>(&cfg, seed));
/// let summary = summarize(&reports);
/// assert_eq!(summary.runs, 4);
/// assert!(summary.mean_completeness > 0.5);
/// ```
pub fn run_many<F>(runs: usize, base_seed: u64, f: F) -> Vec<RunReport>
where
    F: Fn(u64) -> RunReport + Sync,
{
    // lint:allow(D002) thread count only partitions seed-ordered work; results are scheduling-independent (run_many_matches_sequential_execution)
    let threads = std::thread::available_parallelism()
        .map_or(4, std::num::NonZero::get)
        .min(runs.max(1));
    let mut reports: Vec<Option<RunReport>> = (0..runs).map(|_| None).collect();
    let chunk = runs.div_ceil(threads.max(1));
    // lint:allow(D002) scoped fan-out over per-seed runs; each run is a pure function of its seed
    std::thread::scope(|scope| {
        for (t, slot) in reports.chunks_mut(chunk.max(1)).enumerate() {
            let f = &f;
            scope.spawn(move || {
                for (i, s) in slot.iter_mut().enumerate() {
                    let seed = base_seed + (t * chunk + i) as u64;
                    *s = Some(f(seed));
                }
            });
        }
    });
    reports
        .into_iter()
        .map(|r| r.expect("all runs filled"))
        .collect()
}

/// Fold a batch of reports into a [`Summary`].
///
/// Total over all inputs: an empty batch (or one where every member
/// crashed or timed out) folds to the degenerate "nothing learned"
/// summary — zero runs, incompleteness `1.0` — rather than panicking,
/// so sweeps over catastrophic parameter points stay well-defined.
pub fn summarize(reports: &[RunReport]) -> Summary {
    if reports.is_empty() {
        return Summary {
            runs: 0,
            mean_incompleteness: 1.0,
            std_incompleteness: 0.0,
            mean_completeness: 0.0,
            mean_messages: 0.0,
            mean_rounds: 0.0,
            mean_value_error: 0.0,
            mean_crashed: 0.0,
        };
    }
    let runs = reports.len();
    let incs: Vec<f64> = reports
        .iter()
        .map(super::metrics::RunReport::mean_incompleteness)
        .collect();
    let mean_inc = incs.iter().sum::<f64>() / runs as f64;
    let var = if runs > 1 {
        incs.iter().map(|x| (x - mean_inc).powi(2)).sum::<f64>() / (runs - 1) as f64
    } else {
        0.0
    };
    let mean_of =
        |g: &dyn Fn(&RunReport) -> f64| -> f64 { reports.iter().map(g).sum::<f64>() / runs as f64 };
    Summary {
        runs,
        mean_incompleteness: mean_inc,
        std_incompleteness: var.sqrt(),
        mean_completeness: mean_of(&|r| r.mean_completeness().unwrap_or(0.0)),
        mean_messages: mean_of(&|r| r.messages() as f64),
        mean_rounds: mean_of(&|r| r.last_completion().unwrap_or(r.rounds) as f64),
        mean_value_error: mean_of(&|r| r.mean_value_error().unwrap_or(0.0)),
        mean_crashed: mean_of(&|r| r.crashed() as f64 / r.n as f64),
    }
}

/// A labelled series of `(x, summary)` points — one figure curve.
#[derive(Debug, Clone)]
pub struct Series {
    /// Curve label (e.g. `"K=4,M=2"`).
    pub label: String,
    /// Sweep points.
    pub points: Vec<(f64, Summary)>,
}

impl Series {
    /// Create an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, summary: Summary) {
        self.points.push((x, summary));
    }

    /// The incompleteness values, in sweep order.
    pub fn incompleteness(&self) -> Vec<f64> {
        self.points
            .iter()
            .map(|(_, s)| s.mean_incompleteness)
            .collect()
    }
}

impl ToJson for Series {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("label".into(), self.label.to_json()),
            ("points".into(), self.points.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ExperimentConfig;
    use crate::runner::run_hiergossip;
    use gridagg_aggregate::Average;

    #[test]
    fn run_many_is_ordered_and_deterministic() {
        let cfg = ExperimentConfig::default().with_n(32);
        let a = run_many(4, 100, |seed| run_hiergossip::<Average>(&cfg, seed));
        let b = run_many(4, 100, |seed| run_hiergossip::<Average>(&cfg, seed));
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.net.sent, y.net.sent);
            assert_eq!(x.mean_incompleteness(), y.mean_incompleteness());
        }
    }

    #[test]
    fn run_many_matches_sequential_execution() {
        // Thread count and chunking must not affect results: the
        // parallel batch must equal a plain sequential loop over the
        // same seeds, report by report.
        let cfg = ExperimentConfig::default().with_n(32);
        let parallel = run_many(5, 300, |seed| run_hiergossip::<Average>(&cfg, seed));
        let sequential: Vec<_> = (300..305)
            .map(|seed| run_hiergossip::<Average>(&cfg, seed))
            .collect();
        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.rounds, s.rounds);
            assert_eq!(p.net, s.net);
            assert_eq!(p.outcomes, s.outcomes);
        }
    }

    #[test]
    fn summarize_folds() {
        let cfg = {
            let mut c = ExperimentConfig::default().with_n(32).with_ucastl(0.0);
            c.pf = 0.0;
            c
        };
        let reports = run_many(3, 7, |seed| run_hiergossip::<Average>(&cfg, seed));
        let s = summarize(&reports);
        assert_eq!(s.runs, 3);
        assert_eq!(s.mean_incompleteness, 0.0);
        assert_eq!(s.mean_completeness, 1.0);
        assert!(s.mean_messages > 0.0);
        assert!(s.mean_rounds > 0.0);
        assert_eq!(s.mean_crashed, 0.0);
    }

    #[test]
    fn summarize_empty_is_total() {
        let s = summarize(&[]);
        assert_eq!(s.runs, 0);
        assert_eq!(s.mean_incompleteness, 1.0);
        assert_eq!(s.mean_completeness, 0.0);
        assert!(s.mean_messages == 0.0 && s.mean_rounds == 0.0);
    }

    #[test]
    fn summarize_total_when_every_member_crashes() {
        // pf = 1.0: every member crashes in round 0 of every run
        let cfg = ExperimentConfig::default().with_n(32).with_pf(1.0);
        let reports = run_many(3, 17, |seed| run_hiergossip::<Average>(&cfg, seed));
        for r in &reports {
            assert_eq!(r.completed(), 0, "nobody can complete at pf=1.0");
        }
        let s = summarize(&reports);
        assert_eq!(s.runs, 3);
        assert_eq!(s.mean_crashed, 1.0);
        assert_eq!(s.mean_completeness, 0.0);
        assert_eq!(s.mean_incompleteness, 1.0);
        assert!(s.mean_value_error == 0.0, "no estimates, no error");
        assert!(
            s.mean_rounds.is_finite() && s.mean_messages.is_finite(),
            "summary must stay finite when all members crash"
        );
    }

    #[test]
    fn series_accumulates() {
        let cfg = ExperimentConfig::default().with_n(32);
        let mut series = Series::new("test");
        for (i, n) in [32usize, 64].iter().enumerate() {
            let c = cfg.with_n(*n);
            let reports = run_many(2, i as u64 * 10, |s| run_hiergossip::<Average>(&c, s));
            series.push(*n as f64, summarize(&reports));
        }
        assert_eq!(series.points.len(), 2);
        assert_eq!(series.incompleteness().len(), 2);
    }
}
