//! Run tracing: structured per-round events for observability.
//!
//! The simulation engine, the protocols, and the network can narrate a
//! run as a stream of [`TraceEvent`]s delivered to a [`TraceSink`]. The
//! default sink is [`NoTrace`], which compiles the entire layer away:
//! `Simulation::run` monomorphises over the sink type, every emission
//! site is guarded by the associated `const ENABLED`, and event payloads
//! are built inside closures that are never called when tracing is off.
//! A traced run and an untraced run of the same seed therefore execute
//! the same protocol decisions and produce byte-identical reports (see
//! the `traced_run_matches_untraced_run` test in `engine`).
//!
//! [`RunTrace`] is the batteries-included sink: it records every event
//! in memory and derives the figures-of-merit the paper discusses over
//! time rather than only at termination — per-member phase timelines,
//! per-round message histograms, and the mean-incompleteness-over-time
//! curve (how quickly the group's estimates converge on all `N` votes).

use crate::json::{Json, ToJson};
use gridagg_group::MemberId;
use gridagg_simnet::Round;

/// One structured event in the life of a simulated run.
///
/// Every variant carries the round it happened in; message events carry
/// both endpoints. Events are emitted in deterministic simulation order,
/// so a trace is itself reproducible from the run's seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A member began executing the protocol (round 0, a staggered
    /// start, or a wake-up caused by the first delivered message).
    Start {
        /// The member that started.
        member: MemberId,
        /// Round it started in.
        round: Round,
    },
    /// A member crashed (fail-stop, per the paper's failure model).
    Crash {
        /// The member that crashed.
        member: MemberId,
        /// Round of the crash.
        round: Round,
    },
    /// A previously crashed member recovered.
    Recover {
        /// The member that recovered.
        member: MemberId,
        /// Round of the recovery.
        round: Round,
    },
    /// A message was handed to the network.
    Send {
        /// Sender.
        from: MemberId,
        /// Destination.
        to: MemberId,
        /// Round the send happened in.
        round: Round,
        /// Serialized size used for bandwidth accounting.
        bytes: u64,
    },
    /// A message was dropped by the loss model (`ucastl` / partitions /
    /// distance loss).
    DropLoss {
        /// Sender.
        from: MemberId,
        /// Intended destination.
        to: MemberId,
        /// Round of the drop.
        round: Round,
    },
    /// A message was dropped by the per-member bandwidth cap.
    DropBandwidth {
        /// Sender.
        from: MemberId,
        /// Intended destination.
        to: MemberId,
        /// Round of the drop.
        round: Round,
    },
    /// A message was delivered to its destination.
    Deliver {
        /// Sender.
        from: MemberId,
        /// Destination.
        to: MemberId,
        /// Delivery round.
        round: Round,
        /// Round the message was originally sent in.
        sent_at: Round,
    },
    /// A member moved to a new gossip phase (hierarchical protocols:
    /// gossip now spans the `phase`-level grid boxes).
    PhaseEnter {
        /// The member changing phase.
        member: MemberId,
        /// Round of the transition.
        round: Round,
        /// The phase being entered (1-based, as in the paper).
        phase: usize,
    },
    /// A member bumped to the next phase *early* because its current
    /// subtree was already complete (§6.3 early bump-off optimisation).
    EarlyBump {
        /// The member bumping early.
        member: MemberId,
        /// Round of the bump.
        round: Round,
        /// The phase being left early.
        phase: usize,
    },
    /// A member's running aggregate grew: it now covers `votes` of the
    /// group's `N` initial votes.
    Coverage {
        /// The member that learned something.
        member: MemberId,
        /// Round of the coverage change.
        round: Round,
        /// Votes covered by the member's current best aggregate.
        votes: u64,
    },
    /// A member terminated with its final estimate.
    Terminate {
        /// The member that terminated.
        member: MemberId,
        /// Termination round.
        round: Round,
        /// Fraction of the `N` initial votes the estimate covers.
        completeness: f64,
    },
}

impl TraceEvent {
    /// The round this event happened in.
    pub fn round(&self) -> Round {
        match *self {
            TraceEvent::Start { round, .. }
            | TraceEvent::Crash { round, .. }
            | TraceEvent::Recover { round, .. }
            | TraceEvent::Send { round, .. }
            | TraceEvent::DropLoss { round, .. }
            | TraceEvent::DropBandwidth { round, .. }
            | TraceEvent::Deliver { round, .. }
            | TraceEvent::PhaseEnter { round, .. }
            | TraceEvent::EarlyBump { round, .. }
            | TraceEvent::Coverage { round, .. }
            | TraceEvent::Terminate { round, .. } => round,
        }
    }

    /// Short machine-readable name of the event kind.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Start { .. } => "start",
            TraceEvent::Crash { .. } => "crash",
            TraceEvent::Recover { .. } => "recover",
            TraceEvent::Send { .. } => "send",
            TraceEvent::DropLoss { .. } => "drop_loss",
            TraceEvent::DropBandwidth { .. } => "drop_bandwidth",
            TraceEvent::Deliver { .. } => "deliver",
            TraceEvent::PhaseEnter { .. } => "phase_enter",
            TraceEvent::EarlyBump { .. } => "early_bump",
            TraceEvent::Coverage { .. } => "coverage",
            TraceEvent::Terminate { .. } => "terminate",
        }
    }
}

impl ToJson for TraceEvent {
    fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> = vec![
            ("kind".into(), self.kind().to_json()),
            ("round".into(), self.round().to_json()),
        ];
        let mut member = |k: &str, m: MemberId| fields.push((k.into(), m.0.to_json()));
        match *self {
            TraceEvent::Start { member: m, .. }
            | TraceEvent::Crash { member: m, .. }
            | TraceEvent::Recover { member: m, .. } => member("member", m),
            TraceEvent::Send {
                from, to, bytes, ..
            } => {
                member("from", from);
                member("to", to);
                fields.push(("bytes".into(), bytes.to_json()));
            }
            TraceEvent::DropLoss { from, to, .. } | TraceEvent::DropBandwidth { from, to, .. } => {
                member("from", from);
                member("to", to);
            }
            TraceEvent::Deliver {
                from, to, sent_at, ..
            } => {
                member("from", from);
                member("to", to);
                fields.push(("sent_at".into(), sent_at.to_json()));
            }
            TraceEvent::PhaseEnter {
                member: m, phase, ..
            }
            | TraceEvent::EarlyBump {
                member: m, phase, ..
            } => {
                member("member", m);
                fields.push(("phase".into(), phase.to_json()));
            }
            TraceEvent::Coverage {
                member: m, votes, ..
            } => {
                member("member", m);
                fields.push(("votes".into(), votes.to_json()));
            }
            TraceEvent::Terminate {
                member: m,
                completeness,
                ..
            } => {
                member("member", m);
                fields.push(("completeness".into(), completeness.to_json()));
            }
        }
        Json::Obj(fields)
    }
}

/// Receiver of [`TraceEvent`]s.
///
/// Implementors that actually record events keep the default
/// `ENABLED = true`; [`NoTrace`] overrides it to `false`, letting every
/// emission site compile to nothing.
pub trait TraceSink {
    /// Whether emission sites should construct and deliver events at
    /// all. Checked behind `const` so the no-op case costs nothing.
    const ENABLED: bool = true;

    /// Record one event.
    fn record(&mut self, event: TraceEvent);
}

/// The default sink: tracing disabled, zero overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoTrace;

impl TraceSink for NoTrace {
    const ENABLED: bool = false;

    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}
}

/// Dynamic-dispatch shim used inside [`crate::protocol::Ctx`].
///
/// Protocol code sees `&mut dyn DynSink` so `Ctx` stays object-safe and
/// non-generic; the engine only installs a sink when the static
/// `S::ENABLED` says tracing is on, so the virtual call is never made on
/// the untraced path.
pub trait DynSink {
    /// Record one event.
    fn record_dyn(&mut self, event: TraceEvent);
}

impl<S: TraceSink> DynSink for S {
    #[inline]
    fn record_dyn(&mut self, event: TraceEvent) {
        self.record(event);
    }
}

/// A point on a member's phase timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhasePoint {
    /// The phase entered (1-based).
    pub phase: usize,
    /// Round the member entered it.
    pub at: Round,
    /// Whether the transition was an early bump (subtree complete
    /// before the phase timeout).
    pub early: bool,
}

/// Per-round message accounting derived from a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundMessages {
    /// Messages handed to the network this round.
    pub sent: u64,
    /// Messages delivered this round (sent in an earlier round).
    pub delivered: u64,
    /// Messages dropped by the loss model this round.
    pub dropped_loss: u64,
    /// Messages dropped by the bandwidth cap this round.
    pub dropped_bandwidth: u64,
}

/// In-memory trace collector with derived per-round observables.
///
/// Records every event of a run (a 64-member default-config run emits a
/// few tens of thousands of events, ~40 bytes each — fine for profiling
/// single runs, not meant to be attached to thousand-run sweeps).
#[derive(Debug, Clone, Default)]
pub struct RunTrace {
    /// Group size `N`, needed for incompleteness curves. Set via
    /// [`RunTrace::for_group`] or inferred from the largest member id
    /// seen if left at 0.
    n: usize,
    /// Highest round observed in any event.
    max_round: Round,
    /// The raw event stream, in emission order.
    pub events: Vec<TraceEvent>,
}

impl TraceSink for RunTrace {
    fn record(&mut self, event: TraceEvent) {
        self.max_round = self.max_round.max(event.round());
        self.events.push(event);
    }
}

impl RunTrace {
    /// An empty trace for a group of `n` members.
    pub fn for_group(n: usize) -> Self {
        RunTrace {
            n,
            ..RunTrace::default()
        }
    }

    /// Group size: as declared, or inferred from member ids in the
    /// event stream.
    pub fn group_size(&self) -> usize {
        if self.n > 0 {
            return self.n;
        }
        self.events
            .iter()
            .map(|e| match *e {
                TraceEvent::Start { member, .. }
                | TraceEvent::Crash { member, .. }
                | TraceEvent::Recover { member, .. }
                | TraceEvent::PhaseEnter { member, .. }
                | TraceEvent::EarlyBump { member, .. }
                | TraceEvent::Coverage { member, .. }
                | TraceEvent::Terminate { member, .. } => member.index() + 1,
                TraceEvent::Send { from, to, .. }
                | TraceEvent::DropLoss { from, to, .. }
                | TraceEvent::DropBandwidth { from, to, .. }
                | TraceEvent::Deliver { from, to, .. } => from.index().max(to.index()) + 1,
            })
            .max()
            .unwrap_or(0)
    }

    /// Highest round observed.
    pub fn last_round(&self) -> Round {
        self.max_round
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Per-member phase timelines: for each member, the ordered list of
    /// phase transitions it went through. Members running a flat
    /// (phase-less) protocol have empty timelines.
    pub fn phase_timelines(&self) -> Vec<Vec<PhasePoint>> {
        let n = self.group_size();
        let mut timelines: Vec<Vec<PhasePoint>> = vec![Vec::new(); n];
        // Early bumps are emitted immediately before the PhaseEnter they
        // cause; remember the pending bump per member and fold it into
        // the next transition.
        let mut pending_bump: Vec<bool> = vec![false; n];
        for e in &self.events {
            match *e {
                TraceEvent::EarlyBump { member, .. } if member.index() < n => {
                    pending_bump[member.index()] = true;
                }
                TraceEvent::PhaseEnter {
                    member,
                    round,
                    phase,
                } if member.index() < n => {
                    let early = std::mem::take(&mut pending_bump[member.index()]);
                    timelines[member.index()].push(PhasePoint {
                        phase,
                        at: round,
                        early,
                    });
                }
                _ => {}
            }
        }
        timelines
    }

    /// Per-round message histogram, dense over `0..=last_round()`.
    pub fn per_round_messages(&self) -> Vec<RoundMessages> {
        let mut hist = vec![RoundMessages::default(); self.max_round as usize + 1];
        for e in &self.events {
            let slot = &mut hist[e.round() as usize];
            match e {
                TraceEvent::Send { .. } => slot.sent += 1,
                TraceEvent::Deliver { .. } => slot.delivered += 1,
                TraceEvent::DropLoss { .. } => slot.dropped_loss += 1,
                TraceEvent::DropBandwidth { .. } => slot.dropped_bandwidth += 1,
                _ => {}
            }
        }
        hist
    }

    /// Mean incompleteness over time: for each round `r`, the mean over
    /// members of `1 − covered/N` after all of round `r`'s events.
    ///
    /// Every member starts covering exactly its own vote; [`Coverage`]
    /// events advance a member's count; crashed members hold their last
    /// value (their knowledge is lost, but the paper's incompleteness
    /// metric is over the votes the *group* still carries). The curve
    /// answers "how fast does the group converge", the over-time view of
    /// the figures' terminal y-axis.
    ///
    /// [`Coverage`]: TraceEvent::Coverage
    pub fn incompleteness_over_time(&self) -> Vec<f64> {
        let n = self.group_size();
        if n == 0 {
            return Vec::new();
        }
        let mut covered: Vec<u64> = vec![1; n];
        let mut curve = Vec::with_capacity(self.max_round as usize + 1);
        let mut idx = 0usize;
        for round in 0..=self.max_round {
            while idx < self.events.len() && self.events[idx].round() == round {
                if let TraceEvent::Coverage { member, votes, .. } = self.events[idx] {
                    if member.index() < n {
                        covered[member.index()] = covered[member.index()].max(votes);
                    }
                }
                idx += 1;
            }
            let mean_cov: f64 =
                covered.iter().map(|&c| c as f64 / n as f64).sum::<f64>() / n as f64;
            curve.push(1.0 - mean_cov);
        }
        curve
    }

    /// Per-member termination `(round, completeness)`, `None` for
    /// members that never terminated.
    pub fn terminations(&self) -> Vec<Option<(Round, f64)>> {
        let n = self.group_size();
        let mut out = vec![None; n];
        for e in &self.events {
            if let TraceEvent::Terminate {
                member,
                round,
                completeness,
            } = *e
            {
                if member.index() < n {
                    out[member.index()] = Some((round, completeness));
                }
            }
        }
        out
    }

    /// Count of events of each kind, in a stable order.
    pub fn kind_counts(&self) -> Vec<(&'static str, u64)> {
        const KINDS: [&str; 11] = [
            "start",
            "crash",
            "recover",
            "send",
            "drop_loss",
            "drop_bandwidth",
            "deliver",
            "phase_enter",
            "early_bump",
            "coverage",
            "terminate",
        ];
        let mut counts = vec![0u64; KINDS.len()];
        for e in &self.events {
            let k = e.kind();
            if let Some(i) = KINDS.iter().position(|&x| x == k) {
                counts[i] += 1;
            }
        }
        KINDS.into_iter().zip(counts).collect()
    }
}

impl ToJson for RunTrace {
    /// The derived profile: phase timelines, per-round message counts,
    /// the incompleteness curve, terminations, and event-kind totals.
    /// The raw event stream is *not* embedded (it dominates the size);
    /// export it separately via [`TraceEvent::to_json`] per event or as
    /// CSV if needed.
    fn to_json(&self) -> Json {
        let timelines = Json::Arr(
            self.phase_timelines()
                .into_iter()
                .map(|tl| {
                    Json::Arr(
                        tl.into_iter()
                            .map(|p| {
                                Json::Obj(vec![
                                    ("phase".into(), p.phase.to_json()),
                                    ("at".into(), p.at.to_json()),
                                    ("early".into(), p.early.to_json()),
                                ])
                            })
                            .collect(),
                    )
                })
                .collect(),
        );
        let messages = Json::Arr(
            self.per_round_messages()
                .into_iter()
                .enumerate()
                .map(|(round, m)| {
                    Json::Obj(vec![
                        ("round".into(), round.to_json()),
                        ("sent".into(), m.sent.to_json()),
                        ("delivered".into(), m.delivered.to_json()),
                        ("dropped_loss".into(), m.dropped_loss.to_json()),
                        ("dropped_bandwidth".into(), m.dropped_bandwidth.to_json()),
                    ])
                })
                .collect(),
        );
        let terminations = Json::Arr(
            self.terminations()
                .into_iter()
                .map(|t| match t {
                    Some((round, completeness)) => Json::Obj(vec![
                        ("round".into(), round.to_json()),
                        ("completeness".into(), completeness.to_json()),
                    ]),
                    None => Json::Null,
                })
                .collect(),
        );
        let kinds = Json::Obj(
            self.kind_counts()
                .into_iter()
                .map(|(k, c)| (k.to_string(), c.to_json()))
                .collect(),
        );
        Json::Obj(vec![
            ("n".into(), self.group_size().to_json()),
            ("rounds".into(), (self.max_round + 1).to_json()),
            ("events_recorded".into(), self.len().to_json()),
            ("event_counts".into(), kinds),
            ("phase_timelines".into(), timelines),
            ("per_round_messages".into(), messages),
            (
                "incompleteness_over_time".into(),
                self.incompleteness_over_time().to_json(),
            ),
            ("terminations".into(), terminations),
        ])
    }
}

/// Element-wise mean of several incompleteness curves, extended to the
/// longest curve's length (shorter runs hold their final value, i.e.
/// the run had already converged).
pub fn mean_curve(curves: &[Vec<f64>]) -> Vec<f64> {
    let len = curves.iter().map(Vec::len).max().unwrap_or(0);
    if len == 0 {
        return Vec::new();
    }
    let mut out = vec![0.0; len];
    for curve in curves {
        for (i, slot) in out.iter_mut().enumerate() {
            let v = curve
                .get(i)
                .or_else(|| curve.last())
                .copied()
                .unwrap_or(1.0);
            *slot += v;
        }
    }
    let n = curves.len().max(1) as f64;
    out.iter_mut().for_each(|v| *v /= n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(i: u32) -> MemberId {
        MemberId(i)
    }

    #[test]
    fn no_trace_is_disabled() {
        const { assert!(!NoTrace::ENABLED) };
        const { assert!(RunTrace::ENABLED) };
        // record on NoTrace is a no-op and must not panic
        NoTrace.record(TraceEvent::Start {
            member: m(0),
            round: 0,
        });
    }

    #[test]
    fn collects_and_counts() {
        let mut t = RunTrace::for_group(2);
        t.record(TraceEvent::Start {
            member: m(0),
            round: 0,
        });
        t.record(TraceEvent::Send {
            from: m(0),
            to: m(1),
            round: 0,
            bytes: 32,
        });
        t.record(TraceEvent::Deliver {
            from: m(0),
            to: m(1),
            round: 1,
            sent_at: 0,
        });
        assert_eq!(t.len(), 3);
        assert_eq!(t.last_round(), 1);
        let hist = t.per_round_messages();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0].sent, 1);
        assert_eq!(hist[1].delivered, 1);
    }

    #[test]
    fn phase_timeline_marks_early_bumps() {
        let mut t = RunTrace::for_group(1);
        t.record(TraceEvent::PhaseEnter {
            member: m(0),
            round: 3,
            phase: 2,
        });
        t.record(TraceEvent::EarlyBump {
            member: m(0),
            round: 5,
            phase: 2,
        });
        t.record(TraceEvent::PhaseEnter {
            member: m(0),
            round: 5,
            phase: 3,
        });
        let tl = &t.phase_timelines()[0];
        assert_eq!(tl.len(), 2);
        assert!(!tl[0].early);
        assert!(tl[1].early && tl[1].phase == 3 && tl[1].at == 5);
    }

    #[test]
    fn incompleteness_starts_high_and_falls_with_coverage() {
        let mut t = RunTrace::for_group(4);
        t.record(TraceEvent::Start {
            member: m(0),
            round: 0,
        });
        t.record(TraceEvent::Coverage {
            member: m(0),
            round: 1,
            votes: 4,
        });
        let curve = t.incompleteness_over_time();
        assert_eq!(curve.len(), 2);
        // round 0: everyone covers only themselves → 1 - 1/4 = 0.75
        assert!((curve[0] - 0.75).abs() < 1e-12);
        // round 1: member 0 covers all 4 → mean coverage (4+1+1+1)/16
        assert!((curve[1] - (1.0 - 7.0 / 16.0)).abs() < 1e-12);
        assert!(curve[1] < curve[0]);
    }

    #[test]
    fn group_size_inferred_from_events() {
        let mut t = RunTrace::default();
        t.record(TraceEvent::Send {
            from: m(0),
            to: m(9),
            round: 0,
            bytes: 1,
        });
        assert_eq!(t.group_size(), 10);
    }

    #[test]
    fn terminations_indexed_by_member() {
        let mut t = RunTrace::for_group(2);
        t.record(TraceEvent::Terminate {
            member: m(1),
            round: 7,
            completeness: 0.5,
        });
        let terms = t.terminations();
        assert_eq!(terms[0], None);
        assert_eq!(terms[1], Some((7, 0.5)));
    }

    #[test]
    fn mean_curve_extends_short_runs() {
        let curves = vec![vec![1.0, 0.0], vec![1.0, 0.5, 0.25]];
        let mean = mean_curve(&curves);
        assert_eq!(mean.len(), 3);
        assert!((mean[0] - 1.0).abs() < 1e-12);
        assert!((mean[1] - 0.25).abs() < 1e-12);
        // short run holds its last value 0.0
        assert!((mean[2] - 0.125).abs() < 1e-12);
    }

    #[test]
    fn trace_json_has_derived_series() {
        let mut t = RunTrace::for_group(2);
        t.record(TraceEvent::Send {
            from: m(0),
            to: m(1),
            round: 0,
            bytes: 8,
        });
        let j = t.to_json();
        assert!(j.get("per_round_messages").is_some());
        assert!(j.get("incompleteness_over_time").is_some());
        assert!(j.get("phase_timelines").is_some());
        let text = j.to_string_pretty();
        assert!(text.contains("\"sent\": 1"));
    }
}
