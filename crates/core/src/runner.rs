//! One-call run functions: config + seed → [`RunReport`].
//!
//! Each function assembles the full stack — group, placement, scope
//! index, lossy network, failure process, protocol instances — and runs
//! it to completion. These are the entry points used by the examples and
//! the figure-regeneration binaries.

use std::sync::Arc;

use gridagg_aggregate::wire::WireAggregate;
use gridagg_aggregate::Aggregate;
use gridagg_group::failure::{FailureModel, FailureProcess};
use gridagg_group::view::View;
use gridagg_group::{Group, GroupBuilder};
use gridagg_hierarchy::{FairHashPlacement, Hierarchy, TopologicalPlacement};
use gridagg_simnet::loss::{PartitionLoss, Perfect, UniformLoss};
use gridagg_simnet::network::{NetworkConfig, SimNetwork};
use gridagg_simnet::topology::FieldKind;

use crate::baselines::{
    Centralized, CentralizedConfig, FlatGossip, FlatGossipConfig, Flood, FloodConfig,
    LeaderDirectory, LeaderElection, LeaderElectionConfig,
};
use crate::config::ExperimentConfig;
use crate::engine::Simulation;
use crate::hiergossip::HierGossip;
use crate::metrics::RunReport;
use crate::scope::ScopeIndex;
use crate::trace::RunTrace;

/// Build the group for a config (positions included when the config
/// needs topology awareness).
pub(crate) fn build_group_for(cfg: &ExperimentConfig, seed: u64) -> Group {
    let mut b = GroupBuilder::new(cfg.n).votes(cfg.vote.into()).seed(seed);
    if cfg.topo_aware || cfg.positioned {
        b = b.field(FieldKind::UniformRandom);
    }
    b.build()
}

/// Network configuration for an experiment (loss model, bandwidth cap,
/// optional positions for distance accounting).
pub(crate) fn network_config_for(
    cfg: &ExperimentConfig,
    positions: Option<Vec<gridagg_simnet::topology::Position>>,
) -> NetworkConfig {
    let mut net_cfg = NetworkConfig::default();
    net_cfg = match cfg.partl {
        Some(partl) => net_cfg.with_loss(
            PartitionLoss::new((cfg.n / 2) as u32, partl, cfg.ucastl)
                .expect("validated probabilities"),
        ),
        None if cfg.ucastl > 0.0 => {
            net_cfg.with_loss(UniformLoss::new(cfg.ucastl).expect("validated probability"))
        }
        None => net_cfg.with_loss(Perfect),
    };
    if let Some(cap) = cfg.bandwidth_cap {
        net_cfg = net_cfg.with_bandwidth_cap(cap);
    }
    if let Some(max_delay) = cfg.max_delay {
        net_cfg = net_cfg.with_delay(gridagg_simnet::delay::UniformDelay::new(1, max_delay));
    }
    if let Some(positions) = positions {
        net_cfg = net_cfg.with_positions(positions);
    }
    net_cfg
}

/// Build the network for a config.
fn build_network<A: WireAggregate>(
    cfg: &ExperimentConfig,
    group: &Group,
    seed: u64,
) -> SimNetwork<crate::message::Payload<A>> {
    SimNetwork::new(network_config_for(cfg, group.positions()), seed)
}

/// Build the scope index (fair hash or topologically aware placement).
fn build_index(cfg: &ExperimentConfig, group: &Group, seed: u64) -> Arc<ScopeIndex> {
    let hierarchy = Hierarchy::for_group(cfg.k, cfg.n_estimate.unwrap_or(cfg.n))
        .expect("validated group size and K");
    let view = View::complete(cfg.n);
    if cfg.topo_aware {
        let positions = group.positions().expect("topo-aware group has positions");
        let placement = TopologicalPlacement::new(hierarchy, &positions);
        ScopeIndex::build(&view, &placement)
    } else {
        let placement = FairHashPlacement::new(hierarchy, seed ^ 0x5A17);
        ScopeIndex::build(&view, &placement)
    }
}

fn failure(cfg: &ExperimentConfig, seed: u64) -> FailureProcess {
    let model = if cfg.pf > 0.0 {
        FailureModel::PerRound { pf: cfg.pf }
    } else {
        FailureModel::None
    };
    FailureProcess::new(model, cfg.n, seed)
}

fn truth<A: Aggregate>(group: &Group) -> f64 {
    group.true_aggregate::<A>().summary()
}

/// Run the **Hierarchical Gossiping** protocol (the paper's §6.3
/// contribution) once.
///
/// # Panics
///
/// Panics if `cfg` fails [`ExperimentConfig::validate`].
pub fn run_hiergossip<A: WireAggregate>(cfg: &ExperimentConfig, seed: u64) -> RunReport {
    build_hiergossip_sim::<A>(cfg, seed).run()
}

/// Run hierarchical gossip once with an in-memory [`RunTrace`] recorder
/// attached, returning both the report and the collected trace. The
/// report is identical to what [`run_hiergossip`] returns for the same
/// `(cfg, seed)` — tracing observes the run without perturbing it.
///
/// # Panics
///
/// Panics if `cfg` fails [`ExperimentConfig::validate`].
pub fn run_hiergossip_traced<A: WireAggregate>(
    cfg: &ExperimentConfig,
    seed: u64,
) -> (RunReport, RunTrace) {
    let mut trace = RunTrace::for_group(cfg.n);
    let report = build_hiergossip_sim::<A>(cfg, seed).run_with(&mut trace);
    (report, trace)
}

fn build_hiergossip_sim<A: WireAggregate>(
    cfg: &ExperimentConfig,
    seed: u64,
) -> Simulation<A, HierGossip<A>> {
    cfg.validate().expect("invalid experiment config");
    let group = build_group_for(cfg, seed);
    let index = build_index(cfg, &group, seed);
    let mut view_rng = gridagg_simnet::rng::DetRng::seeded(seed).fork(0x7669_6577); // "view"
    let protocols: Vec<HierGossip<A>> = group
        .members()
        .iter()
        .map(|m| {
            let p = HierGossip::new(m.id, m.vote, index.clone(), cfg.hier_config());
            match cfg.partial_view {
                Some(size) => {
                    let view = View::sampled(m.id, cfg.n, size, &mut view_rng);
                    p.with_view(view.members().to_vec())
                }
                None => p,
            }
        })
        .collect();
    let net = build_network::<A>(cfg, &group, seed);
    let mut sim = Simulation::new(
        net,
        protocols,
        failure(cfg, seed),
        seed,
        truth::<A>(&group),
        cfg.max_rounds(),
    )
    .with_engine_jobs(cfg.engine_jobs);
    if let Some(spread) = cfg.start_spread {
        let mut start_rng = gridagg_simnet::rng::DetRng::seeded(seed).fork(0x7374_6172); // "star"
        let starts = (0..cfg.n)
            .map(|_| start_rng.below(spread.max(1) as usize) as u64)
            .collect();
        sim = sim.with_start_rounds(starts);
    }
    sim
}

/// Run the §4 fully distributed (flood) baseline once.
///
/// # Panics
///
/// Panics if `cfg` fails validation.
pub fn run_flood<A: WireAggregate>(
    cfg: &ExperimentConfig,
    flood_cfg: FloodConfig,
    seed: u64,
) -> RunReport {
    build_flood_sim::<A>(cfg, flood_cfg, seed).run()
}

/// [`run_flood`] with an in-memory [`RunTrace`] recorder attached.
///
/// # Panics
///
/// Panics if `cfg` fails validation.
pub fn run_flood_traced<A: WireAggregate>(
    cfg: &ExperimentConfig,
    flood_cfg: FloodConfig,
    seed: u64,
) -> (RunReport, RunTrace) {
    let mut trace = RunTrace::for_group(cfg.n);
    let report = build_flood_sim::<A>(cfg, flood_cfg, seed).run_with(&mut trace);
    (report, trace)
}

fn build_flood_sim<A: WireAggregate>(
    cfg: &ExperimentConfig,
    flood_cfg: FloodConfig,
    seed: u64,
) -> Simulation<A, Flood<A>> {
    cfg.validate().expect("invalid experiment config");
    let group = build_group_for(cfg, seed);
    let protocols: Vec<Flood<A>> = group
        .members()
        .iter()
        .map(|m| Flood::new(m.id, m.vote, cfg.n, flood_cfg))
        .collect();
    let net = build_network::<A>(cfg, &group, seed);
    let max_rounds =
        (cfg.n as u64).div_ceil(flood_cfg.per_round.max(1) as u64) + flood_cfg.grace as u64 + 8;
    Simulation::new(
        net,
        protocols,
        failure(cfg, seed),
        seed,
        truth::<A>(&group),
        max_rounds,
    )
    .with_engine_jobs(cfg.engine_jobs)
}

/// Run the §5 centralized-leader baseline once.
///
/// # Panics
///
/// Panics if `cfg` fails validation.
pub fn run_centralized<A: WireAggregate>(
    cfg: &ExperimentConfig,
    central_cfg: CentralizedConfig,
    seed: u64,
) -> RunReport {
    build_centralized_sim::<A>(cfg, central_cfg, seed).run()
}

/// [`run_centralized`] with an in-memory [`RunTrace`] recorder attached.
///
/// # Panics
///
/// Panics if `cfg` fails validation.
pub fn run_centralized_traced<A: WireAggregate>(
    cfg: &ExperimentConfig,
    central_cfg: CentralizedConfig,
    seed: u64,
) -> (RunReport, RunTrace) {
    let mut trace = RunTrace::for_group(cfg.n);
    let report = build_centralized_sim::<A>(cfg, central_cfg, seed).run_with(&mut trace);
    (report, trace)
}

fn build_centralized_sim<A: WireAggregate>(
    cfg: &ExperimentConfig,
    central_cfg: CentralizedConfig,
    seed: u64,
) -> Simulation<A, Centralized<A>> {
    cfg.validate().expect("invalid experiment config");
    let group = build_group_for(cfg, seed);
    let protocols: Vec<Centralized<A>> = group
        .members()
        .iter()
        .map(|m| Centralized::new(m.id, m.vote, cfg.n, central_cfg))
        .collect();
    let net = build_network::<A>(cfg, &group, seed);
    let max_rounds = central_cfg.deadline(cfg.n) + 8;
    Simulation::new(
        net,
        protocols,
        failure(cfg, seed),
        seed,
        truth::<A>(&group),
        max_rounds,
    )
    .with_engine_jobs(cfg.engine_jobs)
}

/// Run the §6.2 hierarchical leader-election baseline once.
///
/// # Panics
///
/// Panics if `cfg` fails validation.
pub fn run_leader_election<A: WireAggregate>(
    cfg: &ExperimentConfig,
    le_cfg: LeaderElectionConfig,
    seed: u64,
) -> RunReport {
    build_leader_sim::<A>(cfg, le_cfg, seed).run()
}

/// [`run_leader_election`] with an in-memory [`RunTrace`] recorder
/// attached.
///
/// # Panics
///
/// Panics if `cfg` fails validation.
pub fn run_leader_election_traced<A: WireAggregate>(
    cfg: &ExperimentConfig,
    le_cfg: LeaderElectionConfig,
    seed: u64,
) -> (RunReport, RunTrace) {
    let mut trace = RunTrace::for_group(cfg.n);
    let report = build_leader_sim::<A>(cfg, le_cfg, seed).run_with(&mut trace);
    (report, trace)
}

fn build_leader_sim<A: WireAggregate>(
    cfg: &ExperimentConfig,
    le_cfg: LeaderElectionConfig,
    seed: u64,
) -> Simulation<A, LeaderElection<A>> {
    cfg.validate().expect("invalid experiment config");
    let group = build_group_for(cfg, seed);
    let index = build_index(cfg, &group, seed);
    let directory = LeaderDirectory::build(&index, &le_cfg);
    let protocols: Vec<LeaderElection<A>> = group
        .members()
        .iter()
        .map(|m| LeaderElection::new(m.id, m.vote, index.clone(), directory.clone(), le_cfg))
        .collect();
    let max_rounds = protocols[0].schedule_rounds() + 8;
    let net = build_network::<A>(cfg, &group, seed);
    Simulation::new(
        net,
        protocols,
        failure(cfg, seed),
        seed,
        truth::<A>(&group),
        max_rounds,
    )
    .with_engine_jobs(cfg.engine_jobs)
}

/// Run the flat-gossip (no hierarchy) ablation once, with the same round
/// budget the hierarchical protocol would get.
///
/// # Panics
///
/// Panics if `cfg` fails validation.
pub fn run_flatgossip<A: WireAggregate>(cfg: &ExperimentConfig, seed: u64) -> RunReport {
    build_flatgossip_sim::<A>(cfg, seed).run()
}

/// [`run_flatgossip`] with an in-memory [`RunTrace`] recorder attached.
///
/// # Panics
///
/// Panics if `cfg` fails validation.
pub fn run_flatgossip_traced<A: WireAggregate>(
    cfg: &ExperimentConfig,
    seed: u64,
) -> (RunReport, RunTrace) {
    let mut trace = RunTrace::for_group(cfg.n);
    let report = build_flatgossip_sim::<A>(cfg, seed).run_with(&mut trace);
    (report, trace)
}

fn build_flatgossip_sim<A: WireAggregate>(
    cfg: &ExperimentConfig,
    seed: u64,
) -> Simulation<A, FlatGossip<A>> {
    cfg.validate().expect("invalid experiment config");
    let group = build_group_for(cfg, seed);
    let hierarchy = Hierarchy::for_group(cfg.k, cfg.n).expect("validated");
    let budget = hierarchy.phases() as u32 * cfg.hier_config().rounds_per_phase(cfg.n);
    let fg_cfg = FlatGossipConfig {
        fanout: cfg.fanout,
        total_rounds: budget,
    };
    let protocols: Vec<FlatGossip<A>> = group
        .members()
        .iter()
        .map(|m| FlatGossip::new(m.id, m.vote, cfg.n, fg_cfg))
        .collect();
    let net = build_network::<A>(cfg, &group, seed);
    Simulation::new(
        net,
        protocols,
        failure(cfg, seed),
        seed,
        truth::<A>(&group),
        budget as u64 + 8,
    )
    .with_engine_jobs(cfg.engine_jobs)
}

/// Run only the *first phase* of hierarchical gossip and report the
/// phase-1 completeness — the simulation cross-check for the analytic
/// `C_1(N, K, b)` of Figures 4 and 5.
pub fn run_phase1_only<A: WireAggregate>(cfg: &ExperimentConfig, seed: u64) -> RunReport {
    // A depth-1 hierarchy has exactly 2 phases; restricting the sweep to
    // phase 1 means: run the full protocol but score each member's *box*
    // aggregate. Simplest faithful proxy: run with phase1_early_exit off
    // (full-length phase 1) and K boxes only — here we instead reuse the
    // full run and let the caller compare shapes. Kept as an explicit
    // helper so benches read clearly.
    let mut c = *cfg;
    c.rounds_per_phase = Some(c.hier_config().rounds_per_phase(c.n));
    run_hiergossip::<A>(&c, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MemberOutcome;
    use gridagg_aggregate::Average;

    fn perfect(n: usize) -> ExperimentConfig {
        let mut c = ExperimentConfig::default().with_n(n).with_ucastl(0.0);
        c.pf = 0.0;
        c
    }

    #[test]
    fn all_protocols_complete_on_perfect_network() {
        let cfg = perfect(64);
        // hierarchical gossip has a small residual straggler race even
        // on a perfect network (a member can time a phase out one round
        // before the rescuing reply lands), so allow a hair below 1.0
        let hier = run_hiergossip::<Average>(&cfg, 1);
        assert!(hier.mean_completeness().unwrap() > 0.99);
        let flood = run_flood::<Average>(&cfg, FloodConfig::default(), 1);
        assert_eq!(flood.mean_completeness(), Some(1.0));
        let central = run_centralized::<Average>(&cfg, CentralizedConfig::for_group(64), 1);
        assert_eq!(central.mean_completeness(), Some(1.0));
        let leader = run_leader_election::<Average>(&cfg, LeaderElectionConfig::default(), 1);
        assert_eq!(leader.mean_completeness(), Some(1.0));
    }

    #[test]
    fn all_protocols_compute_the_true_average() {
        let cfg = perfect(32);
        // deterministic protocols are exact; gossip is near-exact (see
        // the straggler note above)
        let hier = run_hiergossip::<Average>(&cfg, 2);
        assert!(hier.mean_value_error().unwrap() < 1e-2);
        for report in [
            run_flood::<Average>(&cfg, FloodConfig::default(), 2),
            run_centralized::<Average>(&cfg, CentralizedConfig::for_group(32), 2),
            run_leader_election::<Average>(&cfg, LeaderElectionConfig::default(), 2),
        ] {
            assert!(
                report.mean_value_error().unwrap() < 1e-12,
                "error {:?}",
                report.mean_value_error()
            );
        }
    }

    #[test]
    fn flatgossip_less_complete_than_hier_at_scale() {
        let cfg = ExperimentConfig::default().with_n(400);
        let hier = run_hiergossip::<Average>(&cfg, 3);
        let flat = run_flatgossip::<Average>(&cfg, 3);
        assert!(
            hier.mean_completeness() > flat.mean_completeness(),
            "hier {:?} flat {:?}",
            hier.mean_completeness(),
            flat.mean_completeness()
        );
    }

    #[test]
    fn lossy_network_still_mostly_complete() {
        let cfg = ExperimentConfig::default(); // ucastl 0.25, pf 0.001
        let report = run_hiergossip::<Average>(&cfg, 4);
        let mc = report.mean_completeness().unwrap();
        assert!(mc > 0.9, "mean completeness {mc}");
    }

    #[test]
    fn leader_crash_wipes_centralized_run() {
        // With per-round crash probability 0.05 the leader (member 0)
        // dies before dissemination in at least one of a handful of
        // seeded runs, leaving survivors with own-vote-only estimates —
        // §5's single-point-of-failure pathology.
        let mut cfg = perfect(32);
        cfg.pf = 0.05;
        let wiped = (0..8).any(|seed| {
            let report = run_centralized::<Average>(&cfg, CentralizedConfig::for_group(32), seed);
            report.outcomes.iter().any(|o| {
                matches!(o, MemberOutcome::Completed { completeness, .. }
                    if *completeness <= 2.0 / 32.0)
            })
        });
        assert!(wiped, "no run showed the leader-failure pathology");
    }

    #[test]
    fn hiergossip_deterministic_per_seed() {
        let cfg = ExperimentConfig::default();
        let a = run_hiergossip::<Average>(&cfg, 11);
        let b = run_hiergossip::<Average>(&cfg, 11);
        assert_eq!(a.mean_completeness(), b.mean_completeness());
        assert_eq!(a.net.sent, b.net.sent);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn traced_runner_matches_plain_runner() {
        let cfg = ExperimentConfig::default().with_n(48);
        let plain = run_hiergossip::<Average>(&cfg, 7);
        let (traced, trace) = run_hiergossip_traced::<Average>(&cfg, 7);
        assert_eq!(plain.rounds, traced.rounds);
        assert_eq!(plain.net, traced.net);
        assert_eq!(plain.outcomes, traced.outcomes);
        assert!(!trace.is_empty());
        assert_eq!(trace.group_size(), 48);
    }

    #[test]
    fn topo_aware_run_reduces_long_haul_share() {
        let mut cfg = perfect(256);
        cfg.topo_aware = true;
        let topo = run_hiergossip::<Average>(&cfg, 5);
        assert_eq!(topo.mean_completeness(), Some(1.0));
        let share = topo.net.long_haul_share(4);
        assert!(share < 0.5, "long-haul share {share}");
    }
}
