//! Hierarchical leader election on the Grid Box Hierarchy (§6.2).
//!
//! "Each member is initially a leader of its own height-0 subtree. In
//! phase i, a leader is elected for each subtree of height i from the
//! leaders of its child subtrees … the algorithm finally terminates …
//! with the entire tree electing one leader who has the aggregate
//! function estimate for the entire group, and subsequently disseminates
//! this to the group via the tree."
//!
//! Leaders are elected *deterministically* from the (assumed consistent)
//! view: the `K′` members of a subtree with the smallest well-known hash
//! of their identifier. Because the hash is prefix-independent, a
//! parent-committee member is always also a committee member of its own
//! child subtree, so the election needs no extra communication — exactly
//! the §6.2 setting where "views \[are\] consistent and complete at all
//! members". There is **no failure detection and no re-election**: a
//! crashed subtree leader (committee) silently loses its subtree's
//! votes, which is the fragility the paper demonstrates and Figure-A
//! (`ablation_leader`) reproduces.
//!
//! The schedule is synchronous: `phases` upward phases of `phase_len`
//! rounds each (members retransmit within a phase to tolerate loss),
//! then `depth + 1` downward dissemination steps of `phase_len` rounds.

use std::sync::Arc;

use gridagg_aggregate::{Aggregate, Tagged};
use gridagg_group::MemberId;
use gridagg_hierarchy::{Addr, AddrInterner, AddrSlab};
use gridagg_simnet::detcol::DetSet;
use gridagg_simnet::rng::splitmix64;
use gridagg_simnet::Round;

use crate::message::Payload;
use crate::protocol::{AggregationProtocol, Ctx, Outbox};
use crate::scope::ScopeIndex;
use crate::trace::TraceEvent;

/// Parameters of the leader-election baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderElectionConfig {
    /// Committee size `K′` per subtree (1 = single leader).
    pub committee: usize,
    /// Rounds per phase/step (retransmissions within a phase).
    pub phase_len: u32,
    /// Salt of the well-known election hash.
    pub salt: u64,
}

impl Default for LeaderElectionConfig {
    fn default() -> Self {
        LeaderElectionConfig {
            committee: 1,
            phase_len: 2,
            salt: 0xE1EC,
        }
    }
}

/// Election hash: prefix-independent so committee chains nest.
fn election_key(salt: u64, id: MemberId) -> u64 {
    splitmix64(salt ^ splitmix64(id.0 as u64 ^ 0x1EAD))
}

/// Precomputed committees for every subtree prefix, shared by all
/// members of a run (every member could compute this locally from its
/// view; sharing it is a simulation-level optimisation).
#[derive(Debug)]
pub struct LeaderDirectory {
    /// Committees indexed by interned prefix id (empty Vec = empty
    /// subtree). Dense: the prefix universe is fixed and small.
    committees: Vec<Vec<MemberId>>,
    interner: AddrInterner,
}

impl LeaderDirectory {
    /// Build the directory bottom-up from the scope index.
    pub fn build(index: &ScopeIndex, cfg: &LeaderElectionConfig) -> Arc<Self> {
        let h = *index.hierarchy();
        let k_prime = cfg.committee.max(1);
        let interner = index.interner().clone();
        let mut committees: Vec<Vec<MemberId>> = vec![Vec::new(); interner.len()];
        let pick = |mut cands: Vec<MemberId>| -> Vec<MemberId> {
            cands.sort_unstable_by_key(|&m| (election_key(cfg.salt, m), m));
            cands.truncate(k_prime);
            cands
        };
        // boxes first
        for b in 0..h.num_boxes() {
            let addr = h.box_at(b);
            let members = index.members_in(&addr).to_vec();
            if !members.is_empty() {
                committees[interner.intern(&addr) as usize] = pick(members);
            }
        }
        // then every ancestor level, from the committees one level down
        for len in (0..h.depth()).rev() {
            for i in 0..(h.k() as u64).pow(len as u32) {
                let p = Addr::from_index(h.k(), len, i).expect("valid prefix");
                let cands: Vec<MemberId> = p
                    .children()
                    .flat_map(|c| committees[interner.intern(&c) as usize].iter())
                    .copied()
                    .collect();
                if !cands.is_empty() {
                    committees[interner.intern(&p) as usize] = pick(cands);
                }
            }
        }
        Arc::new(LeaderDirectory {
            committees,
            interner,
        })
    }

    /// The committee of a prefix (empty slice for empty subtrees).
    ///
    /// # Panics
    ///
    /// Panics if `prefix` is outside the hierarchy's prefix universe.
    pub fn committee(&self, prefix: &Addr) -> &[MemberId] {
        &self.committees[self.interner.intern(prefix) as usize]
    }

    /// Whether `id` sits on the committee of `prefix`.
    pub fn is_committee(&self, prefix: &Addr, id: MemberId) -> bool {
        self.committee(prefix).contains(&id)
    }
}

/// One member's leader-election instance.
#[derive(Debug)]
pub struct LeaderElection<A> {
    me: MemberId,
    n: usize,
    vote: f64,
    cfg: LeaderElectionConfig,
    index: Arc<ScopeIndex>,
    directory: Arc<LeaderDirectory>,
    my_box: Addr,
    /// votes gathered as a box-committee member
    votes: Vec<(MemberId, f64)>,
    have_vote: DetSet<u32>,
    /// child-subtree aggregates gathered as a committee member, in a
    /// dense chain-local slab (every key is a prefix of `my_box` or a
    /// child of one — O(1) slot lookups, address-ordered iteration)
    aggs: AddrSlab<Tagged<A>>,
    /// `Arc`-shared: the final result fans out along the tree, so every
    /// forwarded `Final` is a reference-count bump, not a deep clone.
    result: Option<Arc<Tagged<A>>>,
    done_at: Option<Round>,
    estimate: Option<Arc<Tagged<A>>>,
}

impl<A: Aggregate> LeaderElection<A> {
    /// Create the instance for member `me` with vote `vote`.
    pub fn new(
        me: MemberId,
        vote: f64,
        index: Arc<ScopeIndex>,
        directory: Arc<LeaderDirectory>,
        cfg: LeaderElectionConfig,
    ) -> Self {
        let my_box = index.box_of(me);
        let mut have_vote = DetSet::new();
        have_vote.insert(me.0);
        LeaderElection {
            me,
            n: index.len(),
            vote,
            cfg,
            index,
            directory,
            my_box,
            votes: vec![(me, vote)],
            have_vote,
            aggs: AddrSlab::new(my_box),
            result: None,
            done_at: None,
            estimate: None,
        }
    }

    fn depth(&self) -> usize {
        self.index.hierarchy().depth()
    }

    fn phases(&self) -> usize {
        self.index.hierarchy().phases()
    }

    /// Total schedule length in rounds: up phases + down steps.
    pub fn schedule_rounds(&self) -> Round {
        ((self.phases() + self.depth() + 1) as u32 * self.cfg.phase_len) as Round
    }

    /// Compose (and cache) my aggregate for the prefix of length `len`
    /// in my own address chain.
    fn compose_own(&mut self, len: usize) -> Tagged<A> {
        let prefix = self.my_box.prefix(len);
        if let Some(a) = self.aggs.get(&prefix) {
            return a.clone();
        }
        // `for_scale`: counted contributor sets above the exact
        // threshold are safe here because `have_vote` dedupes committee
        // votes and child slots adopt first-reception-wins, so merges
        // are structurally disjoint.
        let composed = if len == self.depth() {
            let mut votes = self.votes.clone();
            votes.sort_unstable_by_key(|(m, _)| *m);
            let mut acc = Tagged::<A>::empty_for_scale(self.n);
            for (m, v) in votes {
                acc.try_merge(&Tagged::from_vote_for_scale(m.index(), v, self.n))
                    .expect("unique votes");
            }
            acc
        } else {
            let mut acc = Tagged::<A>::empty_for_scale(self.n);
            for child in prefix.children() {
                if let Some(a) = self.aggs.get(&child) {
                    acc.try_merge(a).expect("disjoint children");
                }
            }
            acc
        };
        self.aggs.insert(prefix, composed.clone());
        composed
    }
}

impl<A: Aggregate> AggregationProtocol<A> for LeaderElection<A> {
    fn on_round(&mut self, ctx: &mut Ctx<'_>, out: &mut Outbox<A>) {
        if self.done_at.is_some() {
            return;
        }
        let round = ctx.round;
        let depth = self.depth();
        let len_of = |step: usize| depth + 1 - step; // scope len at up phase `step`
        let l = self.cfg.phase_len as Round;
        let up_rounds = self.phases() as Round * l;

        if round >= self.schedule_rounds() {
            let estimate = self.result.clone().unwrap_or_else(|| {
                Arc::new(Tagged::from_vote_for_scale(
                    self.me.index(),
                    self.vote,
                    self.n,
                ))
            });
            self.estimate = Some(estimate);
            self.done_at = Some(round);
            return;
        }

        if round < up_rounds {
            let phase = (round / l) as usize + 1; // 1-based
            if phase == 1 {
                // everyone ships its vote to the box committee
                let me = self.me;
                out.send_many(
                    self.directory
                        .committee(&self.my_box)
                        .iter()
                        .copied()
                        .filter(|&m| m != me),
                    Payload::Vote {
                        member: self.me,
                        value: self.vote,
                    },
                );
            } else {
                // committee members of the child subtree ship its
                // aggregate to the parent-scope committee
                let child_len = len_of(phase - 1);
                let child = self.my_box.prefix(child_len);
                if self.directory.is_committee(&child, self.me) {
                    let agg = Arc::new(self.compose_own(child_len));
                    let scope = self.my_box.prefix(len_of(phase));
                    let me = self.me;
                    out.send_many(
                        self.directory
                            .committee(&scope)
                            .iter()
                            .copied()
                            .filter(|&m| m != me),
                        Payload::Agg {
                            subtree: child,
                            agg,
                        },
                    );
                }
            }
            return;
        }

        // downward dissemination
        let step = ((round - up_rounds) / l) as usize + 1; // 1-based
        if step == 1 && self.directory.is_committee(&self.my_box.prefix(0), self.me) {
            // root committee finalizes the group aggregate
            let root_agg = self.compose_own(0);
            self.result.get_or_insert(Arc::new(root_agg));
        }
        let Some(result) = self.result.clone() else {
            return;
        };
        if step <= self.depth() {
            // committee at len (step-1) forwards to committees at len step
            let from_len = step - 1;
            if self
                .directory
                .is_committee(&self.my_box.prefix(from_len), self.me)
            {
                let me = self.me;
                for child in self.my_box.prefix(from_len).children() {
                    out.send_many(
                        self.directory
                            .committee(&child)
                            .iter()
                            .copied()
                            .filter(|&m| m != me),
                        Payload::Final {
                            agg: result.clone(),
                        },
                    );
                }
            }
        } else {
            // final step: box committee broadcasts to its box
            if self.directory.is_committee(&self.my_box, self.me) {
                let me = self.me;
                out.send_many(
                    self.index
                        .members_in(&self.my_box)
                        .iter()
                        .copied()
                        .filter(|&m| m != me),
                    Payload::Final { agg: result },
                );
            }
        }
    }

    fn on_message(
        &mut self,
        _from: MemberId,
        payload: Payload<A>,
        ctx: &mut Ctx<'_>,
        _out: &mut Outbox<A>,
    ) {
        if self.done_at.is_some() {
            return;
        }
        let changed = match payload {
            Payload::Vote { member, value } => {
                if self.index.box_of(member) == self.my_box && self.have_vote.insert(member.0) {
                    self.votes.push((member, value));
                    true
                } else {
                    false
                }
            }
            Payload::Agg { subtree, agg } => {
                // a child of one of my ancestors — exactly the slab's
                // slot condition, minus the never-gossiped root
                if !subtree.is_empty() && self.aggs.slot(&subtree).is_some() {
                    // Addr consistency: an adopted child aggregate must
                    // only cover that child's members (see DESIGN.md §11).
                    // (Counted sets carry no identity to check.)
                    #[cfg(feature = "strict-invariants")]
                    if agg.votes().is_exact() {
                        let index = &self.index;
                        assert!(
                            agg.votes()
                                .iter()
                                .all(|m| subtree.contains(&index.box_of(MemberId(m as u32)))),
                            "strict-invariants: received aggregate for {subtree} covers a \
                             member outside that subtree"
                        );
                    }
                    // clone out of the shared payload only on first
                    // reception of this subtree
                    if self.aggs.contains_key(&subtree) {
                        false
                    } else {
                        self.aggs.insert(subtree, (*agg).clone());
                        true
                    }
                } else {
                    false
                }
            }
            Payload::Final { agg } => {
                let had = self.result.is_some();
                self.result.get_or_insert(agg);
                !had
            }
            Payload::VoteBatch { .. } | Payload::AggBatch { .. } | Payload::Flow { .. } => {
                // batch gossip is a hierarchical-gossip wire form and
                // Flow belongs to the Flow-Updating baseline; the
                // leader protocol never emits or consumes them
                false
            }
        };
        if changed && ctx.is_traced() {
            // coverage = what this member would report now: the final
            // result if present, else its gathered votes/child aggs
            let votes = match &self.result {
                Some(agg) => agg.vote_count() as u64,
                None => {
                    let from_aggs: u64 = self.aggs.values().map(|a| a.vote_count() as u64).sum();
                    from_aggs.max(self.votes.len() as u64)
                }
            };
            let me = self.me;
            let round = ctx.round;
            ctx.emit(|| TraceEvent::Coverage {
                member: me,
                round,
                votes,
            });
        }
    }

    fn estimate(&self) -> Option<&Tagged<A>> {
        self.estimate.as_deref()
    }

    fn is_done(&self) -> bool {
        self.done_at.is_some()
    }

    fn completed_at(&self) -> Option<Round> {
        self.done_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridagg_aggregate::Average;
    use gridagg_group::view::View;
    use gridagg_hierarchy::{FairHashPlacement, Hierarchy};

    fn setup(n: usize, k: u8, committee: usize) -> (Arc<ScopeIndex>, Arc<LeaderDirectory>) {
        let h = Hierarchy::for_group(k, n).unwrap();
        let index = ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, 7));
        let cfg = LeaderElectionConfig {
            committee,
            ..Default::default()
        };
        let dir = LeaderDirectory::build(&index, &cfg);
        (index, dir)
    }

    #[test]
    fn committees_have_requested_size() {
        let (index, dir) = setup(64, 4, 2);
        let h = *index.hierarchy();
        for b in 0..h.num_boxes() {
            let addr = h.box_at(b);
            let c = dir.committee(&addr);
            let box_size = index.count_in(&addr);
            assert_eq!(c.len(), box_size.min(2), "box {addr}");
        }
        let root = Addr::root(4).unwrap();
        assert_eq!(dir.committee(&root).len(), 2);
    }

    #[test]
    fn committee_chains_nest() {
        // a parent-committee member is a committee member of its own child
        let (index, dir) = setup(256, 4, 2);
        let h = *index.hierarchy();
        for len in 0..h.depth() {
            for i in 0..(h.k() as u64).pow(len as u32) {
                let p = Addr::from_index(4, len, i).unwrap();
                for &m in dir.committee(&p) {
                    let child = index.box_of(m).prefix(len + 1);
                    assert!(
                        dir.is_committee(&child, m),
                        "{m} leads {p} but not its child {child}"
                    );
                }
            }
        }
    }

    #[test]
    fn committee_members_belong_to_subtree() {
        let (index, dir) = setup(64, 2, 1);
        let h = *index.hierarchy();
        for len in 0..=h.depth() {
            for i in 0..(h.k() as u64).pow(len as u32) {
                let p = Addr::from_index(2, len, i).unwrap();
                for &m in dir.committee(&p) {
                    assert!(p.contains(&index.box_of(m)));
                }
            }
        }
    }

    #[test]
    fn directory_is_deterministic() {
        let (_, d1) = setup(64, 4, 1);
        let (_, d2) = setup(64, 4, 1);
        let root = Addr::root(4).unwrap();
        assert_eq!(d1.committee(&root), d2.committee(&root));
    }

    #[test]
    fn schedule_length() {
        let (index, dir) = setup(64, 4, 1);
        let cfg = LeaderElectionConfig::default();
        let p: LeaderElection<Average> =
            LeaderElection::new(MemberId(0), 1.0, index.clone(), dir, cfg);
        let h = index.hierarchy();
        assert_eq!(
            p.schedule_rounds(),
            ((h.phases() + h.depth() + 1) as u32 * cfg.phase_len) as Round
        );
    }
}
