//! The fully distributed solution (§4).
//!
//! "A naive solution … is to have each member send its vote to every
//! other group member and calculate the aggregate function based on the
//! votes it has received." With a per-member bandwidth constraint the
//! vote transmission is spread over `⌈(N−1)/per_round⌉` rounds, giving
//! the paper's `O(N)` time and `O(N²)` message complexity; completeness
//! is "only as good as the network message loss rate".

use gridagg_aggregate::{Aggregate, Tagged};
use gridagg_group::MemberId;
use gridagg_simnet::Round;

use crate::message::Payload;
use crate::protocol::{AggregationProtocol, Ctx, Outbox};
use crate::trace::TraceEvent;

/// Parameters of the flood baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodConfig {
    /// Votes sent per round (the per-member bandwidth constraint).
    pub per_round: u32,
    /// Extra rounds to wait for stragglers after the last send.
    pub grace: u32,
}

impl Default for FloodConfig {
    fn default() -> Self {
        FloodConfig {
            per_round: 8,
            grace: 2,
        }
    }
}

/// One member's flood instance.
#[derive(Debug)]
pub struct Flood<A> {
    me: MemberId,
    n: usize,
    vote: f64,
    cfg: FloodConfig,
    next_target: u32,
    grace_left: u32,
    acc: Tagged<A>,
    done_at: Option<Round>,
    estimate: Option<Tagged<A>>,
}

impl<A: Aggregate> Flood<A> {
    /// Create the instance for member `me` of a group of `n`.
    pub fn new(me: MemberId, vote: f64, n: usize, cfg: FloodConfig) -> Self {
        Flood {
            me,
            n,
            vote,
            cfg: FloodConfig {
                per_round: cfg.per_round.max(1),
                grace: cfg.grace,
            },
            next_target: 0,
            grace_left: cfg.grace,
            acc: Tagged::from_vote(me.index(), vote, n),
            done_at: None,
            estimate: None,
        }
    }
}

impl<A: Aggregate> AggregationProtocol<A> for Flood<A> {
    fn on_round(&mut self, ctx: &mut Ctx<'_>, out: &mut Outbox<A>) {
        if self.done_at.is_some() {
            return;
        }
        if (self.next_target as usize) < self.n {
            let mut sent = 0;
            while sent < self.cfg.per_round && (self.next_target as usize) < self.n {
                let target = MemberId(self.next_target);
                self.next_target += 1;
                if target == self.me {
                    continue;
                }
                out.send(
                    target,
                    Payload::Vote {
                        member: self.me,
                        value: self.vote,
                    },
                );
                sent += 1;
            }
            return;
        }
        if self.grace_left > 0 {
            self.grace_left -= 1;
            return;
        }
        self.estimate = Some(self.acc.clone());
        self.done_at = Some(ctx.round);
    }

    fn on_message(
        &mut self,
        _from: MemberId,
        payload: Payload<A>,
        ctx: &mut Ctx<'_>,
        _out: &mut Outbox<A>,
    ) {
        if self.done_at.is_some() {
            return;
        }
        match payload {
            Payload::Vote { member, value } => {
                // each member floods its own vote exactly once, but be
                // robust to duplicates anyway
                let before = self.acc.vote_count();
                let _ = self
                    .acc
                    .try_merge(&Tagged::from_vote(member.index(), value, self.n));
                if self.acc.vote_count() != before {
                    let me = self.me;
                    let round = ctx.round;
                    let votes = self.acc.vote_count() as u64;
                    ctx.emit(|| TraceEvent::Coverage {
                        member: me,
                        round,
                        votes,
                    });
                }
            }
            // Flood gossips single votes only; every other wire shape
            // is explicitly ignored so a new Payload variant is a
            // compile-time decision here, not a silent drop.
            Payload::Agg { .. }
            | Payload::Final { .. }
            | Payload::VoteBatch { .. }
            | Payload::AggBatch { .. }
            | Payload::Flow { .. } => {}
        }
    }

    fn estimate(&self) -> Option<&Tagged<A>> {
        self.estimate.as_ref()
    }

    fn is_done(&self) -> bool {
        self.done_at.is_some()
    }

    fn completed_at(&self) -> Option<Round> {
        self.done_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridagg_aggregate::Average;
    use gridagg_simnet::rng::DetRng;

    fn step<A: Aggregate>(p: &mut Flood<A>, round: Round, out: &mut Outbox<A>) {
        let mut rng = DetRng::seeded(0);
        let mut ctx = Ctx::new(round, &mut rng);
        p.on_round(&mut ctx, out);
    }

    #[test]
    fn sends_vote_to_all_others_respecting_bandwidth() {
        let mut p: Flood<Average> = Flood::new(
            MemberId(2),
            7.0,
            10,
            FloodConfig {
                per_round: 4,
                grace: 1,
            },
        );
        let mut out = Outbox::new();
        let mut targets = Vec::new();
        for r in 0..3 {
            step(&mut p, r, &mut out);
            let batch: Vec<_> = out.drain().collect();
            assert!(batch.len() <= 4);
            targets.extend(batch.iter().map(|(to, _)| *to));
        }
        assert_eq!(targets.len(), 9);
        assert!(!targets.contains(&MemberId(2)));
    }

    #[test]
    fn completes_after_grace() {
        let mut p: Flood<Average> = Flood::new(MemberId(0), 1.0, 4, FloodConfig::default());
        let mut out = Outbox::new();
        let mut round = 0;
        while !p.is_done() {
            step(&mut p, round, &mut out);
            out.drain().for_each(drop);
            round += 1;
            assert!(round < 100);
        }
        // nothing received → estimate is own vote only
        assert_eq!(p.estimate().unwrap().vote_count(), 1);
    }

    #[test]
    fn merges_received_votes_and_ignores_duplicates() {
        let mut p: Flood<Average> = Flood::new(MemberId(0), 0.0, 4, FloodConfig::default());
        let mut rng = DetRng::seeded(0);
        let mut out = Outbox::new();
        let mut ctx = Ctx::new(0, &mut rng);
        let msg = Payload::Vote {
            member: MemberId(1),
            value: 4.0,
        };
        p.on_message(MemberId(1), msg.clone(), &mut ctx, &mut out);
        p.on_message(MemberId(1), msg, &mut ctx, &mut out);
        assert_eq!(p.acc.vote_count(), 2);
        assert_eq!(p.acc.aggregate().unwrap().summary(), 2.0);
    }
}
