//! The centralized leader solution (§5).
//!
//! "Each group member send\[s\] its vote to a special member … denoted as
//! a leader …, which calculates the global function based on the votes
//! received, and then disseminates this information out to all the group
//! members."
//!
//! The two §5 pathologies are modelled explicitly:
//!
//! * **Message implosion** — the leader can process at most
//!   `inbound_cap` inbound votes per round; the rest are dropped.
//! * **Leader failure** — no failure detection, no re-election: if the
//!   leader crashes, members end the run with their own vote only
//!   (completeness `1/N`).

use std::sync::Arc;

use gridagg_aggregate::{Aggregate, Tagged};
use gridagg_group::MemberId;
use gridagg_simnet::Round;

use crate::message::Payload;
use crate::protocol::{AggregationProtocol, Ctx, Outbox};
use crate::trace::TraceEvent;

/// Parameters of the centralized baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CentralizedConfig {
    /// The well-known leader.
    pub leader: MemberId,
    /// Rounds each member keeps (re)sending its vote once its slot
    /// starts.
    pub send_rounds: u32,
    /// Slot spread: member `i` starts sending at round `i % stagger`,
    /// pacing the gather so the leader's inbound capacity is not
    /// swamped by synchronized senders (the protocol-level mitigation
    /// of §5's implosion; it stretches the gather to `O(N)` rounds,
    /// which is exactly the paper's time-complexity complaint).
    pub stagger: u32,
    /// Rounds the leader gathers before disseminating.
    pub gather_rounds: u32,
    /// Leader inbound processing capacity per round (implosion model);
    /// `None` = unbounded.
    pub inbound_cap: Option<u32>,
    /// `Final` messages the leader sends per round while disseminating
    /// (its outbound bandwidth constraint).
    pub disseminate_per_round: u32,
}

impl CentralizedConfig {
    /// Sensible defaults for a group of `n`: leader 0, two send rounds
    /// per member, slots paced so inbound traffic matches the leader's
    /// capacity, gather long enough to cover the last slot.
    pub fn for_group(n: usize) -> Self {
        let cap = 32u32;
        let send_rounds = 2u32;
        let stagger = ((n as u32) * send_rounds).div_ceil(cap).max(1);
        CentralizedConfig {
            leader: MemberId(0),
            send_rounds,
            stagger,
            gather_rounds: stagger + send_rounds + 2,
            inbound_cap: Some(cap),
            disseminate_per_round: 32,
        }
    }

    /// Total rounds after which members give up waiting for a `Final`.
    pub fn deadline(&self, n: usize) -> Round {
        self.gather_rounds as Round
            + (n as u32).div_ceil(self.disseminate_per_round.max(1)) as Round
            + 4
    }
}

/// One member's centralized-protocol instance.
#[derive(Debug)]
pub struct Centralized<A> {
    me: MemberId,
    n: usize,
    vote: f64,
    cfg: CentralizedConfig,
    acc: Tagged<A>,
    inbound_this_round: u32,
    inbound_round: Round,
    /// The computed result and the final estimate are `Arc`-shared: the
    /// leader fans the same `Final` out to every member, so each send is
    /// a reference-count bump rather than a `Tagged` clone.
    result: Option<Arc<Tagged<A>>>,
    next_target: u32,
    done_at: Option<Round>,
    estimate: Option<Arc<Tagged<A>>>,
}

impl<A: Aggregate> Centralized<A> {
    /// Create the instance for member `me` of a group of `n`.
    pub fn new(me: MemberId, vote: f64, n: usize, cfg: CentralizedConfig) -> Self {
        Centralized {
            me,
            n,
            vote,
            cfg,
            acc: Tagged::from_vote(me.index(), vote, n),
            inbound_this_round: 0,
            inbound_round: 0,
            result: None,
            next_target: 0,
            done_at: None,
            estimate: None,
        }
    }

    fn is_leader(&self) -> bool {
        self.me == self.cfg.leader
    }

    fn finish(&mut self, round: Round, estimate: Arc<Tagged<A>>) {
        self.estimate = Some(estimate);
        self.done_at = Some(round);
    }
}

impl<A: Aggregate> AggregationProtocol<A> for Centralized<A> {
    fn on_round(&mut self, ctx: &mut Ctx<'_>, out: &mut Outbox<A>) {
        if self.done_at.is_some() {
            return;
        }
        let round = ctx.round;
        if self.is_leader() {
            if round < self.cfg.gather_rounds as Round {
                return; // gathering
            }
            if self.result.is_none() {
                self.result = Some(Arc::new(self.acc.clone()));
            }
            // disseminate (clones below are Arc bumps, not deep copies);
            // the result was just materialized above, so the else arm is
            // unreachable — but handlers never panic (lint rule D003)
            let Some(result) = self.result.clone() else {
                return;
            };
            let mut sent = 0;
            while sent < self.cfg.disseminate_per_round && (self.next_target as usize) < self.n {
                let target = MemberId(self.next_target);
                self.next_target += 1;
                if target == self.me {
                    continue;
                }
                out.send(
                    target,
                    Payload::Final {
                        agg: result.clone(),
                    },
                );
                sent += 1;
            }
            if (self.next_target as usize) >= self.n {
                self.finish(round, result);
            }
        } else {
            let start = (self.me.0 % self.cfg.stagger.max(1)) as Round;
            if round >= start && round < start + self.cfg.send_rounds as Round {
                out.send(
                    self.cfg.leader,
                    Payload::Vote {
                        member: self.me,
                        value: self.vote,
                    },
                );
            }
            if round >= self.cfg.deadline(self.n) {
                // §5 failure mode: leader never answered
                let own = Tagged::from_vote(self.me.index(), self.vote, self.n);
                self.finish(round, Arc::new(own));
            }
        }
    }

    fn on_message(
        &mut self,
        _from: MemberId,
        payload: Payload<A>,
        ctx: &mut Ctx<'_>,
        _out: &mut Outbox<A>,
    ) {
        if self.done_at.is_some() {
            return;
        }
        match payload {
            Payload::Vote { member, value } if self.is_leader() => {
                if ctx.round != self.inbound_round {
                    self.inbound_round = ctx.round;
                    self.inbound_this_round = 0;
                }
                self.inbound_this_round += 1;
                if let Some(cap) = self.cfg.inbound_cap {
                    if self.inbound_this_round > cap {
                        return; // implosion: dropped at the leader
                    }
                }
                let before = self.acc.vote_count();
                let _ = self
                    .acc
                    .try_merge(&Tagged::from_vote(member.index(), value, self.n));
                if self.acc.vote_count() != before {
                    let me = self.me;
                    let round = ctx.round;
                    let votes = self.acc.vote_count() as u64;
                    ctx.emit(|| TraceEvent::Coverage {
                        member: me,
                        round,
                        votes,
                    });
                }
            }
            Payload::Final { agg } => {
                let me = self.me;
                let round = ctx.round;
                let votes = agg.vote_count() as u64;
                ctx.emit(|| TraceEvent::Coverage {
                    member: me,
                    round,
                    votes,
                });
                self.finish(ctx.round, agg);
            }
            // A Vote reaching a non-leader is mis-routed; drop it.
            Payload::Vote { .. } => {}
            // Centralized never sends subtree aggregates, batches, or
            // flow exchanges; explicit ignore arms so a new Payload
            // variant is a compile-time decision here, not a silent
            // drop.
            Payload::Agg { .. }
            | Payload::VoteBatch { .. }
            | Payload::AggBatch { .. }
            | Payload::Flow { .. } => {}
        }
    }

    fn estimate(&self) -> Option<&Tagged<A>> {
        self.estimate.as_deref()
    }

    fn is_done(&self) -> bool {
        self.done_at.is_some()
    }

    fn completed_at(&self) -> Option<Round> {
        self.done_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridagg_aggregate::Average;
    use gridagg_simnet::rng::DetRng;

    fn ctx(round: Round, rng: &mut DetRng) -> Ctx<'_> {
        Ctx::new(round, rng)
    }

    #[test]
    fn member_sends_vote_then_waits() {
        let cfg = CentralizedConfig::for_group(10);
        let mut p: Centralized<Average> = Centralized::new(MemberId(3), 5.0, 10, cfg);
        let mut rng = DetRng::seeded(0);
        let mut out = Outbox::new();
        p.on_round(&mut ctx(0, &mut rng), &mut out);
        let msgs: Vec<_> = out.drain().collect();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].0, cfg.leader);
    }

    #[test]
    fn member_finishes_on_final() {
        let cfg = CentralizedConfig::for_group(4);
        let mut p: Centralized<Average> = Centralized::new(MemberId(1), 5.0, 4, cfg);
        let mut rng = DetRng::seeded(0);
        let mut out = Outbox::new();
        let mut result = Tagged::<Average>::from_vote(0, 1.0, 4);
        result.try_merge(&Tagged::from_vote(1, 5.0, 4)).unwrap();
        p.on_message(
            cfg.leader,
            Payload::Final {
                agg: Arc::new(result),
            },
            &mut ctx(3, &mut rng),
            &mut out,
        );
        assert!(p.is_done());
        assert_eq!(p.estimate().unwrap().vote_count(), 2);
        assert_eq!(p.completed_at(), Some(3));
    }

    #[test]
    fn member_gives_up_at_deadline_with_own_vote() {
        let cfg = CentralizedConfig::for_group(4);
        let deadline = cfg.deadline(4);
        let mut p: Centralized<Average> = Centralized::new(MemberId(1), 5.0, 4, cfg);
        let mut rng = DetRng::seeded(0);
        let mut out = Outbox::new();
        for r in 0..=deadline {
            p.on_round(&mut ctx(r, &mut rng), &mut out);
            out.drain().for_each(drop);
        }
        assert!(p.is_done());
        assert_eq!(p.estimate().unwrap().vote_count(), 1);
    }

    #[test]
    fn leader_gathers_then_disseminates() {
        let mut cfg = CentralizedConfig::for_group(4);
        cfg.gather_rounds = 2;
        cfg.disseminate_per_round = 2;
        let mut p: Centralized<Average> = Centralized::new(MemberId(0), 1.0, 4, cfg);
        let mut rng = DetRng::seeded(0);
        let mut out = Outbox::new();
        // two votes arrive during gathering
        for m in [1u32, 2] {
            p.on_message(
                MemberId(m),
                Payload::Vote {
                    member: MemberId(m),
                    value: m as f64,
                },
                &mut ctx(0, &mut rng),
                &mut out,
            );
        }
        p.on_round(&mut ctx(0, &mut rng), &mut out);
        p.on_round(&mut ctx(1, &mut rng), &mut out);
        assert!(out.is_empty(), "no sends during gather");
        p.on_round(&mut ctx(2, &mut rng), &mut out);
        let batch1: Vec<_> = out.drain().collect();
        assert_eq!(batch1.len(), 2);
        p.on_round(&mut ctx(3, &mut rng), &mut out);
        let batch2: Vec<_> = out.drain().collect();
        assert_eq!(batch2.len(), 1); // members 1,2 then 3 (skipping self)
        assert!(p.is_done());
        // leader's own estimate includes the gathered votes
        assert_eq!(p.estimate().unwrap().vote_count(), 3);
    }

    #[test]
    fn implosion_drops_beyond_cap() {
        let mut cfg = CentralizedConfig::for_group(100);
        cfg.inbound_cap = Some(2);
        let mut p: Centralized<Average> = Centralized::new(MemberId(0), 0.0, 100, cfg);
        let mut rng = DetRng::seeded(0);
        let mut out = Outbox::new();
        for m in 1..=10u32 {
            p.on_message(
                MemberId(m),
                Payload::Vote {
                    member: MemberId(m),
                    value: 1.0,
                },
                &mut ctx(0, &mut rng),
                &mut out,
            );
        }
        // own vote + 2 accepted
        assert_eq!(p.acc.vote_count(), 3);
        // next round the cap resets
        p.on_message(
            MemberId(11),
            Payload::Vote {
                member: MemberId(11),
                value: 1.0,
            },
            &mut ctx(1, &mut rng),
            &mut out,
        );
        assert_eq!(p.acc.vote_count(), 4);
    }

    #[test]
    fn duplicate_votes_not_double_counted() {
        let cfg = CentralizedConfig::for_group(4);
        let mut p: Centralized<Average> = Centralized::new(MemberId(0), 0.0, 4, cfg);
        let mut rng = DetRng::seeded(0);
        let mut out = Outbox::new();
        for _ in 0..2 {
            p.on_message(
                MemberId(1),
                Payload::Vote {
                    member: MemberId(1),
                    value: 8.0,
                },
                &mut ctx(0, &mut rng),
                &mut out,
            );
        }
        assert_eq!(p.acc.vote_count(), 2);
        assert_eq!(p.acc.aggregate().unwrap().summary(), 4.0);
    }
}
