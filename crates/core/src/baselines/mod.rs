//! Baseline protocols the paper compares against.
//!
//! * [`flood::Flood`] — §4's fully distributed solution: every member
//!   sends its vote to every other member. Optimal only without loss;
//!   `O(N²)` messages, `O(N)` time under the bandwidth constraint.
//! * [`central::Centralized`] — §5's leader solution: gather at a
//!   well-known leader, then disseminate. `O(N)` messages but message
//!   implosion at the leader and total loss of the run if the leader
//!   crashes.
//! * [`leader::LeaderElection`] — §6.2's hierarchical leader election on
//!   the Grid Box Hierarchy, with single leaders or a `K′` committee per
//!   subtree. Scalable but fragile: a crashed subtree leader silently
//!   loses `≈ K^i` votes.
//! * [`flatgossip::FlatGossip`] — gossip *without* the hierarchy: all
//!   `N` individual votes must spread through the whole group within the
//!   same round budget. The ablation that motivates the Grid Box
//!   Hierarchy.
//! * [`flowupdate::FlowUpdating`] — mass-conserving continuous
//!   averaging (PAPERS.md): the churn baseline the continuous service
//!   compares restart-per-epoch hierarchical gossip against.

pub mod central;
pub mod flatgossip;
pub mod flood;
pub mod flowupdate;
pub mod leader;

pub use central::{Centralized, CentralizedConfig};
pub use flatgossip::{FlatGossip, FlatGossipConfig};
pub use flood::{Flood, FloodConfig};
pub use flowupdate::{ring_chord_neighbors, FlowUpdating, FlowUpdatingConfig};
pub use leader::{LeaderDirectory, LeaderElection, LeaderElectionConfig};
