//! Flow Updating — mass-conserving continuous averaging.
//!
//! The churn baseline from PAPERS.md ("Fault-Tolerant Aggregation:
//! Flow-Updating Meets Mass-Distribution", "Dependability in Aggregation
//! by Averaging"): instead of restarting an aggregation from scratch when
//! the group changes, every member `i` keeps a *flow* `F_i[j]` towards
//! each overlay neighbour `j` and derives its estimate as
//! `e_i = v_i − Σ_j F_i[j]`. Flows are idempotent state, not consumed
//! messages, so message loss never destroys "mass": a lost update is
//! simply superseded by the next one, and the global invariant
//! `Σ_i e_i = Σ_i v_i` is restored whenever flows are pairwise
//! anti-symmetric (`F_i[j] = −F_j[i]`).
//!
//! Averaging is *pairwise, request/reply*: each round a member opens an
//! exchange with one neighbour (rotating through the sorted overlay),
//! shipping its current edge flow and estimate. The responder adopts
//! the flow, moves itself onto the midpoint of the two estimates by
//! adjusting the same edge flow, and answers; the initiator adopts the
//! answer and lands on the midpoint too. One writer per exchange is the
//! stability property: a variant where both endpoints continuously
//! re-adjust the shared flow against last-heard estimates sustains a
//! mass-conserving oscillation that periodic re-arming amplifies
//! without bound (median estimates stay perfect while the extremes
//! diverge — easy to miss, which is why `continuous::tests` pins max
//! error, not just the median). A neighbour silent for
//! [`FlowUpdatingConfig::timeout_rounds`] consecutive missed exchanges
//! is presumed dead and its flow reclaimed (reset to zero), which
//! returns the lent mass to `i` — this is what makes the protocol
//! churn-tolerant without any restart.
//!
//! Unlike the one-shot protocols in this module, Flow Updating never
//! converges *structurally*: it runs for a fixed round budget per epoch
//! and the continuous service ([`crate::continuous`]) re-arms it between
//! epochs with [`FlowUpdating::rearm`], carrying flows across epochs.
//! Completeness instrumentation rides along as a vote bitset: each
//! update message carries the set of members whose current-epoch state
//! has (transitively) influenced the sender, mirroring how
//! [`Tagged`] tracks contributors in the one-shot protocols.

use std::sync::Arc;

use gridagg_aggregate::{Aggregate, Average, Tagged, VoteSet};
use gridagg_group::MemberId;
use gridagg_simnet::Round;

use crate::message::Payload;
use crate::protocol::{AggregationProtocol, Ctx, Outbox};
use crate::trace::TraceEvent;

/// Parameters of Flow Updating.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowUpdatingConfig {
    /// Rounds to run before publishing this epoch's estimate.
    pub rounds_per_epoch: u32,
    /// Rounds of silence after which a neighbour is presumed dead and
    /// its flow reclaimed.
    pub timeout_rounds: u32,
}

impl Default for FlowUpdatingConfig {
    fn default() -> Self {
        FlowUpdatingConfig {
            rounds_per_epoch: 24,
            timeout_rounds: 8,
        }
    }
}

/// Per-neighbour flow state.
#[derive(Debug, Clone, Copy)]
struct NeighborState {
    id: MemberId,
    /// Mass lent to this neighbour (`F_i[j]`).
    flow: f64,
    /// The neighbour's last reported estimate, if any.
    estimate: Option<f64>,
    /// Round the neighbour was last heard from.
    last_heard: Option<Round>,
}

impl NeighborState {
    fn fresh(id: MemberId) -> Self {
        NeighborState {
            id,
            flow: 0.0,
            estimate: None,
            last_heard: None,
        }
    }
}

/// One member's Flow-Updating instance (averaging only — the algorithm
/// is specific to [`Average`]).
#[derive(Debug)]
pub struct FlowUpdating {
    me: MemberId,
    /// Size of the stable id universe (bitset width).
    universe: usize,
    vote: f64,
    cfg: FlowUpdatingConfig,
    /// Overlay neighbours, sorted by id (deterministic iteration).
    neighbors: Vec<NeighborState>,
    /// Members whose current-epoch state has influenced this estimate.
    influenced: VoteSet,
    rounds: u32,
    done_at: Option<Round>,
    published: Option<Tagged<Average>>,
}

/// The symmetric ring-chord overlay used by the churn scenarios:
/// member at position `idx` of the sorted up-member list connects to
/// positions `idx ± 2^k (mod m)` for `k = 0..⌈log2 m⌉`. Degree is
/// `O(log m)`, the graph is connected and symmetric (an edge appears in
/// both endpoints' neighbour lists), and it depends only on the sorted
/// membership — every member derives the same overlay.
pub fn ring_chord_neighbors(sorted_up: &[MemberId], idx: usize) -> Vec<MemberId> {
    let m = sorted_up.len();
    if m <= 1 {
        return Vec::new();
    }
    let mut picks: Vec<usize> = Vec::new();
    let mut step = 1usize;
    while step < m {
        picks.push((idx + step) % m);
        picks.push((idx + m - step) % m);
        step *= 2;
    }
    let mut out: Vec<MemberId> = picks
        .into_iter()
        .filter(|&p| p != idx)
        .map(|p| sorted_up[p])
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

impl FlowUpdating {
    /// Create the instance for member `me` with the given vote and
    /// overlay neighbours. `universe` is the stable id space the
    /// completeness bitset is sized for (≥ all ids that may appear).
    pub fn new(
        me: MemberId,
        vote: f64,
        universe: usize,
        neighbors: Vec<MemberId>,
        cfg: FlowUpdatingConfig,
    ) -> Self {
        let mut neighbors: Vec<NeighborState> =
            neighbors.into_iter().map(NeighborState::fresh).collect();
        neighbors.sort_unstable_by_key(|s| s.id);
        neighbors.dedup_by_key(|s| s.id);
        neighbors.retain(|s| s.id != me);
        FlowUpdating {
            me,
            universe,
            vote,
            cfg,
            neighbors,
            influenced: VoteSet::singleton(me.index(), universe),
            rounds: 0,
            done_at: None,
            published: None,
        }
    }

    /// Current estimate of the average: `v_i − Σ_j F_i[j]`.
    pub fn local_estimate(&self) -> f64 {
        self.vote - self.neighbors.iter().map(|s| s.flow).sum::<f64>()
    }

    /// Re-arm for the next epoch of the continuous service: install the
    /// (possibly changed) vote and healed overlay, clear the done marker
    /// and the per-epoch influence set. Flows towards neighbours that
    /// survive into the new overlay are *kept* — that continuity is the
    /// point of the protocol — while flows towards removed neighbours
    /// are dropped, reclaiming the mass lent to them.
    pub fn rearm(&mut self, vote: f64, neighbors: Vec<MemberId>) {
        self.vote = vote;
        let mut next: Vec<NeighborState> = Vec::with_capacity(neighbors.len());
        let mut ids: Vec<MemberId> = neighbors;
        ids.sort_unstable();
        ids.dedup();
        for id in ids {
            if id == self.me {
                continue;
            }
            match self.neighbors.binary_search_by_key(&id, |s| s.id) {
                Ok(pos) => {
                    let mut kept = self.neighbors[pos];
                    // estimates and deadlines are stale across the epoch
                    // boundary; only the flow persists
                    kept.estimate = None;
                    kept.last_heard = None;
                    next.push(kept);
                }
                Err(_) => next.push(NeighborState::fresh(id)),
            }
        }
        self.neighbors = next;
        self.influenced = VoteSet::singleton(self.me.index(), self.universe);
        self.rounds = 0;
        self.done_at = None;
        self.published = None;
    }

    fn finalize(&mut self, round: Round) {
        let est = Average::from_vote(self.local_estimate());
        // influence set always contains `me`, so the aggregate is
        // present whenever votes are — from_parts cannot fail here, but
        // degrade to "no estimate" rather than panicking in a protocol
        // handler (lint rule D003)
        self.published = Tagged::from_parts(Some(est), self.influenced.clone()).ok();
        self.done_at = Some(round);
    }
}

impl AggregationProtocol<Average> for FlowUpdating {
    fn on_round(&mut self, ctx: &mut Ctx<'_>, out: &mut Outbox<Average>) {
        if self.done_at.is_some() {
            return;
        }
        if self.rounds >= self.cfg.rounds_per_epoch {
            self.finalize(ctx.round);
            return;
        }
        let degree = self.neighbors.len();
        // 1. reclaim flows from neighbours silent past the timeout. A
        //    neighbour only writes to us when the rotation reaches the
        //    shared edge, so its natural cadence is one message per
        //    ~degree rounds (the overlay is symmetric, degrees match);
        //    the deadline counts `timeout_rounds` missed exchanges, not
        //    raw rounds.
        let deadline = (self.cfg.timeout_rounds as Round).saturating_mul(degree.max(1) as Round);
        for s in &mut self.neighbors {
            if let Some(heard) = s.last_heard {
                if ctx.round.saturating_sub(heard) > deadline {
                    s.flow = 0.0;
                    s.estimate = None;
                    s.last_heard = None;
                }
            }
        }
        // 2. open a pairwise exchange with one neighbour per round,
        //    rotating through the (sorted) overlay: ship the current
        //    edge flow and estimate; the responder does the averaging
        //    (on_message) against this *fresh* estimate and answers
        //    with the adjusted flow, which we adopt. Adjusting every
        //    neighbour against last-heard estimates each round (the
        //    tempting broadcast variant) leaves each edge with two
        //    independent simultaneous writers whose mutual overwrites
        //    preserve — and under periodic re-arming amplify — a
        //    mass-conserving oscillation.
        if degree > 0 {
            let pick = self.rounds as usize % degree;
            let s = &self.neighbors[pick];
            out.send(
                s.id,
                Payload::Flow {
                    flow: s.flow,
                    estimate: self.local_estimate(),
                    reply: false,
                    influenced: Arc::new(self.influenced.clone()),
                },
            );
        }
        self.rounds += 1;
    }

    fn on_message(
        &mut self,
        from: MemberId,
        payload: Payload<Average>,
        ctx: &mut Ctx<'_>,
        out: &mut Outbox<Average>,
    ) {
        if self.done_at.is_some() {
            return;
        }
        match payload {
            Payload::Flow {
                flow,
                estimate,
                reply,
                influenced,
            } => {
                // stale senders no longer in the overlay are ignored
                self.on_flow(from, flow, estimate, reply, &influenced, ctx, out);
            }
            // Flow-Updating speaks only the Flow exchange; every other
            // wire shape is explicitly ignored so a new Payload
            // variant is a compile-time decision here, not a silent
            // drop.
            Payload::Vote { .. }
            | Payload::Agg { .. }
            | Payload::Final { .. }
            | Payload::VoteBatch { .. }
            | Payload::AggBatch { .. } => {}
        }
    }

    fn estimate(&self) -> Option<&Tagged<Average>> {
        self.published.as_ref()
    }

    fn is_done(&self) -> bool {
        self.done_at.is_some()
    }

    fn completed_at(&self) -> Option<Round> {
        self.done_at
    }
}

impl FlowUpdating {
    /// Body of the `Payload::Flow` handler: fold the sender's lent
    /// flow into our ledger and, on the responder half, answer with
    /// the midpoint-adjusted flow. The parameter list mirrors the
    /// wire fields one-to-one.
    #[allow(clippy::too_many_arguments)]
    fn on_flow(
        &mut self,
        from: MemberId,
        flow: f64,
        estimate: f64,
        reply: bool,
        influenced: &VoteSet,
        ctx: &mut Ctx<'_>,
        out: &mut Outbox<Average>,
    ) {
        if let Ok(pos) = self.neighbors.binary_search_by_key(&from, |s| s.id) {
            {
                let s = &mut self.neighbors[pos];
                // the sender lent us `flow`; our matching flow is
                // its negation (anti-symmetry restores Σe = Σv)
                s.flow = -flow;
                s.estimate = Some(estimate);
                s.last_heard = Some(ctx.round);
            }
            let before = self.influenced.len();
            self.influenced.union_with(influenced);
            if self.influenced.len() != before && ctx.is_traced() {
                let me = self.me;
                let round = ctx.round;
                let votes = self.influenced.len() as u64;
                ctx.emit(|| TraceEvent::Coverage {
                    member: me,
                    round,
                    votes,
                });
            }
            if !reply {
                // responder half of the exchange: average with the
                // initiator's fresh estimate and answer with the
                // adjusted flow. Lending `e_here − midpoint` moves
                // us exactly onto the midpoint; the initiator lands
                // there too once it adopts the answer.
                let e_here = self.local_estimate();
                let midpoint = (e_here + estimate) / 2.0;
                let s = &mut self.neighbors[pos];
                s.flow += e_here - midpoint;
                s.estimate = Some(midpoint);
                out.send(
                    from,
                    Payload::Flow {
                        flow: s.flow,
                        estimate: midpoint,
                        reply: true,
                        influenced: Arc::new(self.influenced.clone()),
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridagg_aggregate::Aggregate;
    use gridagg_simnet::rng::DetRng;

    fn full_mesh(n: usize) -> Vec<Vec<MemberId>> {
        (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| j != i)
                    .map(|j| MemberId(j as u32))
                    .collect()
            })
            .collect()
    }

    type Mail = Vec<(MemberId, MemberId, Payload<Average>)>;

    /// Drive a set of instances over a perfect next-round network:
    /// messages sent in round `r` (requests from `on_round`, replies
    /// from `on_message`) are delivered in round `r + 1`, like the
    /// engine does. Returns the messages still in flight at the cut.
    fn drive(protos: &mut [FlowUpdating], rounds: u32) -> Mail {
        let mut rng = DetRng::seeded(7);
        let mut out = Outbox::new();
        let mut pending: Mail = Vec::new();
        for round in 0..rounds as Round {
            let mut next: Mail = Vec::new();
            for (from, to, payload) in pending {
                let mut ctx = Ctx::new(round, &mut rng);
                protos[to.index()].on_message(from, payload, &mut ctx, &mut out);
                for (to2, payload2) in out.drain() {
                    next.push((to, to2, payload2));
                }
            }
            for p in protos.iter_mut() {
                let me = p.me;
                let mut ctx = Ctx::new(round, &mut rng);
                p.on_round(&mut ctx, &mut out);
                for (to, payload) in out.drain() {
                    next.push((me, to, payload));
                }
            }
            pending = next;
        }
        pending
    }

    /// Deliver in-flight messages (and the replies they trigger) with no
    /// further `on_round` steps, until the network is empty. Afterwards
    /// every exchanged edge is flow-anti-symmetric again.
    fn quiesce(protos: &mut [FlowUpdating], mut pending: Mail, from_round: Round) {
        let mut rng = DetRng::seeded(8);
        let mut out = Outbox::new();
        let mut round = from_round;
        while !pending.is_empty() {
            let mut next: Mail = Vec::new();
            for (from, to, payload) in pending {
                let mut ctx = Ctx::new(round, &mut rng);
                protos[to.index()].on_message(from, payload, &mut ctx, &mut out);
                for (to2, payload2) in out.drain() {
                    next.push((to, to2, payload2));
                }
            }
            pending = next;
            round += 1;
        }
    }

    #[test]
    fn converges_to_true_average_on_mesh() {
        let votes = [1.0, 5.0, 9.0, 13.0];
        let n = votes.len();
        let cfg = FlowUpdatingConfig {
            rounds_per_epoch: 1000,
            timeout_rounds: 8,
        };
        let mesh = full_mesh(n);
        let mut protos: Vec<FlowUpdating> = (0..n)
            .map(|i| FlowUpdating::new(MemberId(i as u32), votes[i], n, mesh[i].clone(), cfg))
            .collect();
        let _ = drive(&mut protos, 100);
        for p in &protos {
            assert!(
                (p.local_estimate() - 7.0).abs() < 1e-6,
                "member {} estimate {}",
                p.me,
                p.local_estimate()
            );
        }
    }

    #[test]
    fn mass_is_conserved_after_quiescence() {
        // A completed exchange restores flow anti-symmetry on its edge,
        // so an isolated pair conserves Σ e_i = Σ v_i *exactly* — even
        // though both endpoints initiate crossing requests every round.
        let cfg = FlowUpdatingConfig {
            rounds_per_epoch: 1000,
            timeout_rounds: 8,
        };
        let mesh2 = full_mesh(2);
        let mut pair: Vec<FlowUpdating> = (0..2)
            .map(|i| FlowUpdating::new(MemberId(i as u32), [2.0, 8.0][i], 2, mesh2[i].clone(), cfg))
            .collect();
        let in_flight = drive(&mut pair, 17);
        quiesce(&mut pair, in_flight, 17);
        let mass: f64 = pair.iter().map(FlowUpdating::local_estimate).sum();
        assert!((mass - 10.0).abs() < 1e-9, "pair mass {mass} vs 10");

        // With concurrent exchanges on many edges, a snapshot carries
        // transient in-flight corrections; the deviation decays to zero
        // as the estimates converge instead of accumulating.
        let votes = [2.0, 4.0, 6.0, 8.0, 10.0];
        let n = votes.len();
        let truth: f64 = votes.iter().sum();
        let mesh = full_mesh(n);
        let snapshot = |rounds: u32| {
            let mut protos: Vec<FlowUpdating> = (0..n)
                .map(|i| FlowUpdating::new(MemberId(i as u32), votes[i], n, mesh[i].clone(), cfg))
                .collect();
            let in_flight = drive(&mut protos, rounds);
            quiesce(&mut protos, in_flight, rounds as Round);
            let mass: f64 = protos.iter().map(FlowUpdating::local_estimate).sum();
            (mass - truth).abs()
        };
        let early = snapshot(17);
        let late = snapshot(160);
        assert!(early < 2.0, "early snapshot drift {early}");
        assert!(late < 1e-6, "late snapshot drift {late}");
    }

    #[test]
    fn finalizes_after_round_budget() {
        let cfg = FlowUpdatingConfig {
            rounds_per_epoch: 5,
            timeout_rounds: 4,
        };
        let mut p = FlowUpdating::new(MemberId(0), 3.0, 4, vec![MemberId(1)], cfg);
        let mut rng = DetRng::seeded(1);
        let mut out = Outbox::new();
        for round in 0..=5 {
            let mut ctx = Ctx::new(round, &mut rng);
            p.on_round(&mut ctx, &mut out);
            out.drain();
        }
        assert!(p.is_done());
        assert_eq!(p.completed_at(), Some(5));
        let est = p.estimate().expect("published");
        assert_eq!(est.aggregate().unwrap().summary(), 3.0);
        assert_eq!(est.vote_count(), 1);
    }

    #[test]
    fn timeout_reclaims_dead_neighbor_flow() {
        let cfg = FlowUpdatingConfig {
            rounds_per_epoch: 1000,
            timeout_rounds: 2,
        };
        let mut p = FlowUpdating::new(MemberId(0), 10.0, 4, vec![MemberId(1)], cfg);
        let mut rng = DetRng::seeded(1);
        let mut out = Outbox::new();
        // neighbour 1 reports once, lending us −4 (we owe it 4)
        let mut ctx = Ctx::new(0, &mut rng);
        p.on_message(
            MemberId(1),
            Payload::Flow {
                flow: -4.0,
                estimate: 6.0,
                reply: false,
                influenced: Arc::new(VoteSet::singleton(1, 4)),
            },
            &mut ctx,
            &mut out,
        );
        out.drain(); // discard the pairwise answer
        {
            let mut ctx = Ctx::new(1, &mut rng);
            p.on_round(&mut ctx, &mut out);
            out.drain();
        }
        assert!(p.local_estimate() < 10.0, "mass flowed towards neighbour");
        // then it goes silent past the timeout: rounds 2..=4
        for round in 2..=4 {
            let mut ctx = Ctx::new(round, &mut rng);
            p.on_round(&mut ctx, &mut out);
            out.drain();
        }
        assert_eq!(p.local_estimate(), 10.0, "flow reclaimed after timeout");
    }

    #[test]
    fn influence_set_spreads_transitively() {
        let cfg = FlowUpdatingConfig {
            rounds_per_epoch: 1000,
            timeout_rounds: 8,
        };
        // line overlay 0–1–2: member 2's influence reaches 0 via 1
        let neighbors = [
            vec![MemberId(1)],
            vec![MemberId(0), MemberId(2)],
            vec![MemberId(1)],
        ];
        let mut protos: Vec<FlowUpdating> = (0..3)
            .map(|i| FlowUpdating::new(MemberId(i as u32), i as f64, 3, neighbors[i].clone(), cfg))
            .collect();
        let _ = drive(&mut protos, 4);
        assert!(protos[0].influenced.contains(2), "transitive influence");
        assert_eq!(protos[0].influenced.len(), 3);
    }

    #[test]
    fn rearm_keeps_surviving_flows_and_drops_removed() {
        let cfg = FlowUpdatingConfig::default();
        let mut p = FlowUpdating::new(MemberId(0), 10.0, 8, vec![MemberId(1), MemberId(2)], cfg);
        let mut rng = DetRng::seeded(1);
        let mut out = Outbox::new();
        let mut ctx = Ctx::new(0, &mut rng);
        p.on_message(
            MemberId(1),
            Payload::Flow {
                flow: -3.0,
                estimate: 1.0,
                reply: true,
                influenced: Arc::new(VoteSet::singleton(1, 8)),
            },
            &mut ctx,
            &mut out,
        );
        p.on_message(
            MemberId(2),
            Payload::Flow {
                flow: -2.0,
                estimate: 1.0,
                reply: true,
                influenced: Arc::new(VoteSet::singleton(2, 8)),
            },
            &mut ctx,
            &mut out,
        );
        assert_eq!(p.local_estimate(), 10.0 - 3.0 - 2.0);
        // neighbour 2 leaves; 3 joins; vote drifts to 11
        p.rearm(11.0, vec![MemberId(1), MemberId(3)]);
        // flow to 1 kept (−3 owed... +3 towards us), flow to 2 reclaimed
        assert_eq!(p.local_estimate(), 11.0 - 3.0);
        assert!(!p.is_done());
        assert_eq!(p.influenced.len(), 1, "influence reset per epoch");
    }

    #[test]
    fn ring_chord_is_symmetric_and_logarithmic() {
        let up: Vec<MemberId> = (0..37).map(MemberId).collect();
        let lists: Vec<Vec<MemberId>> = (0..up.len())
            .map(|i| ring_chord_neighbors(&up, i))
            .collect();
        for (i, list) in lists.iter().enumerate() {
            assert!(!list.is_empty());
            assert!(list.len() <= 2 * 7, "degree {} too high", list.len());
            for &j in list {
                let jp = up.iter().position(|&m| m == j).unwrap();
                assert!(lists[jp].contains(&up[i]), "edge {i}->{jp} not symmetric");
            }
        }
        // gapped id spaces work too — overlay is positional
        let sparse = vec![MemberId(3), MemberId(10), MemberId(90)];
        let l = ring_chord_neighbors(&sparse, 0);
        assert_eq!(l, vec![MemberId(10), MemberId(90)]);
        assert!(ring_chord_neighbors(&sparse[..1], 0).is_empty());
    }
}
