//! Flat gossip — the no-hierarchy ablation.
//!
//! Gossip individual votes uniformly over the *whole* group for the same
//! round budget Hierarchical Gossiping would use. Without the Grid Box
//! Hierarchy, all `N` distinct votes compete for the same constant-size
//! messages, so coverage per vote collapses as `N` grows — the
//! quantitative argument for the hierarchy.

use gridagg_aggregate::{Aggregate, Tagged};
use gridagg_group::MemberId;
use gridagg_simnet::detcol::DetSet;
use gridagg_simnet::Round;

use crate::message::Payload;
use crate::protocol::{AggregationProtocol, Ctx, Outbox};
use crate::trace::TraceEvent;

/// Parameters of flat gossip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatGossipConfig {
    /// Gossipees contacted per round (`M`).
    pub fanout: u32,
    /// Total rounds to run (match the hierarchical budget for a fair
    /// comparison).
    pub total_rounds: u32,
}

impl Default for FlatGossipConfig {
    fn default() -> Self {
        FlatGossipConfig {
            fanout: 2,
            total_rounds: 32,
        }
    }
}

/// One member's flat-gossip instance.
#[derive(Debug)]
pub struct FlatGossip<A> {
    me: MemberId,
    n: usize,
    cfg: FlatGossipConfig,
    known: Vec<(MemberId, f64)>,
    have: DetSet<u32>,
    rounds: u32,
    done_at: Option<Round>,
    estimate: Option<Tagged<A>>,
    /// Scratch reused by gossipee sampling across rounds.
    scratch_picks: Vec<usize>,
}

impl<A: Aggregate> FlatGossip<A> {
    /// Create the instance for member `me` of a group of `n`.
    pub fn new(me: MemberId, vote: f64, n: usize, cfg: FlatGossipConfig) -> Self {
        let mut have = DetSet::new();
        have.insert(me.0);
        FlatGossip {
            me,
            n,
            cfg,
            known: vec![(me, vote)],
            have,
            rounds: 0,
            done_at: None,
            estimate: None,
            scratch_picks: Vec::new(),
        }
    }

    /// Number of distinct votes currently known.
    pub fn known_votes(&self) -> usize {
        self.known.len()
    }
}

impl<A: Aggregate> AggregationProtocol<A> for FlatGossip<A> {
    fn on_round(&mut self, ctx: &mut Ctx<'_>, out: &mut Outbox<A>) {
        if self.done_at.is_some() {
            return;
        }
        if self.rounds >= self.cfg.total_rounds {
            let mut votes = self.known.clone();
            votes.sort_unstable_by_key(|(m, _)| *m);
            // `for_scale`: counted contributor sets above the exact
            // threshold are safe here because `have` dedupes inserts
            // into `known`, so the merges are structurally disjoint.
            let mut acc = Tagged::<A>::empty_for_scale(self.n);
            for (m, v) in votes {
                // `have` dedupes inserts into `known`, so these merges
                // are disjoint; if that ever broke, dropping the
                // duplicate (try_merge leaves `acc` untouched on error)
                // beats panicking in a handler (lint rule D003).
                let _ = acc.try_merge(&Tagged::from_vote_for_scale(m.index(), v, self.n));
            }
            self.estimate = Some(acc);
            self.done_at = Some(ctx.round);
            return;
        }
        // The known set always holds at least the member's own vote, so
        // an empty choice is unreachable; bail instead of panicking in a
        // handler (lint rule D003).
        let Some(&(member, value)) = ctx.rng.choose(&self.known) else {
            return;
        };
        ctx.rng.sample_distinct_into(
            self.n,
            Some(self.me.index()),
            self.cfg.fanout as usize,
            &mut self.scratch_picks,
        );
        out.send_many(
            self.scratch_picks.iter().map(|&p| MemberId(p as u32)),
            Payload::Vote { member, value },
        );
        self.rounds += 1;
    }

    fn on_message(
        &mut self,
        _from: MemberId,
        payload: Payload<A>,
        ctx: &mut Ctx<'_>,
        _out: &mut Outbox<A>,
    ) {
        if self.done_at.is_some() {
            return;
        }
        match payload {
            Payload::Vote { member, value } => {
                if self.have.insert(member.0) {
                    self.known.push((member, value));
                    let me = self.me;
                    let round = ctx.round;
                    let votes = self.known.len() as u64;
                    ctx.emit(|| TraceEvent::Coverage {
                        member: me,
                        round,
                        votes,
                    });
                }
            }
            // Flat gossip exchanges single votes only; every other
            // wire shape is explicitly ignored so a new Payload
            // variant is a compile-time decision here, not a silent
            // drop.
            Payload::Agg { .. }
            | Payload::Final { .. }
            | Payload::VoteBatch { .. }
            | Payload::AggBatch { .. }
            | Payload::Flow { .. } => {}
        }
    }

    fn estimate(&self) -> Option<&Tagged<A>> {
        self.estimate.as_ref()
    }

    fn is_done(&self) -> bool {
        self.done_at.is_some()
    }

    fn completed_at(&self) -> Option<Round> {
        self.done_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridagg_aggregate::Average;
    use gridagg_simnet::rng::DetRng;

    #[test]
    fn runs_for_budget_then_finalizes() {
        let cfg = FlatGossipConfig {
            fanout: 2,
            total_rounds: 5,
        };
        let mut p: FlatGossip<Average> = FlatGossip::new(MemberId(0), 3.0, 10, cfg);
        let mut rng = DetRng::seeded(1);
        let mut out = Outbox::new();
        for round in 0..=5 {
            let mut ctx = Ctx::new(round, &mut rng);
            p.on_round(&mut ctx, &mut out);
        }
        assert!(p.is_done());
        assert_eq!(p.estimate().unwrap().vote_count(), 1);
        assert_eq!(p.completed_at(), Some(5));
    }

    #[test]
    fn gossip_targets_whole_group() {
        let cfg = FlatGossipConfig {
            fanout: 3,
            total_rounds: 100,
        };
        let mut p: FlatGossip<Average> = FlatGossip::new(MemberId(4), 3.0, 10, cfg);
        let mut rng = DetRng::seeded(1);
        let mut out = Outbox::new();
        let mut seen = DetSet::new();
        for round in 0..50 {
            let mut ctx = Ctx::new(round, &mut rng);
            p.on_round(&mut ctx, &mut out);
            for (to, _) in out.drain() {
                assert_ne!(to, MemberId(4));
                seen.insert(to.0);
            }
        }
        assert!(seen.len() >= 8, "covered only {seen:?}");
    }

    #[test]
    fn learns_new_votes_once() {
        let cfg = FlatGossipConfig::default();
        let mut p: FlatGossip<Average> = FlatGossip::new(MemberId(0), 3.0, 10, cfg);
        let mut rng = DetRng::seeded(1);
        let mut out = Outbox::new();
        let mut ctx = Ctx::new(0, &mut rng);
        let msg = Payload::Vote {
            member: MemberId(7),
            value: 1.0,
        };
        p.on_message(MemberId(7), msg.clone(), &mut ctx, &mut out);
        p.on_message(MemberId(7), msg, &mut ctx, &mut out);
        assert_eq!(p.known_votes(), 2);
    }
}
