//! The protocol abstraction driven by the simulation engine.
//!
//! Each group member runs one [`AggregationProtocol`] instance. The
//! engine calls [`AggregationProtocol::on_message`] for every delivered
//! message and [`AggregationProtocol::on_round`] once per gossip round
//! while the member is alive; protocols emit messages through the
//! [`Outbox`]. When a protocol is done it exposes its [`estimate`] — the
//! member's view of the global aggregate.
//!
//! [`estimate`]: AggregationProtocol::estimate

use gridagg_aggregate::Tagged;
use gridagg_group::MemberId;
use gridagg_simnet::rng::DetRng;
use gridagg_simnet::Round;

use crate::message::Payload;
use crate::trace::{DynSink, TraceEvent};

/// Messages a member wants to send this round.
#[derive(Debug)]
pub struct Outbox<A> {
    msgs: Vec<(MemberId, Payload<A>)>,
}

impl<A> Outbox<A> {
    /// An empty outbox.
    pub fn new() -> Self {
        Outbox { msgs: Vec::new() }
    }

    /// Queue a message to `to`.
    pub fn send(&mut self, to: MemberId, payload: Payload<A>) {
        self.msgs.push((to, payload));
    }

    /// Queue the same payload to several destinations (gossip fanout).
    pub fn send_many(&mut self, to: impl IntoIterator<Item = MemberId>, payload: Payload<A>)
    where
        A: Clone,
    {
        for dest in to {
            self.msgs.push((dest, payload.clone()));
        }
    }

    /// Drain the queued messages.
    pub fn drain(&mut self) -> std::vec::Drain<'_, (MemberId, Payload<A>)> {
        self.msgs.drain(..)
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether the outbox is empty.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }
}

impl<A> Default for Outbox<A> {
    fn default() -> Self {
        Outbox::new()
    }
}

/// Per-call context handed to the protocol by the engine.
pub struct Ctx<'a> {
    /// The current gossip round.
    pub round: Round,
    /// This member's private random stream.
    pub rng: &'a mut DetRng,
    /// Trace sink, installed by the engine only when tracing is on.
    /// `None` on the untraced path, so [`Ctx::emit`]'s event-building
    /// closure is never even called there.
    trace: Option<&'a mut dyn DynSink>,
}

impl std::fmt::Debug for Ctx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("round", &self.round)
            .field("traced", &self.trace.is_some())
            .finish()
    }
}

impl<'a> Ctx<'a> {
    /// An untraced context (the default path).
    pub fn new(round: Round, rng: &'a mut DetRng) -> Self {
        Ctx {
            round,
            rng,
            trace: None,
        }
    }

    /// A context that forwards protocol-level events to `sink`.
    pub fn traced(round: Round, rng: &'a mut DetRng, sink: &'a mut dyn DynSink) -> Self {
        Ctx {
            round,
            rng,
            trace: Some(sink),
        }
    }

    /// Emit a trace event. The closure runs only when a sink is
    /// installed, so untraced runs pay one branch and build nothing.
    #[inline]
    pub fn emit(&mut self, event: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.trace.as_deref_mut() {
            sink.record_dyn(event());
        }
    }

    /// Whether this context forwards events anywhere.
    pub fn is_traced(&self) -> bool {
        self.trace.is_some()
    }
}

/// A one-shot aggregation protocol instance at one group member.
pub trait AggregationProtocol<A>: std::fmt::Debug {
    /// Called once per round while the member is alive, *after* this
    /// round's message deliveries. Emit gossip through `out`.
    fn on_round(&mut self, ctx: &mut Ctx<'_>, out: &mut Outbox<A>);

    /// Called for each message delivered to this member (if alive).
    fn on_message(
        &mut self,
        from: MemberId,
        payload: Payload<A>,
        ctx: &mut Ctx<'_>,
        out: &mut Outbox<A>,
    );

    /// The member's current estimate of the global aggregate, if it has
    /// produced one. Completeness is measured on this.
    fn estimate(&self) -> Option<&Tagged<A>>;

    /// Whether this member's protocol run has terminated.
    fn is_done(&self) -> bool;

    /// The round in which the protocol terminated, if it has.
    fn completed_at(&self) -> Option<Round>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridagg_aggregate::Average;

    #[test]
    fn outbox_queues_and_drains() {
        let mut out: Outbox<Average> = Outbox::new();
        assert!(out.is_empty());
        out.send(
            MemberId(1),
            Payload::Vote {
                member: MemberId(0),
                value: 1.0,
            },
        );
        out.send_many(
            [MemberId(2), MemberId(3)],
            Payload::Vote {
                member: MemberId(0),
                value: 1.0,
            },
        );
        assert_eq!(out.len(), 3);
        let drained: Vec<_> = out.drain().collect();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[1].0, MemberId(2));
        assert!(out.is_empty());
    }

    #[test]
    fn default_is_empty() {
        let out: Outbox<Average> = Outbox::default();
        assert!(out.is_empty());
    }
}
