//! Experiment configuration.
//!
//! [`ExperimentConfig`] is the single knob-set for a simulation run,
//! with defaults equal to the paper's §7 defaults:
//! `N = 200, ucastl = 0.25, pf = 0.001, K = 4, M = 2, C = 1.0`.
//! It serializes (via [`crate::json`]) so experiment definitions can be
//! recorded next to their results.

use crate::hiergossip::HierGossipConfig;
use crate::json::{field, opt_field, FromJson, Json, ToJson};

/// How member votes are drawn (serializable mirror of
/// [`gridagg_group::VoteDistribution`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VoteSpec {
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Gaussian.
    Gaussian {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Vote = member index.
    Index,
}

impl From<VoteSpec> for gridagg_group::VoteDistribution {
    fn from(v: VoteSpec) -> Self {
        match v {
            VoteSpec::Uniform { lo, hi } => gridagg_group::VoteDistribution::Uniform { lo, hi },
            VoteSpec::Gaussian { mean, std_dev } => {
                gridagg_group::VoteDistribution::Gaussian { mean, std_dev }
            }
            VoteSpec::Index => gridagg_group::VoteDistribution::Index,
        }
    }
}

impl ToJson for VoteSpec {
    fn to_json(&self) -> Json {
        // externally tagged, matching the serde-derive layout earlier
        // revisions wrote into results/*.config.json
        match *self {
            VoteSpec::Uniform { lo, hi } => Json::Obj(vec![(
                "Uniform".into(),
                Json::Obj(vec![
                    ("lo".into(), lo.to_json()),
                    ("hi".into(), hi.to_json()),
                ]),
            )]),
            VoteSpec::Gaussian { mean, std_dev } => Json::Obj(vec![(
                "Gaussian".into(),
                Json::Obj(vec![
                    ("mean".into(), mean.to_json()),
                    ("std_dev".into(), std_dev.to_json()),
                ]),
            )]),
            VoteSpec::Index => Json::Str("Index".into()),
        }
    }
}

impl FromJson for VoteSpec {
    fn from_json(value: &Json) -> Result<Self, String> {
        if value.as_str() == Some("Index") {
            return Ok(VoteSpec::Index);
        }
        if let Some(body) = value.get("Uniform") {
            return Ok(VoteSpec::Uniform {
                lo: field(body, "lo")?,
                hi: field(body, "hi")?,
            });
        }
        if let Some(body) = value.get("Gaussian") {
            return Ok(VoteSpec::Gaussian {
                mean: field(body, "mean")?,
                std_dev: field(body, "std_dev")?,
            });
        }
        Err("unknown VoteSpec variant".to_string())
    }
}

/// Full parameter set for one experiment point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentConfig {
    /// Group size `N`.
    pub n: usize,
    /// Grid box constant `K`.
    pub k: u8,
    /// Gossip fanout `M`.
    pub fanout: u32,
    /// Phase length factor `C` (rounds per phase = `⌈C·log_M N⌉`).
    pub round_factor: f64,
    /// Explicit rounds-per-phase override (Figure 8).
    pub rounds_per_phase: Option<u32>,
    /// Independent unicast message loss probability `ucastl`.
    pub ucastl: f64,
    /// Soft-partition cross-half loss probability `partl` (Figure 9);
    /// `None` disables the partition. The boundary is at `n / 2`.
    pub partl: Option<f64>,
    /// Per-round member crash probability `pf` (no recovery).
    pub pf: f64,
    /// Step 2(b) early bump-up.
    pub early_bump: bool,
    /// Early phase-1 exit when all box votes are known.
    pub phase1_early_exit: bool,
    /// Use the topologically-aware placement over a uniform 2-D field
    /// instead of the fair hash.
    pub topo_aware: bool,
    /// Place members on a 2-D field (enabling per-distance link-load
    /// accounting) even when the placement itself is the fair hash.
    /// Implied by `topo_aware`.
    pub positioned: bool,
    /// Per-member per-round send cap (`None` = uncapped).
    pub bandwidth_cap: Option<u32>,
    /// Batch gossip exchange (see [`crate::hiergossip::Exchange`]);
    /// `false` reverts to paper-literal one-value-per-message push.
    pub batch_exchange: bool,
    /// Partial membership views: each member knows only itself plus
    /// this many uniformly sampled members (the paper's §2 relaxation:
    /// "this can be relaxed in our final hierarchical gossiping
    /// solution"). `None` = complete views.
    pub partial_view: Option<usize>,
    /// Group-size estimate used to derive the hierarchy, when it
    /// differs from the true `n` ("an approximate estimate of N at each
    /// member usually suffices", §6.1). `None` = exact.
    pub n_estimate: Option<usize>,
    /// Multicast-initiation spread: members start uniformly at random
    /// within this many rounds (gossip wakes stragglers earlier).
    /// `None` = simultaneous start (§2 default).
    pub start_spread: Option<u32>,
    /// Maximum message delay in rounds: deliveries take uniformly
    /// 1..=max_delay rounds, adding network asynchrony beyond the §7
    /// next-round default (`None` / `Some(1)`).
    pub max_delay: Option<u64>,
    /// Record per-phase completion traces inside each member
    /// ([`crate::hiergossip::HierGossip::trace`]). Pure instrumentation
    /// — never affects protocol behavior or proxy counters — but costs
    /// O(phases) heap per member, so the scale bench turns it off above
    /// the exact-tracking threshold.
    pub phase_trace: bool,
    /// Engine threads *inside* each run: the round loop forks the
    /// delivery and visit phases across this many scoped threads and
    /// serially replays their outcomes, so results — trace bytes
    /// included — are byte-identical at any value (see
    /// [`crate::engine::Simulation::with_engine_jobs`]). An execution
    /// knob like `GRIDAGG_JOBS`, not an experiment parameter: it is
    /// deliberately **not** serialized, so recorded configs and result
    /// artifacts are identical at any thread count.
    pub engine_jobs: usize,
    /// Vote distribution.
    pub vote: VoteSpec,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            n: 200,
            k: 4,
            fanout: 2,
            round_factor: 1.0,
            rounds_per_phase: None,
            ucastl: 0.25,
            partl: None,
            pf: 0.001,
            early_bump: true,
            phase1_early_exit: false,
            topo_aware: false,
            positioned: false,
            bandwidth_cap: None,
            batch_exchange: true,
            partial_view: None,
            n_estimate: None,
            start_spread: None,
            max_delay: None,
            phase_trace: true,
            engine_jobs: 1,
            vote: VoteSpec::Uniform { lo: 0.0, hi: 100.0 },
        }
    }
}

impl ToJson for ExperimentConfig {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("n".into(), self.n.to_json()),
            ("k".into(), self.k.to_json()),
            ("fanout".into(), self.fanout.to_json()),
            ("round_factor".into(), self.round_factor.to_json()),
            ("rounds_per_phase".into(), self.rounds_per_phase.to_json()),
            ("ucastl".into(), self.ucastl.to_json()),
            ("partl".into(), self.partl.to_json()),
            ("pf".into(), self.pf.to_json()),
            ("early_bump".into(), self.early_bump.to_json()),
            ("phase1_early_exit".into(), self.phase1_early_exit.to_json()),
            ("topo_aware".into(), self.topo_aware.to_json()),
            ("positioned".into(), self.positioned.to_json()),
            ("bandwidth_cap".into(), self.bandwidth_cap.to_json()),
            ("batch_exchange".into(), self.batch_exchange.to_json()),
            ("partial_view".into(), self.partial_view.to_json()),
            ("n_estimate".into(), self.n_estimate.to_json()),
            ("start_spread".into(), self.start_spread.to_json()),
            ("max_delay".into(), self.max_delay.to_json()),
            ("phase_trace".into(), self.phase_trace.to_json()),
            ("vote".into(), self.vote.to_json()),
        ])
    }
}

impl FromJson for ExperimentConfig {
    fn from_json(value: &Json) -> Result<Self, String> {
        Ok(ExperimentConfig {
            n: field(value, "n")?,
            k: field(value, "k")?,
            fanout: field(value, "fanout")?,
            round_factor: field(value, "round_factor")?,
            rounds_per_phase: opt_field(value, "rounds_per_phase")?,
            ucastl: field(value, "ucastl")?,
            partl: opt_field(value, "partl")?,
            pf: field(value, "pf")?,
            early_bump: field(value, "early_bump")?,
            phase1_early_exit: field(value, "phase1_early_exit")?,
            topo_aware: field(value, "topo_aware")?,
            positioned: field(value, "positioned")?,
            bandwidth_cap: opt_field(value, "bandwidth_cap")?,
            batch_exchange: field(value, "batch_exchange")?,
            partial_view: opt_field(value, "partial_view")?,
            n_estimate: opt_field(value, "n_estimate")?,
            start_spread: opt_field(value, "start_spread")?,
            max_delay: opt_field(value, "max_delay")?,
            // absent in configs recorded before the scale ladder: default on
            phase_trace: opt_field(value, "phase_trace")?.unwrap_or(true),
            // execution knob, never serialized: always starts serial
            engine_jobs: 1,
            vote: field(value, "vote")?,
        })
    }
}

impl ExperimentConfig {
    /// The paper's default configuration (§7).
    pub fn paper_defaults() -> Self {
        Self::default()
    }

    /// Set the group size.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Set the unicast loss probability.
    pub fn with_ucastl(mut self, ucastl: f64) -> Self {
        self.ucastl = ucastl;
        self
    }

    /// Set the per-round crash probability.
    pub fn with_pf(mut self, pf: f64) -> Self {
        self.pf = pf;
        self
    }

    /// Set the in-run engine thread count (see
    /// [`crate::engine::Simulation::with_engine_jobs`]).
    pub fn with_engine_jobs(mut self, jobs: usize) -> Self {
        self.engine_jobs = jobs.max(1);
        self
    }

    /// Set the soft-partition loss probability.
    pub fn with_partl(mut self, partl: f64) -> Self {
        self.partl = Some(partl);
        self
    }

    /// Set an explicit rounds-per-phase.
    pub fn with_rounds_per_phase(mut self, rounds: u32) -> Self {
        self.rounds_per_phase = Some(rounds);
        self
    }

    /// The derived hierarchical-gossip protocol parameters.
    pub fn hier_config(&self) -> HierGossipConfig {
        HierGossipConfig {
            fanout: self.fanout,
            round_factor: self.round_factor,
            rounds_per_phase: self.rounds_per_phase,
            early_bump: self.early_bump,
            phase1_early_exit: self.phase1_early_exit,
            phase_trace: self.phase_trace,
            exchange: if self.batch_exchange {
                crate::hiergossip::Exchange::Batch
            } else {
                crate::hiergossip::Exchange::One
            },
        }
    }

    /// A generous engine round cap: the synchronous schedule length plus
    /// slack (protocols normally finish well before).
    pub fn max_rounds(&self) -> u64 {
        let h = gridagg_hierarchy::Hierarchy::for_group(self.k, self.n_estimate.unwrap_or(self.n))
            .map_or(8, |h| h.phases() as u64);
        let rpp = self.hier_config().rounds_per_phase(self.n) as u64;
        2 * h * rpp + 32
    }

    /// Validate parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.n < 2 {
            return Err(format!("group size {} too small", self.n));
        }
        if self.k < 2 {
            return Err(format!("K={} must be >= 2", self.k));
        }
        if self.fanout == 0 {
            return Err("fanout M must be >= 1".to_string());
        }
        for (name, p) in [("ucastl", self.ucastl), ("pf", self.pf)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name}={p} outside [0,1]"));
            }
        }
        if let Some(p) = self.partl {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("partl={p} outside [0,1]"));
            }
        }
        if self.round_factor <= 0.0 {
            return Err(format!("C={} must be positive", self.round_factor));
        }
        if let Some(est) = self.n_estimate {
            if est < 2 {
                return Err(format!("n_estimate {est} too small"));
            }
        }
        if self.partial_view == Some(0) {
            return Err("partial view must contain at least one other member".to_string());
        }
        if self.max_delay == Some(0) {
            return Err("max_delay must be at least 1 round".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ExperimentConfig::paper_defaults();
        assert_eq!(c.n, 200);
        assert_eq!(c.k, 4);
        assert_eq!(c.fanout, 2);
        assert_eq!(c.round_factor, 1.0);
        assert_eq!(c.ucastl, 0.25);
        assert_eq!(c.pf, 0.001);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn builder_chain() {
        let c = ExperimentConfig::default()
            .with_n(800)
            .with_ucastl(0.5)
            .with_pf(0.004)
            .with_partl(0.6)
            .with_rounds_per_phase(3);
        assert_eq!(c.n, 800);
        assert_eq!(c.ucastl, 0.5);
        assert_eq!(c.pf, 0.004);
        assert_eq!(c.partl, Some(0.6));
        assert_eq!(c.rounds_per_phase, Some(3));
        assert_eq!(c.hier_config().rounds_per_phase(800), 3);
    }

    #[test]
    fn validation_catches_bad_fields() {
        assert!(ExperimentConfig::default().with_n(1).validate().is_err());
        assert!(ExperimentConfig::default()
            .with_ucastl(1.5)
            .validate()
            .is_err());
        assert!(ExperimentConfig::default()
            .with_pf(-0.1)
            .validate()
            .is_err());
        assert!(ExperimentConfig::default()
            .with_partl(2.0)
            .validate()
            .is_err());
        let c = ExperimentConfig {
            round_factor: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ExperimentConfig {
            k: 1,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ExperimentConfig {
            fanout: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_serializes_round_trip() {
        // configs are recorded as JSON next to experiment results;
        // the round trip must be lossless
        let mut cfg = ExperimentConfig::paper_defaults()
            .with_n(800)
            .with_partl(0.6)
            .with_rounds_per_phase(3);
        cfg.partial_view = Some(50);
        cfg.n_estimate = Some(600);
        cfg.start_spread = Some(4);
        cfg.max_delay = Some(2);
        cfg.vote = VoteSpec::Gaussian {
            mean: 10.0,
            std_dev: 2.0,
        };
        let json = cfg.to_json().to_string_pretty();
        let parsed = Json::parse(&json).expect("parse");
        let back = ExperimentConfig::from_json(&parsed).expect("deserialize");
        assert_eq!(back, cfg);
    }

    #[test]
    fn config_reads_previously_recorded_serde_layout() {
        // the exact text serde-derive wrote for the defaults in earlier
        // revisions (see results/*.config.json) must keep parsing
        let recorded = r#"{"n":200,"k":4,"fanout":2,"round_factor":1.0,
            "rounds_per_phase":null,"ucastl":0.25,"partl":null,"pf":0.001,
            "early_bump":true,"phase1_early_exit":false,"topo_aware":false,
            "positioned":false,"bandwidth_cap":null,"batch_exchange":true,
            "partial_view":null,"n_estimate":null,"start_spread":null,
            "max_delay":null,"vote":{"Uniform":{"lo":0.0,"hi":100.0}}}"#;
        let parsed = Json::parse(recorded).expect("parse");
        let cfg = ExperimentConfig::from_json(&parsed).expect("deserialize");
        assert_eq!(cfg, ExperimentConfig::paper_defaults());
    }

    #[test]
    fn max_rounds_covers_schedule() {
        let c = ExperimentConfig::default();
        // phases=4, rpp=8 → at least 64
        assert!(c.max_rounds() >= 64);
    }

    #[test]
    fn vote_spec_converts() {
        let u: gridagg_group::VoteDistribution = VoteSpec::Uniform { lo: 1.0, hi: 2.0 }.into();
        assert_eq!(
            u,
            gridagg_group::VoteDistribution::Uniform { lo: 1.0, hi: 2.0 }
        );
        let i: gridagg_group::VoteDistribution = VoteSpec::Index.into();
        assert_eq!(i, gridagg_group::VoteDistribution::Index);
    }
}
