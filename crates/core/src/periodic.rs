//! Periodic aggregation — the paper's §2 extension.
//!
//! "Our discussion considers only one run of the aggregation protocol,
//! but this can be extended to one which periodically calculate\[s\] the
//! global aggregate." [`run_periodic`] does exactly that: a sequence of
//! *epochs*, each a fresh one-shot Hierarchical Gossiping run over the
//! members' current votes, with votes evolving between epochs. The
//! result is a tracking series — how well the group-wide estimate
//! follows a drifting global quantity (e.g. a slowly heating wing).
//!
//! Crashed members stay crashed across epochs (the §7 no-recovery
//! model); each epoch's hierarchy is re-derived from the *surviving*
//! population estimate, exercising the approximate-`N` tolerance.

use gridagg_aggregate::wire::WireAggregate;
use gridagg_group::failure::{FailureModel, FailureProcess};
use gridagg_group::view::View;
use gridagg_group::MemberId;
use gridagg_hierarchy::{FairHashPlacement, Hierarchy};
use gridagg_simnet::network::SimNetwork;
use gridagg_simnet::rng::DetRng;

use crate::config::ExperimentConfig;
use crate::engine::Simulation;
use crate::hiergossip::HierGossip;
use crate::metrics::RunReport;
use crate::scope::ScopeIndex;

/// How member votes evolve between epochs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VoteProcess {
    /// Votes stay fixed (re-evaluation of a static quantity).
    Fixed,
    /// Independent Gaussian random walk per member with the given step
    /// standard deviation.
    RandomWalk {
        /// Per-epoch step standard deviation.
        sigma: f64,
    },
    /// Common additive drift plus individual Gaussian noise — models a
    /// global trend (the wing heating up) with sensor-local variation.
    Drift {
        /// Per-epoch additive trend applied to every vote.
        rate: f64,
        /// Per-epoch individual noise standard deviation.
        noise: f64,
    },
}

impl VoteProcess {
    /// Evolve one vote by one epoch.
    pub fn step(&self, vote: f64, rng: &mut DetRng) -> f64 {
        let gaussian = |rng: &mut DetRng, sigma: f64| {
            let u1 = rng.unit().max(1e-12);
            let u2 = rng.unit();
            sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        match *self {
            VoteProcess::Fixed => vote,
            VoteProcess::RandomWalk { sigma } => vote + gaussian(rng, sigma),
            VoteProcess::Drift { rate, noise } => vote + rate + gaussian(rng, noise),
        }
    }
}

/// One epoch's outcome in a periodic run.
#[derive(Debug, Clone)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// True aggregate over the votes of *surviving* members this epoch.
    pub true_value: f64,
    /// The one-shot run report for this epoch.
    pub report: RunReport,
}

impl EpochReport {
    /// Median completed estimate for the epoch (`NaN` if nobody
    /// completed).
    pub fn median_estimate(&self) -> f64 {
        let mut values: Vec<f64> = self
            .report
            .outcomes
            .iter()
            .filter_map(|o| match o {
                crate::metrics::MemberOutcome::Completed { value, .. } => Some(*value),
                _ => None,
            })
            .collect();
        if values.is_empty() {
            return f64::NAN;
        }
        values.sort_by(f64::total_cmp);
        let mid = values.len() / 2;
        if values.len().is_multiple_of(2) {
            (values[mid - 1] + values[mid]) / 2.0
        } else {
            values[mid]
        }
    }

    /// Absolute tracking error of the median estimate.
    pub fn tracking_error(&self) -> f64 {
        (self.median_estimate() - self.true_value).abs()
    }
}

/// How a periodic run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeriodicTermination {
    /// All requested epochs ran.
    Completed,
    /// The surviving population fell below 2 before `epoch` could run;
    /// the outcome carries fewer epochs than requested.
    GroupCollapsed {
        /// The epoch that could not run.
        epoch: usize,
        /// Survivors remaining at that point (0 or 1).
        survivors: usize,
    },
}

/// The outcome of a periodic run: the per-epoch reports plus how the
/// run ended. A run that outlives its group is truncated — check
/// [`PeriodicOutcome::termination`] rather than inferring it from
/// `epochs.len()`.
#[derive(Debug, Clone)]
pub struct PeriodicOutcome {
    /// One report per completed epoch (possibly fewer than requested).
    pub epochs: Vec<EpochReport>,
    /// Why the run stopped.
    pub termination: PeriodicTermination,
}

impl PeriodicOutcome {
    /// Whether the group collapsed before the requested epoch count.
    pub fn collapsed(&self) -> bool {
        matches!(self.termination, PeriodicTermination::GroupCollapsed { .. })
    }
}

/// Run `epochs` consecutive one-shot aggregations while votes evolve
/// according to `process` and members crash (without recovery) at the
/// configured `pf` *between* epochs as well as during them.
///
/// If crashes reduce the surviving population below 2, the run stops
/// early and the returned [`PeriodicOutcome::termination`] says so.
///
/// # Panics
///
/// Panics if `cfg` fails validation or `epochs == 0`.
pub fn run_periodic<A: WireAggregate>(
    cfg: &ExperimentConfig,
    process: VoteProcess,
    epochs: usize,
    seed: u64,
) -> PeriodicOutcome {
    cfg.validate().expect("invalid experiment config");
    assert!(epochs > 0, "need at least one epoch");

    let mut vote_rng = DetRng::seeded(seed).fork(0x7065_7269); // "peri"
    let base_group = crate::runner::build_group_for(cfg, seed);
    let mut votes: Vec<f64> = base_group.votes();
    let mut alive: Vec<bool> = vec![true; cfg.n];
    let mut out = Vec::with_capacity(epochs);
    let mut termination = PeriodicTermination::Completed;

    for epoch in 0..epochs {
        // evolve votes
        if epoch > 0 {
            for v in votes.iter_mut() {
                *v = process.step(*v, &mut vote_rng);
            }
        }

        let survivors: Vec<usize> = (0..cfg.n).filter(|&i| alive[i]).collect();
        if survivors.len() < 2 {
            // group effectively dead — surface it instead of silently
            // returning fewer epochs than requested
            termination = PeriodicTermination::GroupCollapsed {
                epoch,
                survivors: survivors.len(),
            };
            break;
        }

        // hierarchy re-derived from the surviving population estimate
        let hierarchy = Hierarchy::for_group(cfg.k, survivors.len().max(2)).expect("validated k");
        let placement = FairHashPlacement::new(hierarchy, seed ^ (epoch as u64) << 8);

        // ground truth over survivors
        let mut truth_acc: Option<A> = None;
        for &i in &survivors {
            let v = A::from_vote(votes[i]);
            match &mut truth_acc {
                None => truth_acc = Some(v),
                Some(acc) => acc.merge(&v),
            }
        }
        let true_value = truth_acc
            .as_ref()
            .map_or(f64::NAN, gridagg_aggregate::Aggregate::summary);

        // NOTE: protocols are indexed densely by the engine, so build a
        // dense sub-simulation over survivors only — the epoch's single
        // scope index.
        let epoch_seed = seed.wrapping_add(1 + epoch as u64);
        let dense_index = {
            // reindex survivors densely: survivor j gets dense id j
            let dense_view = View::complete(survivors.len());
            let dense_placement = DensePlacement {
                hierarchy,
                inner: placement,
                survivors: survivors.clone(),
            };
            ScopeIndex::build(&dense_view, &dense_placement)
        };
        let protocols: Vec<HierGossip<A>> = survivors
            .iter()
            .enumerate()
            .map(|(dense, &orig)| {
                HierGossip::new(
                    MemberId(dense as u32),
                    votes[orig],
                    dense_index.clone(),
                    cfg.hier_config(),
                )
            })
            .collect();
        let net = SimNetwork::new(crate::runner::network_config_for(cfg, None), epoch_seed);
        let model = if cfg.pf > 0.0 {
            FailureModel::PerRound { pf: cfg.pf }
        } else {
            FailureModel::None
        };
        let failure = FailureProcess::new(model, survivors.len(), epoch_seed);
        let report = Simulation::new(
            net,
            protocols,
            failure,
            epoch_seed,
            true_value,
            cfg.max_rounds(),
        )
        .run();

        // members that crashed during the epoch stay crashed
        for (dense, outcome) in report.outcomes.iter().enumerate() {
            if matches!(outcome, crate::metrics::MemberOutcome::Crashed) {
                alive[survivors[dense]] = false;
            }
        }

        out.push(EpochReport {
            epoch,
            true_value,
            report,
        });
    }
    PeriodicOutcome {
        epochs: out,
        termination,
    }
}

/// Placement over densely reindexed survivors: dense id `j` maps to the
/// original member `survivors[j]`, placed by the epoch's fair hash.
/// Shared with the continuous service ([`crate::continuous`]), which
/// densifies the up-membership the same way.
#[derive(Debug)]
pub(crate) struct DensePlacement {
    pub(crate) hierarchy: Hierarchy,
    pub(crate) inner: FairHashPlacement,
    pub(crate) survivors: Vec<usize>,
}

impl gridagg_hierarchy::Placement for DensePlacement {
    fn place(&self, id: MemberId) -> gridagg_hierarchy::Addr {
        let orig = self.survivors[id.index()];
        self.inner.place(MemberId(orig as u32))
    }

    fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridagg_aggregate::Average;

    fn base(n: usize) -> ExperimentConfig {
        let mut c = ExperimentConfig::paper_defaults()
            .with_n(n)
            .with_ucastl(0.1);
        c.pf = 0.0;
        c
    }

    #[test]
    fn fixed_votes_track_exactly_on_reliable_network() {
        let mut cfg = base(64);
        cfg.ucastl = 0.0;
        let outcome = run_periodic::<Average>(&cfg, VoteProcess::Fixed, 3, 5);
        assert_eq!(outcome.termination, PeriodicTermination::Completed);
        let epochs = outcome.epochs;
        assert_eq!(epochs.len(), 3);
        let first = epochs[0].true_value;
        for e in &epochs {
            assert_eq!(e.true_value, first, "fixed votes keep the truth fixed");
            assert!(e.tracking_error() < 1.0, "error {}", e.tracking_error());
        }
    }

    #[test]
    fn drift_is_tracked() {
        let cfg = base(64);
        let epochs = run_periodic::<Average>(
            &cfg,
            VoteProcess::Drift {
                rate: 2.0,
                noise: 0.1,
            },
            5,
            9,
        )
        .epochs;
        assert_eq!(epochs.len(), 5);
        // the true value drifts upward ~2.0/epoch and the estimate follows
        for w in epochs.windows(2) {
            assert!(w[1].true_value > w[0].true_value + 1.0);
        }
        for e in &epochs {
            assert!(
                e.tracking_error() < 2.0,
                "epoch {} error {}",
                e.epoch,
                e.tracking_error()
            );
        }
    }

    #[test]
    fn random_walk_changes_truth() {
        let cfg = base(32);
        let epochs =
            run_periodic::<Average>(&cfg, VoteProcess::RandomWalk { sigma: 5.0 }, 4, 3).epochs;
        let truths: Vec<f64> = epochs.iter().map(|e| e.true_value).collect();
        let distinct = truths.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9);
        assert!(distinct, "random walk must move the truth: {truths:?}");
    }

    #[test]
    fn crashes_accumulate_across_epochs() {
        let mut cfg = base(128);
        cfg.pf = 0.01;
        let epochs = run_periodic::<Average>(&cfg, VoteProcess::Fixed, 4, 11).epochs;
        let populations: Vec<usize> = epochs.iter().map(|e| e.report.n).collect();
        assert!(
            populations.windows(2).all(|w| w[1] <= w[0]),
            "population must shrink monotonically: {populations:?}"
        );
        assert!(
            populations[populations.len() - 1] < populations[0],
            "some members should have crashed over 4 epochs at pf=0.01"
        );
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epochs_rejected() {
        let _ = run_periodic::<Average>(&base(16), VoteProcess::Fixed, 0, 1);
    }

    #[test]
    fn even_count_median_averages_middle_pair() {
        use crate::metrics::{MemberOutcome, RunReport};
        use gridagg_simnet::stats::NetworkStats;
        let completed = |value: f64| MemberOutcome::Completed {
            completeness: 1.0,
            value,
            at: 1,
        };
        // four completed members: median of {1, 3, 5, 7} is 4, not the
        // upper-middle 5 the old indexing returned
        let report = RunReport {
            n: 4,
            rounds: 2,
            outcomes: vec![
                completed(5.0),
                completed(1.0),
                completed(7.0),
                completed(3.0),
            ],
            true_value: 4.0,
            net: NetworkStats::default(),
            protocol_steps: 0,
        };
        let e = EpochReport {
            epoch: 0,
            true_value: 4.0,
            report,
        };
        assert_eq!(e.median_estimate(), 4.0);
        assert_eq!(e.tracking_error(), 0.0);

        // odd counts still return the middle element
        let report = RunReport {
            n: 3,
            rounds: 2,
            outcomes: vec![completed(5.0), completed(1.0), completed(7.0)],
            true_value: 5.0,
            net: NetworkStats::default(),
            protocol_steps: 0,
        };
        let e = EpochReport {
            epoch: 0,
            true_value: 5.0,
            report,
        };
        assert_eq!(e.median_estimate(), 5.0);
    }

    #[test]
    fn group_collapse_is_surfaced_not_silent() {
        // pf high enough that a 16-member group dies within a few
        // epochs; the truncation must be visible in the termination
        let mut cfg = base(16);
        cfg.pf = 0.35;
        let outcome = run_periodic::<Average>(&cfg, VoteProcess::Fixed, 12, 7);
        assert!(outcome.epochs.len() < 12, "group should have collapsed");
        assert!(outcome.collapsed());
        match outcome.termination {
            PeriodicTermination::GroupCollapsed { epoch, survivors } => {
                assert_eq!(epoch, outcome.epochs.len(), "collapse at first unrun epoch");
                assert!(survivors < 2);
            }
            PeriodicTermination::Completed => unreachable!("checked above"),
        }
    }
}
