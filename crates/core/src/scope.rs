//! Shared scope index: who is in which grid box / subtree.
//!
//! Every member of the Grid Box Hierarchy can compute every other
//! member's box address from its identifier (§6.1), so "the set of all
//! members in the same subtree of height i" is derivable locally. Doing
//! that derivation per gossip round would be wasteful in a simulation of
//! thousands of members, so [`ScopeIndex`] precomputes, once per run,
//! the members sorted by box index with per-box offsets. Because a
//! subtree prefix covers a *contiguous* range of box indices, every
//! phase scope is then a contiguous slice — O(1) random gossipee
//! selection, zero per-member memory.

use std::sync::Arc;

use gridagg_group::view::View;
use gridagg_group::MemberId;
use gridagg_hierarchy::{Addr, AddrInterner, Hierarchy, Placement};

/// Immutable, shareable index of the hierarchy population.
#[derive(Debug)]
pub struct ScopeIndex {
    hierarchy: Hierarchy,
    /// members sorted by (box index, member id)
    sorted: Vec<MemberId>,
    /// offsets into `sorted`, one per box, plus a final sentinel
    offsets: Vec<u32>,
    /// box address of each member, indexed by member id
    box_of: Vec<Addr>,
    /// dense ids for the fixed prefix universe (see `hierarchy::intern`)
    interner: AddrInterner,
    /// non-empty children per non-leaf prefix, indexed by interned id
    /// (leaf prefixes share one trailing empty slot)
    children: Vec<Vec<Addr>>,
}

impl ScopeIndex {
    /// Build the index for the members of `view` under `placement`.
    ///
    /// # Panics
    ///
    /// Panics if the view references a member id not representable in
    /// the dense tables (ids must be `< 2^32`).
    pub fn build(view: &View, placement: &dyn Placement) -> Arc<Self> {
        let hierarchy = *placement.hierarchy();
        let n_boxes = hierarchy.num_boxes() as usize;
        let max_id = view.members().iter().map(|m| m.index()).max().unwrap_or(0);
        let mut box_of = vec![hierarchy.box_at(0); max_id + 1];
        let mut counts = vec![0u32; n_boxes];
        for &m in view.members() {
            let b = placement.place(m);
            box_of[m.index()] = b;
            counts[b.index() as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n_boxes + 1);
        let mut acc = 0u32;
        for &c in &counts {
            offsets.push(acc);
            acc += c;
        }
        offsets.push(acc);
        // counting sort by box index; view members are already sorted by
        // id, so each box slice ends up sorted by id.
        let mut cursor = offsets[..n_boxes].to_vec();
        let mut sorted = vec![MemberId(0); view.len()];
        for &m in view.members() {
            let b = box_of[m.index()].index() as usize;
            sorted[cursor[b] as usize] = m;
            cursor[b] += 1;
        }
        let interner = AddrInterner::new(&hierarchy);
        let mut index = ScopeIndex {
            hierarchy,
            sorted,
            offsets,
            box_of,
            interner,
            children: Vec::new(),
        };
        // Precompute non-empty children for every non-leaf prefix (leaf
        // prefixes have no children; they all alias the final empty Vec
        // so `nonempty_children` stays total over the universe). The
        // first leaf id bounds the non-leaf prefix range.
        let first_leaf = index.interner.intern(&hierarchy.box_at(0)) as usize;
        let mut children = Vec::with_capacity(first_leaf + 1);
        for id in 0..first_leaf {
            let prefix = index.interner.resolve(id as u32);
            children.push(
                prefix
                    .children()
                    .filter(|c| !index.members_in(c).is_empty())
                    .collect(),
            );
        }
        children.push(Vec::new());
        index.children = children;
        Arc::new(index)
    }

    /// The hierarchy this index is built over.
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Number of indexed members.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The grid box of a member.
    ///
    /// # Panics
    ///
    /// Panics if the member was not in the indexed view.
    pub fn box_of(&self, id: MemberId) -> Addr {
        self.box_of[id.index()]
    }

    /// The members of the subtree named by `prefix`, as a contiguous
    /// slice sorted by (box, id).
    pub fn members_in(&self, prefix: &Addr) -> &[MemberId] {
        let span = self.hierarchy.depth() - prefix.len();
        let width = (self.hierarchy.k() as u64).pow(span as u32);
        let lo = prefix.index() * width;
        let hi = lo + width;
        &self.sorted[self.offsets[lo as usize] as usize..self.offsets[hi as usize] as usize]
    }

    /// Number of members in the subtree named by `prefix`.
    pub fn count_in(&self, prefix: &Addr) -> usize {
        self.members_in(prefix).len()
    }

    /// Position of `id` within [`ScopeIndex::members_in`] of `prefix`,
    /// or `None` if it is not there.
    pub fn position_in(&self, prefix: &Addr, id: MemberId) -> Option<usize> {
        let slice = self.members_in(prefix);
        // Each box slice is sorted by id, and boxes are ordered by index,
        // so (box index, id) is the sort key.
        let key = (self.box_of(id).index(), id);
        slice
            .binary_search_by(|&m| (self.box_of(m).index(), m).cmp(&key))
            .ok()
    }

    /// The dense id table for this hierarchy's prefix universe.
    pub fn interner(&self) -> &AddrInterner {
        &self.interner
    }

    /// The non-empty children of `prefix` (subtrees that actually have
    /// members — a box can be empty under a random hash). Precomputed
    /// once per run; leaf prefixes return the empty slice.
    pub fn nonempty_children(&self, prefix: &Addr) -> &[Addr] {
        let id = self.interner.intern(prefix) as usize;
        &self.children[id.min(self.children.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridagg_hierarchy::FairHashPlacement;

    fn index(n: usize, k: u8) -> Arc<ScopeIndex> {
        let h = Hierarchy::for_group(k, n).unwrap();
        let placement = FairHashPlacement::new(h, 42);
        ScopeIndex::build(&View::complete(n), &placement)
    }

    #[test]
    fn all_members_indexed_once() {
        let idx = index(200, 4);
        assert_eq!(idx.len(), 200);
        let root = Addr::root(4).unwrap();
        let all = idx.members_in(&root);
        assert_eq!(all.len(), 200);
        let mut ids: Vec<u32> = all.iter().map(|m| m.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200);
    }

    #[test]
    fn box_slices_match_box_of() {
        let idx = index(200, 4);
        let h = *idx.hierarchy();
        let mut total = 0;
        for b in 0..h.num_boxes() {
            let addr = h.box_at(b);
            let members = idx.members_in(&addr);
            total += members.len();
            for &m in members {
                assert_eq!(idx.box_of(m), addr);
            }
        }
        assert_eq!(total, 200);
    }

    #[test]
    fn prefix_slices_nest() {
        let idx = index(256, 4);
        let h = *idx.hierarchy();
        let root = Addr::root(4).unwrap();
        for child in root.children() {
            let child_count: usize = child.children().map(|g| idx.count_in(&g)).sum();
            // child of root covers its own children exactly (recursively
            // when depth > 2 this checks one level)
            if h.depth() >= 2 {
                assert_eq!(idx.count_in(&child), child_count);
            }
        }
    }

    #[test]
    fn position_in_finds_every_member() {
        let idx = index(100, 4);
        let root = Addr::root(4).unwrap();
        let slice = idx.members_in(&root);
        for (pos, &m) in slice.iter().enumerate() {
            assert_eq!(idx.position_in(&root, m), Some(pos));
            // also within its own box
            let b = idx.box_of(m);
            assert!(idx.position_in(&b, m).is_some());
        }
    }

    #[test]
    fn position_in_absent_member() {
        let idx = index(10, 2);
        let h = *idx.hierarchy();
        // find a box that does not contain member 0
        let b0 = idx.box_of(MemberId(0));
        for b in 0..h.num_boxes() {
            let addr = h.box_at(b);
            if addr != b0 {
                assert_eq!(idx.position_in(&addr, MemberId(0)), None);
            }
        }
    }

    #[test]
    fn nonempty_children_skips_empty_boxes() {
        // tiny group, many boxes → some empty
        let h = Hierarchy::with_depth(4, 3).unwrap(); // 64 boxes
        let placement = FairHashPlacement::new(h, 1);
        let idx = ScopeIndex::build(&View::complete(10), &placement);
        let root = Addr::root(4).unwrap();
        let kids = idx.nonempty_children(&root);
        assert!(!kids.is_empty());
        for k in kids {
            assert!(idx.count_in(k) > 0);
        }
    }

    #[test]
    fn partial_view_indexes_subset() {
        let h = Hierarchy::for_group(4, 100).unwrap();
        let placement = FairHashPlacement::new(h, 42);
        let view = View::from_members((0..50u32).map(MemberId).collect());
        let idx = ScopeIndex::build(&view, &placement);
        assert_eq!(idx.len(), 50);
    }
}
