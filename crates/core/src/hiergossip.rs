//! The **Hierarchical Gossiping** protocol (§6.3) — the paper's primary
//! contribution.
//!
//! Each member executes `log_K N` phases over the Grid Box Hierarchy:
//!
//! * **Phase 1** — gossip *individual votes* within the member's own grid
//!   box: each round, pick `M` random gossipees from the box and send one
//!   randomly selected known vote (with its owner's identifier). After
//!   the phase, apply the aggregate function to the known votes.
//! * **Phase `i` (≥ 2)** — gossip *child-subtree aggregates* within the
//!   member's height-`i` subtree: each round, pick `M` random gossipees
//!   from the subtree and send one randomly selected known aggregate of
//!   the `K` height-`(i−1)` child subtrees. A member learns a sibling
//!   subtree's aggregate when it first receives it.
//! * **Bump-up (step 2b)** — a member moves to phase `i+1` as soon as it
//!   has all `K` child aggregates, or after the per-phase timeout
//!   (`⌈C·log_M N⌉` rounds in the paper's simulations) — so members
//!   progress through phases *asynchronously*.
//! * **Final phase** — entering phase `log_K N + 1`, the member holds an
//!   estimate of the global aggregate and terminates.
//!
//! No leader election, no failure detection, no retransmission state:
//! robustness comes purely from gossip redundancy.
//!
//! Two orthogonal refinements are configurable (see [`Exchange`] and
//! DESIGN.md §6): whether a gossip message carries one value or the
//! member's whole (constant-size) known set for the phase, and the
//! reactive reply that makes a contact a two-way exchange. Partial
//! membership views ([`HierGossip::with_view`]) implement the §2
//! relaxation.

use std::sync::Arc;

use gridagg_aggregate::{Aggregate, Tagged};
use gridagg_group::MemberId;
use gridagg_hierarchy::{Addr, AddrSlab};
use gridagg_simnet::bitset::DenseBitSet;
use gridagg_simnet::Round;

use crate::message::Payload;
use crate::protocol::{AggregationProtocol, Ctx, Outbox};
use crate::scope::ScopeIndex;
use crate::trace::TraceEvent;

/// Tunable parameters of Hierarchical Gossiping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HierGossipConfig {
    /// Gossip fanout `M`: gossipees contacted per round (paper default 2).
    pub fanout: u32,
    /// Phase-length factor `C`: a phase lasts `⌈C·log_M N⌉` rounds
    /// (paper default 1.0).
    pub round_factor: f64,
    /// Explicit rounds-per-phase override (Figure 8 sweeps this
    /// directly); `None` derives it from `C`, `M`, `N`.
    pub rounds_per_phase: Option<u32>,
    /// Step 2(b): bump up early once all child aggregates are known
    /// (paper simulations enable this; the analysis disables it).
    pub early_bump: bool,
    /// Allow phase 1 to end early once votes from every box member are
    /// known (requires a complete view; off by default, matching the
    /// paper's fixed-length first phase).
    pub phase1_early_exit: bool,
    /// Record a [`PhaseTrace`] entry at each phase end. Instrumentation
    /// only — recording never draws randomness or sends messages, so
    /// turning it off changes no protocol behavior — but the entries
    /// cost O(phases) heap per member, which the million-member bench
    /// cells cannot afford.
    pub phase_trace: bool,
    /// Gossip-exchange mode: what one message to a gossipee carries.
    pub exchange: Exchange,
}

/// What a gossip message carries.
///
/// The protocol description (§6.3) sends "one randomly selected known
/// vote" per gossipee ([`Exchange::One`]). The simulation section's
/// round efficiency ("attempts to *gossip with* M randomly selected
/// members"; incompleteness of 1e-4 at 5 rounds/phase in Figure 8) is
/// only reachable when an exchange shares the member's whole known set
/// for the current phase — which is still constant-size in `N`: at most
/// `K` child aggregates, or the votes of one grid box (expected `K`).
/// [`Exchange::Batch`] is therefore the default; the `ablation_bump`
/// bench quantifies the difference. See DESIGN.md for the full
/// discussion of this interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Exchange {
    /// One randomly selected known value per message (paper-literal).
    One,
    /// The full known set for the current phase per message (paper-
    /// calibrated; still O(K) = O(1) bytes).
    #[default]
    Batch,
}

impl Default for HierGossipConfig {
    fn default() -> Self {
        HierGossipConfig {
            fanout: 2,
            round_factor: 1.0,
            rounds_per_phase: None,
            early_bump: true,
            phase1_early_exit: false,
            phase_trace: true,
            exchange: Exchange::Batch,
        }
    }
}

impl HierGossipConfig {
    /// Rounds per phase for a group of `n`: the override if set, else
    /// `⌈C·log_M N⌉` (base `max(M, 2)` so `M = 1` stays finite).
    pub fn rounds_per_phase(&self, n: usize) -> u32 {
        if let Some(r) = self.rounds_per_phase {
            return r.max(1);
        }
        let base = (self.fanout.max(2)) as f64;
        let r = self.round_factor * (n.max(2) as f64).ln() / base.ln();
        (r.ceil() as u32).max(1)
    }
}

/// A lazily built, `Arc`-shared batch of child-subtree aggregates —
/// the body of a [`Payload::AggBatch`].
type SharedAggBatch<A> = Arc<Vec<(Addr, Arc<Tagged<A>>)>>;

/// One member's Hierarchical Gossiping state machine.
#[derive(Debug)]
pub struct HierGossip<A> {
    me: MemberId,
    n: usize,
    index: Arc<ScopeIndex>,
    cfg: HierGossipConfig,
    rounds_per_phase: u32,
    phases: usize,
    my_box: Addr,

    /// Known votes of members in my grid box: parallel vec for
    /// deterministic random selection (insertion order is part of the
    /// protocol's RNG-visible behavior) + a fixed-size bitset for cheap
    /// dedup, keyed by the member's dense position within the box slice
    /// (see [`ScopeIndex::position_in`]) — O(box size / 8) bytes instead
    /// of a sorted-vec set of raw ids.
    known_votes: Vec<(MemberId, f64)>,
    have_vote: DenseBitSet,

    /// Known subtree aggregates, keyed by subtree prefix (first
    /// reception wins; own computations overwrite own-scope keys).
    /// Values are `Arc`-shared with in-flight payloads: adopting a
    /// received aggregate or staging one for gossip never copies the
    /// contributor bitmap. Stored in a dense chain-local slab — every
    /// relevant prefix is a child of one of this member's ancestors (or
    /// the root), so lookups are O(1) slot arithmetic instead of a
    /// B-tree walk on the per-round hot path.
    aggs: AddrSlab<Arc<Tagged<A>>>,

    /// Current phase (1-based); `phases + 1` means terminated.
    phase: usize,
    rounds_in_phase: u32,

    /// Partial membership view: when set, gossipees are drawn only from
    /// `view ∩ scope` ("this can be relaxed in our final hierarchical
    /// gossiping solution", §2). `None` = complete view.
    my_view: Option<Vec<MemberId>>,

    /// Cached for the current phase:
    scope: Addr,
    my_pos_in_scope: Option<usize>,
    /// gossipee candidates this phase: `view ∩ scope` when a partial
    /// view is set (empty and unused otherwise)
    view_scope: Vec<MemberId>,
    children: Vec<Addr>,

    done_at: Option<Round>,
    estimate: Option<Arc<Tagged<A>>>,

    /// Arc-shared gossip bodies, built lazily and reused across sends
    /// and rounds until the underlying state changes (new vote, new
    /// aggregate, or phase transition). Fanning out to `M` gossipees is
    /// then `M` reference-count bumps instead of `M` deep clones.
    vote_batch: Option<Arc<Vec<(MemberId, f64)>>>,
    agg_batch: Option<SharedAggBatch<A>>,
    /// Scratch reused by gossipee sampling (indices) and One-mode
    /// candidate selection (known child subtrees).
    scratch_picks: Vec<usize>,
    scratch_children: Vec<Addr>,

    /// Per-phase completion trace: `(phase, components_known,
    /// components_expected, votes_covered)` recorded at each phase end.
    /// Cheap instrumentation used by diagnostics and tests.
    pub trace: Vec<PhaseTrace>,
}

/// One entry of [`HierGossip::trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTrace {
    /// The phase that just finished (1-based).
    pub phase: usize,
    /// Components (votes or child aggregates) known at phase end.
    pub known: usize,
    /// Components expected (box size or non-empty child count).
    pub expected: usize,
    /// Votes covered by the composed aggregate.
    pub votes: usize,
    /// Round at which the phase finished.
    pub at: Round,
}

impl<A: Aggregate> HierGossip<A> {
    /// Create the protocol instance for member `me` with vote `vote`.
    pub fn new(me: MemberId, vote: f64, index: Arc<ScopeIndex>, cfg: HierGossipConfig) -> Self {
        let n = index.len();
        let hierarchy = *index.hierarchy();
        let my_box = index.box_of(me);
        let my_pos = index.position_in(&my_box, me);
        let mut have_vote = DenseBitSet::with_capacity(index.count_in(&my_box));
        if let Some(pos) = my_pos {
            have_vote.insert(pos);
        }
        HierGossip {
            me,
            n,
            index,
            cfg,
            rounds_per_phase: cfg.rounds_per_phase(n),
            phases: hierarchy.phases(),
            my_box,
            known_votes: vec![(me, vote)],
            have_vote,
            aggs: AddrSlab::new(my_box),
            my_view: None,
            phase: 1,
            rounds_in_phase: 0,
            scope: my_box,
            my_pos_in_scope: my_pos,
            view_scope: Vec::new(),
            children: Vec::new(),
            done_at: None,
            estimate: None,
            vote_batch: None,
            agg_batch: None,
            scratch_picks: Vec::new(),
            scratch_children: Vec::new(),
            trace: Vec::new(),
        }
    }

    /// Restrict gossipee selection to a partial membership view (sorted
    /// and deduplicated internally). The member still *addresses* the
    /// full hierarchy — box addresses are computable from identifiers —
    /// but only contacts members it knows about, which is the paper's
    /// §2 view relaxation.
    pub fn with_view(mut self, mut view: Vec<MemberId>) -> Self {
        view.sort_unstable();
        view.dedup();
        self.my_view = Some(view);
        self.refresh_view_scope();
        self
    }

    /// Recompute `view ∩ scope` after a phase change.
    fn refresh_view_scope(&mut self) {
        let Some(view) = &self.my_view else {
            self.view_scope.clear();
            return;
        };
        let me = self.me;
        let scope = self.scope;
        self.view_scope = view
            .iter()
            .copied()
            .filter(|&m| m != me && scope.contains(&self.index.box_of(m)))
            .collect();
    }

    /// The current phase (for tests and instrumentation).
    pub fn phase(&self) -> usize {
        self.phase
    }

    /// The per-phase round budget in effect.
    pub fn rounds_per_phase(&self) -> u32 {
        self.rounds_per_phase
    }

    fn hierarchy(&self) -> gridagg_hierarchy::Hierarchy {
        *self.index.hierarchy()
    }

    /// Whether every expected component of the current phase is known.
    fn phase_complete(&self) -> bool {
        if self.phase == 1 {
            self.known_votes.len() >= self.index.count_in(&self.my_box)
        } else {
            self.children.iter().all(|c| self.aggs.contains_key(c))
        }
    }

    /// Votes covered by this member's current best aggregate: what it
    /// would report if forced to compose and terminate right now.
    fn current_coverage(&self) -> u64 {
        if let Some(est) = &self.estimate {
            return est.vote_count() as u64;
        }
        if self.phase == 1 {
            self.known_votes.len() as u64
        } else {
            // children are disjoint subtrees, so the sum is exact
            self.children
                .iter()
                .filter_map(|c| self.aggs.get(c))
                .map(|a| a.vote_count() as u64)
                .sum()
        }
    }

    /// The shared phase-1 gossip body: every known vote of my box.
    /// Rebuilt only after [`Self::learn_vote`] admits a new vote.
    fn vote_batch(&mut self) -> Arc<Vec<(MemberId, f64)>> {
        let known = &self.known_votes;
        self.vote_batch
            .get_or_insert_with(|| Arc::new(known.clone()))
            .clone()
    }

    /// The shared phase-≥2 gossip body: the known child aggregates of
    /// the current scope, in child order. Rebuilt only after a state
    /// change ([`Self::learn_agg`] or a phase transition).
    fn agg_batch(&mut self) -> SharedAggBatch<A> {
        let children = &self.children;
        let aggs = &self.aggs;
        self.agg_batch
            .get_or_insert_with(|| {
                Arc::new(
                    children
                        .iter()
                        .filter_map(|c| aggs.get(c).map(|a| (*c, a.clone())))
                        .collect(),
                )
            })
            .clone()
    }

    /// Close out the current phase: compose this scope's aggregate from
    /// the known components and advance.
    fn finish_phase(&mut self, round: Round) {
        // `for_scale` constructors: above the exact-tracking threshold
        // the contributor sets are counted, which is exact here because
        // `have_vote` dedups phase-1 votes and child subtrees are
        // disjoint by construction (see the voteset module docs).
        let composed = if self.phase == 1 {
            // deterministic fold order: by member id
            let mut votes = self.known_votes.clone();
            votes.sort_unstable_by_key(|(m, _)| *m);
            let mut acc = Tagged::<A>::empty_for_scale(self.n);
            for (m, v) in votes {
                acc.try_merge(&Tagged::from_vote_for_scale(m.index(), v, self.n))
                    .expect("votes are unique per member");
            }
            acc
        } else {
            let mut acc = Tagged::<A>::empty_for_scale(self.n);
            for child in &self.children {
                if let Some(a) = self.aggs.get(child) {
                    acc.try_merge(a)
                        .expect("child subtrees are disjoint by construction");
                }
            }
            acc
        };
        if self.cfg.phase_trace {
            let (known, expected) = if self.phase == 1 {
                (self.known_votes.len(), self.index.count_in(&self.my_box))
            } else {
                (
                    self.children
                        .iter()
                        .filter(|c| self.aggs.contains_key(c))
                        .count(),
                    self.children.len(),
                )
            };
            self.trace.push(PhaseTrace {
                phase: self.phase,
                known,
                expected,
                votes: composed.vote_count(),
                at: round,
            });
        }

        // Addr consistency: everything the composed aggregate claims to
        // cover must actually live inside the scope it is keyed under.
        // (Counted contributor sets carry no identity to check; their
        // disjointness rests on the structural dedup above.)
        #[cfg(feature = "strict-invariants")]
        if composed.votes().is_exact() {
            let scope = self.scope;
            let index = &self.index;
            assert!(
                composed
                    .votes()
                    .iter()
                    .all(|m| scope.contains(&index.box_of(MemberId(m as u32)))),
                "strict-invariants: phase-{} aggregate for {scope} covers a member \
                 outside its scope",
                self.phase
            );
        }

        // "M_j already knows about the aggregate value for its own
        // height-(i−1) subtree immediately after phase (i−1) concludes."
        // When a more complete evaluation of the same subtree was already
        // received from a faster peer, keep that one (see `upgrade`).
        Self::upgrade(&mut self.aggs, self.scope, Arc::new(composed));

        // the scope (and possibly `aggs`) just changed: both cached
        // gossip bodies are stale
        self.vote_batch = None;
        self.agg_batch = None;

        self.phase += 1;
        self.rounds_in_phase = 0;
        // Phase monotonicity: phases only ever advance by one and never
        // run past the terminal `phases + 1` state.
        gridagg_aggregate::strict_assert!(
            self.phase <= self.phases + 1,
            "strict-invariants: phase {} advanced past termination ({} phases)",
            self.phase,
            self.phases
        );
        if self.phase > self.phases {
            let root = self.scope.prefix(0);
            self.estimate = self.aggs.get(&root).cloned();
            self.done_at = Some(round);
            return;
        }
        let hierarchy = self.hierarchy();
        self.scope = hierarchy.scope(&self.my_box, self.phase);
        self.my_pos_in_scope = self.index.position_in(&self.scope, self.me);
        self.children.clear();
        self.children
            .extend_from_slice(self.index.nonempty_children(&self.scope));
        self.refresh_view_scope();
    }

    /// One gossip emission: pick `M` gossipees in the current scope and
    /// send them the current-phase values (one random value or the full
    /// known set, per [`Exchange`]).
    // lint:hot — every member gossips every round; batches and pick
    // buffers are cached scratch, not rebuilt here.
    fn gossip(&mut self, ctx: &mut Ctx<'_>, out: &mut Outbox<A>) {
        // The payload is built before gossipees are sampled (the RNG
        // draw order is part of the protocol's deterministic behavior).
        let payload = match (self.phase == 1, self.cfg.exchange) {
            (true, Exchange::One) => {
                let &(member, value) = ctx
                    .rng
                    .choose(&self.known_votes)
                    .expect("own vote always known");
                Payload::Vote { member, value }
            }
            (true, Exchange::Batch) => Payload::VoteBatch {
                votes: self.vote_batch(),
                reply: false,
            },
            (false, Exchange::One) => {
                self.scratch_children.clear();
                self.scratch_children.extend(
                    self.children
                        .iter()
                        .filter(|c| self.aggs.contains_key(c))
                        .copied(),
                );
                match ctx.rng.choose(&self.scratch_children) {
                    Some(&subtree) => Payload::Agg {
                        subtree,
                        agg: self
                            .aggs
                            .get(&subtree)
                            .expect("candidate filtered by presence")
                            .clone(), // lint:allow(D009) Arc refcount bump, no heap allocation
                    },
                    None => return, // cannot happen: own child present
                }
            }
            (false, Exchange::Batch) => Payload::AggBatch {
                aggs: self.agg_batch(),
                reply: false,
            },
        };
        if self.my_view.is_some() {
            // partial view: gossip only to known members of the scope
            if self.view_scope.is_empty() {
                return;
            }
            ctx.rng.sample_distinct_into(
                self.view_scope.len(),
                None,
                self.cfg.fanout as usize,
                &mut self.scratch_picks,
            );
            let view_scope = &self.view_scope;
            out.send_many(self.scratch_picks.iter().map(|&p| view_scope[p]), payload);
            return;
        }
        let scope_members = self.index.members_in(&self.scope);
        if scope_members.len() <= 1 {
            return;
        }
        ctx.rng.sample_distinct_into(
            scope_members.len(),
            self.my_pos_in_scope,
            self.cfg.fanout as usize,
            &mut self.scratch_picks,
        );
        out.send_many(
            self.scratch_picks.iter().map(|&p| scope_members[p]),
            payload,
        );
    }

    /// Store an aggregate for `key`, keeping whichever version covers
    /// more votes when two evaluations of the same subtree collide.
    ///
    /// Different members legitimately compute different vote subsets for
    /// the same subtree (their phases saw different gossip); all versions
    /// cover only that subtree's members, so *replacing* (never merging)
    /// preserves the no-double-counting invariant while letting complete
    /// evaluations displace partial ones as they spread — the same
    /// convergence rule Astrolabe-style systems use.
    fn upgrade(aggs: &mut AddrSlab<Arc<Tagged<A>>>, key: Addr, agg: Arc<Tagged<A>>) {
        match aggs.get_mut(&key) {
            Some(existing) => {
                if agg.vote_count() > existing.vote_count() {
                    *existing = agg;
                }
            }
            None => {
                aggs.insert(key, agg);
            }
        }
    }

    /// Record a received vote. Only votes of the member's own grid box
    /// belong in its phase-1 aggregate (gossip never crosses boxes in
    /// phase 1, but guard the invariant anyway — `position_in` answers
    /// `None` for members of other boxes). Returns whether the vote was
    /// new.
    fn learn_vote(&mut self, member: MemberId, value: f64) -> bool {
        if let Some(pos) = self.index.position_in(&self.my_box, member) {
            if self.have_vote.insert(pos) {
                self.known_votes.push((member, value));
                self.vote_batch = None; // cached gossip body is stale
                return true;
            }
        }
        false
    }

    /// Record a received subtree aggregate if it is relevant. Returns
    /// whether the stored state changed (new subtree, or a more complete
    /// evaluation displacing a partial one). Adopting a received
    /// aggregate is a reference-count bump — the `Arc` is shared with
    /// the payload, never deep-copied.
    fn learn_agg(&mut self, subtree: Addr, agg: &Arc<Tagged<A>>) -> bool {
        if !self.relevant(&subtree) {
            return false;
        }
        // Addr consistency: a received subtree aggregate must only cover
        // members of that subtree, or adopting it would double-count
        // once sibling aggregates are composed. (Counted sets carry no
        // identity to check.)
        #[cfg(feature = "strict-invariants")]
        if agg.votes().is_exact() {
            let index = &self.index;
            assert!(
                agg.votes()
                    .iter()
                    .all(|m| subtree.contains(&index.box_of(MemberId(m as u32)))),
                "strict-invariants: received aggregate for {subtree} covers a member \
                 outside that subtree"
            );
        }
        let changed = match self.aggs.get_mut(&subtree) {
            None => {
                self.aggs.insert(subtree, agg.clone());
                true
            }
            Some(existing) => {
                // same replace-if-more-complete rule as `upgrade`; the
                // vote count changes exactly when the entry does
                if agg.vote_count() > existing.vote_count() {
                    *existing = agg.clone();
                    true
                } else {
                    false
                }
            }
        };
        if changed {
            self.agg_batch = None; // cached gossip body is stale
        }
        changed
    }

    /// Answer a push at the given level (`None` = phase-1 votes,
    /// `Some(len)` = aggregates with prefixes of length `len`) if we
    /// know strictly more values there than the push carried.
    fn reply_at_level(
        &mut self,
        from: MemberId,
        level: Option<usize>,
        carried: usize,
        out: &mut Outbox<A>,
    ) {
        match level {
            None => {
                // phase-1 votes: only meaningful within the same box
                if self.index.box_of(from) != self.my_box {
                    return;
                }
                if self.known_votes.len() > carried {
                    let votes = self.vote_batch();
                    out.send(from, Payload::VoteBatch { votes, reply: true });
                }
            }
            Some(len) => {
                if len == 0 || len > self.index.hierarchy().depth() {
                    return;
                }
                let scope = self.my_box.prefix(len - 1);
                // the sender gossips within its own scope at this level;
                // answer only if we share it
                if !scope.contains(&self.index.box_of(from)) {
                    return;
                }
                // The common case — the push is at our current level —
                // reuses the cached gossip body: `aggs` only ever holds
                // children with members, so filtering `children()` by
                // presence equals the cache built over
                // `nonempty_children` (same child order).
                let known = if scope == self.scope {
                    self.agg_batch()
                } else {
                    Arc::new(
                        scope
                            .children()
                            .filter_map(|c| self.aggs.get(&c).map(|a| (c, a.clone())))
                            .collect(),
                    )
                };
                if known.len() > carried {
                    out.send(
                        from,
                        Payload::AggBatch {
                            aggs: known,
                            reply: true,
                        },
                    );
                }
            }
        }
    }

    /// Whether an incoming aggregate for `prefix` is relevant to this
    /// member: it must name a child of one of this member's phase scopes
    /// — exactly the chain-local slab's slot condition, minus the root
    /// (the root aggregate is never gossiped).
    fn relevant(&self, prefix: &Addr) -> bool {
        !prefix.is_empty() && self.aggs.slot(prefix).is_some()
    }

    /// Narrate a phase transition that just happened: the phase entered
    /// (unless the protocol terminated — the engine emits `Terminate`)
    /// and the coverage carried into it. No-op on untraced runs.
    fn emit_phase_transition(&self, ctx: &mut Ctx<'_>) {
        if !ctx.is_traced() {
            return;
        }
        let me = self.me;
        let round = ctx.round;
        let votes = self.current_coverage();
        if self.done_at.is_none() {
            let phase = self.phase;
            ctx.emit(|| TraceEvent::PhaseEnter {
                member: me,
                round,
                phase,
            });
        }
        ctx.emit(|| TraceEvent::Coverage {
            member: me,
            round,
            votes,
        });
    }
}

impl<A: Aggregate> AggregationProtocol<A> for HierGossip<A> {
    // lint:hot — the per-round protocol step for every member.
    fn on_round(&mut self, ctx: &mut Ctx<'_>, out: &mut Outbox<A>) {
        if self.done_at.is_some() {
            return;
        }
        // Step 2(b): bump up as soon as the phase is complete.
        let early_ok = if self.phase == 1 {
            self.cfg.phase1_early_exit
        } else {
            self.cfg.early_bump
        };
        while self.done_at.is_none() && early_ok && self.phase_complete() {
            let me = self.me;
            let round = ctx.round;
            let leaving = self.phase;
            ctx.emit(|| TraceEvent::EarlyBump {
                member: me,
                round,
                phase: leaving,
            });
            self.finish_phase(ctx.round);
            self.emit_phase_transition(ctx);
            if !self.cfg.early_bump {
                break;
            }
        }
        if self.done_at.is_some() {
            return;
        }
        self.gossip(ctx, out);
        self.rounds_in_phase += 1;
        if self.rounds_in_phase >= self.rounds_per_phase {
            self.finish_phase(ctx.round);
            self.emit_phase_transition(ctx);
        }
    }

    fn on_message(
        &mut self,
        from: MemberId,
        payload: Payload<A>,
        ctx: &mut Ctx<'_>,
        out: &mut Outbox<A>,
    ) {
        // Is this a push we may answer? (Replies are never answered, so
        // exchanges always terminate.) Record the level and how many
        // values it carried before consuming the payload.
        let answer = match &payload {
            Payload::VoteBatch {
                votes,
                reply: false,
            } => Some((None, votes.len())),
            Payload::AggBatch { aggs, reply: false } => {
                aggs.first().map(|(a, _)| (Some(a.len()), aggs.len()))
            }
            // Replies and the non-batch shapes never get an answer.
            Payload::VoteBatch { reply: true, .. }
            | Payload::AggBatch { reply: true, .. }
            | Payload::Vote { .. }
            | Payload::Agg { .. }
            | Payload::Final { .. }
            | Payload::Flow { .. } => None,
        };

        // Learn the content. Terminated members keep serving replies
        // below but no longer update their (final) state.
        if self.done_at.is_none() {
            let changed = match &payload {
                Payload::Vote { member, value } => self.learn_vote(*member, *value),
                Payload::VoteBatch { votes, .. } => {
                    let mut any = false;
                    for &(member, value) in votes.iter() {
                        any |= self.learn_vote(member, value);
                    }
                    any
                }
                Payload::Agg { subtree, agg } => self.learn_agg(*subtree, agg),
                Payload::AggBatch { aggs, .. } => {
                    let mut any = false;
                    for (subtree, agg) in aggs.iter() {
                        any |= self.learn_agg(*subtree, agg);
                    }
                    any
                }
                Payload::Final { .. } | Payload::Flow { .. } => {
                    // Hierarchical gossip never emits Final, and Flow
                    // belongs to the Flow-Updating baseline; ignore.
                    false
                }
            };
            if changed && ctx.is_traced() {
                let me = self.me;
                let round = ctx.round;
                let votes = self.current_coverage();
                ctx.emit(|| TraceEvent::Coverage {
                    member: me,
                    round,
                    votes,
                });
            }
        }

        // "Gossiping with" is an exchange: if we know strictly more at
        // the push's level than it carried, answer with our known set.
        // This is what lets members that progressed (or terminated)
        // early keep rescuing stragglers — without it, phase laggards
        // starve once their peers bump up (see DESIGN.md).
        if let Some((level, carried)) = answer {
            self.reply_at_level(from, level, carried, out);
        }
    }

    fn estimate(&self) -> Option<&Tagged<A>> {
        self.estimate.as_deref()
    }

    fn is_done(&self) -> bool {
        self.done_at.is_some()
    }

    fn completed_at(&self) -> Option<Round> {
        self.done_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridagg_aggregate::Average;
    use gridagg_group::view::View;
    use gridagg_hierarchy::{FairHashPlacement, Hierarchy};
    use gridagg_simnet::rng::DetRng;

    fn index(n: usize, k: u8) -> Arc<ScopeIndex> {
        let h = Hierarchy::for_group(k, n).unwrap();
        ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, 7))
    }

    fn ctx_rng() -> DetRng {
        DetRng::seeded(1)
    }

    #[test]
    fn rounds_per_phase_formula() {
        let cfg = HierGossipConfig::default();
        // N=200, M=2, C=1 → ceil(log2 200) = 8
        assert_eq!(cfg.rounds_per_phase(200), 8);
        let fig8 = HierGossipConfig {
            rounds_per_phase: Some(3),
            ..Default::default()
        };
        assert_eq!(fig8.rounds_per_phase(200), 3);
        let c2 = HierGossipConfig {
            round_factor: 2.0,
            ..Default::default()
        };
        assert_eq!(c2.rounds_per_phase(200), 16);
    }

    #[test]
    fn starts_in_phase_one_with_own_vote() {
        let idx = index(16, 2);
        let p: HierGossip<Average> =
            HierGossip::new(MemberId(3), 42.0, idx, HierGossipConfig::default());
        assert_eq!(p.phase(), 1);
        assert!(!p.is_done());
        assert!(p.estimate().is_none());
        assert_eq!(p.known_votes.len(), 1);
    }

    #[test]
    fn solo_run_times_out_through_all_phases() {
        // Without any delivered messages, the member still terminates
        // after phases × rounds_per_phase rounds with its own vote only.
        let idx = index(16, 2);
        let phases = idx.hierarchy().phases();
        let cfg = HierGossipConfig::default();
        let rpp = cfg.rounds_per_phase(16);
        let mut p: HierGossip<Average> = HierGossip::new(MemberId(0), 5.0, idx, cfg);
        let mut rng = ctx_rng();
        let mut out = Outbox::new();
        let mut round = 0;
        while !p.is_done() && round < 10_000 {
            let mut ctx = Ctx::new(round, &mut rng);
            p.on_round(&mut ctx, &mut out);
            round += 1;
        }
        assert!(p.is_done());
        assert_eq!(round as u32, phases as u32 * rpp);
        let est = p.estimate().unwrap();
        assert_eq!(est.vote_count(), 1);
        assert_eq!(est.aggregate().unwrap().summary(), 5.0);
    }

    #[test]
    fn phase_one_gossip_targets_own_box() {
        let idx = index(64, 4);
        let me = MemberId(0);
        let my_box = idx.box_of(me);
        let mut p: HierGossip<Average> =
            HierGossip::new(me, 1.0, idx.clone(), HierGossipConfig::default());
        let mut rng = ctx_rng();
        let mut out = Outbox::new();
        for round in 0..3 {
            let mut ctx = Ctx::new(round, &mut rng);
            p.on_round(&mut ctx, &mut out);
        }
        for (to, payload) in out.drain() {
            assert_eq!(idx.box_of(to), my_box, "phase-1 gossip left the box");
            assert!(matches!(
                payload,
                Payload::Vote { .. } | Payload::VoteBatch { .. }
            ));
        }
    }

    #[test]
    fn vote_received_joins_known_set_once() {
        let idx = index(64, 4);
        let me = MemberId(0);
        // find a box-mate
        let mate = *idx
            .members_in(&idx.box_of(me))
            .iter()
            .find(|&&m| m != me)
            .expect("box has a mate");
        let mut p: HierGossip<Average> =
            HierGossip::new(me, 1.0, idx.clone(), HierGossipConfig::default());
        let mut rng = ctx_rng();
        let mut out = Outbox::new();
        let mut ctx = Ctx::new(0, &mut rng);
        let v = Payload::Vote {
            member: mate,
            value: 9.0,
        };
        p.on_message(mate, v.clone(), &mut ctx, &mut out);
        p.on_message(mate, v, &mut ctx, &mut out);
        assert_eq!(p.known_votes.len(), 2);
    }

    #[test]
    fn cross_box_vote_rejected() {
        let idx = index(64, 4);
        let me = MemberId(0);
        let my_box = idx.box_of(me);
        let stranger = (0..64u32)
            .map(MemberId)
            .find(|&m| idx.box_of(m) != my_box)
            .expect("another box exists");
        let mut p: HierGossip<Average> = HierGossip::new(me, 1.0, idx, HierGossipConfig::default());
        let mut rng = ctx_rng();
        let mut out = Outbox::new();
        let mut ctx = Ctx::new(0, &mut rng);
        p.on_message(
            stranger,
            Payload::Vote {
                member: stranger,
                value: 9.0,
            },
            &mut ctx,
            &mut out,
        );
        assert_eq!(p.known_votes.len(), 1);
    }

    #[test]
    fn irrelevant_aggregate_rejected() {
        let idx = index(64, 2); // depth 5
        let me = MemberId(0);
        let my_box = idx.box_of(me);
        // a prefix whose parent does NOT contain my box
        let other_top = if my_box.digit(0) == 0 { 1 } else { 0 };
        let foreign = Addr::root(2)
            .unwrap()
            .child(other_top)
            .unwrap()
            .child(0)
            .unwrap();
        assert!(!foreign.parent().unwrap().contains(&my_box));
        let mut p: HierGossip<Average> = HierGossip::new(me, 1.0, idx, HierGossipConfig::default());
        let mut rng = ctx_rng();
        let mut out = Outbox::new();
        let mut ctx = Ctx::new(0, &mut rng);
        p.on_message(
            MemberId(1),
            Payload::Agg {
                subtree: foreign,
                agg: Arc::new(Tagged::from_vote(1, 1.0, 64)),
            },
            &mut ctx,
            &mut out,
        );
        assert!(p.aggs.is_empty());
    }

    #[test]
    fn early_bump_skips_waiting() {
        // With phase1_early_exit and a singleton box the member finishes
        // phase 1 immediately; with all child aggregates present it
        // cascades upward.
        let idx = index(4, 2); // depth 1, 2 boxes, 2 phases
        let me = MemberId(0);
        let cfg = HierGossipConfig {
            phase1_early_exit: true,
            ..Default::default()
        };
        let mut p: HierGossip<Average> = HierGossip::new(me, 1.0, idx.clone(), cfg);
        // hand it the sibling box aggregate straight away
        let my_box = idx.box_of(me);
        let sibling = my_box
            .parent()
            .unwrap()
            .children()
            .find(|c| *c != my_box)
            .unwrap();
        // fill in my box votes
        let mut rng = ctx_rng();
        let mut out = Outbox::new();
        let mut ctx = Ctx::new(0, &mut rng);
        for &m in idx.members_in(&my_box) {
            if m != me {
                p.on_message(
                    m,
                    Payload::Vote {
                        member: m,
                        value: 2.0,
                    },
                    &mut ctx,
                    &mut out,
                );
            }
        }
        if idx.count_in(&sibling) > 0 {
            let mut sib_agg = Tagged::<Average>::empty(4);
            for &m in idx.members_in(&sibling) {
                sib_agg
                    .try_merge(&Tagged::from_vote(m.index(), 3.0, 4))
                    .unwrap();
            }
            p.on_message(
                MemberId(1),
                Payload::Agg {
                    subtree: sibling,
                    agg: Arc::new(sib_agg),
                },
                &mut ctx,
                &mut out,
            );
        }
        let mut ctx = Ctx::new(0, &mut rng);
        p.on_round(&mut ctx, &mut out);
        assert!(p.is_done(), "early bump should cascade to completion");
        assert_eq!(p.estimate().unwrap().vote_count(), 4);
    }

    #[test]
    fn one_mode_sends_single_values() {
        let cfg = HierGossipConfig {
            exchange: Exchange::One,
            ..Default::default()
        };
        let idx = index(64, 4);
        let mut p: HierGossip<Average> = HierGossip::new(MemberId(0), 1.0, idx, cfg);
        let mut rng = ctx_rng();
        let mut out = Outbox::new();
        for round in 0..3 {
            let mut ctx = Ctx::new(round, &mut rng);
            p.on_round(&mut ctx, &mut out);
        }
        for (_, payload) in out.drain() {
            assert!(
                matches!(payload, Payload::Vote { .. }),
                "One mode must send single votes in phase 1"
            );
        }
    }

    #[test]
    fn batch_mode_sends_vote_batches() {
        let idx = index(64, 4);
        let mut p: HierGossip<Average> =
            HierGossip::new(MemberId(0), 1.0, idx, HierGossipConfig::default());
        let mut rng = ctx_rng();
        let mut out = Outbox::new();
        let mut ctx = Ctx::new(0, &mut rng);
        p.on_round(&mut ctx, &mut out);
        for (_, payload) in out.drain() {
            match payload {
                Payload::VoteBatch { votes, reply } => {
                    assert_eq!(votes.len(), 1, "only own vote known at round 0");
                    assert!(!reply);
                }
                other => panic!("expected VoteBatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn push_from_behind_peer_gets_reply() {
        let idx = index(64, 4);
        let me = MemberId(0);
        let my_box = idx.box_of(me);
        let mate = *idx
            .members_in(&my_box)
            .iter()
            .find(|&&m| m != me)
            .expect("box mate");
        let mut p: HierGossip<Average> = HierGossip::new(me, 1.0, idx, HierGossipConfig::default());
        // teach p a second vote so it knows strictly more than the push
        let mut rng = ctx_rng();
        let mut out = Outbox::new();
        let mut ctx = Ctx::new(0, &mut rng);
        p.on_message(
            mate,
            Payload::Vote {
                member: mate,
                value: 2.0,
            },
            &mut ctx,
            &mut out,
        );
        assert!(out.is_empty(), "single-value Vote pushes are not answered");
        // now a batch push carrying less than p knows triggers a reply
        p.on_message(
            mate,
            Payload::VoteBatch {
                votes: Arc::new(vec![(mate, 2.0)]),
                reply: false,
            },
            &mut ctx,
            &mut out,
        );
        let msgs: Vec<_> = out.drain().collect();
        assert_eq!(msgs.len(), 1, "expected exactly one reply");
        assert_eq!(msgs[0].0, mate);
        match &msgs[0].1 {
            Payload::VoteBatch { votes, reply } => {
                assert!(*reply);
                assert_eq!(votes.len(), 2);
            }
            other => panic!("expected reply VoteBatch, got {other:?}"),
        }
    }

    #[test]
    fn replies_are_never_answered() {
        let idx = index(64, 4);
        let me = MemberId(0);
        let my_box = idx.box_of(me);
        let mate = *idx
            .members_in(&my_box)
            .iter()
            .find(|&&m| m != me)
            .expect("box mate");
        let mut p: HierGossip<Average> = HierGossip::new(me, 1.0, idx, HierGossipConfig::default());
        let mut rng = ctx_rng();
        let mut out = Outbox::new();
        let mut ctx = Ctx::new(0, &mut rng);
        // a reply carrying *less* than we know must not trigger another
        // reply (termination of exchanges)
        p.on_message(
            mate,
            Payload::VoteBatch {
                votes: Arc::new(vec![]),
                reply: true,
            },
            &mut ctx,
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn terminated_member_still_serves_replies() {
        let idx = index(4, 2);
        let me = MemberId(0);
        let cfg = HierGossipConfig {
            rounds_per_phase: Some(1),
            ..Default::default()
        };
        let mut p: HierGossip<Average> = HierGossip::new(me, 1.0, idx.clone(), cfg);
        let mut rng = ctx_rng();
        let mut out = Outbox::new();
        for round in 0..10 {
            let mut ctx = Ctx::new(round, &mut rng);
            p.on_round(&mut ctx, &mut out);
            out.drain().for_each(drop);
        }
        assert!(p.is_done());
        // a straggler in the same box pushes an empty-ish batch; the
        // done member must answer with its known votes
        let mate = idx
            .members_in(&idx.box_of(me))
            .iter()
            .copied()
            .find(|&m| m != me);
        if let Some(mate) = mate {
            let mut ctx = Ctx::new(11, &mut rng);
            p.on_message(
                mate,
                Payload::VoteBatch {
                    votes: Arc::new(vec![]),
                    reply: false,
                },
                &mut ctx,
                &mut out,
            );
            let msgs: Vec<_> = out.drain().collect();
            assert_eq!(msgs.len(), 1, "done member must still serve state");
        }
    }

    #[test]
    fn partial_view_limits_gossip_targets() {
        let idx = index(64, 4);
        let me = MemberId(0);
        let my_box = idx.box_of(me);
        let known: Vec<MemberId> = idx
            .members_in(&my_box)
            .iter()
            .copied()
            .filter(|&m| m != me)
            .take(1)
            .collect();
        assert!(!known.is_empty(), "box has a mate");
        let allowed = known[0];
        let mut p: HierGossip<Average> =
            HierGossip::new(me, 1.0, idx, HierGossipConfig::default()).with_view(vec![me, allowed]);
        let mut rng = ctx_rng();
        let mut out = Outbox::new();
        for round in 0..4 {
            let mut ctx = Ctx::new(round, &mut rng);
            p.on_round(&mut ctx, &mut out);
            for (to, _) in out.drain() {
                assert_eq!(to, allowed, "gossip must stay inside the view");
            }
            if p.phase() > 1 {
                break;
            }
        }
    }

    #[test]
    fn trace_records_phase_progress() {
        let idx = index(16, 4);
        let phases = idx.hierarchy().phases();
        let mut p: HierGossip<Average> =
            HierGossip::new(MemberId(0), 1.0, idx, HierGossipConfig::default());
        let mut rng = ctx_rng();
        let mut out = Outbox::new();
        let mut round = 0;
        while !p.is_done() && round < 1000 {
            let mut ctx = Ctx::new(round, &mut rng);
            p.on_round(&mut ctx, &mut out);
            out.drain().for_each(drop);
            round += 1;
        }
        assert_eq!(p.trace.len(), phases);
        for (i, t) in p.trace.iter().enumerate() {
            assert_eq!(t.phase, i + 1);
            assert!(t.known <= t.expected.max(t.known));
            assert!(t.votes >= 1);
        }
        // votes covered can only grow phase over phase
        for w in p.trace.windows(2) {
            assert!(w[1].votes >= w[0].votes);
        }
    }

    #[test]
    fn estimate_ignores_messages_after_done() {
        let idx = index(4, 2);
        let cfg = HierGossipConfig {
            rounds_per_phase: Some(1),
            ..Default::default()
        };
        let mut p: HierGossip<Average> = HierGossip::new(MemberId(0), 1.0, idx, cfg);
        let mut rng = ctx_rng();
        let mut out = Outbox::new();
        for round in 0..10 {
            let mut ctx = Ctx::new(round, &mut rng);
            p.on_round(&mut ctx, &mut out);
        }
        assert!(p.is_done());
        let before = p.estimate().unwrap().vote_count();
        let mut ctx = Ctx::new(11, &mut rng);
        p.on_message(
            MemberId(1),
            Payload::Vote {
                member: MemberId(1),
                value: 5.0,
            },
            &mut ctx,
            &mut out,
        );
        assert_eq!(p.estimate().unwrap().vote_count(), before);
    }
}
