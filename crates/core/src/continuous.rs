//! Continuous aggregation under churn — the service layer over
//! [`crate::periodic`].
//!
//! The paper's protocol is one-shot over a fixed group with
//! crash-without-recovery failures (§7). A production deployment of its
//! §2 extension ("periodically calculate the global aggregate") instead
//! faces *churn*: members join, leave, crash, and recover between
//! aggregation epochs. [`run_continuous`] drives that scenario:
//!
//! 1. A [`MembershipProcess`] evolves the group between epochs —
//!    joins append fresh member ids, leaves/crashes take members down,
//!    recoveries bring crashed members back.
//! 2. Votes evolve per epoch via the periodic [`VoteProcess`], and
//!    newly joined members draw fresh votes from the experiment's vote
//!    distribution.
//! 3. Each epoch runs one aggregation over the members that are up at
//!    epoch start, under a *within-epoch* failure model that may
//!    include recovery ([`MembershipProcess::within_epoch_model`] maps
//!    `(pf, pr)` to [`FailureModel::PerRoundWithRecovery`] when both
//!    are positive — the first runner to reach that model).
//! 4. Between epochs the view heals: the hierarchy (or overlay) is
//!    re-derived over the *current* up-membership, so recovered and
//!    newly joined members re-enter placement.
//!
//! Two protocol drivers are supported:
//!
//! * [`ContinuousProtocol::HierGossipRestart`] — the paper's answer to
//!   churn: restart a one-shot Hierarchical Gossiping run per epoch
//!   over the current membership (densely reindexed, as in
//!   [`crate::periodic::run_periodic`]).
//! * [`ContinuousProtocol::FlowUpdating`] — the mass-conserving
//!   baseline ([`crate::baselines::flowupdate`]): protocol state
//!   *persists across epochs*; churn is absorbed by flow reclaim and
//!   overlay healing rather than by restart.
//!
//! Every epoch publishes a [`ChurnEpochReport`] carrying a
//! **completeness score**: the mean, over members that published an
//! estimate, of the fraction of the epoch's true membership whose votes
//! reached that estimate. Both drivers are scored against the same
//! membership, so the hiergossip-vs-Flow-Updating comparison in
//! `gridagg-bench` is apples-to-apples.

use gridagg_aggregate::{Aggregate, Average};
use gridagg_group::failure::{FailureModel, FailureProcess};
use gridagg_group::membership::{ChurnModel, MembershipEvent, MembershipProcess};
use gridagg_group::view::View;
use gridagg_group::{MemberId, VoteDistribution};
use gridagg_hierarchy::{FairHashPlacement, Hierarchy};
use gridagg_simnet::network::SimNetwork;
use gridagg_simnet::rng::DetRng;

use crate::baselines::{ring_chord_neighbors, FlowUpdating, FlowUpdatingConfig};
use crate::config::ExperimentConfig;
use crate::engine::Simulation;
use crate::hiergossip::HierGossip;
use crate::metrics::MemberOutcome;
use crate::periodic::{DensePlacement, PeriodicTermination, VoteProcess};
use crate::protocol::AggregationProtocol;
use crate::scope::ScopeIndex;

/// Which protocol drives the continuous service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContinuousProtocol {
    /// Restart a one-shot Hierarchical Gossiping run each epoch over
    /// the current up-membership.
    HierGossipRestart,
    /// Run the persistent Flow-Updating averaging protocol, re-armed
    /// (vote + healed overlay) each epoch.
    FlowUpdating,
}

/// Options of a continuous run, on top of an [`ExperimentConfig`]
/// (which supplies `n`, `k`, the network, within-epoch `pf`, and the
/// vote distribution).
#[derive(Debug, Clone, Copy)]
pub struct ContinuousOptions {
    /// The protocol driver.
    pub protocol: ContinuousProtocol,
    /// Number of epochs to run.
    pub epochs: usize,
    /// Churn applied between epochs.
    pub churn: ChurnModel,
    /// How surviving members' votes evolve between epochs.
    pub votes: VoteProcess,
    /// Within-epoch per-round recovery probability (`pr`). With the
    /// hiergossip driver, `pf > 0` and `pr > 0` select
    /// [`FailureModel::PerRoundWithRecovery`]; `pr = 0` keeps the
    /// paper's crash-without-recovery model.
    pub recovery: f64,
    /// Flow-Updating parameters (ignored by the hiergossip driver).
    pub fu: FlowUpdatingConfig,
}

impl ContinuousOptions {
    /// Defaults: hiergossip restart, 8 epochs, no churn, fixed votes,
    /// no within-epoch recovery.
    pub fn new(protocol: ContinuousProtocol) -> Self {
        ContinuousOptions {
            protocol,
            epochs: 8,
            churn: ChurnModel::none(),
            votes: VoteProcess::Fixed,
            recovery: 0.0,
            fu: FlowUpdatingConfig::default(),
        }
    }
}

/// One epoch's published result in a continuous run.
#[derive(Debug, Clone)]
pub struct ChurnEpochReport {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Ids ever created by the membership process at epoch start.
    pub population: usize,
    /// Members up at epoch start — the epoch's true membership.
    pub up: usize,
    /// Members that joined in the churn step before this epoch.
    pub joins: usize,
    /// Members that left in the churn step before this epoch.
    pub leaves: usize,
    /// Members that crashed in the churn step before this epoch.
    pub crashes: usize,
    /// Members that recovered in the churn step before this epoch.
    pub recoveries: usize,
    /// True average over the up members' votes.
    pub true_value: f64,
    /// Median published estimate (`NaN` if nobody published).
    pub estimate: f64,
    /// Completeness score: mean over publishing members of the
    /// fraction of the true membership whose votes reached their
    /// estimate (0.0 if nobody published).
    pub completeness: f64,
    /// Members that published an estimate this epoch.
    pub published: usize,
    /// Gossip rounds the epoch ran.
    pub rounds: u64,
    /// Messages submitted to the network this epoch.
    pub messages: u64,
}

impl ChurnEpochReport {
    /// Absolute tracking error of the median estimate.
    pub fn tracking_error(&self) -> f64 {
        (self.estimate - self.true_value).abs()
    }
}

/// The outcome of a continuous run.
#[derive(Debug, Clone)]
pub struct ContinuousOutcome {
    /// One report per epoch that ran.
    pub epochs: Vec<ChurnEpochReport>,
    /// Why the run stopped (shares the periodic-mode marker).
    pub termination: PeriodicTermination,
}

impl ContinuousOutcome {
    /// Whether the group collapsed before the requested epoch count.
    pub fn collapsed(&self) -> bool {
        matches!(self.termination, PeriodicTermination::GroupCollapsed { .. })
    }
}

/// Upper bound on ids the membership process can ever create: the
/// initial group plus the per-epoch join maximum (`⌊rate⌋ + 1`).
fn universe_cap(n: usize, epochs: usize, churn: &ChurnModel) -> usize {
    n + epochs * (churn.join_rate.floor() as usize + 1)
}

/// Run the continuous aggregation service (averaging) for
/// `opts.epochs` epochs under churn.
///
/// Deterministic: the outcome is a pure function of
/// `(cfg, opts, seed)`.
///
/// # Panics
///
/// Panics if `cfg` fails validation, `opts.epochs == 0`, or the churn
/// model fails [`ChurnModel::validate`].
pub fn run_continuous(
    cfg: &ExperimentConfig,
    opts: &ContinuousOptions,
    seed: u64,
) -> ContinuousOutcome {
    cfg.validate().expect("invalid experiment config");
    assert!(opts.epochs > 0, "need at least one epoch");

    let mut membership = MembershipProcess::new(cfg.n, opts.churn, seed);
    let mut vote_rng = DetRng::seeded(seed).fork(0x636F_6E74); // "cont"
    let dist: VoteDistribution = cfg.vote.into();
    let mut votes: Vec<f64> = crate::runner::build_group_for(cfg, seed).votes();

    // Flow-Updating instances persist across epochs over the stable id
    // universe; hiergossip builds fresh dense instances per epoch.
    let cap = universe_cap(cfg.n, opts.epochs, &opts.churn);
    let mut fu_protocols: Vec<FlowUpdating> = Vec::new();

    let mut epochs = Vec::with_capacity(opts.epochs);
    let mut termination = PeriodicTermination::Completed;

    for epoch in 0..opts.epochs {
        // 1. churn + vote evolution between epochs
        let (mut joins, mut leaves, mut crashes, mut recoveries) = (0, 0, 0, 0);
        if epoch > 0 {
            for ev in membership.epoch_step() {
                match ev {
                    MembershipEvent::Joined(_) => joins += 1,
                    MembershipEvent::Left(_) => leaves += 1,
                    MembershipEvent::Crashed(_) => crashes += 1,
                    MembershipEvent::Recovered(_) => recoveries += 1,
                }
            }
            for v in votes.iter_mut() {
                *v = opts.votes.step(*v, &mut vote_rng);
            }
            // joiners draw fresh votes from the experiment distribution
            while votes.len() < membership.population() {
                let vote = dist.sample(votes.len(), &mut vote_rng);
                votes.push(vote);
            }
        }

        let up = membership.up_members();
        if up.len() < 2 {
            termination = PeriodicTermination::GroupCollapsed {
                epoch,
                survivors: up.len(),
            };
            break;
        }

        // 2. ground truth over the epoch's true membership
        let true_value = {
            let mut acc = Average::from_vote(votes[up[0].index()]);
            for &m in &up[1..] {
                acc.merge(&Average::from_vote(votes[m.index()]));
            }
            acc.summary()
        };

        let epoch_seed = seed.wrapping_add(0x1000 + epoch as u64);
        let mut report = EpochAccumulator::new(up.len());

        match opts.protocol {
            ContinuousProtocol::HierGossipRestart => {
                run_hier_epoch(
                    cfg,
                    opts,
                    &up,
                    &votes,
                    epoch,
                    seed,
                    epoch_seed,
                    &mut membership,
                    &mut report,
                );
            }
            ContinuousProtocol::FlowUpdating => {
                run_fu_epoch(
                    cfg,
                    opts,
                    &up,
                    &votes,
                    cap,
                    epoch_seed,
                    &mut membership,
                    &mut fu_protocols,
                    &mut report,
                );
            }
        }

        epochs.push(ChurnEpochReport {
            epoch,
            population: membership.population(),
            up: up.len(),
            joins,
            leaves,
            crashes,
            recoveries,
            true_value,
            estimate: report.median_estimate(),
            completeness: report.mean_completeness(),
            published: report.values.len(),
            rounds: report.rounds,
            messages: report.messages,
        });
    }

    ContinuousOutcome {
        epochs,
        termination,
    }
}

/// Per-epoch result accumulation shared by both drivers.
struct EpochAccumulator {
    /// Published estimates of completed members.
    values: Vec<f64>,
    /// Per-completed-member completeness against the true membership.
    completeness: Vec<f64>,
    /// Size of the epoch's true membership.
    up: usize,
    rounds: u64,
    messages: u64,
}

impl EpochAccumulator {
    fn new(up: usize) -> Self {
        EpochAccumulator {
            values: Vec::new(),
            completeness: Vec::new(),
            up,
            rounds: 0,
            messages: 0,
        }
    }

    fn publish(&mut self, value: f64, votes_in_membership: usize) {
        self.values.push(value);
        self.completeness
            .push(votes_in_membership as f64 / self.up as f64);
    }

    fn median_estimate(&mut self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.values.sort_by(f64::total_cmp);
        let mid = self.values.len() / 2;
        if self.values.len().is_multiple_of(2) {
            (self.values[mid - 1] + self.values[mid]) / 2.0
        } else {
            self.values[mid]
        }
    }

    fn mean_completeness(&self) -> f64 {
        if self.completeness.is_empty() {
            return 0.0;
        }
        self.completeness.iter().sum::<f64>() / self.completeness.len() as f64
    }
}

/// One epoch of the restart driver: a dense one-shot hiergossip run
/// over the up-membership, with within-epoch crash (and optionally
/// recovery) injection.
#[allow(clippy::too_many_arguments)]
fn run_hier_epoch(
    cfg: &ExperimentConfig,
    opts: &ContinuousOptions,
    up: &[MemberId],
    votes: &[f64],
    epoch: usize,
    seed: u64,
    epoch_seed: u64,
    membership: &mut MembershipProcess,
    acc: &mut EpochAccumulator,
) {
    let hierarchy = Hierarchy::for_group(cfg.k, up.len().max(2)).expect("validated k");
    let placement = FairHashPlacement::new(hierarchy, seed ^ (epoch as u64) << 8);
    let dense_index = {
        let dense_view = View::complete(up.len());
        let dense_placement = DensePlacement {
            hierarchy,
            inner: placement,
            survivors: up.iter().map(|m| m.index()).collect(),
        };
        ScopeIndex::build(&dense_view, &dense_placement)
    };
    let protocols: Vec<HierGossip<Average>> = up
        .iter()
        .enumerate()
        .map(|(dense, &orig)| {
            HierGossip::new(
                MemberId(dense as u32),
                votes[orig.index()],
                dense_index.clone(),
                cfg.hier_config(),
            )
        })
        .collect();
    let net = SimNetwork::new(crate::runner::network_config_for(cfg, None), epoch_seed);
    let model = MembershipProcess::within_epoch_model(cfg.pf, opts.recovery);
    let failure = FailureProcess::new(model, up.len(), epoch_seed);
    let run = Simulation::new(
        net,
        protocols,
        failure,
        epoch_seed,
        0.0, // truth tracked by the caller
        cfg.max_rounds(),
    )
    .with_engine_jobs(cfg.engine_jobs)
    .run();

    acc.rounds = run.rounds;
    acc.messages = run.net.sent;
    for (dense, outcome) in run.outcomes.iter().enumerate() {
        match outcome {
            MemberOutcome::Completed {
                completeness,
                value,
                ..
            } => {
                // dense vote bitsets cover only up members, so the
                // intersection with the true membership is exactly the
                // bitset size — recoverable from the dense completeness
                let votes_in = (completeness * up.len() as f64).round() as usize;
                acc.publish(*value, votes_in);
            }
            MemberOutcome::Crashed => membership.note_crash(up[dense]),
            MemberOutcome::TimedOut => {}
        }
    }
}

/// One epoch of the persistent Flow-Updating driver: re-arm surviving
/// instances over the healed ring-chord overlay, create instances for
/// joiners, run one epoch's round budget, and hand the instances back
/// for the next epoch.
#[allow(clippy::too_many_arguments)]
fn run_fu_epoch(
    cfg: &ExperimentConfig,
    opts: &ContinuousOptions,
    up: &[MemberId],
    votes: &[f64],
    cap: usize,
    epoch_seed: u64,
    membership: &mut MembershipProcess,
    protocols: &mut Vec<FlowUpdating>,
    acc: &mut EpochAccumulator,
) {
    // grow the instance vector to the current population; dead and
    // left members keep their (inert) instances
    while protocols.len() < membership.population() {
        let id = MemberId(protocols.len() as u32);
        protocols.push(FlowUpdating::new(
            id,
            votes[id.index()],
            cap,
            Vec::new(),
            opts.fu,
        ));
    }
    // heal the overlay: up members get ring-chord neighbours over the
    // sorted up-membership and their current vote
    for (idx, &m) in up.iter().enumerate() {
        let neighbors = ring_chord_neighbors(up, idx);
        protocols[m.index()].rearm(votes[m.index()], neighbors);
    }
    let was_up = membership.up_mask();
    let net = SimNetwork::new(crate::runner::network_config_for(cfg, None), epoch_seed);
    // within-epoch crashes only; recoveries happen between epochs via
    // the churn model (a mid-epoch rejoin over the persistent overlay
    // would silently resurrect stale flows)
    let model = if cfg.pf > 0.0 {
        FailureModel::PerRound { pf: cfg.pf }
    } else {
        FailureModel::None
    };
    let failure = FailureProcess::with_liveness(model, was_up.clone(), epoch_seed);
    let moved = std::mem::take(protocols);
    let (run, returned) = Simulation::new(
        net,
        moved,
        failure,
        epoch_seed,
        0.0,
        u64::from(opts.fu.rounds_per_epoch) + 2,
    )
    .with_engine_jobs(cfg.engine_jobs)
    .run_returning();
    *protocols = returned;

    acc.rounds = run.rounds;
    acc.messages = run.net.sent;
    for (i, outcome) in run.outcomes.iter().enumerate() {
        let id = MemberId(i as u32);
        if !was_up[i] {
            continue; // down before the epoch; outcome is not news
        }
        match outcome {
            MemberOutcome::Completed { value, .. } => {
                // count only influence from the epoch's true membership;
                // a counted contributor set (scale runs) has no identity
                // to filter by, so fall back to the raw contributor count
                let votes_in = protocols[i].estimate().map_or(0, |est| {
                    if est.votes().is_exact() {
                        est.votes()
                            .iter()
                            .filter(|&m| membership.is_up(MemberId(m as u32)))
                            .count()
                    } else {
                        est.vote_count()
                    }
                });
                acc.publish(*value, votes_in);
            }
            MemberOutcome::Crashed => membership.note_crash(id),
            MemberOutcome::TimedOut => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(n: usize) -> ExperimentConfig {
        let mut c = ExperimentConfig::paper_defaults()
            .with_n(n)
            .with_ucastl(0.05);
        c.pf = 0.0;
        c
    }

    fn churny() -> ChurnModel {
        ChurnModel {
            join_rate: 1.5,
            leave_prob: 0.02,
            crash_prob: 0.03,
            recover_prob: 0.3,
        }
    }

    #[test]
    fn no_churn_hier_tracks_like_periodic() {
        let mut opts = ContinuousOptions::new(ContinuousProtocol::HierGossipRestart);
        opts.epochs = 3;
        let out = run_continuous(&base(64), &opts, 5);
        assert_eq!(out.termination, PeriodicTermination::Completed);
        assert_eq!(out.epochs.len(), 3);
        for e in &out.epochs {
            assert_eq!(e.up, 64);
            assert!(
                e.completeness > 0.9,
                "epoch {} cpl {}",
                e.epoch,
                e.completeness
            );
            assert!(e.tracking_error() < 1.0, "err {}", e.tracking_error());
        }
    }

    #[test]
    fn churn_run_is_deterministic() {
        let mut opts = ContinuousOptions::new(ContinuousProtocol::HierGossipRestart);
        opts.epochs = 6;
        opts.churn = churny();
        opts.votes = VoteProcess::RandomWalk { sigma: 0.5 };
        let cfg = base(48);
        let a = run_continuous(&cfg, &opts, 9);
        let b = run_continuous(&cfg, &opts, 9);
        assert_eq!(a.epochs.len(), b.epochs.len());
        for (x, y) in a.epochs.iter().zip(&b.epochs) {
            assert_eq!(x.up, y.up);
            assert_eq!(x.messages, y.messages);
            assert_eq!(x.estimate.to_bits(), y.estimate.to_bits());
            assert_eq!(x.completeness.to_bits(), y.completeness.to_bits());
        }
    }

    #[test]
    fn joins_grow_the_population() {
        let mut opts = ContinuousOptions::new(ContinuousProtocol::HierGossipRestart);
        opts.epochs = 6;
        opts.churn = ChurnModel {
            join_rate: 3.0,
            ..ChurnModel::none()
        };
        let out = run_continuous(&base(32), &opts, 3);
        let first = out.epochs.first().unwrap();
        let last = out.epochs.last().unwrap();
        assert!(last.population > first.population);
        assert!(last.up > first.up, "joined members must re-enter the view");
        assert!(out.epochs.iter().skip(1).any(|e| e.joins > 0));
    }

    #[test]
    fn flow_updating_survives_churn_and_tracks() {
        let mut opts = ContinuousOptions::new(ContinuousProtocol::FlowUpdating);
        opts.epochs = 8;
        opts.churn = ChurnModel {
            join_rate: 0.5,
            leave_prob: 0.01,
            crash_prob: 0.02,
            recover_prob: 0.5,
        };
        let out = run_continuous(&base(48), &opts, 11);
        assert_eq!(out.epochs.len(), 8);
        for e in &out.epochs {
            assert!(e.published > 0, "epoch {} published nothing", e.epoch);
            assert!(e.completeness > 0.0);
        }
        // mass conservation keeps the persistent estimate near the
        // truth once the overlay has mixed for a few epochs
        let late = &out.epochs[out.epochs.len() - 1];
        assert!(
            late.tracking_error() < 10.0,
            "late error {}",
            late.tracking_error()
        );
    }

    #[test]
    fn recovered_members_reenter_the_hierarchy() {
        // crash-heavy churn with certain recovery: up-count dips and
        // rebounds, which only happens if recovered members re-enter
        let mut opts = ContinuousOptions::new(ContinuousProtocol::HierGossipRestart);
        opts.epochs = 10;
        opts.churn = ChurnModel {
            join_rate: 0.0,
            leave_prob: 0.0,
            crash_prob: 0.25,
            recover_prob: 1.0,
        };
        let out = run_continuous(&base(32), &opts, 21);
        assert_eq!(out.epochs.len(), 10);
        let recoveries: usize = out.epochs.iter().map(|e| e.recoveries).sum();
        assert!(recoveries > 0, "someone must have recovered");
        // every crash recovers one epoch later, so membership never
        // drains and every epoch publishes
        for e in &out.epochs {
            assert!(e.published > 0);
        }
    }

    #[test]
    fn per_round_with_recovery_reachable_end_to_end() {
        // pf > 0 with recovery > 0 drives PerRoundWithRecovery through
        // the full runner stack — previously unreachable from any
        // runner (run_periodic maps pf > 0 to PerRound only)
        let mut cfg = base(48);
        cfg.pf = 0.01;
        let mut opts = ContinuousOptions::new(ContinuousProtocol::HierGossipRestart);
        opts.epochs = 4;
        opts.recovery = 0.5;
        let with_recovery = run_continuous(&cfg, &opts, 13);
        assert_eq!(with_recovery.epochs.len(), 4);

        // same scenario without recovery loses strictly more members
        let mut opts_no = opts;
        opts_no.recovery = 0.0;
        let without = run_continuous(&cfg, &opts_no, 13);
        let up_with: usize = with_recovery.epochs.iter().map(|e| e.up).sum();
        let up_without: usize = without.epochs.iter().map(|e| e.up).sum();
        assert!(
            up_with >= up_without,
            "recovery must not shrink membership: {up_with} vs {up_without}"
        );
        let published: usize = with_recovery.epochs.iter().map(|e| e.published).sum();
        assert!(published > 0);
    }

    #[test]
    fn collapse_is_surfaced() {
        let mut opts = ContinuousOptions::new(ContinuousProtocol::HierGossipRestart);
        opts.epochs = 20;
        opts.churn = ChurnModel {
            join_rate: 0.0,
            leave_prob: 0.4,
            crash_prob: 0.3,
            recover_prob: 0.0,
        };
        let out = run_continuous(&base(16), &opts, 3);
        assert!(out.collapsed(), "group should have drained");
        assert!(out.epochs.len() < 20);
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_epochs_rejected() {
        let mut opts = ContinuousOptions::new(ContinuousProtocol::HierGossipRestart);
        opts.epochs = 0;
        let _ = run_continuous(&base(16), &opts, 1);
    }
    // temporary probe test, appended to continuous.rs tests then removed

    #[test]
    fn fu_epoch_restarts_do_not_amplify_extremes() {
        // Regression guard for the dual-writer flow oscillation: with the
        // broadcast averaging variant, every epoch re-arm pumped a
        // mass-conserving oscillation whose *median* stayed perfect while
        // the extreme members diverged without bound (~×1.6 per epoch on a
        // lossless network). Pin the maximum member error and the global
        // mass imbalance, not just the published median.
        use crate::runner::network_config_for;
        let n = 96usize;
        let cfg = {
            let mut c = ExperimentConfig::paper_defaults()
                .with_n(n)
                .with_ucastl(0.0);
            c.pf = 0.0;
            c
        };
        let fu = FlowUpdatingConfig::default();
        let up: Vec<MemberId> = (0..n as u32).map(MemberId).collect();
        let votes: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let truth = (n - 1) as f64 / 2.0;
        let mut protocols: Vec<FlowUpdating> = (0..n)
            .map(|i| FlowUpdating::new(MemberId(i as u32), votes[i], n, Vec::new(), fu))
            .collect();
        let mut last_maxerr = f64::INFINITY;
        for epoch in 0..12u64 {
            for (idx, &m) in up.iter().enumerate() {
                protocols[m.index()].rearm(votes[m.index()], ring_chord_neighbors(&up, idx));
            }
            let epoch_seed = 5u64.wrapping_add(0x1000 + epoch);
            let net = SimNetwork::new(network_config_for(&cfg, None), epoch_seed);
            let failure =
                FailureProcess::with_liveness(FailureModel::None, vec![true; n], epoch_seed);
            let moved = std::mem::take(&mut protocols);
            let (_run, returned) = Simulation::new(
                net,
                moved,
                failure,
                epoch_seed,
                0.0,
                u64::from(fu.rounds_per_epoch) + 2,
            )
            .run_returning();
            protocols = returned;
            last_maxerr = protocols
                .iter()
                .map(|p| (p.local_estimate() - truth).abs())
                .fold(0.0f64, f64::max);
            let mass: f64 = protocols.iter().map(FlowUpdating::local_estimate).sum();
            let imbalance = (mass - votes.iter().sum::<f64>()).abs();
            assert!(
                last_maxerr < 50.0,
                "epoch {epoch}: max member error {last_maxerr} amplified past the initial spread"
            );
            // the freeze-point snapshot carries in-flight pairwise
            // corrections, so early epochs show a bounded transient
            // imbalance; it must never amplify
            assert!(
                imbalance < 15.0,
                "epoch {epoch}: mass imbalance {imbalance}"
            );
            if epoch >= 6 {
                assert!(
                    imbalance < 0.01,
                    "epoch {epoch}: mass imbalance {imbalance} failed to decay"
                );
            }
        }
        assert!(
            last_maxerr < 0.01,
            "extremes must converge across epochs, still at {last_maxerr}"
        );
    }
}
