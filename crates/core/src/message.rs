//! Protocol messages and their wire sizes.
//!
//! All protocols in this crate exchange the same small message
//! vocabulary, so the engine and the network layer can be shared. The
//! paper's constant-message-size assumption is honoured: a message
//! carries one vote, one subtree aggregate, one final result, or a
//! *bounded* batch — at most `K` child aggregates, or the votes of one
//! grid box (expected `K`) — never anything that grows with `N`. (The
//! `Tagged` contributor bitset is simulation instrumentation and is
//! excluded from wire-size accounting; see `gridagg-aggregate::wire`.)

use std::sync::Arc;

use gridagg_aggregate::wire::WireAggregate;
use gridagg_aggregate::Tagged;
use gridagg_group::MemberId;
use gridagg_hierarchy::Addr;

/// A protocol message payload.
///
/// Heavy bodies (aggregates, batches) are [`Arc`]-shared so that
/// fanning one payload out to `F` gossip targets is `F` reference-count
/// bumps, not `F` deep clones of the `Tagged` contributor bitsets. The
/// `Arc` is a simulation/runtime artifact — wire sizes and the codec
/// are unaffected.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload<A> {
    /// One member's vote, with the identifier of the member whose vote it
    /// is (phase-1 gossip; also flood/centralized gather traffic).
    Vote {
        /// Whose vote this is (not necessarily the sender: phase-1
        /// gossip relays known votes).
        member: MemberId,
        /// The vote value.
        value: f64,
    },
    /// The aggregate for one subtree (phase ≥ 2 gossip; leader-election
    /// upward traffic).
    Agg {
        /// The subtree this aggregate summarizes.
        subtree: Addr,
        /// The aggregate (instrumented with its contributor set).
        agg: Arc<Tagged<A>>,
    },
    /// The final group-wide result, disseminated by centralized /
    /// leader-election protocols.
    Final {
        /// The group aggregate.
        agg: Arc<Tagged<A>>,
    },
    /// A batch of known votes (phase-1 batch gossip). Bounded by the
    /// grid box size (expected `K`), so still constant-size in `N`.
    VoteBatch {
        /// `(owner, vote)` pairs.
        votes: Arc<Vec<(MemberId, f64)>>,
        /// Whether this is a reactive reply to a push (replies are never
        /// answered, so exchanges terminate).
        reply: bool,
    },
    /// A batch of known child-subtree aggregates (phase ≥ 2 batch
    /// gossip). Bounded by `K` entries — constant-size in `N`. Entries
    /// are themselves `Arc`-shared so a receiver can adopt one without
    /// copying its contributor bitmap.
    AggBatch {
        /// `(subtree, aggregate)` pairs.
        aggs: Arc<Vec<(Addr, Arc<Tagged<A>>)>>,
        /// Whether this is a reactive reply to a push.
        reply: bool,
    },
    /// One Flow-Updating edge update: the sender's current flow on the
    /// edge to the receiver plus its current estimate (the
    /// mass-conserving averaging baseline; see
    /// [`crate::baselines::FlowUpdating`]). Constant-size in `N` — the
    /// `influenced` contributor set is simulation instrumentation for
    /// completeness scoring, excluded from wire accounting exactly like
    /// the `Tagged` bitsets.
    Flow {
        /// Flow the sender currently assigns to the (sender → receiver)
        /// edge.
        flow: f64,
        /// The sender's current average estimate.
        estimate: f64,
        /// Whether this is the responder half of a pairwise exchange
        /// (the receiver adopts without answering) or an initiating
        /// request (the receiver averages and answers).
        reply: bool,
        /// Members whose votes have (transitively) influenced the
        /// sender's estimate — instrumentation, not protocol state.
        influenced: Arc<gridagg_aggregate::VoteSet>,
    },
}

impl<A: WireAggregate> Payload<A> {
    /// Serialized size in bytes, for network byte accounting: a one-byte
    /// discriminant plus the variant body. Aggregate bodies use their
    /// [`WireAggregate::wire_size`]; empty aggregates (which a real
    /// implementation would never ship) count the discriminant only.
    pub fn wire_size(&self) -> u32 {
        let body = match self {
            Payload::Vote { .. } => 4 + 8,
            Payload::Agg { subtree, agg } => {
                2 + subtree.len() as u32 + agg.aggregate().map_or(0, |a| a.wire_size() as u32)
            }
            Payload::Final { agg } => agg.aggregate().map_or(0, |a| a.wire_size() as u32),
            Payload::VoteBatch { votes, .. } => 2 + votes.len() as u32 * 12,
            Payload::AggBatch { aggs, .. } => {
                2 + aggs
                    .iter()
                    .map(|(addr, agg)| {
                        2 + addr.len() as u32 + agg.aggregate().map_or(0, |a| a.wire_size() as u32)
                    })
                    .sum::<u32>()
            }
            Payload::Flow { .. } => 8 + 8 + 1,
        };
        1 + body
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridagg_aggregate::Average;

    fn addr() -> Addr {
        Addr::from_digits(4, &[1, 2]).unwrap()
    }

    #[test]
    fn vote_size_is_constant() {
        let p: Payload<Average> = Payload::Vote {
            member: MemberId(3),
            value: 1.5,
        };
        assert_eq!(p.wire_size(), 13);
    }

    #[test]
    fn agg_size_bounded_regardless_of_votes() {
        let mut t = Tagged::<Average>::from_vote(0, 1.0, 1000);
        let one = Payload::Agg {
            subtree: addr(),
            agg: Arc::new(t.clone()),
        }
        .wire_size();
        for i in 1..500 {
            t.try_merge(&Tagged::from_vote(i, i as f64, 1000)).unwrap();
        }
        let many = Payload::Agg {
            subtree: addr(),
            agg: Arc::new(t),
        }
        .wire_size();
        assert_eq!(one, many, "aggregate wire size must not grow with votes");
        assert!(many < 64);
    }

    #[test]
    fn batch_sizes_bounded_by_entry_count() {
        let votes: Vec<(MemberId, f64)> = (0..4).map(|i| (MemberId(i), i as f64)).collect();
        let p: Payload<Average> = Payload::VoteBatch {
            votes: Arc::new(votes),
            reply: false,
        };
        assert_eq!(p.wire_size(), 1 + 2 + 4 * 12);
        let aggs = vec![
            (addr(), Arc::new(Tagged::<Average>::from_vote(0, 1.0, 8))),
            (addr(), Arc::new(Tagged::<Average>::from_vote(1, 2.0, 8))),
        ];
        let p = Payload::AggBatch {
            aggs: Arc::new(aggs),
            reply: true,
        };
        assert_eq!(p.wire_size(), 1 + 2 + 2 * (2 + 2 + 16));
    }

    #[test]
    fn flow_size_excludes_instrumentation() {
        use gridagg_aggregate::VoteSet;
        let small: Payload<Average> = Payload::Flow {
            flow: 1.0,
            estimate: 2.0,
            reply: false,
            influenced: Arc::new(VoteSet::singleton(0, 8)),
        };
        let big: Payload<Average> = Payload::Flow {
            flow: 1.0,
            estimate: 2.0,
            reply: true,
            influenced: Arc::new((0..500usize).collect()),
        };
        assert_eq!(small.wire_size(), 18);
        assert_eq!(
            small.wire_size(),
            big.wire_size(),
            "the contributor set is instrumentation, not wire bytes"
        );
    }

    #[test]
    fn final_size() {
        let t = Tagged::<Average>::from_vote(0, 1.0, 10);
        let p = Payload::Final { agg: Arc::new(t) };
        assert_eq!(p.wire_size(), 1 + 16);
        let empty = Payload::Final {
            agg: Arc::new(Tagged::<Average>::empty(10)),
        };
        assert_eq!(empty.wire_size(), 1);
    }
}

/// Binary codec for protocol payloads — used by the real-network
/// runtime (`gridagg-runtime`) and by transport tests. Aggregate values
/// use their constant-size [`WireAggregate`] form; `Tagged` contributor
/// sets ride along for exact completeness measurement (see
/// `gridagg_aggregate::wire::encode_tagged` for the size caveat).
pub mod codec {
    use std::sync::Arc;

    use bytes::{Buf, BufMut};
    use gridagg_aggregate::wire::{decode_tagged, encode_tagged, WireAggregate, WireError};
    use gridagg_group::MemberId;
    use gridagg_hierarchy::Addr;

    use super::Payload;

    const TAG_VOTE: u8 = 1;
    const TAG_AGG: u8 = 2;
    const TAG_FINAL: u8 = 3;
    const TAG_VOTE_BATCH: u8 = 4;
    const TAG_AGG_BATCH: u8 = 5;
    const TAG_FLOW: u8 = 6;

    /// Why a payload failed to decode, with the variant being decoded as
    /// context — a bare [`WireError`] can't tell a clipped vote batch
    /// from a clipped aggregate, which is the first thing a transport
    /// bug report needs. Malformed input is an error value, never a
    /// panic (lint rule D003 covers the decode paths).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum DecodeError {
        /// The buffer ended before the named variant was complete.
        Truncated {
            /// Variant under decode (`"tag"` when even the one-byte
            /// discriminant was missing).
            variant: &'static str,
        },
        /// The named variant's bytes decoded but violated an invariant
        /// (bad address digits, zero-count average, inconsistent
        /// contributor set, …).
        Malformed {
            /// Variant under decode.
            variant: &'static str,
        },
        /// The discriminant byte matches no known payload variant.
        UnknownTag(
            /// The unrecognized discriminant.
            u8,
        ),
    }

    impl DecodeError {
        fn from_wire(variant: &'static str) -> impl Fn(WireError) -> DecodeError {
            move |e| match e {
                WireError::Truncated => DecodeError::Truncated { variant },
                WireError::Malformed => DecodeError::Malformed { variant },
            }
        }
    }

    impl std::fmt::Display for DecodeError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                DecodeError::Truncated { variant } => {
                    write!(f, "payload truncated while decoding `{variant}`")
                }
                DecodeError::Malformed { variant } => {
                    write!(f, "malformed `{variant}` payload")
                }
                DecodeError::UnknownTag(tag) => {
                    write!(f, "unknown payload tag {tag:#04x}")
                }
            }
        }
    }

    impl std::error::Error for DecodeError {}

    fn put_addr<B: BufMut>(addr: &Addr, buf: &mut B) {
        buf.put_u8(addr.base());
        buf.put_u8(addr.len() as u8);
        for &d in addr.digits() {
            buf.put_u8(d);
        }
    }

    fn get_addr<B: Buf>(buf: &mut B) -> Result<Addr, WireError> {
        if buf.remaining() < 2 {
            return Err(WireError::Truncated);
        }
        let base = buf.get_u8();
        let len = buf.get_u8() as usize;
        if buf.remaining() < len {
            return Err(WireError::Truncated);
        }
        let mut digits = Vec::with_capacity(len);
        for _ in 0..len {
            digits.push(buf.get_u8());
        }
        Addr::from_digits(base, &digits).map_err(|_| WireError::Malformed)
    }

    /// Serialize a payload.
    pub fn encode<A: WireAggregate, B: BufMut>(payload: &Payload<A>, buf: &mut B) {
        match payload {
            Payload::Vote { member, value } => {
                buf.put_u8(TAG_VOTE);
                buf.put_u32(member.0);
                buf.put_f64(*value);
            }
            Payload::Agg { subtree, agg } => {
                buf.put_u8(TAG_AGG);
                put_addr(subtree, buf);
                encode_tagged(agg, buf);
            }
            Payload::Final { agg } => {
                buf.put_u8(TAG_FINAL);
                encode_tagged(agg, buf);
            }
            Payload::VoteBatch { votes, reply } => {
                buf.put_u8(TAG_VOTE_BATCH);
                buf.put_u8(u8::from(*reply));
                buf.put_u16(votes.len() as u16);
                for (m, v) in votes.iter() {
                    buf.put_u32(m.0);
                    buf.put_f64(*v);
                }
            }
            Payload::AggBatch { aggs, reply } => {
                buf.put_u8(TAG_AGG_BATCH);
                buf.put_u8(u8::from(*reply));
                buf.put_u16(aggs.len() as u16);
                for (addr, agg) in aggs.iter() {
                    put_addr(addr, buf);
                    encode_tagged(agg, buf);
                }
            }
            Payload::Flow {
                flow,
                estimate,
                reply,
                influenced,
            } => {
                buf.put_u8(TAG_FLOW);
                buf.put_u8(u8::from(*reply));
                buf.put_f64(*flow);
                buf.put_f64(*estimate);
                let words = influenced.words();
                buf.put_u16(words.len() as u16);
                for &w in words {
                    buf.put_u64(w);
                }
            }
        }
    }

    /// Deserialize a payload written by [`encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncated or malformed input, naming
    /// the payload variant that failed.
    pub fn decode<A: WireAggregate, B: Buf>(buf: &mut B) -> Result<Payload<A>, DecodeError> {
        if buf.remaining() < 1 {
            return Err(DecodeError::Truncated { variant: "tag" });
        }
        match buf.get_u8() {
            TAG_VOTE => {
                if buf.remaining() < 12 {
                    return Err(DecodeError::Truncated { variant: "vote" });
                }
                Ok(Payload::Vote {
                    member: MemberId(buf.get_u32()),
                    value: buf.get_f64(),
                })
            }
            TAG_AGG => Ok(Payload::Agg {
                subtree: get_addr(buf).map_err(DecodeError::from_wire("agg"))?,
                agg: Arc::new(decode_tagged(buf).map_err(DecodeError::from_wire("agg"))?),
            }),
            TAG_FINAL => Ok(Payload::Final {
                agg: Arc::new(decode_tagged(buf).map_err(DecodeError::from_wire("final"))?),
            }),
            TAG_VOTE_BATCH => {
                if buf.remaining() < 3 {
                    return Err(DecodeError::Truncated {
                        variant: "vote-batch",
                    });
                }
                let reply = buf.get_u8() != 0;
                let count = buf.get_u16() as usize;
                let mut votes = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    if buf.remaining() < 12 {
                        return Err(DecodeError::Truncated {
                            variant: "vote-batch",
                        });
                    }
                    votes.push((MemberId(buf.get_u32()), buf.get_f64()));
                }
                Ok(Payload::VoteBatch {
                    votes: Arc::new(votes),
                    reply,
                })
            }
            TAG_AGG_BATCH => {
                if buf.remaining() < 3 {
                    return Err(DecodeError::Truncated {
                        variant: "agg-batch",
                    });
                }
                let reply = buf.get_u8() != 0;
                let count = buf.get_u16() as usize;
                let mut aggs = Vec::with_capacity(count.min(1024));
                for _ in 0..count {
                    let addr = get_addr(buf).map_err(DecodeError::from_wire("agg-batch"))?;
                    let agg = decode_tagged(buf).map_err(DecodeError::from_wire("agg-batch"))?;
                    aggs.push((addr, Arc::new(agg)));
                }
                Ok(Payload::AggBatch {
                    aggs: Arc::new(aggs),
                    reply,
                })
            }
            TAG_FLOW => {
                if buf.remaining() < 19 {
                    return Err(DecodeError::Truncated { variant: "flow" });
                }
                let reply = buf.get_u8() != 0;
                let flow = buf.get_f64();
                let estimate = buf.get_f64();
                let n_words = buf.get_u16() as usize;
                if buf.remaining() < n_words * 8 {
                    return Err(DecodeError::Truncated { variant: "flow" });
                }
                let mut words = Vec::with_capacity(n_words);
                for _ in 0..n_words {
                    words.push(buf.get_u64());
                }
                Ok(Payload::Flow {
                    flow,
                    estimate,
                    reply,
                    influenced: Arc::new(gridagg_aggregate::VoteSet::from_words(words)),
                })
            }
            tag => Err(DecodeError::UnknownTag(tag)),
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use gridagg_aggregate::{Average, Tagged};

        fn roundtrip(p: Payload<Average>) {
            let mut buf = Vec::new();
            encode(&p, &mut buf);
            let back: Payload<Average> = decode(&mut buf.as_slice()).expect("decode");
            assert_eq!(back, p);
        }

        #[test]
        fn all_variants_roundtrip() {
            let addr = Addr::from_digits(4, &[2, 1]).unwrap();
            let mut tagged = Tagged::<Average>::from_vote(5, 2.5, 64);
            tagged.try_merge(&Tagged::from_vote(9, 7.5, 64)).unwrap();
            roundtrip(Payload::Vote {
                member: MemberId(7),
                value: -1.25,
            });
            roundtrip(Payload::Agg {
                subtree: addr,
                agg: Arc::new(tagged.clone()),
            });
            roundtrip(Payload::Final {
                agg: Arc::new(tagged.clone()),
            });
            roundtrip(Payload::VoteBatch {
                votes: Arc::new(vec![(MemberId(1), 1.0), (MemberId(2), 2.0)]),
                reply: true,
            });
            roundtrip(Payload::AggBatch {
                aggs: Arc::new(vec![(addr, Arc::new(tagged))]),
                reply: false,
            });
            roundtrip(Payload::Flow {
                flow: -3.25,
                estimate: 41.5,
                reply: false,
                influenced: Arc::new([2usize, 9, 63].into_iter().collect()),
            });
            roundtrip(Payload::Flow {
                flow: 7.5,
                estimate: -0.25,
                reply: true,
                influenced: Arc::new([0usize].into_iter().collect()),
            });
        }

        #[test]
        fn junk_is_rejected_not_panicking() {
            for len in 0..32 {
                let junk = vec![0xFFu8; len];
                let r: Result<Payload<Average>, _> = decode(&mut junk.as_slice());
                assert!(r.is_err());
            }
        }

        #[test]
        fn empty_batches_roundtrip() {
            roundtrip(Payload::VoteBatch {
                votes: Arc::new(vec![]),
                reply: false,
            });
            roundtrip(Payload::AggBatch {
                aggs: Arc::new(vec![]),
                reply: true,
            });
        }

        #[test]
        fn decode_errors_name_the_variant() {
            // truncate a real AggBatch encoding mid-aggregate: the error
            // must say which variant was being decoded
            let addr = Addr::from_digits(4, &[2, 1]).unwrap();
            let p: Payload<Average> = Payload::AggBatch {
                aggs: Arc::new(vec![(addr, Arc::new(Tagged::from_vote(5, 2.5, 64)))]),
                reply: false,
            };
            let mut buf = Vec::new();
            encode(&p, &mut buf);
            let cut = buf.len() - 4;
            let err = decode::<Average, _>(&mut &buf[..cut]).unwrap_err();
            assert_eq!(
                err,
                DecodeError::Truncated {
                    variant: "agg-batch"
                }
            );
            assert!(err.to_string().contains("agg-batch"), "{err}");
            assert_eq!(
                decode::<Average, _>(&mut [0xEEu8, 0, 0].as_slice()).unwrap_err(),
                DecodeError::UnknownTag(0xEE)
            );
            assert_eq!(
                decode::<Average, _>(&mut [].as_slice()).unwrap_err(),
                DecodeError::Truncated { variant: "tag" }
            );
        }

        /// Fuzz-ish robustness: every `Payload` variant's encoding, fed
        /// back truncated at every length and with DetRng-driven byte
        /// corruption, must come back as `Ok` or a `DecodeError` — never
        /// a panic. Deterministic by seed, like everything else here.
        #[test]
        fn corrupted_bytes_never_panic_any_variant() {
            use gridagg_simnet::rng::DetRng;

            let addr = Addr::from_digits(4, &[2, 1]).unwrap();
            let mut tagged = Tagged::<Average>::from_vote(5, 2.5, 64);
            tagged.try_merge(&Tagged::from_vote(9, 7.5, 64)).unwrap();
            let variants: Vec<Payload<Average>> = vec![
                Payload::Vote {
                    member: MemberId(7),
                    value: -1.25,
                },
                Payload::Agg {
                    subtree: addr,
                    agg: Arc::new(tagged.clone()),
                },
                Payload::Final {
                    agg: Arc::new(tagged.clone()),
                },
                Payload::VoteBatch {
                    votes: Arc::new(vec![(MemberId(1), 1.0), (MemberId(2), 2.0)]),
                    reply: true,
                },
                Payload::AggBatch {
                    aggs: Arc::new(vec![(addr, Arc::new(tagged))]),
                    reply: false,
                },
                Payload::Flow {
                    flow: 0.5,
                    estimate: -2.0,
                    reply: true,
                    influenced: Arc::new([1usize, 40].into_iter().collect()),
                },
            ];

            let mut rng = DetRng::seeded(0xC0DEC);
            for payload in &variants {
                let mut buf = Vec::new();
                encode(payload, &mut buf);

                // every truncation point
                for cut in 0..buf.len() {
                    let r = decode::<Average, _>(&mut &buf[..cut]);
                    assert!(
                        r.is_err(),
                        "truncated-at-{cut} encoding of {payload:?} decoded"
                    );
                }

                // random byte flips, 1–3 per trial
                for _ in 0..500 {
                    let mut corrupted = buf.clone();
                    for _ in 0..=rng.below(2) {
                        let i = rng.below(corrupted.len());
                        corrupted[i] ^= (rng.below(255) + 1) as u8;
                    }
                    // Ok (the flip hit a don't-care bit or produced
                    // another valid payload) and Err are both fine;
                    // only a panic is a failure.
                    let _ = decode::<Average, _>(&mut corrupted.as_slice());
                }

                // random tails appended to a valid prefix
                for _ in 0..100 {
                    let mut extended = buf.clone();
                    extended.truncate(rng.below(buf.len()));
                    for _ in 0..rng.below(16) {
                        extended.push(rng.below(256) as u8);
                    }
                    let _ = decode::<Average, _>(&mut extended.as_slice());
                }
            }
        }
    }
}
