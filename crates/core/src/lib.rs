//! # gridagg-core
//!
//! The protocols of *"Scalable Fault-Tolerant Aggregation in Large
//! Process Groups"* (Gupta, van Renesse, Birman — DSN 2001), with the
//! simulation engine and experiment machinery that reproduce the paper's
//! evaluation.
//!
//! ## What's here
//!
//! * [`hiergossip`] — **Hierarchical Gossiping** (§6.3), the paper's
//!   contribution: one-shot computation of a composable global aggregate
//!   at *every* member of a large group over a lossy, crash-prone
//!   network, by gossiping within successively taller subtrees of the
//!   Grid Box Hierarchy. `O(N·log²N)` messages, `O(log²N)` rounds,
//!   completeness ≥ `1 − 1/N` under the paper's assumptions.
//! * [`baselines`] — everything the paper compares against: flood (§4),
//!   centralized leader (§5), hierarchical leader election (§6.2), and
//!   flat gossip (no hierarchy) as an ablation.
//! * [`engine`] — the round-driven simulator loop; [`metrics`] — the
//!   completeness / message / time measurements; [`experiment`] —
//!   parallel multi-seed sweeps; [`runner`] — one-call entry points;
//!   [`config`] — the §7 parameter set with the paper's defaults.
//!
//! ## Quickstart
//!
//! ```
//! use gridagg_core::config::ExperimentConfig;
//! use gridagg_core::runner::run_hiergossip;
//! use gridagg_aggregate::Average;
//!
//! // The paper's default setting: N=200, K=4, M=2, C=1.0,
//! // ucastl=0.25, pf=0.001.
//! let cfg = ExperimentConfig::paper_defaults();
//! let report = run_hiergossip::<Average>(&cfg, 42);
//! let completeness = report.mean_completeness().unwrap();
//! assert!(completeness > 0.9); // robust despite 25% message loss
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod baselines;
pub mod config;
pub mod continuous;
pub mod engine;
pub mod experiment;
pub mod hiergossip;
pub mod json;
pub mod message;
pub mod metrics;
pub mod periodic;
pub mod protocol;
pub mod runner;
pub mod scope;
pub mod trace;

pub use config::ExperimentConfig;
pub use engine::Simulation;
pub use experiment::{run_many, summarize, Series, Summary};
pub use hiergossip::{HierGossip, HierGossipConfig};
pub use message::Payload;
pub use metrics::{MemberOutcome, RunReport};
pub use protocol::{AggregationProtocol, Ctx, Outbox};
pub use scope::ScopeIndex;
pub use trace::{NoTrace, RunTrace, TraceEvent, TraceSink};
