//! Minimal JSON support for recording experiment provenance.
//!
//! The workspace builds fully offline, so instead of serde this module
//! provides a small JSON value type, a writer, a parser, and the
//! [`ToJson`]/[`FromJson`] traits that config and summary types
//! implement by hand. The emitted format matches what serde produced in
//! earlier revisions (externally tagged enums, struct-as-object), so
//! previously recorded `results/*.config.json` files stay readable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialize with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close, colon) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * (depth + 1)),
                " ".repeat(w * depth),
                ": ",
            ),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => write_number(out, *x),
            Json::Str(s) => write_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_string(out, k);
                    out.push_str(colon);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message (with byte offset) on malformed
    /// input or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

impl std::fmt::Display for Json {
    /// Serializes compactly; use [`Json::to_string_pretty`] for
    /// indented output.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        // `{}` prints the shortest representation that round-trips.
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while !matches!(self.peek(), Some(b'"') | Some(b'\\') | None) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // surrogate pairs are not needed for our data
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos - 1)),
                    }
                }
                None => return Err("unterminated string".to_string()),
                _ => unreachable!(),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// The JSON representation.
    fn to_json(&self) -> Json;
}

/// Types that can be reconstructed from a [`Json`] value.
pub trait FromJson: Sized {
    /// Parse from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first field that failed.
    fn from_json(value: &Json) -> Result<Self, String>;
}

macro_rules! num_to_json {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json(value: &Json) -> Result<Self, String> {
                value
                    .as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| "expected number".to_string())
            }
        }
    )*};
}
num_to_json!(f64, u8, u16, u32, u64, usize);

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Result<Self, String> {
        value.as_bool().ok_or_else(|| "expected bool".to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Result<Self, String> {
        match value {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

/// Fetch and parse a required object field.
///
/// # Errors
///
/// Returns a message naming the missing or malformed field.
pub fn field<T: FromJson>(obj: &Json, key: &str) -> Result<T, String> {
    let v = obj
        .get(key)
        .ok_or_else(|| format!("missing field {key:?}"))?;
    T::from_json(v).map_err(|e| format!("field {key:?}: {e}"))
}

/// Fetch an optional object field (absent and `null` both map to `None`).
///
/// # Errors
///
/// Returns a message naming the malformed field.
pub fn opt_field<T: FromJson>(obj: &Json, key: &str) -> Result<Option<T>, String> {
    match obj.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => T::from_json(v)
            .map(Some)
            .map_err(|e| format!("field {key:?}: {e}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_scalars() {
        for (v, s) in [
            (Json::Null, "null"),
            (Json::Bool(true), "true"),
            (Json::Num(3.0), "3"),
            (Json::Num(0.25), "0.25"),
            (Json::Str("a\"b".into()), "\"a\\\"b\""),
        ] {
            assert_eq!(v.to_string(), s);
            assert_eq!(Json::parse(s).unwrap(), v);
        }
    }

    #[test]
    fn roundtrips_nested_structure() {
        let v = Json::Obj(vec![
            ("xs".into(), Json::Arr(vec![Json::Num(1.0), Json::Null])),
            (
                "inner".into(),
                Json::Obj(vec![("flag".into(), Json::Bool(false))]),
            ),
        ]);
        for text in [v.to_string(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.1 + 0.2; // a value needing full shortest-repr precision
        let v = Json::Num(x);
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(
            v.get("a"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)]))
        );
    }

    #[test]
    fn field_helpers() {
        let v = Json::parse(r#"{"n": 5, "x": null}"#).unwrap();
        assert_eq!(field::<usize>(&v, "n").unwrap(), 5);
        assert_eq!(opt_field::<f64>(&v, "x").unwrap(), None);
        assert_eq!(opt_field::<f64>(&v, "missing").unwrap(), None);
        assert!(field::<usize>(&v, "missing").is_err());
        assert!(field::<bool>(&v, "n").is_err());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line1\nline2\ttab \\ quote\" control\u{1}";
        let v = Json::Str(s.to_string());
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }
}
