//! The round-driven simulation engine.
//!
//! Wires a `Group`, a
//! [`SimNetwork`], a
//! [`FailureProcess`], and one
//! protocol instance per member; advances rounds until every surviving
//! member terminates (or a round cap is hit); and produces a
//! [`RunReport`].
//!
//! Round structure (paper §7 semantics):
//! 1. crash injection for this round,
//! 2. delivery of due messages to *alive* members,
//! 3. one protocol step (`on_round`) at each alive, unfinished member,
//! 4. submission of all emitted gossip to the lossy network.
//!
//! The protocol is "started simultaneously at all members" (round 0);
//! thereafter members proceed asynchronously.
//!
//! The round loop is **event-driven**: instead of scanning all `N`
//! members every round, it visits only members with pending work — the
//! union of *active* members (started, not yet done) and members whose
//! staggered start round has arrived — walked in ascending member-id
//! order, which is exactly the order the dense scan visited them. Done
//! and not-yet-due members cost nothing per round, which is what makes
//! million-member runs affordable once most of the group has finished.
//!
//! With [`Simulation::with_engine_jobs`] the loop becomes a
//! **fork-join** engine: each round the delivery worklist and the visit
//! set are sharded into contiguous member-id ranges over
//! `split_at_mut` protocol slices, stepped on scoped threads using the
//! per-member RNG streams, and their outgoing sends and trace events
//! are collected into per-shard buffers. A serial replay phase then
//! applies the recorded sends to the network *in exactly the order the
//! serial engine produced them*, so the single shared network RNG
//! (loss and delay draws live inside `SimNetwork::send`) consumes an
//! identical stream and the whole run — trace bytes included — is
//! byte-identical at any thread count. See DESIGN.md §16.

use std::collections::BTreeMap;
// lint:allow(D002) scoped fork-join over disjoint member ranges; the serial replay phase keeps every run byte-identical at any thread count (tests/engine_forkjoin.rs)
use std::thread::scope as thread_scope;

use gridagg_aggregate::wire::WireAggregate;
use gridagg_group::failure::{FailureProcess, LivenessEvent};
use gridagg_group::MemberId;
use gridagg_simnet::bitset::DenseBitSet;
use gridagg_simnet::network::{Envelope, SendOutcome, SimNetwork};
use gridagg_simnet::rng::DetRng;
use gridagg_simnet::Round;

use crate::message::Payload;
use crate::metrics::{MemberOutcome, RunReport};
use crate::protocol::{AggregationProtocol, Ctx, Outbox};
use crate::trace::{NoTrace, TraceEvent, TraceSink};

/// Hard ceiling on engine threads: the per-envelope shard-owner table
/// stores worker indices as `u8`, and beyond this width the fork-join
/// barriers cost more than the shards win.
pub const MAX_ENGINE_JOBS: usize = 64;

/// Below this many work items (deliveries or visits) a round phase runs
/// inline: spawning scoped threads costs more than stepping a handful
/// of members. Both paths are byte-identical, so this is purely a
/// latency heuristic.
const PAR_MIN_ITEMS: usize = 128;

/// Shard-owner sentinel for envelopes that are dropped before any
/// worker sees them (dead destination — the serial loop `continue`s).
const OWNER_NONE: u8 = u8::MAX;

/// Worker-side event collector: protocol-level trace events recorded
/// during a parallel phase, replayed into the real sink in serial
/// order afterwards. Pure instrumentation — nothing reads it back
/// during the phase, so D008 purity holds by construction.
#[derive(Debug, Default)]
struct EventBuf(Vec<TraceEvent>);

impl TraceSink for EventBuf {
    fn record(&mut self, event: TraceEvent) {
        self.0.push(event);
    }
}

/// One outgoing message captured by a worker, applied to the network
/// by the serial replay phase. `payload` is taken exactly once.
#[derive(Debug)]
struct SendRec<A> {
    to: MemberId,
    bytes: u32,
    payload: Option<Payload<A>>,
}

/// Outcome of one parallel protocol call (an `on_message` delivery or
/// an `on_round` visit), replayed serially in original order.
#[derive(Debug, Clone, Copy, Default)]
struct StepRecord {
    member: MemberId,
    /// Delivery only: sender and send round for the `Deliver` event.
    from: MemberId,
    sent_at: Round,
    /// Visit only: the member was dead (no call happened).
    dead: bool,
    /// Visit only: the protocol was already done at the visit.
    pre_done: bool,
    /// Delivery only: done state before `on_message`.
    was_done: bool,
    /// Done state after the protocol call.
    now_done: bool,
    /// Completeness at termination (traced runs only; 0.0 otherwise,
    /// matching the serial engine's `map_or(0.0, ..)`).
    completeness: f64,
    ev_start: u32,
    ev_len: u32,
    send_start: u32,
    send_len: u32,
}

/// One worker's per-round scratch, owned by `drive` and reused across
/// rounds so the steady state allocates nothing.
#[derive(Debug)]
struct ShardBuf<A> {
    /// Delivery worklist, enqueued in global envelope order.
    inbox: Vec<Envelope<Payload<A>>>,
    records: Vec<StepRecord>,
    events: EventBuf,
    sends: Vec<SendRec<A>>,
    out: Outbox<A>,
    /// Replay cursor into `records`.
    cursor: usize,
}

impl<A> ShardBuf<A> {
    fn new() -> Self {
        ShardBuf {
            inbox: Vec::new(),
            records: Vec::new(),
            events: EventBuf::default(),
            sends: Vec::new(),
            out: Outbox::new(),
            cursor: 0,
        }
    }

    fn reset(&mut self) {
        self.records.clear();
        self.events.0.clear();
        self.sends.clear();
        self.cursor = 0;
    }
}

/// The assembled simulation for one run.
#[derive(Debug)]
pub struct Simulation<A, P> {
    net: SimNetwork<Payload<A>>,
    protocols: Vec<P>,
    failure: FailureProcess,
    rngs: Vec<DetRng>,
    true_value: f64,
    max_rounds: Round,
    start_rounds: Option<Vec<Round>>,
    started: DenseBitSet,
    engine_jobs: usize,
}

impl<A, P> Simulation<A, P>
where
    A: WireAggregate + Send + Sync,
    P: AggregationProtocol<A> + Send,
{
    /// Assemble a simulation.
    ///
    /// `protocols[i]` is member `i`'s instance; `seed` drives the
    /// per-member random streams (network and failure processes carry
    /// their own forks of the same run seed); `true_value` is the ground
    /// truth the report compares estimates against.
    ///
    /// # Panics
    ///
    /// Panics if `protocols` is empty.
    pub fn new(
        net: SimNetwork<Payload<A>>,
        protocols: Vec<P>,
        failure: FailureProcess,
        seed: u64,
        true_value: f64,
        max_rounds: Round,
    ) -> Self {
        assert!(!protocols.is_empty(), "simulation needs members");
        let mut net = net;
        net.reserve_nodes(protocols.len());
        let root = DetRng::seeded(seed).fork(0x6D62_7273); // "mbrs"
        let rngs = (0..protocols.len()).map(|i| root.fork(i as u64)).collect();
        let started = (0..protocols.len()).collect();
        Simulation {
            net,
            protocols,
            failure,
            rngs,
            true_value,
            max_rounds,
            start_rounds: None,
            started,
            engine_jobs: 1,
        }
    }

    /// Step members on `jobs` scoped threads inside each round
    /// (fork-join over contiguous member-id shards with a serial
    /// ordered replay). The run — report, proxy counters, and every
    /// trace byte — is identical at any value; `1` (the default) keeps
    /// the fully serial loop. Values are clamped to
    /// `1..=`[`MAX_ENGINE_JOBS`].
    #[must_use]
    pub fn with_engine_jobs(mut self, jobs: usize) -> Self {
        self.engine_jobs = jobs.clamp(1, MAX_ENGINE_JOBS);
        self
    }

    /// Stagger protocol initiation: member `i` starts at
    /// `start_rounds[i]` — *or earlier*, as soon as the first protocol
    /// message reaches it (gossip-triggered initiation).
    ///
    /// This models the paper's relaxation of the "initiated
    /// simultaneously at all members" assumption: "our results apply in
    /// cases such as a multicast being used for protocol initiation" —
    /// a multicast reaches members at slightly different times, and the
    /// gossip itself wakes up anyone the multicast missed.
    ///
    /// # Panics
    ///
    /// Panics if `start_rounds.len()` differs from the member count.
    pub fn with_start_rounds(mut self, start_rounds: Vec<Round>) -> Self {
        assert_eq!(
            start_rounds.len(),
            self.protocols.len(),
            "one start round per member"
        );
        self.started = start_rounds
            .iter()
            .enumerate()
            .filter(|&(_, &r)| r == 0)
            .map(|(i, _)| i)
            .collect();
        self.start_rounds = Some(start_rounds);
        self
    }

    /// Run to completion (all alive members done) or to the round cap,
    /// consuming the simulation and returning the report.
    ///
    /// Equivalent to [`Simulation::run_with`] with tracing disabled.
    pub fn run(self) -> RunReport {
        self.run_with(&mut NoTrace)
    }

    /// Run, narrating the run to `sink` as [`TraceEvent`]s.
    ///
    /// With the default [`NoTrace`] sink every emission site compiles
    /// away (`S::ENABLED` is `const false`), so the traced and untraced
    /// paths execute identical protocol and network decisions: tracing
    /// never perturbs a run, it only observes it.
    pub fn run_with<S: TraceSink>(mut self, sink: &mut S) -> RunReport {
        self.drive(sink)
    }

    /// Run like [`Simulation::run`], but hand the protocol instances
    /// back alongside the report. The continuous aggregation service
    /// ([`crate::continuous`]) uses this to carry long-lived protocol
    /// state (e.g. Flow-Updating flows) across epoch boundaries.
    pub fn run_returning(mut self) -> (RunReport, Vec<P>) {
        let report = self.drive(&mut NoTrace);
        (report, self.protocols)
    }

    // lint:hot — the engine round loop: N=10^6 members visit this code
    // every round, so allocations must be per-run scratch, not per-round.
    fn drive<S: TraceSink>(&mut self, sink: &mut S) -> RunReport {
        let n = self.protocols.len();
        let mut out = Outbox::new();
        // Delivery scratch, reused every round: `drain_into` refills it
        // in place, so the steady state is zero per-round allocation.
        let mut delivery = Vec::new(); // lint:allow(D009) per-run scratch, refilled in place each round
        let mut round: Round = 0;
        let mut protocol_steps: u64 = 0;

        // Event-driven scheduling state. `active` = started and not yet
        // done: the members an `on_round` visit can do anything for.
        // `unstarted` members wait for their start round (or an earlier
        // gossip wake-up); once the round arrives they move to `due`
        // and are started at their next alive visit. A bucket queue
        // keyed by start round feeds `due` without per-round scans.
        let mut active = DenseBitSet::with_capacity(n);
        let mut unstarted = DenseBitSet::with_capacity(n);
        let mut due = DenseBitSet::with_capacity(n);
        let mut start_buckets: BTreeMap<Round, Vec<u32>> = BTreeMap::new();
        for i in 0..n {
            if self.started.contains(i) {
                if !self.protocols[i].is_done() {
                    active.insert(i);
                }
            } else {
                unstarted.insert(i);
            }
        }
        if let Some(starts) = &self.start_rounds {
            for (i, &r) in starts.iter().enumerate() {
                if unstarted.contains(i) {
                    start_buckets.entry(r).or_default().push(i as u32);
                }
            }
        }
        // Visit scratch: the ascending union of active ∪ due, rebuilt
        // each round so the sets can be edited while visiting.
        let mut visit: Vec<u32> = Vec::new(); // lint:allow(D009) per-run scratch, reused across rounds

        // Fork-join scratch: one buffer set per engine thread plus the
        // per-envelope shard-owner table, allocated once per run and
        // reused every round.
        let jobs = self.engine_jobs.clamp(1, MAX_ENGINE_JOBS).min(n);
        let mut shards: Vec<ShardBuf<A>> = (0..if jobs > 1 { jobs } else { 0 })
            .map(|_| ShardBuf::new())
            .collect();
        let mut owner: Vec<u8> = Vec::new(); // lint:allow(D009) per-run scratch, refilled in place each round

        if S::ENABLED {
            for i in self.started.iter() {
                sink.record(TraceEvent::Start {
                    member: MemberId(i as u32),
                    round: 0,
                });
            }
        }
        loop {
            // 1. crash injection
            let liveness = self.failure.step(round);
            if S::ENABLED {
                for ev in &liveness {
                    sink.record(match *ev {
                        LivenessEvent::Crashed(member) => TraceEvent::Crash { member, round },
                        LivenessEvent::Recovered(member) => TraceEvent::Recover { member, round },
                    });
                }
            }

            // members whose official start round arrives become due;
            // they actually start at their next alive visit below
            while start_buckets
                .first_key_value()
                .is_some_and(|(&r, _)| r <= round)
            {
                let (_, ids) = start_buckets.pop_first().expect("checked non-empty");
                for id in ids {
                    // skip anyone gossip already woke up
                    if unstarted.contains(id as usize) {
                        due.insert(id as usize);
                    }
                }
            }

            // 2. deliver due messages to alive members; a protocol
            //    message wakes a member that has not started yet
            self.net.drain_into(round, &mut delivery);
            if jobs > 1 && delivery.len() >= PAR_MIN_ITEMS {
                self.deliver_parallel(
                    round,
                    n,
                    &mut delivery,
                    &mut unstarted,
                    &mut due,
                    &mut active,
                    &mut shards,
                    &mut owner,
                    sink,
                );
            } else {
                for env in delivery.drain(..) {
                    let to = env.to.index();
                    if !self.failure.is_alive(env.to) {
                        continue;
                    }
                    if S::ENABLED {
                        sink.record(TraceEvent::Deliver {
                            from: env.from,
                            to: env.to,
                            round,
                            sent_at: env.sent_at,
                        });
                        if !self.started.contains(to) {
                            sink.record(TraceEvent::Start {
                                member: env.to,
                                round,
                            });
                        }
                    }
                    if self.started.insert(to) {
                        unstarted.remove(to);
                        due.remove(to);
                    }
                    let was_done = self.protocols[to].is_done();
                    {
                        let mut ctx = if S::ENABLED {
                            Ctx::traced(round, &mut self.rngs[to], sink)
                        } else {
                            Ctx::new(round, &mut self.rngs[to])
                        };
                        self.protocols[to].on_message(env.from, env.payload, &mut ctx, &mut out);
                    }
                    // a message can finish a member (drop it from the visit
                    // set) or re-arm a finished one (put it back)
                    if self.protocols[to].is_done() {
                        active.remove(to);
                    } else {
                        active.insert(to);
                    }
                    if S::ENABLED && !was_done && self.protocols[to].is_done() {
                        sink.record(TraceEvent::Terminate {
                            member: env.to,
                            round,
                            completeness: self.protocols[to]
                                .estimate()
                                .map_or(0.0, |est| est.completeness(n)),
                        });
                    }
                    Self::flush(&mut self.net, round, env.to, &mut out, sink);
                }
            }

            // 3.+4. step alive, started, unfinished members — visiting
            // only the union of active and due-to-start members, in
            // ascending id order (the same order the dense scan used)
            let mut all_settled = true;
            // an alive member still waiting for its start round keeps
            // the run open, even though nothing visits it yet
            for i in unstarted.iter() {
                if !due.contains(i) && self.failure.is_alive(MemberId(i as u32)) {
                    all_settled = false;
                    break;
                }
            }
            visit.clear();
            visit.extend(active.iter_union(&due).map(|i| i as u32));
            if jobs > 1 && visit.len() >= PAR_MIN_ITEMS {
                self.visit_parallel(
                    round,
                    n,
                    &visit,
                    &mut unstarted,
                    &mut due,
                    &mut active,
                    &mut shards,
                    &mut all_settled,
                    &mut protocol_steps,
                    sink,
                );
            } else {
                for &iv in &visit {
                    let i = iv as usize;
                    let me = MemberId(iv);
                    if !self.failure.is_alive(me) {
                        continue; // stays active/due; resumes on recovery
                    }
                    if unstarted.contains(i) {
                        // due member starting at its official round
                        unstarted.remove(i);
                        due.remove(i);
                        self.started.insert(i);
                        if S::ENABLED {
                            sink.record(TraceEvent::Start { member: me, round });
                        }
                    }
                    if self.protocols[i].is_done() {
                        active.remove(i);
                        continue;
                    }
                    active.insert(i);
                    all_settled = false;
                    protocol_steps += 1;
                    {
                        let mut ctx = if S::ENABLED {
                            Ctx::traced(round, &mut self.rngs[i], sink)
                        } else {
                            Ctx::new(round, &mut self.rngs[i])
                        };
                        self.protocols[i].on_round(&mut ctx, &mut out);
                    }
                    if self.protocols[i].is_done() {
                        active.remove(i);
                        if S::ENABLED {
                            sink.record(TraceEvent::Terminate {
                                member: me,
                                round,
                                completeness: self.protocols[i]
                                    .estimate()
                                    .map_or(0.0, |est| est.completeness(n)),
                            });
                        }
                    }
                    Self::flush(&mut self.net, round, me, &mut out, sink);
                }
            }

            round += 1;
            if all_settled || round >= self.max_rounds {
                break;
            }
        }

        let outcomes = self
            .protocols
            .iter()
            .enumerate()
            .map(|(i, p)| {
                if let (true, Some(est)) = (p.is_done(), p.estimate()) {
                    MemberOutcome::Completed {
                        completeness: est.completeness(n),
                        value: est
                            .aggregate()
                            .map_or(f64::NAN, gridagg_aggregate::Aggregate::summary),
                        at: p.completed_at().unwrap_or(round),
                    }
                } else if !self.failure.is_alive(MemberId(i as u32)) {
                    MemberOutcome::Crashed
                } else {
                    MemberOutcome::TimedOut
                }
            })
            .collect();

        RunReport {
            n,
            rounds: round,
            outcomes,
            true_value: self.true_value,
            net: self.net.stats().clone(), // lint:allow(D009) once at end of run, building the report
            protocol_steps,
        }
    }

    // lint:hot — per-member outbox fan-out, called for every visit.
    fn flush<S: TraceSink>(
        net: &mut SimNetwork<Payload<A>>,
        round: Round,
        from: MemberId,
        out: &mut Outbox<A>,
        sink: &mut S,
    ) {
        for (to, payload) in out.drain() {
            let bytes = payload.wire_size();
            let outcome = net.send(round, from, to, payload, bytes);
            if S::ENABLED {
                sink.record(TraceEvent::Send {
                    from,
                    to,
                    round,
                    bytes: bytes as u64,
                });
                match outcome {
                    SendOutcome::Queued { .. } => {}
                    SendOutcome::DroppedLoss => {
                        sink.record(TraceEvent::DropLoss { from, to, round });
                    }
                    SendOutcome::DroppedBandwidth => {
                        sink.record(TraceEvent::DropBandwidth { from, to, round });
                    }
                }
            }
        }
    }

    /// Parallel delivery phase: partition this round's envelopes by
    /// destination shard, run each shard's `on_message` calls on scoped
    /// threads, then replay the recorded outcomes serially in the
    /// original envelope order. Every `net.send` — the only consumer of
    /// the shared network RNG — happens in the replay, so the RNG
    /// stream, the trace byte stream, and all engine bookkeeping are
    /// exactly the serial engine's.
    // lint:hot — fork-join delivery path; all scratch lives in `shards`.
    #[allow(clippy::too_many_arguments)]
    fn deliver_parallel<S: TraceSink>(
        &mut self,
        round: Round,
        n: usize,
        delivery: &mut Vec<Envelope<Payload<A>>>,
        unstarted: &mut DenseBitSet,
        due: &mut DenseBitSet,
        active: &mut DenseBitSet,
        shards: &mut [ShardBuf<A>],
        owner: &mut Vec<u8>,
        sink: &mut S,
    ) {
        let jobs = shards.len();
        owner.clear();
        for shard in shards.iter_mut() {
            shard.reset();
        }
        // Partition by destination shard; dead destinations drop here,
        // exactly where the serial loop drops them (`is_alive` is a
        // pure read — no RNG, no mutation).
        for env in delivery.drain(..) {
            if !self.failure.is_alive(env.to) {
                owner.push(OWNER_NONE);
                continue;
            }
            let w = env.to.index() * jobs / n;
            owner.push(w as u8);
            shards[w].inbox.push(env);
        }

        // Fork: each worker exclusively owns a contiguous protocol/rng
        // range (`split_at_mut`), so no shared state is touched.
        let Simulation {
            protocols,
            rngs,
            net,
            started,
            ..
        } = self;
        thread_scope(|scope| {
            let mut prot_rest: &mut [P] = protocols;
            let mut rng_rest: &mut [DetRng] = rngs;
            let mut lo = 0usize;
            for (w, buf) in shards.iter_mut().enumerate() {
                let hi = ((w + 1) * n).div_ceil(jobs);
                let (prots, pr) = prot_rest.split_at_mut(hi - lo);
                let (prngs, rr) = rng_rest.split_at_mut(hi - lo);
                prot_rest = pr;
                rng_rest = rr;
                if !buf.inbox.is_empty() {
                    let base = lo;
                    scope.spawn(move || {
                        Self::shard_deliver::<S>(round, n, base, prots, prngs, buf);
                    });
                }
                lo = hi;
            }
        });

        // Join + serial replay in original envelope order.
        for &w in owner.iter() {
            if w == OWNER_NONE {
                continue;
            }
            let buf = &mut shards[w as usize];
            let rec = buf.records[buf.cursor];
            buf.cursor += 1;
            let to = rec.member.index();
            if S::ENABLED {
                sink.record(TraceEvent::Deliver {
                    from: rec.from,
                    to: rec.member,
                    round,
                    sent_at: rec.sent_at,
                });
                if !started.contains(to) {
                    sink.record(TraceEvent::Start {
                        member: rec.member,
                        round,
                    });
                }
            }
            if started.insert(to) {
                unstarted.remove(to);
                due.remove(to);
            }
            if S::ENABLED {
                for ev in &buf.events.0[rec.ev_start as usize..(rec.ev_start + rec.ev_len) as usize]
                {
                    sink.record(*ev);
                }
            }
            if rec.now_done {
                active.remove(to);
            } else {
                active.insert(to);
            }
            if S::ENABLED && !rec.was_done && rec.now_done {
                sink.record(TraceEvent::Terminate {
                    member: rec.member,
                    round,
                    completeness: rec.completeness,
                });
            }
            Self::replay_sends(net, round, rec, buf, sink);
        }
    }

    /// Parallel visit phase: chunk the ascending visit set into
    /// contiguous ranges, run `on_round` for each chunk on scoped
    /// threads, then replay outcomes serially in visit order. Engine
    /// bookkeeping (start/terminate, bitsets, `protocol_steps`) happens
    /// only in the replay, mirroring the serial loop line for line.
    // lint:hot — fork-join visit path; all scratch lives in `shards`.
    #[allow(clippy::too_many_arguments)]
    fn visit_parallel<S: TraceSink>(
        &mut self,
        round: Round,
        n: usize,
        visit: &[u32],
        unstarted: &mut DenseBitSet,
        due: &mut DenseBitSet,
        active: &mut DenseBitSet,
        shards: &mut [ShardBuf<A>],
        all_settled: &mut bool,
        protocol_steps: &mut u64,
        sink: &mut S,
    ) {
        let jobs = shards.len();
        for shard in shards.iter_mut() {
            shard.reset();
        }
        let Simulation {
            protocols,
            rngs,
            net,
            failure,
            started,
            ..
        } = self;
        // Chunk the ascending visit set evenly by count; each chunk's
        // id span yields the `split_at_mut` boundary for its worker.
        let v = visit.len();
        let failure: &FailureProcess = failure;
        thread_scope(|scope| {
            let mut prot_rest: &mut [P] = protocols;
            let mut rng_rest: &mut [DetRng] = rngs;
            let mut base = 0usize;
            for (c, buf) in shards.iter_mut().enumerate() {
                let ids = &visit[c * v / jobs..(c + 1) * v / jobs];
                // the protocol slice runs to just past the chunk's last
                // id; the final chunk takes the rest of the group
                let hi = if c + 1 == jobs {
                    n
                } else {
                    *ids.last().expect("chunks are non-empty when v >= jobs") as usize + 1
                };
                let (prots, pr) = prot_rest.split_at_mut(hi - base);
                let (prngs, rr) = rng_rest.split_at_mut(hi - base);
                prot_rest = pr;
                rng_rest = rr;
                let lo = base;
                scope.spawn(move || {
                    Self::shard_visit::<S>(round, n, lo, ids, prots, prngs, failure, buf);
                });
                base = hi;
            }
        });

        // Join + serial replay in visit (ascending member-id) order.
        for buf in shards.iter_mut() {
            let mut k = 0;
            while k < buf.records.len() {
                let rec = buf.records[k];
                k += 1;
                if rec.dead {
                    continue; // stays active/due; resumes on recovery
                }
                let i = rec.member.index();
                if unstarted.contains(i) {
                    // due member starting at its official round
                    unstarted.remove(i);
                    due.remove(i);
                    started.insert(i);
                    if S::ENABLED {
                        sink.record(TraceEvent::Start {
                            member: rec.member,
                            round,
                        });
                    }
                }
                if rec.pre_done {
                    active.remove(i);
                    continue;
                }
                active.insert(i);
                *all_settled = false;
                *protocol_steps += 1;
                if S::ENABLED {
                    for ev in
                        &buf.events.0[rec.ev_start as usize..(rec.ev_start + rec.ev_len) as usize]
                    {
                        sink.record(*ev);
                    }
                }
                if rec.now_done {
                    active.remove(i);
                    if S::ENABLED {
                        sink.record(TraceEvent::Terminate {
                            member: rec.member,
                            round,
                            completeness: rec.completeness,
                        });
                    }
                }
                Self::replay_sends(net, round, rec, buf, sink);
            }
        }
    }

    // lint:hot — worker side of the fork-join delivery phase: protocol
    // calls on an exclusively owned member range; outcomes are recorded,
    // never applied — all shared-state bookkeeping waits for the replay.
    fn shard_deliver<S: TraceSink>(
        round: Round,
        n: usize,
        base: usize,
        protocols: &mut [P],
        rngs: &mut [DetRng],
        buf: &mut ShardBuf<A>,
    ) {
        let mut inbox = std::mem::take(&mut buf.inbox);
        for env in inbox.drain(..) {
            let member = env.to;
            let from = env.from;
            let sent_at = env.sent_at;
            let idx = member.index() - base;
            let was_done = protocols[idx].is_done();
            let ev_start = buf.events.0.len() as u32;
            {
                let mut ctx = if S::ENABLED {
                    Ctx::traced(round, &mut rngs[idx], &mut buf.events)
                } else {
                    Ctx::new(round, &mut rngs[idx])
                };
                protocols[idx].on_message(from, env.payload, &mut ctx, &mut buf.out);
            }
            let now_done = protocols[idx].is_done();
            let mut rec = StepRecord {
                member,
                from,
                sent_at,
                was_done,
                now_done,
                ev_start,
                ev_len: buf.events.0.len() as u32 - ev_start,
                ..StepRecord::default()
            };
            if S::ENABLED && !was_done && now_done {
                rec.completeness = protocols[idx]
                    .estimate()
                    .map_or(0.0, |est| est.completeness(n));
            }
            rec.send_start = buf.sends.len() as u32;
            Self::capture_sends(buf);
            rec.send_len = buf.sends.len() as u32 - rec.send_start;
            buf.records.push(rec);
        }
        buf.inbox = inbox;
    }

    // lint:hot — worker side of the fork-join visit phase.
    #[allow(clippy::too_many_arguments)]
    fn shard_visit<S: TraceSink>(
        round: Round,
        n: usize,
        base: usize,
        ids: &[u32],
        protocols: &mut [P],
        rngs: &mut [DetRng],
        failure: &FailureProcess,
        buf: &mut ShardBuf<A>,
    ) {
        for &iv in ids {
            let me = MemberId(iv);
            let idx = iv as usize - base;
            let mut rec = StepRecord {
                member: me,
                ..StepRecord::default()
            };
            if !failure.is_alive(me) {
                rec.dead = true;
                buf.records.push(rec);
                continue;
            }
            if protocols[idx].is_done() {
                rec.pre_done = true;
                buf.records.push(rec);
                continue;
            }
            rec.ev_start = buf.events.0.len() as u32;
            {
                let mut ctx = if S::ENABLED {
                    Ctx::traced(round, &mut rngs[idx], &mut buf.events)
                } else {
                    Ctx::new(round, &mut rngs[idx])
                };
                protocols[idx].on_round(&mut ctx, &mut buf.out);
            }
            rec.ev_len = buf.events.0.len() as u32 - rec.ev_start;
            rec.now_done = protocols[idx].is_done();
            if S::ENABLED && rec.now_done {
                rec.completeness = protocols[idx]
                    .estimate()
                    .map_or(0.0, |est| est.completeness(n));
            }
            rec.send_start = buf.sends.len() as u32;
            Self::capture_sends(buf);
            rec.send_len = buf.sends.len() as u32 - rec.send_start;
            buf.records.push(rec);
        }
    }

    // lint:hot — worker-side outbox capture: wire sizes are computed in
    // parallel; the payloads wait in the shard buffer for the replay.
    fn capture_sends(buf: &mut ShardBuf<A>) {
        // destructure so the outbox drain and the send buffer can be
        // borrowed at once
        let ShardBuf { out, sends, .. } = buf;
        for (to, payload) in out.drain() {
            let bytes = payload.wire_size();
            sends.push(SendRec {
                to,
                bytes,
                payload: Some(payload),
            });
        }
    }

    // lint:hot — ordered send replay: the only place recorded sends
    // touch the network, so the shared net RNG (loss + delay draws in
    // `SimNetwork::send`) consumes exactly the serial stream.
    fn replay_sends<S: TraceSink>(
        net: &mut SimNetwork<Payload<A>>,
        round: Round,
        rec: StepRecord,
        buf: &mut ShardBuf<A>,
        sink: &mut S,
    ) {
        for s in &mut buf.sends[rec.send_start as usize..(rec.send_start + rec.send_len) as usize] {
            let payload = s.payload.take().expect("each recorded send replays once");
            let outcome = net.send(round, rec.member, s.to, payload, s.bytes);
            if S::ENABLED {
                sink.record(TraceEvent::Send {
                    from: rec.member,
                    to: s.to,
                    round,
                    bytes: u64::from(s.bytes),
                });
                match outcome {
                    SendOutcome::Queued { .. } => {}
                    SendOutcome::DroppedLoss => {
                        sink.record(TraceEvent::DropLoss {
                            from: rec.member,
                            to: s.to,
                            round,
                        });
                    }
                    SendOutcome::DroppedBandwidth => {
                        sink.record(TraceEvent::DropBandwidth {
                            from: rec.member,
                            to: s.to,
                            round,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hiergossip::{HierGossip, HierGossipConfig};
    use crate::scope::ScopeIndex;
    use gridagg_aggregate::Average;
    use gridagg_group::failure::FailureModel;
    use gridagg_group::view::View;
    use gridagg_group::{GroupBuilder, VoteDistribution};
    use gridagg_hierarchy::{FairHashPlacement, Hierarchy};
    use gridagg_simnet::network::NetworkConfig;

    fn hier_sim(n: usize, seed: u64) -> Simulation<Average, HierGossip<Average>> {
        let group = GroupBuilder::new(n)
            .votes(VoteDistribution::Index)
            .seed(seed)
            .build();
        let h = Hierarchy::for_group(4, n).unwrap();
        let index = ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, seed));
        let protocols = group
            .members()
            .iter()
            .map(|m| HierGossip::new(m.id, m.vote, index.clone(), HierGossipConfig::default()))
            .collect();
        let net = SimNetwork::new(NetworkConfig::default(), seed);
        let failure = FailureProcess::new(FailureModel::None, n, seed);
        let truth = (n as f64 - 1.0) / 2.0; // mean of 0..n-1
        Simulation::new(net, protocols, failure, seed, truth, 10_000)
    }

    #[test]
    fn perfect_network_reaches_full_completeness() {
        let report = hier_sim(64, 3).run();
        assert_eq!(report.completed(), 64);
        assert_eq!(report.crashed(), 0);
        // near-1.0: a rare straggler race can shave a subtree (see
        // runner tests); this seed completes fully
        assert!(report.mean_completeness().unwrap() > 0.99);
        assert!(report.mean_value_error().unwrap() < 1e-2);
    }

    #[test]
    fn run_is_deterministic() {
        let a = hier_sim(50, 9).run();
        let b = hier_sim(50, 9).run();
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.net.sent, b.net.sent);
        assert_eq!(a.mean_completeness(), b.mean_completeness());
    }

    #[test]
    fn different_seeds_differ() {
        let a = hier_sim(50, 1).run();
        let b = hier_sim(50, 2).run();
        assert_ne!(a.net.sent, b.net.sent);
    }

    #[test]
    fn message_complexity_near_n_log2_n() {
        // messages ≈ N · phases · rounds/phase · M; for N=64, K=4, M=2:
        // phases ≈ 3, rpp ≈ 6 ⇒ ≈ 2300; assert the right order.
        let report = hier_sim(64, 5).run();
        let msgs = report.messages() as f64;
        assert!(msgs > 500.0 && msgs < 10_000.0, "messages {msgs}");
    }

    #[test]
    fn time_complexity_is_polylog() {
        let r64 = hier_sim(64, 5).run();
        let r512 = hier_sim(512, 5).run();
        // rounds grow far slower than N: 8× group → < 3× rounds
        assert!(
            (r512.rounds as f64) < 3.0 * r64.rounds as f64,
            "{} vs {}",
            r512.rounds,
            r64.rounds
        );
    }

    #[test]
    fn crash_recovery_members_resume_and_complete() {
        // §2 model: members "arbitrarily suffer crash failures and then
        // recover". A recovered member resumes with its state intact
        // (crash-recovery with stable storage) and can still finish.
        let n = 64;
        let seed = 17;
        let group = GroupBuilder::new(n)
            .votes(VoteDistribution::Index)
            .seed(seed)
            .build();
        let h = Hierarchy::for_group(4, n).unwrap();
        let index = ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, seed));
        let protocols: Vec<HierGossip<Average>> = group
            .members()
            .iter()
            .map(|m| HierGossip::new(m.id, m.vote, index.clone(), HierGossipConfig::default()))
            .collect();
        let net = SimNetwork::new(NetworkConfig::default(), seed);
        let failure = FailureProcess::new(
            gridagg_group::failure::FailureModel::PerRoundWithRecovery { pf: 0.05, pr: 0.5 },
            n,
            seed,
        );
        let report = Simulation::new(net, protocols, failure, seed, 31.5, 10_000).run();
        // with fast recovery nearly everyone completes, despite ~5%/round churn
        assert!(
            report.completed() > n * 3 / 4,
            "only {} of {n} completed under churn",
            report.completed()
        );
        assert!(report.mean_completeness().unwrap() > 0.5);
    }

    #[test]
    fn staggered_start_still_completes() {
        // members start over a 5-round window (multicast initiation);
        // gossip wakes the rest; completeness stays high
        let n = 64;
        let group = GroupBuilder::new(n)
            .votes(VoteDistribution::Index)
            .seed(8)
            .build();
        let h = Hierarchy::for_group(4, n).unwrap();
        let index = ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, 8));
        let protocols: Vec<HierGossip<Average>> = group
            .members()
            .iter()
            .map(|m| HierGossip::new(m.id, m.vote, index.clone(), HierGossipConfig::default()))
            .collect();
        let net = SimNetwork::new(NetworkConfig::default(), 8);
        let failure = FailureProcess::new(FailureModel::None, n, 8);
        let starts: Vec<Round> = (0..n as u64).map(|i| i % 5).collect();
        let report = Simulation::new(net, protocols, failure, 8, 31.5, 10_000)
            .with_start_rounds(starts)
            .run();
        assert_eq!(report.completed(), n);
        assert!(report.mean_completeness().unwrap() > 0.95);
    }

    #[test]
    fn late_member_woken_by_gossip() {
        // one member officially starts absurdly late, but phase-1
        // gossip from its box mates wakes it almost immediately
        let n = 16;
        let group = GroupBuilder::new(n)
            .votes(VoteDistribution::Index)
            .seed(4)
            .build();
        let h = Hierarchy::for_group(4, n).unwrap();
        let index = ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, 4));
        let protocols: Vec<HierGossip<Average>> = group
            .members()
            .iter()
            .map(|m| HierGossip::new(m.id, m.vote, index.clone(), HierGossipConfig::default()))
            .collect();
        let net = SimNetwork::new(NetworkConfig::default(), 4);
        let failure = FailureProcess::new(FailureModel::None, n, 4);
        let mut starts = vec![0 as Round; n];
        starts[3] = 1_000_000; // would never start on its own
        let report = Simulation::new(net, protocols, failure, 4, 7.5, 10_000)
            .with_start_rounds(starts)
            .run();
        // the sleeper finished long before its official start round
        assert!(report.rounds < 1000, "ran {} rounds", report.rounds);
        assert_eq!(report.completed(), n);
    }

    #[test]
    fn event_loop_visits_only_members_with_pending_work() {
        // 100% loss so gossip never wakes the sleeper, and a round cap
        // below the schedule end so nobody finishes: the 7 started
        // members are visited every round, the never-started member 7
        // exactly never. The dense scan would have touched all 8.
        let n = 8;
        let group = GroupBuilder::new(n)
            .votes(VoteDistribution::Index)
            .seed(2)
            .build();
        let h = Hierarchy::for_group(4, n).unwrap();
        let index = ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, 2));
        let protocols: Vec<HierGossip<Average>> = group
            .members()
            .iter()
            .map(|m| HierGossip::new(m.id, m.vote, index.clone(), HierGossipConfig::default()))
            .collect();
        let net = SimNetwork::new(
            NetworkConfig::default()
                .with_loss(gridagg_simnet::loss::UniformLoss::new(1.0).unwrap()),
            2,
        );
        let failure = FailureProcess::new(FailureModel::None, n, 2);
        let mut starts = vec![0 as Round; n];
        starts[7] = 1_000_000; // due far beyond the cap: never visited
        let report = Simulation::new(net, protocols, failure, 2, 3.5, 5)
            .with_start_rounds(starts)
            .run();
        assert_eq!(report.rounds, 5);
        assert_eq!(report.protocol_steps, 7 * 5);
    }

    #[test]
    fn done_members_drop_out_of_the_round_loop() {
        // on a perfect network every member finishes at the schedule
        // end, and the settling round that detects termination visits
        // nobody — so steps stay strictly below the dense-scan n*rounds
        let report = hier_sim(64, 3).run();
        assert!(report.protocol_steps > 0);
        assert!(
            report.protocol_steps < 64 * report.rounds,
            "steps {} vs dense {}",
            report.protocol_steps,
            64 * report.rounds
        );
    }

    #[test]
    fn traced_run_matches_untraced_run() {
        // Tracing must observe, never perturb: same seed, same report.
        let untraced = hier_sim(50, 9).run();
        let mut trace = crate::trace::RunTrace::for_group(50);
        let traced = hier_sim(50, 9).run_with(&mut trace);
        assert_eq!(untraced.rounds, traced.rounds);
        assert_eq!(untraced.net, traced.net);
        assert_eq!(untraced.outcomes, traced.outcomes);
        assert!(!trace.is_empty(), "traced run must record events");
    }

    #[test]
    fn trace_narrates_the_run_consistently() {
        let n = 64;
        let mut trace = crate::trace::RunTrace::for_group(n);
        let report = hier_sim(n, 3).run_with(&mut trace);

        // network accounting and the trace agree message-for-message
        let hist = trace.per_round_messages();
        let sent: u64 = hist.iter().map(|h| h.sent).sum();
        let delivered: u64 = hist.iter().map(|h| h.delivered).sum();
        assert_eq!(sent, report.net.sent);
        assert_eq!(delivered, report.net.delivered);

        // every member started in round 0 and terminated
        let terms = trace.terminations();
        assert_eq!(terms.iter().filter(|t| t.is_some()).count(), n);

        // phase timelines exist and are monotone in round
        for tl in trace.phase_timelines() {
            assert!(!tl.is_empty(), "hiergossip members change phases");
            for w in tl.windows(2) {
                assert!(w[0].at <= w[1].at);
            }
        }

        // incompleteness falls from near 1 to the report's terminal value
        let curve = trace.incompleteness_over_time();
        assert_eq!(curve.len() as Round, report.rounds);
        assert!(curve[0] > 0.9, "round 0: members only know themselves");
        let last = *curve.last().unwrap();
        assert!(
            last <= report.mean_incompleteness() + 1e-9,
            "curve must reach terminal incompleteness: {last}"
        );
    }

    #[test]
    fn fork_join_run_is_byte_identical_to_serial() {
        // N=256 keeps rounds above PAR_MIN_ITEMS, so the parallel
        // phases genuinely engage; the whole trace stream — every
        // event, in order — and the report must match the serial run
        // at any thread count.
        let mut serial_trace = crate::trace::RunTrace::for_group(256);
        let serial = hier_sim(256, 7).run_with(&mut serial_trace);
        for jobs in [2, 4] {
            let mut par_trace = crate::trace::RunTrace::for_group(256);
            let par = hier_sim(256, 7)
                .with_engine_jobs(jobs)
                .run_with(&mut par_trace);
            assert_eq!(serial.rounds, par.rounds, "jobs={jobs}");
            assert_eq!(serial.net, par.net, "jobs={jobs}");
            assert_eq!(serial.outcomes, par.outcomes, "jobs={jobs}");
            assert_eq!(serial.protocol_steps, par.protocol_steps, "jobs={jobs}");
            assert_eq!(
                serial_trace.events, par_trace.events,
                "jobs={jobs}: full trace streams must be identical"
            );
        }
    }

    #[test]
    fn fork_join_untraced_matches_serial_untraced() {
        // The untraced (NoTrace) path skips all event buffering in the
        // workers; proxy counters must still be identical.
        let serial = hier_sim(300, 11).run();
        let par = hier_sim(300, 11).with_engine_jobs(3).run();
        assert_eq!(serial.rounds, par.rounds);
        assert_eq!(serial.net, par.net);
        assert_eq!(serial.outcomes, par.outcomes);
        assert_eq!(serial.protocol_steps, par.protocol_steps);
    }

    #[test]
    fn fork_join_handles_churn_and_staggered_starts() {
        // Dead members and due-to-start members exercise the replay's
        // bookkeeping branches (dead skip, gossip wake-up, official
        // start) — outcomes must match the serial engine exactly.
        let build = || {
            let n = 256;
            let seed = 17;
            let group = GroupBuilder::new(n)
                .votes(VoteDistribution::Index)
                .seed(seed)
                .build();
            let h = Hierarchy::for_group(4, n).unwrap();
            let index = ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, seed));
            let protocols: Vec<HierGossip<Average>> = group
                .members()
                .iter()
                .map(|m| HierGossip::new(m.id, m.vote, index.clone(), HierGossipConfig::default()))
                .collect();
            let net = SimNetwork::new(
                NetworkConfig::default()
                    .with_loss(gridagg_simnet::loss::UniformLoss::new(0.25).unwrap()),
                seed,
            );
            let failure = FailureProcess::new(
                FailureModel::PerRoundWithRecovery { pf: 0.02, pr: 0.5 },
                n,
                seed,
            );
            let starts: Vec<Round> = (0..n as u64).map(|i| i % 7).collect();
            Simulation::new(net, protocols, failure, seed, 127.5, 10_000).with_start_rounds(starts)
        };
        let serial = build().run();
        let par = build().with_engine_jobs(4).run();
        assert_eq!(serial.rounds, par.rounds);
        assert_eq!(serial.net, par.net);
        assert_eq!(serial.outcomes, par.outcomes);
        assert_eq!(serial.protocol_steps, par.protocol_steps);
    }

    #[test]
    fn engine_jobs_clamped_to_limits() {
        let sim = hier_sim(8, 1).with_engine_jobs(0);
        assert_eq!(sim.engine_jobs, 1);
        let sim = hier_sim(8, 1).with_engine_jobs(10_000);
        assert_eq!(sim.engine_jobs, MAX_ENGINE_JOBS);
    }

    #[test]
    #[should_panic(expected = "one start round per member")]
    fn start_rounds_length_checked() {
        let sim = hier_sim(8, 1);
        let _ = sim.with_start_rounds(vec![0; 3]);
    }

    #[test]
    #[should_panic(expected = "needs members")]
    fn empty_simulation_panics() {
        let net: SimNetwork<Payload<Average>> = SimNetwork::new(NetworkConfig::default(), 1);
        let failure = FailureProcess::new(FailureModel::None, 0, 1);
        let _: Simulation<Average, HierGossip<Average>> =
            Simulation::new(net, Vec::new(), failure, 1, 0.0, 10);
    }
}
