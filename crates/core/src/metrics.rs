//! Per-run measurements: the paper's three metrics.
//!
//! * **Completeness** — fraction of the `N` (initial) member votes
//!   included in the final estimate at each member; the headline y-axis
//!   (as *incompleteness*) of Figures 6–11.
//! * **Message complexity** — total messages handed to the network.
//! * **Time complexity** — rounds until the last surviving member
//!   terminated.

use gridagg_simnet::stats::NetworkStats;
use gridagg_simnet::Round;

/// Outcome of one member at the end of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemberOutcome {
    /// Terminated with an estimate covering this fraction of the group's
    /// votes, with this summary value, at this round.
    Completed {
        /// Fraction of the N initial votes included.
        completeness: f64,
        /// The estimate's headline value.
        value: f64,
        /// Termination round.
        at: Round,
    },
    /// Crashed before terminating.
    Crashed,
    /// Still running when the simulation hit its round cap.
    TimedOut,
}

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Initial group size `N`.
    pub n: usize,
    /// Rounds the simulation executed.
    pub rounds: Round,
    /// Per-member outcomes, indexed by member id.
    pub outcomes: Vec<MemberOutcome>,
    /// Ground-truth aggregate value over all `N` votes.
    pub true_value: f64,
    /// Network accounting for the run.
    pub net: NetworkStats,
    /// Protocol `on_round` invocations the engine performed. The
    /// event-driven round loop only visits members with pending work
    /// (started, alive, not yet done), so this is typically far below
    /// `n * rounds`.
    pub protocol_steps: u64,
}

impl RunReport {
    /// Members that terminated with an estimate.
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, MemberOutcome::Completed { .. }))
            .count()
    }

    /// Members that crashed during the run.
    pub fn crashed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, MemberOutcome::Crashed))
            .count()
    }

    /// Mean completeness over members that completed (`None` if nobody
    /// did).
    pub fn mean_completeness(&self) -> Option<f64> {
        let (sum, cnt) = self.outcomes.iter().fold((0.0, 0usize), |(s, c), o| {
            if let MemberOutcome::Completed { completeness, .. } = o {
                (s + completeness, c + 1)
            } else {
                (s, c)
            }
        });
        (cnt > 0).then(|| sum / cnt as f64)
    }

    /// Mean incompleteness `1 − completeness` over completed members
    /// (the paper's y-axis); `1.0` when nobody completed.
    pub fn mean_incompleteness(&self) -> f64 {
        self.mean_completeness().map_or(1.0, |c| 1.0 - c)
    }

    /// Worst completeness over completed members.
    pub fn min_completeness(&self) -> Option<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                MemberOutcome::Completed { completeness, .. } => Some(*completeness),
                _ => None,
            })
            .min_by(f64::total_cmp)
    }

    /// Mean absolute error of completed members' values versus ground
    /// truth, normalised by the truth's magnitude (`None` if nobody
    /// completed or the truth is ~0).
    pub fn mean_value_error(&self) -> Option<f64> {
        if self.true_value.abs() < 1e-12 {
            return None;
        }
        let (sum, cnt) = self.outcomes.iter().fold((0.0, 0usize), |(s, c), o| {
            if let MemberOutcome::Completed { value, .. } = o {
                (s + (value - self.true_value).abs(), c + 1)
            } else {
                (s, c)
            }
        });
        (cnt > 0).then(|| sum / cnt as f64 / self.true_value.abs())
    }

    /// Round by which the last completing member terminated (`None` if
    /// nobody completed).
    pub fn last_completion(&self) -> Option<Round> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                MemberOutcome::Completed { at, .. } => Some(*at),
                _ => None,
            })
            .max()
    }

    /// Total messages handed to the network (message complexity).
    pub fn messages(&self) -> u64 {
        self.net.sent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            n: 4,
            rounds: 20,
            outcomes: vec![
                MemberOutcome::Completed {
                    completeness: 1.0,
                    value: 10.0,
                    at: 18,
                },
                MemberOutcome::Completed {
                    completeness: 0.5,
                    value: 12.0,
                    at: 15,
                },
                MemberOutcome::Crashed,
                MemberOutcome::TimedOut,
            ],
            true_value: 10.0,
            net: NetworkStats {
                sent: 100,
                ..Default::default()
            },
            protocol_steps: 0,
        }
    }

    #[test]
    fn counts() {
        let r = report();
        assert_eq!(r.completed(), 2);
        assert_eq!(r.crashed(), 1);
        assert_eq!(r.messages(), 100);
    }

    #[test]
    fn completeness_stats() {
        let r = report();
        assert!((r.mean_completeness().unwrap() - 0.75).abs() < 1e-12);
        assert!((r.mean_incompleteness() - 0.25).abs() < 1e-12);
        assert_eq!(r.min_completeness(), Some(0.5));
    }

    #[test]
    fn value_error() {
        let r = report();
        // errors: 0 and 2 → mean 1 → /10 = 0.1
        assert!((r.mean_value_error().unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn last_completion() {
        assert_eq!(report().last_completion(), Some(18));
    }

    #[test]
    fn empty_run_degenerates() {
        let r = RunReport {
            n: 2,
            rounds: 5,
            outcomes: vec![MemberOutcome::Crashed, MemberOutcome::Crashed],
            true_value: 0.0,
            net: NetworkStats::default(),
            protocol_steps: 0,
        };
        assert_eq!(r.mean_completeness(), None);
        assert_eq!(r.mean_incompleteness(), 1.0);
        assert_eq!(r.min_completeness(), None);
        assert_eq!(r.mean_value_error(), None);
        assert_eq!(r.last_completion(), None);
    }
}
