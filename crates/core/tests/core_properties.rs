//! Property-style tests for gridagg-core's structural invariants — the
//! scope index partition, leader-directory nesting, and protocol
//! determinism under randomized shapes — driven by a seeded [`DetRng`]
//! so every case is deterministic and reproducible.

use std::sync::Arc;

use gridagg_core::baselines::{LeaderDirectory, LeaderElectionConfig};
use gridagg_core::scope::ScopeIndex;
use gridagg_group::view::View;
use gridagg_group::MemberId;
use gridagg_hierarchy::{Addr, FairHashPlacement, Hierarchy};
use gridagg_simnet::rng::DetRng;

const CASES: usize = 24;

fn rng_for(label: u64) -> DetRng {
    DetRng::seeded(0xBEEF_0000 ^ label)
}

fn index_for(n: usize, k: u8, salt: u64) -> Arc<ScopeIndex> {
    let h = Hierarchy::for_group(k, n).expect("valid shape");
    ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, salt))
}

/// Every prefix level partitions the membership exactly: the union of
/// sibling subtrees equals the parent, with no overlap.
#[test]
fn scope_index_partitions_at_every_level() {
    let mut rng = rng_for(1);
    for _ in 0..CASES {
        let n = 4 + rng.below(596);
        let k = 2 + rng.below(6) as u8;
        let salt = rng.raw().next_u64();
        let index = index_for(n, k, salt);
        let h = *index.hierarchy();
        for len in 0..h.depth() {
            for i in 0..(h.k() as u64).pow(len as u32) {
                let parent = Addr::from_index(h.k(), len, i).expect("prefix");
                let parent_count = index.count_in(&parent);
                let child_sum: usize = parent.children().map(|c| index.count_in(&c)).sum();
                assert_eq!(parent_count, child_sum, "prefix {parent} at len {len}");
            }
        }
        let root = Addr::root(h.k()).expect("root");
        assert_eq!(index.count_in(&root), n);
    }
}

/// Every member is in exactly the subtree chain its own box implies.
#[test]
fn members_live_in_their_own_chain() {
    let mut rng = rng_for(2);
    for _ in 0..CASES {
        let n = 4 + rng.below(396);
        let k = 2 + rng.below(4) as u8;
        let salt = rng.raw().next_u64();
        let index = index_for(n, k, salt);
        let h = *index.hierarchy();
        for id in (0..n as u32).step_by(7) {
            let m = MemberId(id);
            let b = index.box_of(m);
            for len in 0..=h.depth() {
                let prefix = b.prefix(len);
                assert!(
                    index.members_in(&prefix).contains(&m),
                    "{m} missing from its own prefix {prefix}"
                );
            }
        }
    }
}

/// Leader committees nest: a committee member of any prefix is a
/// committee member of its own child subtree as well, and committees
/// are drawn from the subtree they lead.
#[test]
fn leader_committees_nest_and_belong() {
    let mut rng = rng_for(3);
    for _ in 0..CASES {
        let n = 8 + rng.below(392);
        let k = 2 + rng.below(4) as u8;
        let committee = 1 + rng.below(3);
        let salt = rng.raw().next_u64();
        let index = index_for(n, k, salt);
        let h = *index.hierarchy();
        let cfg = LeaderElectionConfig {
            committee,
            ..Default::default()
        };
        let dir = LeaderDirectory::build(&index, &cfg);
        for len in 0..=h.depth() {
            for i in 0..(h.k() as u64).pow(len as u32) {
                let p = Addr::from_index(h.k(), len, i).expect("prefix");
                let c = dir.committee(&p);
                let population = index.count_in(&p);
                assert_eq!(c.len(), committee.min(population), "prefix {p}");
                for &m in c {
                    assert!(p.contains(&index.box_of(m)));
                    if len < h.depth() {
                        let child = index.box_of(m).prefix(len + 1);
                        assert!(
                            dir.is_committee(&child, m),
                            "{m} leads {p} but not its child {child}"
                        );
                    }
                }
            }
        }
    }
}

/// Full simulation determinism across arbitrary shapes: identical
/// (config, seed) inputs produce byte-identical outcomes.
#[test]
fn random_shapes_are_deterministic() {
    use gridagg_aggregate::Average;
    use gridagg_core::config::ExperimentConfig;
    use gridagg_core::runner::run_hiergossip;

    let mut rng = rng_for(4);
    for case in 0..8 {
        let n = 8 + rng.below(192);
        let k = 2 + rng.below(6) as u8;
        let ucastl = rng.unit() * 0.7;
        let pf = rng.unit() * 0.01;
        let seed = rng.raw().next_u64() % 1_000_003;

        let mut cfg = ExperimentConfig::paper_defaults()
            .with_n(n)
            .with_ucastl(ucastl);
        cfg.k = k;
        cfg.pf = pf;
        let a = run_hiergossip::<Average>(&cfg, seed);
        let b = run_hiergossip::<Average>(&cfg, seed);
        assert_eq!(a.rounds, b.rounds, "case {case}");
        assert_eq!(a.net.sent, b.net.sent, "case {case}");
        assert_eq!(a.outcomes, b.outcomes, "case {case}");
    }
}
