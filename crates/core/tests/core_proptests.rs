//! Property tests for gridagg-core's structural invariants: the scope
//! index partition, leader-directory nesting, and protocol determinism
//! under randomized shapes.

use proptest::prelude::*;
use std::sync::Arc;

use gridagg_core::baselines::{LeaderDirectory, LeaderElectionConfig};
use gridagg_core::scope::ScopeIndex;
use gridagg_group::view::View;
use gridagg_group::MemberId;
use gridagg_hierarchy::{Addr, FairHashPlacement, Hierarchy};

fn index_for(n: usize, k: u8, salt: u64) -> Arc<ScopeIndex> {
    let h = Hierarchy::for_group(k, n).expect("valid shape");
    ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, salt))
}

proptest! {
    /// Every prefix level partitions the membership exactly: the union
    /// of sibling subtrees equals the parent, with no overlap.
    #[test]
    fn scope_index_partitions_at_every_level(
        n in 4usize..600,
        k in 2u8..8,
        salt in any::<u64>(),
    ) {
        let index = index_for(n, k, salt);
        let h = *index.hierarchy();
        for len in 0..h.depth() {
            for i in 0..(h.k() as u64).pow(len as u32) {
                let parent = Addr::from_index(h.k(), len, i).expect("prefix");
                let parent_count = index.count_in(&parent);
                let child_sum: usize = parent.children().map(|c| index.count_in(&c)).sum();
                prop_assert_eq!(parent_count, child_sum, "prefix {} at len {}", parent, len);
            }
        }
        let root = Addr::root(h.k()).expect("root");
        prop_assert_eq!(index.count_in(&root), n);
    }

    /// Every member is in exactly the subtree chain its own box implies.
    #[test]
    fn members_live_in_their_own_chain(
        n in 4usize..400,
        k in 2u8..6,
        salt in any::<u64>(),
    ) {
        let index = index_for(n, k, salt);
        let h = *index.hierarchy();
        for id in (0..n as u32).step_by(7) {
            let m = MemberId(id);
            let b = index.box_of(m);
            for len in 0..=h.depth() {
                let prefix = b.prefix(len);
                prop_assert!(
                    index.members_in(&prefix).contains(&m),
                    "{m} missing from its own prefix {prefix}"
                );
            }
        }
    }

    /// Leader committees nest: a committee member of any prefix is a
    /// committee member of its own child subtree as well, and committees
    /// are drawn from the subtree they lead.
    #[test]
    fn leader_committees_nest_and_belong(
        n in 8usize..400,
        k in 2u8..6,
        committee in 1usize..4,
        salt in any::<u64>(),
    ) {
        let index = index_for(n, k, salt);
        let h = *index.hierarchy();
        let cfg = LeaderElectionConfig {
            committee,
            ..Default::default()
        };
        let dir = LeaderDirectory::build(&index, &cfg);
        for len in 0..=h.depth() {
            for i in 0..(h.k() as u64).pow(len as u32) {
                let p = Addr::from_index(h.k(), len, i).expect("prefix");
                let c = dir.committee(&p);
                let population = index.count_in(&p);
                prop_assert_eq!(c.len(), committee.min(population), "prefix {}", p);
                for &m in c {
                    prop_assert!(p.contains(&index.box_of(m)));
                    if len < h.depth() {
                        let child = index.box_of(m).prefix(len + 1);
                        prop_assert!(
                            dir.is_committee(&child, m),
                            "{m} leads {p} but not its child {child}"
                        );
                    }
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Full simulation determinism across arbitrary shapes: identical
    /// (config, seed) inputs produce byte-identical outcomes.
    #[test]
    fn random_shapes_are_deterministic(
        n in 8usize..200,
        k in 2u8..8,
        ucastl in 0.0f64..0.7,
        pf in 0.0f64..0.01,
        seed in any::<u64>(),
    ) {
        use gridagg_aggregate::Average;
        use gridagg_core::config::ExperimentConfig;
        use gridagg_core::runner::run_hiergossip;

        let mut cfg = ExperimentConfig::paper_defaults().with_n(n).with_ucastl(ucastl);
        cfg.k = k;
        cfg.pf = pf;
        let seed = seed % 1_000_003;
        let a = run_hiergossip::<Average>(&cfg, seed);
        let b = run_hiergossip::<Average>(&cfg, seed);
        prop_assert_eq!(a.rounds, b.rounds);
        prop_assert_eq!(a.net.sent, b.net.sent);
        prop_assert_eq!(a.outcomes, b.outcomes);
    }
}
