//! Epoch-level membership churn: join / leave / crash / recover.
//!
//! The paper's simulations crash members without recovery (§7), but its
//! model lets members "arbitrarily suffer crash failures and then
//! recover" (§2), and a production group also sees *voluntary* churn —
//! members joining and leaving between aggregation epochs. This module
//! provides the membership side of the continuous aggregation service:
//! a [`MembershipProcess`] advances the group one epoch at a time,
//! emitting deterministic [`MembershipEvent`]s, and composes with the
//! per-round [`FailureModel`]s — between
//! epochs the *membership* churns (this module), within an epoch the
//! *failure process* crashes and recovers members round by round.
//!
//! Member identifiers are never reused: joiners extend the id space, a
//! member that [`MemberState::Left`] stays gone. A
//! [`MemberState::Down`] member is crashed but recoverable — the
//! crash-recovery model with stable storage.

use gridagg_simnet::rng::DetRng;

use crate::failure::FailureModel;
use crate::MemberId;

/// Liveness/membership state of one member id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// In the group and running.
    Up,
    /// Crashed; may recover with its identifier (and stable state).
    Down,
    /// Voluntarily departed; never returns (ids are not reused).
    Left,
}

/// Per-epoch churn rates, applied *between* aggregation epochs.
///
/// All probabilities are per member per epoch; `join_rate` is the
/// expected number of new members per epoch (fractional rates join
/// probabilistically).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnModel {
    /// Expected joins per epoch (new ids appended to the group).
    pub join_rate: f64,
    /// Probability an up member voluntarily leaves, per epoch.
    pub leave_prob: f64,
    /// Probability an up member crashes between epochs.
    pub crash_prob: f64,
    /// Probability a down member recovers, per epoch.
    pub recover_prob: f64,
}

impl ChurnModel {
    /// No churn at all — the continuous service degenerates to the
    /// monotone-shrink periodic mode.
    pub fn none() -> Self {
        ChurnModel {
            join_rate: 0.0,
            leave_prob: 0.0,
            crash_prob: 0.0,
            recover_prob: 0.0,
        }
    }

    /// Validate probability ranges.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.join_rate.is_finite() && self.join_rate >= 0.0) {
            return Err(format!("join_rate={} must be >= 0", self.join_rate));
        }
        for (name, p) in [
            ("leave_prob", self.leave_prob),
            ("crash_prob", self.crash_prob),
            ("recover_prob", self.recover_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name}={p} outside [0,1]"));
            }
        }
        Ok(())
    }
}

/// One membership change at an epoch boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipEvent {
    /// A new member entered the group (fresh id).
    Joined(MemberId),
    /// An up member left voluntarily (permanent).
    Left(MemberId),
    /// An up member crashed between epochs (recoverable).
    Crashed(MemberId),
    /// A down member came back up.
    Recovered(MemberId),
}

/// The running membership process for the continuous aggregation
/// service: tracks every id ever issued and advances the group one
/// epoch at a time.
///
/// ```
/// use gridagg_group::membership::{ChurnModel, MembershipProcess};
///
/// let mut group = MembershipProcess::new(
///     8,
///     ChurnModel {
///         join_rate: 1.0,
///         leave_prob: 0.0,
///         crash_prob: 0.0,
///         recover_prob: 0.0,
///     },
///     7,
/// );
/// assert_eq!(group.up_count(), 8);
/// group.epoch_step();
/// assert!(group.population() > 8, "one join per epoch on average");
/// ```
#[derive(Debug, Clone)]
pub struct MembershipProcess {
    states: Vec<MemberState>,
    model: ChurnModel,
    rng: DetRng,
}

impl MembershipProcess {
    /// A group of `initial_n` up members with the given churn model.
    /// `seed` should be a fork of the run seed.
    ///
    /// # Panics
    ///
    /// Panics if the churn model fails [`ChurnModel::validate`].
    pub fn new(initial_n: usize, model: ChurnModel, seed: u64) -> Self {
        model.validate().expect("invalid churn model");
        MembershipProcess {
            states: vec![MemberState::Up; initial_n],
            model,
            rng: DetRng::seeded(seed).fork(0x6D62_7368), // "mbsh"
        }
    }

    /// Total identifiers ever issued (up + down + left).
    pub fn population(&self) -> usize {
        self.states.len()
    }

    /// The state of a member id (`Left` for ids never issued).
    pub fn state(&self, id: MemberId) -> MemberState {
        self.states
            .get(id.index())
            .copied()
            .unwrap_or(MemberState::Left)
    }

    /// Whether `id` is currently up.
    pub fn is_up(&self, id: MemberId) -> bool {
        self.state(id) == MemberState::Up
    }

    /// Number of currently-up members.
    pub fn up_count(&self) -> usize {
        self.states
            .iter()
            .filter(|&&s| s == MemberState::Up)
            .count()
    }

    /// The currently-up members, ascending by id — the *true
    /// membership* an epoch's completeness score is measured against.
    pub fn up_members(&self) -> Vec<MemberId> {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, &s)| s == MemberState::Up)
            .map(|(i, _)| MemberId(i as u32))
            .collect()
    }

    /// Liveness mask over the whole id universe (`true` = up), for
    /// seeding a [`FailureProcess`](crate::failure::FailureProcess)
    /// over stable ids via
    /// [`FailureProcess::with_liveness`](crate::failure::FailureProcess::with_liveness).
    pub fn up_mask(&self) -> Vec<bool> {
        self.states.iter().map(|&s| s == MemberState::Up).collect()
    }

    /// Advance one epoch boundary: leaves, between-epoch crashes, and
    /// recoveries over existing members (in id order), then joins
    /// appended with fresh ids. Deterministic per seed.
    pub fn epoch_step(&mut self) -> Vec<MembershipEvent> {
        let mut events = Vec::new();
        for i in 0..self.states.len() {
            let id = MemberId(i as u32);
            match self.states[i] {
                MemberState::Up => {
                    if self.rng.chance(self.model.leave_prob) {
                        self.states[i] = MemberState::Left;
                        events.push(MembershipEvent::Left(id));
                    } else if self.rng.chance(self.model.crash_prob) {
                        self.states[i] = MemberState::Down;
                        events.push(MembershipEvent::Crashed(id));
                    }
                }
                MemberState::Down => {
                    if self.rng.chance(self.model.recover_prob) {
                        self.states[i] = MemberState::Up;
                        events.push(MembershipEvent::Recovered(id));
                    }
                }
                MemberState::Left => {}
            }
        }
        let joins = {
            let whole = self.model.join_rate.floor();
            let frac = self.model.join_rate - whole;
            whole as usize + usize::from(self.rng.chance(frac))
        };
        for _ in 0..joins {
            let id = MemberId(self.states.len() as u32);
            self.states.push(MemberState::Up);
            events.push(MembershipEvent::Joined(id));
        }
        events
    }

    /// Fold a crash observed *during* an epoch (a `Crashed` outcome in
    /// the epoch's run report) back into the membership: the member is
    /// down — and recoverable — from the next epoch boundary on. No-op
    /// for members already down or left.
    pub fn note_crash(&mut self, id: MemberId) {
        if let Some(s) = self.states.get_mut(id.index()) {
            if *s == MemberState::Up {
                *s = MemberState::Down;
            }
        }
    }

    /// The within-epoch failure model composing with this membership:
    /// `pf`/`pr` are the per-round crash/recovery probabilities of the
    /// one-shot run an epoch executes. `pr > 0` finally makes
    /// [`FailureModel::PerRoundWithRecovery`] reachable from a runner.
    pub fn within_epoch_model(pf: f64, pr: f64) -> FailureModel {
        if pf <= 0.0 {
            FailureModel::None
        } else if pr > 0.0 {
            FailureModel::PerRoundWithRecovery { pf, pr }
        } else {
            FailureModel::PerRound { pf }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(join: f64, leave: f64, crash: f64, recover: f64) -> ChurnModel {
        ChurnModel {
            join_rate: join,
            leave_prob: leave,
            crash_prob: crash,
            recover_prob: recover,
        }
    }

    #[test]
    fn no_churn_is_static() {
        let mut p = MembershipProcess::new(16, ChurnModel::none(), 1);
        for _ in 0..10 {
            assert!(p.epoch_step().is_empty());
        }
        assert_eq!(p.up_count(), 16);
        assert_eq!(p.population(), 16);
    }

    #[test]
    fn joins_extend_the_id_space() {
        let mut p = MembershipProcess::new(4, model(2.0, 0.0, 0.0, 0.0), 2);
        let events = p.epoch_step();
        assert_eq!(events.len(), 2);
        assert_eq!(p.population(), 6);
        assert_eq!(p.up_count(), 6);
        assert!(matches!(events[0], MembershipEvent::Joined(MemberId(4))));
        assert!(matches!(events[1], MembershipEvent::Joined(MemberId(5))));
    }

    #[test]
    fn fractional_join_rate_averages_out() {
        let mut p = MembershipProcess::new(1, model(0.5, 0.0, 0.0, 0.0), 3);
        for _ in 0..200 {
            p.epoch_step();
        }
        let joined = p.population() - 1;
        assert!((60..=140).contains(&joined), "joined {joined} of ~100");
    }

    #[test]
    fn leavers_never_return() {
        let mut p = MembershipProcess::new(50, model(0.0, 0.5, 0.0, 1.0), 4);
        let mut left = std::collections::HashSet::new();
        for _ in 0..20 {
            for e in p.epoch_step() {
                match e {
                    MembershipEvent::Left(m) => {
                        assert!(left.insert(m), "{m} left twice");
                    }
                    MembershipEvent::Recovered(_) => panic!("nobody ever crashed"),
                    _ => {}
                }
            }
        }
        for &m in &left {
            assert_eq!(p.state(m), MemberState::Left);
        }
        assert_eq!(p.up_count(), 50 - left.len());
    }

    #[test]
    fn crash_then_recover_round_trips() {
        let mut p = MembershipProcess::new(100, model(0.0, 0.0, 0.3, 0.5), 5);
        let mut recovered = 0;
        for _ in 0..30 {
            for e in p.epoch_step() {
                match e {
                    MembershipEvent::Crashed(m) => assert_eq!(p.state(m), MemberState::Down),
                    MembershipEvent::Recovered(m) => {
                        assert_eq!(p.state(m), MemberState::Up);
                        recovered += 1;
                    }
                    _ => {}
                }
            }
        }
        assert!(recovered > 0, "crash/recover churn must recover someone");
    }

    #[test]
    fn note_crash_marks_down_and_recoverable() {
        let mut p = MembershipProcess::new(4, model(0.0, 0.0, 0.0, 1.0), 6);
        p.note_crash(MemberId(2));
        assert_eq!(p.state(MemberId(2)), MemberState::Down);
        assert_eq!(p.up_count(), 3);
        let events = p.epoch_step();
        assert_eq!(events, vec![MembershipEvent::Recovered(MemberId(2))]);
        // note_crash on a left member is a no-op
        let mut q = MembershipProcess::new(2, model(0.0, 1.0, 0.0, 1.0), 7);
        q.epoch_step();
        q.note_crash(MemberId(0));
        assert_eq!(q.state(MemberId(0)), MemberState::Left);
    }

    #[test]
    fn up_members_and_mask_agree() {
        let mut p = MembershipProcess::new(30, model(1.0, 0.1, 0.1, 0.3), 8);
        for _ in 0..5 {
            p.epoch_step();
        }
        let up = p.up_members();
        let mask = p.up_mask();
        assert_eq!(mask.len(), p.population());
        assert_eq!(up.len(), p.up_count());
        for &m in &up {
            assert!(mask[m.index()]);
            assert!(p.is_up(m));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed| {
            let mut p = MembershipProcess::new(40, model(1.5, 0.05, 0.1, 0.4), seed);
            (0..12).map(|_| p.epoch_step().len()).collect::<Vec<_>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "different seeds should differ");
    }

    #[test]
    fn within_epoch_model_composition() {
        assert_eq!(
            MembershipProcess::within_epoch_model(0.0, 0.5),
            FailureModel::None
        );
        assert_eq!(
            MembershipProcess::within_epoch_model(0.01, 0.0),
            FailureModel::PerRound { pf: 0.01 }
        );
        assert_eq!(
            MembershipProcess::within_epoch_model(0.01, 0.2),
            FailureModel::PerRoundWithRecovery { pf: 0.01, pr: 0.2 }
        );
    }

    #[test]
    #[should_panic(expected = "invalid churn model")]
    fn bad_model_rejected() {
        let _ = MembershipProcess::new(4, model(0.0, 1.5, 0.0, 0.0), 1);
    }

    #[test]
    fn out_of_range_id_is_left() {
        let p = MembershipProcess::new(3, ChurnModel::none(), 1);
        assert_eq!(p.state(MemberId(99)), MemberState::Left);
        assert!(!p.is_up(MemberId(99)));
    }
}
