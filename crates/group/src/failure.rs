//! Crash-failure injection.
//!
//! §7: "Members were prone to crashes (without recovery) in every gossip
//! round with probability `pf`." [`FailureModel::PerRound`] reproduces
//! exactly that; [`FailureModel::Scheduled`] supports targeted-failure
//! experiments (e.g. killing subtree leaders, §6.2), and
//! [`FailureModel::PerRoundWithRecovery`] the paper's model-level
//! "arbitrarily suffer crash failures and then recover".

use gridagg_simnet::rng::DetRng;
use gridagg_simnet::Round;

use crate::MemberId;

/// How members fail over the course of a run.
#[derive(Debug, Clone, PartialEq)]
pub enum FailureModel {
    /// Nobody fails.
    None,
    /// Each alive member crashes with probability `pf` per round, never
    /// recovering (the paper's simulation model).
    PerRound {
        /// Per-round crash probability.
        pf: f64,
    },
    /// Each alive member crashes with probability `pf` per round; each
    /// crashed member recovers with probability `pr` per round. A
    /// recovered member rejoins with its state intact (crash-recovery
    /// with stable storage).
    PerRoundWithRecovery {
        /// Per-round crash probability.
        pf: f64,
        /// Per-round recovery probability.
        pr: f64,
    },
    /// Specific members crash at specific rounds.
    Scheduled {
        /// `(round, member)` crash events.
        crashes: Vec<(Round, MemberId)>,
    },
}

/// A change in a member's liveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LivenessEvent {
    /// The member crashed this round.
    Crashed(MemberId),
    /// The member recovered this round.
    Recovered(MemberId),
}

/// The running failure process: tracks liveness and injects events.
///
/// ```
/// use gridagg_group::failure::{FailureModel, FailureProcess};
/// use gridagg_group::MemberId;
///
/// let mut process = FailureProcess::new(
///     FailureModel::Scheduled { crashes: vec![(2, MemberId(1))] },
///     4,
///     0,
/// );
/// assert!(process.step(0).is_empty());
/// assert!(process.step(1).is_empty());
/// assert_eq!(process.step(2).len(), 1);
/// assert!(!process.is_alive(MemberId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct FailureProcess {
    model: FailureModel,
    alive: Vec<bool>,
    rng: DetRng,
}

impl FailureProcess {
    /// Create the process for a group of `n` members, all initially
    /// alive. `seed` should be a fork of the run seed.
    pub fn new(model: FailureModel, n: usize, seed: u64) -> Self {
        Self::with_liveness(model, vec![true; n], seed)
    }

    /// Create the process with an explicit initial liveness table —
    /// members already down when the run starts (e.g. crashed in a
    /// previous epoch of the continuous aggregation service) stay down
    /// unless the model recovers them.
    pub fn with_liveness(model: FailureModel, alive: Vec<bool>, seed: u64) -> Self {
        FailureProcess {
            model,
            alive,
            rng: DetRng::seeded(seed).fork(0x6661_696C), // "fail"
        }
    }

    /// Whether `id` is currently alive.
    pub fn is_alive(&self, id: MemberId) -> bool {
        self.alive.get(id.index()).copied().unwrap_or(false)
    }

    /// Number of currently-alive members.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// Liveness table indexed by member.
    pub fn alive(&self) -> &[bool] {
        &self.alive
    }

    /// Advance one round, returning the liveness events that occurred.
    pub fn step(&mut self, round: Round) -> Vec<LivenessEvent> {
        let mut events = Vec::new();
        match &self.model {
            FailureModel::None => {}
            FailureModel::PerRound { pf } => {
                let pf = *pf;
                for i in 0..self.alive.len() {
                    if self.alive[i] && self.rng.chance(pf) {
                        self.alive[i] = false;
                        events.push(LivenessEvent::Crashed(MemberId(i as u32)));
                    }
                }
            }
            FailureModel::PerRoundWithRecovery { pf, pr } => {
                let (pf, pr) = (*pf, *pr);
                for i in 0..self.alive.len() {
                    if self.alive[i] {
                        if self.rng.chance(pf) {
                            self.alive[i] = false;
                            events.push(LivenessEvent::Crashed(MemberId(i as u32)));
                        }
                    } else if self.rng.chance(pr) {
                        self.alive[i] = true;
                        events.push(LivenessEvent::Recovered(MemberId(i as u32)));
                    }
                }
            }
            FailureModel::Scheduled { crashes } => {
                for &(r, m) in crashes {
                    if r == round && self.alive.get(m.index()).copied().unwrap_or(false) {
                        self.alive[m.index()] = false;
                        events.push(LivenessEvent::Crashed(m));
                    }
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fails() {
        let mut p = FailureProcess::new(FailureModel::None, 10, 1);
        for r in 0..100 {
            assert!(p.step(r).is_empty());
        }
        assert_eq!(p.alive_count(), 10);
    }

    #[test]
    fn per_round_rate_approximates_pf() {
        let n = 10_000;
        let mut p = FailureProcess::new(FailureModel::PerRound { pf: 0.01 }, n, 2);
        let events = p.step(0);
        let rate = events.len() as f64 / n as f64;
        assert!((rate - 0.01).abs() < 0.005, "rate {rate}");
        assert_eq!(p.alive_count(), n - events.len());
    }

    #[test]
    fn crashes_are_permanent_without_recovery() {
        let mut p = FailureProcess::new(FailureModel::PerRound { pf: 0.5 }, 100, 3);
        let mut dead = std::collections::HashSet::new();
        for r in 0..20 {
            for e in p.step(r) {
                match e {
                    LivenessEvent::Crashed(m) => {
                        assert!(dead.insert(m), "{m} crashed twice");
                    }
                    LivenessEvent::Recovered(_) => panic!("recovery without recovery model"),
                }
            }
        }
        assert_eq!(p.alive_count(), 100 - dead.len());
    }

    #[test]
    fn recovery_brings_members_back() {
        let mut p = FailureProcess::new(
            FailureModel::PerRoundWithRecovery { pf: 0.5, pr: 0.5 },
            200,
            4,
        );
        let mut recovered = 0;
        for r in 0..50 {
            for e in p.step(r) {
                if matches!(e, LivenessEvent::Recovered(_)) {
                    recovered += 1;
                }
            }
        }
        assert!(recovered > 0, "no member ever recovered");
    }

    #[test]
    fn scheduled_crashes_fire_once() {
        let m = MemberId(3);
        let mut p = FailureProcess::new(
            FailureModel::Scheduled {
                crashes: vec![(5, m), (5, m), (7, MemberId(1))],
            },
            10,
            5,
        );
        assert!(p.step(4).is_empty());
        let e5 = p.step(5);
        assert_eq!(e5, vec![LivenessEvent::Crashed(m)]);
        assert!(!p.is_alive(m));
        assert!(p.step(6).is_empty());
        assert_eq!(p.step(7), vec![LivenessEvent::Crashed(MemberId(1))]);
        assert_eq!(p.alive_count(), 8);
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed| {
            let mut p = FailureProcess::new(FailureModel::PerRound { pf: 0.1 }, 100, seed);
            (0..10).map(|r| p.step(r).len()).collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn out_of_range_member_not_alive() {
        let p = FailureProcess::new(FailureModel::None, 3, 1);
        assert!(!p.is_alive(MemberId(99)));
    }

    #[test]
    fn initial_liveness_respected() {
        let mut p = FailureProcess::with_liveness(
            FailureModel::PerRoundWithRecovery { pf: 0.0, pr: 1.0 },
            vec![true, false, true, false],
            9,
        );
        assert_eq!(p.alive_count(), 2);
        assert!(!p.is_alive(MemberId(1)));
        // the model can recover members that started the run down
        let events = p.step(0);
        assert_eq!(events.len(), 2);
        assert!(events
            .iter()
            .all(|e| matches!(e, LivenessEvent::Recovered(_))));
        assert_eq!(p.alive_count(), 4);

        // without recovery, initially-down members stay down
        let mut q =
            FailureProcess::with_liveness(FailureModel::PerRound { pf: 0.0 }, vec![false, true], 9);
        for r in 0..10 {
            assert!(q.step(r).is_empty());
        }
        assert!(!q.is_alive(MemberId(0)));
    }
}
