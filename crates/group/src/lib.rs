//! # gridagg-group
//!
//! Group membership for the aggregation protocols: who is in the group,
//! what each member votes, which members each member *knows about* (its
//! **view**), and how members fail.
//!
//! The paper's model (§2): members have globally unique identifiers, may
//! "arbitrarily suffer crash failures and then recover", and each
//! maintains "a view, a list of other group members it knows about"; the
//! analysis assumes complete views but the protocol does not require
//! them. Its simulations (§7) crash members *without recovery* with
//! probability `pf` per gossip round.
//!
//! * [`Group`] / [`GroupBuilder`] — the simulated membership with votes
//!   and (optionally) 2-D positions.
//! * [`view::View`] — complete or sampled-partial membership views.
//! * [`failure::FailureModel`] / [`failure::FailureProcess`] — crash
//!   (and optional recovery) injection per round.
//! * [`membership::MembershipProcess`] / [`membership::ChurnModel`] —
//!   epoch-level join/leave/crash/recover churn for the continuous
//!   aggregation service.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod failure;
pub mod membership;
pub mod view;

use gridagg_simnet::rng::DetRng;
use gridagg_simnet::topology::{make_field, FieldKind, Position};

/// A group member's identifier — re-exported from the simulator layer so
/// ids are shared across crates.
pub use gridagg_simnet::NodeId as MemberId;

/// How member votes are generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VoteDistribution {
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Gaussian with the given mean and standard deviation
    /// (Box–Muller from the deterministic RNG).
    Gaussian {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Every member votes its own index (makes "who was included"
    /// visible in sums — handy in tests).
    Index,
}

impl VoteDistribution {
    /// Draw one vote for the member at `index` (the index only matters
    /// for [`VoteDistribution::Index`]). Used by the group builder and
    /// by the continuous service when members join mid-run.
    pub fn sample(&self, index: usize, rng: &mut DetRng) -> f64 {
        match *self {
            VoteDistribution::Uniform { lo, hi } => lo + rng.unit() * (hi - lo),
            VoteDistribution::Gaussian { mean, std_dev } => {
                let u1 = rng.unit().max(1e-12);
                let u2 = rng.unit();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                mean + std_dev * z
            }
            VoteDistribution::Index => index as f64,
        }
    }
}

/// One group member: identity, vote, optional position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Member {
    /// The member's identifier.
    pub id: MemberId,
    /// The member's vote (`v_i` in the paper).
    pub vote: f64,
    /// Physical position, when the group models a sensor field.
    pub position: Option<Position>,
}

/// A simulated process group.
#[derive(Debug, Clone)]
pub struct Group {
    members: Vec<Member>,
}

impl Group {
    /// Number of members `N`.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The members, indexed by [`MemberId`].
    pub fn members(&self) -> &[Member] {
        &self.members
    }

    /// The member with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn member(&self, id: MemberId) -> &Member {
        &self.members[id.index()]
    }

    /// All votes, indexed by member.
    pub fn votes(&self) -> Vec<f64> {
        self.members.iter().map(|m| m.vote).collect()
    }

    /// Positions, if the group was built over a field.
    pub fn positions(&self) -> Option<Vec<Position>> {
        self.members.iter().map(|m| m.position).collect()
    }

    /// The true global value of an aggregate over *all* votes — the
    /// ground truth simulations compare protocol estimates against.
    pub fn true_aggregate<A: gridagg_aggregate::Aggregate>(&self) -> A {
        let mut it = self.members.iter();
        let first = it.next().expect("group is non-empty");
        let mut acc = A::from_vote(first.vote);
        for m in it {
            acc.merge(&A::from_vote(m.vote));
        }
        acc
    }
}

/// Builder for [`Group`] (C-BUILDER): group size plus optional vote
/// distribution and sensor field.
///
/// ```
/// use gridagg_group::{GroupBuilder, VoteDistribution};
///
/// let group = GroupBuilder::new(100)
///     .votes(VoteDistribution::Uniform { lo: 15.0, hi: 30.0 })
///     .seed(7)
///     .build();
/// assert_eq!(group.len(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct GroupBuilder {
    n: usize,
    votes: VoteDistribution,
    field: Option<FieldKind>,
    seed: u64,
}

impl GroupBuilder {
    /// Start building a group of `n` members.
    pub fn new(n: usize) -> Self {
        GroupBuilder {
            n,
            votes: VoteDistribution::Uniform { lo: 0.0, hi: 100.0 },
            field: None,
            seed: 0,
        }
    }

    /// Set the vote distribution.
    pub fn votes(mut self, votes: VoteDistribution) -> Self {
        self.votes = votes;
        self
    }

    /// Place members on a 2-D field of the given kind.
    pub fn field(mut self, kind: FieldKind) -> Self {
        self.field = Some(kind);
        self
    }

    /// Set the RNG seed for votes and positions.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Build the group.
    ///
    /// # Panics
    ///
    /// Panics if the group size is zero.
    pub fn build(&self) -> Group {
        assert!(self.n > 0, "group must have at least one member");
        let mut vote_rng = DetRng::seeded(self.seed).fork(0x766F_7465); // "vote"
        let mut pos_rng = DetRng::seeded(self.seed).fork(0x706F_7300); // "pos"
        let positions = self
            .field
            .map(|kind| make_field(kind, self.n, &mut pos_rng));
        let members = (0..self.n)
            .map(|i| Member {
                id: MemberId(i as u32),
                vote: self.votes.sample(i, &mut vote_rng),
                position: positions.as_ref().map(|p| p[i]),
            })
            .collect();
        Group { members }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridagg_aggregate::{Aggregate, Average, Min};

    #[test]
    fn builder_defaults() {
        let g = GroupBuilder::new(10).build();
        assert_eq!(g.len(), 10);
        assert!(!g.is_empty());
        assert!(g.positions().is_none());
        for (i, m) in g.members().iter().enumerate() {
            assert_eq!(m.id.index(), i);
            assert!((0.0..=100.0).contains(&m.vote));
        }
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let a = GroupBuilder::new(20).seed(5).build();
        let b = GroupBuilder::new(20).seed(5).build();
        let c = GroupBuilder::new(20).seed(6).build();
        assert_eq!(a.votes(), b.votes());
        assert_ne!(a.votes(), c.votes());
    }

    #[test]
    fn index_votes() {
        let g = GroupBuilder::new(5).votes(VoteDistribution::Index).build();
        assert_eq!(g.votes(), vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(g.member(MemberId(3)).vote, 3.0);
    }

    #[test]
    fn gaussian_votes_concentrate() {
        let g = GroupBuilder::new(4000)
            .votes(VoteDistribution::Gaussian {
                mean: 50.0,
                std_dev: 5.0,
            })
            .seed(3)
            .build();
        let mean = g.votes().iter().sum::<f64>() / g.len() as f64;
        assert!((mean - 50.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn field_positions_present() {
        let g = GroupBuilder::new(16).field(FieldKind::Grid).build();
        let pos = g.positions().expect("has positions");
        assert_eq!(pos.len(), 16);
    }

    #[test]
    fn true_aggregate_ground_truth() {
        let g = GroupBuilder::new(4).votes(VoteDistribution::Index).build();
        let avg: Average = g.true_aggregate();
        assert_eq!(avg.summary(), 1.5);
        let min: Min = g.true_aggregate();
        assert_eq!(min.summary(), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_group_panics() {
        let _ = GroupBuilder::new(0).build();
    }
}
