//! Membership views.
//!
//! "Each member also maintains a *view*, a list of other group members it
//! knows about. We assume henceforth that all members know about each
//! other, although this can be relaxed in our final hierarchical
//! gossiping solution" (§2). [`View`] models both: [`View::complete`]
//! for the analysis setting and [`View::sampled`] partial views for the
//! relaxation.

use gridagg_simnet::rng::DetRng;

use crate::MemberId;

/// The set of members a given member knows about (always includes the
/// owner itself).
///
/// ```
/// use gridagg_group::view::View;
/// use gridagg_group::MemberId;
///
/// let view = View::complete(4);
/// assert!(view.contains(MemberId(3)));
/// let evens = view.filtered(|m| m.0 % 2 == 0);
/// assert_eq!(evens.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    members: Vec<MemberId>, // sorted, deduplicated
}

impl View {
    /// The complete view over a group of `n` members.
    pub fn complete(n: usize) -> Self {
        View {
            members: (0..n as u32).map(MemberId).collect(),
        }
    }

    /// A partial view: the owner plus `size` members sampled uniformly
    /// without replacement from the rest of a group of `n`.
    pub fn sampled(owner: MemberId, n: usize, size: usize, rng: &mut DetRng) -> Self {
        let picks = rng.sample_distinct(n, Some(owner.index()), size);
        let mut members: Vec<MemberId> = picks.into_iter().map(|i| MemberId(i as u32)).collect();
        members.push(owner);
        members.sort_unstable();
        members.dedup();
        View { members }
    }

    /// Build a view from an explicit member list (sorted and deduped).
    pub fn from_members(mut members: Vec<MemberId>) -> Self {
        members.sort_unstable();
        members.dedup();
        View { members }
    }

    /// Members in the view, ascending.
    pub fn members(&self) -> &[MemberId] {
        &self.members
    }

    /// Number of members in the view.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Whether the view contains `id`.
    pub fn contains(&self, id: MemberId) -> bool {
        self.members.binary_search(&id).is_ok()
    }

    /// The members of the view satisfying a predicate — e.g. "all the
    /// members in its view that belong to `M_j`'s height-i subtree".
    pub fn filtered(&self, mut keep: impl FnMut(MemberId) -> bool) -> Vec<MemberId> {
        self.members.iter().copied().filter(|&m| keep(m)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_view_has_everyone() {
        let v = View::complete(5);
        assert_eq!(v.len(), 5);
        for i in 0..5u32 {
            assert!(v.contains(MemberId(i)));
        }
        assert!(!v.contains(MemberId(5)));
    }

    #[test]
    fn sampled_view_contains_owner_and_size() {
        let mut rng = DetRng::seeded(8);
        let v = View::sampled(MemberId(3), 100, 10, &mut rng);
        assert!(v.contains(MemberId(3)));
        assert_eq!(v.len(), 11);
    }

    #[test]
    fn sampled_view_caps_at_group() {
        let mut rng = DetRng::seeded(8);
        let v = View::sampled(MemberId(0), 5, 50, &mut rng);
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn from_members_dedupes_and_sorts() {
        let v = View::from_members(vec![MemberId(3), MemberId(1), MemberId(3)]);
        assert_eq!(v.members(), &[MemberId(1), MemberId(3)]);
    }

    #[test]
    fn filtered_selects_subset() {
        let v = View::complete(10);
        let evens = v.filtered(|m| m.0 % 2 == 0);
        assert_eq!(evens.len(), 5);
        assert!(evens.iter().all(|m| m.0 % 2 == 0));
    }

    #[test]
    fn empty_view() {
        let v = View::from_members(vec![]);
        assert!(v.is_empty());
        assert_eq!(v.filtered(|_| true).len(), 0);
    }
}
