//! A minimal, dependency-free subset of the `bytes` crate API.
//!
//! The workspace builds fully offline, so the upstream `bytes` crate is
//! replaced by this in-repo implementation of exactly the surface the
//! codecs use: the [`Buf`]/[`BufMut`] traits with big-endian integer and
//! float accessors, plus the [`Bytes`]/[`BytesMut`] owned buffers.
//! Semantics (panics on underflow, big-endian byte order, consuming
//! reads) match upstream so the codec crates compile unchanged.

#![warn(missing_docs)]

use std::sync::Arc;

/// Read access to a contiguous buffer, consumed from the front.
///
/// All `get_*` accessors read big-endian and advance the cursor; they
/// panic if fewer bytes remain than requested, matching upstream.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// The unread bytes as a slice.
    fn chunk(&self) -> &[u8];

    /// Advance the read cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

/// Write access to a growable buffer, appended at the back.
///
/// All `put_*` accessors write big-endian, matching upstream.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of slice");
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src);
    }
}

/// An immutable, cheaply cloneable byte buffer with a read cursor.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Total unread length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-range of the unread bytes as a new `Bytes` sharing storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for Bytes of len {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "cannot advance past end of Bytes");
        self.start += cnt;
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u16(0x1234);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_f64(std::f64::consts::PI);
        let mut r: &[u8] = &buf;
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f64(), std::f64::consts::PI);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn big_endian_on_the_wire() {
        let mut buf = Vec::new();
        buf.put_u16(0x0102);
        assert_eq!(buf, vec![0x01, 0x02]);
    }

    #[test]
    fn bytes_mut_freeze_and_slice() {
        let mut b = BytesMut::new();
        b.put_slice(&[0, 1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 6);
        let frozen = b.freeze();
        let mid = frozen.slice(2..5);
        assert_eq!(mid.as_ref(), &[2, 3, 4]);
        let mut cursor = mid.clone();
        assert_eq!(cursor.get_u8(), 2);
        assert_eq!(cursor.remaining(), 2);
        assert_eq!(mid.len(), 3, "reading a clone leaves the source intact");
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1];
        let _ = r.get_u16();
    }

    #[test]
    fn empty_bytes() {
        let b = Bytes::new();
        assert!(b.is_empty());
        assert_eq!(b.remaining(), 0);
    }
}
