//! Member → grid box placement: the "well-known hash function `H`".
//!
//! Paper §6.1: "The easiest way to build the hierarchy … is to use a
//! well-known hash function H that maps the unique group member
//! identifiers randomly into the interval \[0,1\]. A member with identifier
//! `M_j` would then belong to a grid box with address `H(M_j)·N/K`
//! (written in base-K)."
//!
//! Crucially, *any* member can compute *any other* member's box address
//! from its identifier alone — no coordination, no directory. That is what
//! the [`Placement`] trait captures.

use gridagg_simnet::rng::{splitmix64, unit_interval};
use gridagg_simnet::NodeId;

use crate::addr::Addr;
use crate::params::Hierarchy;

/// Maps member identifiers to grid box addresses.
///
/// Implementations must be *pure*: every member evaluating the placement
/// of the same identifier gets the same box (the protocol relies on it).
pub trait Placement: Send + Sync + std::fmt::Debug {
    /// The grid box of member `id`.
    fn place(&self, id: NodeId) -> Addr;

    /// The hierarchy this placement maps into.
    fn hierarchy(&self) -> &Hierarchy;
}

/// The fair random hash placement (`H` fair, not topologically aware).
///
/// Uses SplitMix64 over `(salt, id)`; the paper's fairness assumption —
/// "it maps any given member to each grid box with probability K/N" —
/// holds up to hash quality.
#[derive(Debug, Clone, Copy)]
pub struct FairHashPlacement {
    hierarchy: Hierarchy,
    salt: u64,
}

impl FairHashPlacement {
    /// Create a fair placement. `salt` plays the role of the statically
    /// fixed, well-known choice of `H` (or the per-run `H` "dynamically
    /// specified by a multicast initiating the aggregation protocol").
    pub fn new(hierarchy: Hierarchy, salt: u64) -> Self {
        FairHashPlacement { hierarchy, salt }
    }

    /// The hash value of a member in `[0,1)` (exposed for analysis).
    pub fn unit_hash(&self, id: NodeId) -> f64 {
        unit_interval(splitmix64(
            self.salt ^ splitmix64(0x4861_7368 ^ id.0 as u64),
        ))
    }
}

impl Placement for FairHashPlacement {
    fn place(&self, id: NodeId) -> Addr {
        self.hierarchy.box_of_unit(self.unit_hash(id))
    }

    fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }
}

/// An explicit member → box table, for unit tests and for reproducing the
/// paper's hand-drawn Figure 1/3 assignments.
#[derive(Debug, Clone)]
pub struct ExplicitPlacement {
    hierarchy: Hierarchy,
    boxes: Vec<Addr>,
}

impl ExplicitPlacement {
    /// Create from a dense table indexed by `NodeId`.
    ///
    /// # Panics
    ///
    /// Panics if any address is not a full-depth box address of
    /// `hierarchy`.
    pub fn new(hierarchy: Hierarchy, boxes: Vec<Addr>) -> Self {
        for (i, b) in boxes.iter().enumerate() {
            assert_eq!(
                b.len(),
                hierarchy.depth(),
                "member {i} assigned a non-box address {b}"
            );
            assert_eq!(b.base(), hierarchy.k(), "member {i} address base mismatch");
        }
        ExplicitPlacement { hierarchy, boxes }
    }
}

impl Placement for ExplicitPlacement {
    fn place(&self, id: NodeId) -> Addr {
        self.boxes[id.index()]
    }

    fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }
}

/// Precompute the box of every member in a dense table (protocols call
/// placement in inner loops; a table lookup is cheaper than re-hashing).
pub fn placement_table(placement: &dyn Placement, n: usize) -> Vec<Addr> {
    (0..n).map(|i| placement.place(NodeId(i as u32))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h() -> Hierarchy {
        Hierarchy::for_group(4, 256).unwrap()
    }

    #[test]
    fn fair_hash_is_pure() {
        let p = FairHashPlacement::new(h(), 42);
        for i in 0..100u32 {
            assert_eq!(p.place(NodeId(i)), p.place(NodeId(i)));
        }
    }

    #[test]
    fn fair_hash_depends_on_salt() {
        let p1 = FairHashPlacement::new(h(), 1);
        let p2 = FairHashPlacement::new(h(), 2);
        let differs = (0..64u32).any(|i| p1.place(NodeId(i)) != p2.place(NodeId(i)));
        assert!(differs);
    }

    #[test]
    fn fair_hash_spreads_roughly_evenly() {
        let hier = h(); // 64 boxes
        let p = FairHashPlacement::new(hier, 7);
        let n = 6400usize; // 100 expected per box
        let mut counts = vec![0usize; hier.num_boxes() as usize];
        for i in 0..n {
            counts[p.place(NodeId(i as u32)).index() as usize] += 1;
        }
        let expected = n / hier.num_boxes() as usize;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                c > expected / 3 && c < expected * 3,
                "box {b} count {c}, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn fair_hash_full_depth() {
        let p = FairHashPlacement::new(h(), 7);
        let a = p.place(NodeId(0));
        assert_eq!(a.len(), h().depth());
        assert_eq!(a.base(), 4);
    }

    #[test]
    fn explicit_placement_lookup() {
        let hier = Hierarchy::for_group(2, 8).unwrap();
        // Figure 1: M1..M8 (here 0-indexed) in boxes 00,01,10,11
        let table = vec![
            hier.box_at(3), // M1 -> 11 (figure: f(M1) alone in 11's phase-1)
            hier.box_at(2),
            hier.box_at(0),
            hier.box_at(2),
            hier.box_at(1),
            hier.box_at(1),
            hier.box_at(0),
            hier.box_at(0),
        ];
        let p = ExplicitPlacement::new(hier, table);
        assert_eq!(p.place(NodeId(0)).to_string(), "11");
        assert_eq!(p.place(NodeId(7)).to_string(), "00");
    }

    #[test]
    #[should_panic(expected = "non-box address")]
    fn explicit_placement_validates_depth() {
        let hier = Hierarchy::for_group(2, 8).unwrap();
        let short = Addr::from_digits(2, &[1]).unwrap();
        let _ = ExplicitPlacement::new(hier, vec![short]);
    }

    #[test]
    fn placement_table_matches_place() {
        let p = FairHashPlacement::new(h(), 3);
        let t = placement_table(&p, 50);
        for (i, addr) in t.iter().enumerate() {
            assert_eq!(*addr, p.place(NodeId(i as u32)));
        }
    }

    #[test]
    fn unit_hash_in_range() {
        let p = FairHashPlacement::new(h(), 3);
        for i in 0..1000u32 {
            let u = p.unit_hash(NodeId(i));
            assert!((0.0..1.0).contains(&u));
        }
    }
}

/// CIDR-style placement for Internet process groups (§6.1).
///
/// "In the Internet, IP addresses usually reflect the geographical/
/// network locations of group members, eg., CIDR … allocates different
/// subnet headers to addresses in Europe than those in the Americas,
/// and then different subnets inside Europe…"
///
/// Identifiers are treated as addresses in a contiguous space of
/// `id_space` values; the *high-order* part of the identifier selects
/// the grid box, so numerically adjacent identifiers (same subnet)
/// share boxes and low subtrees — topology awareness without physical
/// coordinates.
#[derive(Debug, Clone, Copy)]
pub struct PrefixPlacement {
    hierarchy: Hierarchy,
    id_space: u64,
}

impl PrefixPlacement {
    /// Create a prefix placement over identifiers `0..id_space`.
    ///
    /// # Panics
    ///
    /// Panics if `id_space == 0`.
    pub fn new(hierarchy: Hierarchy, id_space: u64) -> Self {
        assert!(id_space > 0, "identifier space must be non-empty");
        PrefixPlacement {
            hierarchy,
            id_space,
        }
    }
}

impl Placement for PrefixPlacement {
    fn place(&self, id: NodeId) -> Addr {
        let clamped = (id.0 as u64).min(self.id_space - 1);
        self.hierarchy
            .box_of_unit(clamped as f64 / self.id_space as f64)
    }

    fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }
}

#[cfg(test)]
mod prefix_tests {
    use super::*;

    #[test]
    fn contiguous_ids_share_boxes() {
        let hier = Hierarchy::for_group(4, 256).unwrap(); // 64 boxes
        let p = PrefixPlacement::new(hier, 256);
        // each box covers a contiguous run of 4 ids
        for id in 0..256u32 {
            let expect = hier.box_at(id as u64 / 4);
            assert_eq!(p.place(NodeId(id)), expect, "id {id}");
        }
    }

    #[test]
    fn subnet_structure_matches_subtrees() {
        // ids in the same "subnet" (same high bits) share the same
        // high-order address digits — the CIDR property
        let hier = Hierarchy::for_group(2, 64).unwrap(); // depth 5
        let p = PrefixPlacement::new(hier, 64);
        let a = p.place(NodeId(0));
        let b = p.place(NodeId(1));
        let far = p.place(NodeId(63));
        assert_eq!(a.prefix(3), b.prefix(3), "same subnet, same subtree");
        assert_ne!(a.digit(0), far.digit(0), "opposite ends of the space");
    }

    #[test]
    fn ids_beyond_space_clamp() {
        let hier = Hierarchy::for_group(4, 16).unwrap();
        let p = PrefixPlacement::new(hier, 16);
        assert_eq!(p.place(NodeId(1000)), p.place(NodeId(15)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_space_panics() {
        let hier = Hierarchy::for_group(4, 16).unwrap();
        let _ = PrefixPlacement::new(hier, 0);
    }

    #[test]
    fn balanced_occupancy_for_dense_ids() {
        let hier = Hierarchy::for_group(4, 256).unwrap();
        let p = PrefixPlacement::new(hier, 256);
        let mut counts = vec![0usize; hier.num_boxes() as usize];
        for id in 0..256u32 {
            counts[p.place(NodeId(id)).index() as usize] += 1;
        }
        assert!(
            counts.iter().all(|&c| c == 4),
            "dense ids → exactly K per box"
        );
    }
}
