//! Grid-box addresses and subtree prefixes.
//!
//! A grid box address is a fixed-length string of base-`K` digits (paper
//! §6.1: "each grid box is assigned a unique `(log_K N − 1)`-digit address
//! in base K"). A *prefix* of such an address names a subtree: the set of
//! boxes whose addresses agree with it in the leading digits. The root is
//! the empty prefix (displayed `**…*`), a full-length address is a single
//! grid box.
//!
//! One type, [`Addr`], represents both: `len == depth` means a grid box,
//! `len < depth` a proper subtree. Digits are stored most significant
//! first.

/// Maximum supported address depth (digits). `K^16` boxes at `K = 2` is
/// 65 536 boxes — far beyond the paper's group sizes.
pub const MAX_DEPTH: usize = 16;

/// Errors from address construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddrError {
    /// A digit was `>= base`.
    DigitOutOfRange {
        /// The offending digit value.
        digit: u8,
        /// The base it must be below.
        base: u8,
    },
    /// More than [`MAX_DEPTH`] digits requested.
    TooDeep {
        /// The requested length.
        len: usize,
    },
    /// Base must be at least 2.
    BadBase {
        /// The requested base.
        base: u8,
    },
}

impl std::fmt::Display for AddrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AddrError::DigitOutOfRange { digit, base } => {
                write!(f, "digit {digit} out of range for base {base}")
            }
            AddrError::TooDeep { len } => {
                write!(f, "address length {len} exceeds maximum depth {MAX_DEPTH}")
            }
            AddrError::BadBase { base } => write!(f, "base {base} must be at least 2"),
        }
    }
}

impl std::error::Error for AddrError {}

/// A base-`K` grid box address or subtree prefix (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr {
    base: u8,
    len: u8,
    digits: [u8; MAX_DEPTH],
}

impl Addr {
    /// The root prefix: the whole group (subtree `**…*` in the paper's
    /// figures).
    ///
    /// # Errors
    ///
    /// Returns [`AddrError::BadBase`] for `base < 2`.
    pub fn root(base: u8) -> Result<Self, AddrError> {
        if base < 2 {
            return Err(AddrError::BadBase { base });
        }
        Ok(Addr {
            base,
            len: 0,
            digits: [0; MAX_DEPTH],
        })
    }

    /// Build an address from explicit digits (most significant first).
    ///
    /// ```
    /// use gridagg_hierarchy::Addr;
    ///
    /// let addr = Addr::from_digits(4, &[1, 0, 3])?;
    /// assert_eq!(addr.to_string(), "103");
    /// assert_eq!(addr.index(), 1 * 16 + 0 * 4 + 3);
    /// # Ok::<(), gridagg_hierarchy::AddrError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns an error if the base is `< 2`, too many digits are given,
    /// or any digit is `>= base`.
    pub fn from_digits(base: u8, digits: &[u8]) -> Result<Self, AddrError> {
        if base < 2 {
            return Err(AddrError::BadBase { base });
        }
        if digits.len() > MAX_DEPTH {
            return Err(AddrError::TooDeep { len: digits.len() });
        }
        let mut d = [0u8; MAX_DEPTH];
        for (i, &digit) in digits.iter().enumerate() {
            if digit >= base {
                return Err(AddrError::DigitOutOfRange { digit, base });
            }
            d[i] = digit;
        }
        Ok(Addr {
            base,
            len: digits.len() as u8,
            digits: d,
        })
    }

    /// Build a full-length address from a box index in `[0, base^len)`,
    /// most significant digit first (index 0 → `00…0`).
    ///
    /// # Errors
    ///
    /// Returns an error for a bad base or excessive length.
    ///
    /// # Panics
    ///
    /// Panics if `index >= base^len`.
    pub fn from_index(base: u8, len: usize, index: u64) -> Result<Self, AddrError> {
        if base < 2 {
            return Err(AddrError::BadBase { base });
        }
        if len > MAX_DEPTH {
            return Err(AddrError::TooDeep { len });
        }
        let capacity = (base as u64)
            .checked_pow(len as u32)
            .expect("base^len overflows u64");
        assert!(
            index < capacity,
            "box index {index} out of range for {base}^{len} boxes"
        );
        let mut digits = [0u8; MAX_DEPTH];
        let mut rest = index;
        for slot in (0..len).rev() {
            digits[slot] = (rest % base as u64) as u8;
            rest /= base as u64;
        }
        Ok(Addr {
            base,
            len: len as u8,
            digits,
        })
    }

    /// The numeric index of this address among same-length addresses.
    pub fn index(&self) -> u64 {
        self.digits[..self.len as usize]
            .iter()
            .fold(0u64, |acc, &d| acc * self.base as u64 + d as u64)
    }

    /// The digit base `K`.
    pub fn base(&self) -> u8 {
        self.base
    }

    /// Number of digits.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` for the root prefix.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The digits, most significant first.
    pub fn digits(&self) -> &[u8] {
        &self.digits[..self.len as usize]
    }

    /// The digit at position `i` (0 = most significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn digit(&self, i: usize) -> u8 {
        assert!(i < self.len as usize, "digit index {i} out of range");
        self.digits[i]
    }

    /// The prefix consisting of the first `len` digits.
    ///
    /// # Panics
    ///
    /// Panics if `len > self.len()`.
    pub fn prefix(&self, len: usize) -> Addr {
        assert!(len <= self.len as usize, "prefix longer than address");
        let mut digits = [0u8; MAX_DEPTH];
        digits[..len].copy_from_slice(&self.digits[..len]);
        Addr {
            base: self.base,
            len: len as u8,
            digits,
        }
    }

    /// The parent subtree (one digit shorter), or `None` at the root.
    pub fn parent(&self) -> Option<Addr> {
        if self.len == 0 {
            None
        } else {
            Some(self.prefix(self.len as usize - 1))
        }
    }

    /// Whether this prefix contains `other` (i.e. `other` starts with it
    /// and uses the same base). A prefix contains itself.
    pub fn contains(&self, other: &Addr) -> bool {
        self.base == other.base
            && self.len <= other.len
            && self.digits[..self.len as usize] == other.digits[..self.len as usize]
    }

    /// The child prefix obtained by appending `digit`.
    ///
    /// # Errors
    ///
    /// Returns an error if the digit is out of range or the address is
    /// already [`MAX_DEPTH`] digits long.
    pub fn child(&self, digit: u8) -> Result<Addr, AddrError> {
        if digit >= self.base {
            return Err(AddrError::DigitOutOfRange {
                digit,
                base: self.base,
            });
        }
        if self.len as usize >= MAX_DEPTH {
            return Err(AddrError::TooDeep {
                len: self.len as usize + 1,
            });
        }
        let mut digits = self.digits;
        digits[self.len as usize] = digit;
        Ok(Addr {
            base: self.base,
            len: self.len + 1,
            digits,
        })
    }

    /// Iterate over the `K` children of this prefix.
    pub fn children(&self) -> impl Iterator<Item = Addr> + '_ {
        (0..self.base).map(move |d| self.child(d).expect("child digit in range"))
    }

    /// Format with the given total depth, padding with `*` for the
    /// unconstrained digits, exactly like the paper's figures (`0*`, `**`).
    pub fn display_depth(&self, depth: usize) -> String {
        let mut s = String::with_capacity(depth);
        for i in 0..depth {
            if i < self.len as usize {
                // digits are < base <= 36; render 0-9 then a-z
                let d = self.digits[i];
                s.push(char::from_digit(d as u32, 36).unwrap_or('?'));
            } else {
                s.push('*');
            }
        }
        if depth == 0 {
            s.push('*');
        }
        s
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.len == 0 {
            return f.write_str("*");
        }
        for &d in self.digits() {
            write!(f, "{}", char::from_digit(d as u32, 36).unwrap_or('?'))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_digits_and_back() {
        let a = Addr::from_digits(4, &[1, 0, 3]).unwrap();
        assert_eq!(a.digits(), &[1, 0, 3]);
        assert_eq!(a.len(), 3);
        assert_eq!(a.base(), 4);
        assert_eq!(a.to_string(), "103");
    }

    #[test]
    fn digit_validation() {
        assert_eq!(
            Addr::from_digits(2, &[0, 2]),
            Err(AddrError::DigitOutOfRange { digit: 2, base: 2 })
        );
        assert_eq!(
            Addr::from_digits(1, &[0]),
            Err(AddrError::BadBase { base: 1 })
        );
        assert_eq!(
            Addr::from_digits(2, &[0; 17]),
            Err(AddrError::TooDeep { len: 17 })
        );
    }

    #[test]
    fn index_roundtrip() {
        for base in [2u8, 3, 4, 8] {
            let len = 3usize;
            let boxes = (base as u64).pow(len as u32);
            for idx in 0..boxes {
                let a = Addr::from_index(base, len, idx).unwrap();
                assert_eq!(a.index(), idx, "base {base} idx {idx}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_checks_capacity() {
        let _ = Addr::from_index(2, 2, 4);
    }

    #[test]
    fn paper_figure_1_addresses() {
        // 4 grid boxes, base 2, two digits: 00 01 10 11
        let boxes: Vec<String> = (0..4)
            .map(|i| Addr::from_index(2, 2, i).unwrap().to_string())
            .collect();
        assert_eq!(boxes, ["00", "01", "10", "11"]);
    }

    #[test]
    fn prefix_parent_contains() {
        let a = Addr::from_digits(2, &[1, 0]).unwrap();
        let p = a.prefix(1);
        assert_eq!(p.to_string(), "1");
        assert!(p.contains(&a));
        assert!(!a.contains(&p));
        assert!(a.contains(&a));
        let root = a.prefix(0);
        assert!(root.is_empty());
        assert!(root.contains(&a));
        assert_eq!(a.parent(), Some(p));
        assert_eq!(root.parent(), None);
    }

    #[test]
    fn contains_requires_same_base() {
        let a2 = Addr::from_digits(2, &[1]).unwrap();
        let a4 = Addr::from_digits(4, &[1]).unwrap();
        assert!(!a2.contains(&a4));
    }

    #[test]
    fn children_enumerate_base() {
        let p = Addr::from_digits(4, &[2]).unwrap();
        let kids: Vec<String> = p.children().map(|c| c.to_string()).collect();
        assert_eq!(kids, ["20", "21", "22", "23"]);
        for c in p.children() {
            assert!(p.contains(&c));
            assert_eq!(c.parent(), Some(p));
        }
    }

    #[test]
    fn child_validation() {
        let p = Addr::from_digits(2, &[0]).unwrap();
        assert!(p.child(2).is_err());
        let deep = Addr::from_digits(2, &[0; 16]).unwrap();
        assert_eq!(deep.child(1), Err(AddrError::TooDeep { len: 17 }));
    }

    #[test]
    fn display_depth_matches_paper_star_notation() {
        let h = Addr::from_digits(2, &[0]).unwrap();
        assert_eq!(h.display_depth(2), "0*");
        let root = Addr::root(2).unwrap();
        assert_eq!(root.display_depth(2), "**");
        assert_eq!(root.display_depth(0), "*");
        let full = Addr::from_digits(2, &[1, 1]).unwrap();
        assert_eq!(full.display_depth(2), "11");
    }

    #[test]
    fn ordering_is_lexicographic_within_len() {
        let a = Addr::from_digits(2, &[0, 1]).unwrap();
        let b = Addr::from_digits(2, &[1, 0]).unwrap();
        assert!(a < b);
    }

    #[test]
    fn digit_accessor_panics_out_of_range() {
        let a = Addr::from_digits(2, &[1]).unwrap();
        assert_eq!(a.digit(0), 1);
        let r = std::panic::catch_unwind(|| a.digit(1));
        assert!(r.is_err());
    }

    #[test]
    fn error_display() {
        assert!(AddrError::BadBase { base: 1 }
            .to_string()
            .contains("base 1"));
        assert!(AddrError::TooDeep { len: 20 }.to_string().contains("20"));
        assert!(AddrError::DigitOutOfRange { digit: 5, base: 4 }
            .to_string()
            .contains("digit 5"));
    }
}
