//! Hierarchy shape and phase arithmetic.
//!
//! [`Hierarchy`] fixes the two well-known parameters of the Grid Box
//! Hierarchy — the box size constant `K` and the digit count (derived
//! from the group size estimate `N`) — and provides the address
//! arithmetic used by every phase of the aggregation protocols:
//! which prefix is *my* phase-`i` scope, and which child prefixes must be
//! collected to finish the phase.
//!
//! The paper implicitly assumes `N` is a power of `K` (addresses have
//! `log_K N − 1` digits). We generalise: `depth = max(1,
//! round(log_K(N/K)))`, so there are `K^depth ≈ N/K` boxes and the
//! expected occupancy stays `≈ K` for any `N`. For `N = K^d` this equals
//! the paper's `d − 1` digits exactly.

use crate::addr::{Addr, MAX_DEPTH};

/// Errors from hierarchy construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HierarchyError {
    /// `K` must be at least 2 (a base-1 hierarchy has no branching).
    BadK {
        /// The requested K.
        k: u8,
    },
    /// The group must have at least 2 members.
    GroupTooSmall {
        /// The requested size.
        n: usize,
    },
    /// The derived depth exceeds [`MAX_DEPTH`].
    TooDeep {
        /// The derived depth.
        depth: usize,
    },
}

impl std::fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HierarchyError::BadK { k } => write!(f, "grid box constant K={k} must be >= 2"),
            HierarchyError::GroupTooSmall { n } => {
                write!(f, "group size {n} too small for a hierarchy")
            }
            HierarchyError::TooDeep { depth } => {
                write!(f, "derived depth {depth} exceeds maximum {MAX_DEPTH}")
            }
        }
    }
}

impl std::error::Error for HierarchyError {}

/// The shape of a Grid Box Hierarchy: base `K` and address depth.
///
/// All members derive the same `Hierarchy` from the well-known `K` and a
/// (possibly approximate) estimate of `N` — the paper notes "an
/// approximate estimate of N at each member usually suffices".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Hierarchy {
    k: u8,
    depth: u8,
}

impl Hierarchy {
    /// Derive the hierarchy for a group of (approximately) `n` members
    /// with box constant `k`.
    ///
    /// # Errors
    ///
    /// Returns an error if `k < 2`, `n < 2`, or the derived depth would
    /// exceed [`MAX_DEPTH`].
    pub fn for_group(k: u8, n: usize) -> Result<Self, HierarchyError> {
        if k < 2 {
            return Err(HierarchyError::BadK { k });
        }
        if n < 2 {
            return Err(HierarchyError::GroupTooSmall { n });
        }
        let ratio = n as f64 / k as f64;
        let depth = if ratio <= 1.0 {
            1
        } else {
            (ratio.ln() / (k as f64).ln()).round().max(1.0) as usize
        };
        if depth > MAX_DEPTH {
            return Err(HierarchyError::TooDeep { depth });
        }
        Ok(Hierarchy {
            k,
            depth: depth as u8,
        })
    }

    /// Build a hierarchy with an explicit depth (digit count).
    ///
    /// # Errors
    ///
    /// Returns an error if `k < 2`, `depth == 0`, or `depth > MAX_DEPTH`.
    pub fn with_depth(k: u8, depth: usize) -> Result<Self, HierarchyError> {
        if k < 2 {
            return Err(HierarchyError::BadK { k });
        }
        if depth == 0 || depth > MAX_DEPTH {
            return Err(HierarchyError::TooDeep { depth });
        }
        Ok(Hierarchy {
            k,
            depth: depth as u8,
        })
    }

    /// The grid box constant `K` (average members per box, digit base).
    pub fn k(&self) -> u8 {
        self.k
    }

    /// Number of address digits (the paper's `log_K N − 1`).
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// Total number of grid boxes, `K^depth`.
    pub fn num_boxes(&self) -> u64 {
        (self.k as u64).pow(self.depth as u32)
    }

    /// Number of protocol phases, `depth + 1` (the paper's `log_K N`).
    pub fn phases(&self) -> usize {
        self.depth as usize + 1
    }

    /// The grid box containing unit-interval hash value `u ∈ [0, 1)` —
    /// the paper's `H(M_j) · N/K` written in base K.
    pub fn box_of_unit(&self, u: f64) -> Addr {
        let boxes = self.num_boxes();
        let idx = ((u.clamp(0.0, 1.0)) * boxes as f64) as u64;
        Addr::from_index(self.k, self.depth as usize, idx.min(boxes - 1))
            .expect("depth validated at construction")
    }

    /// The grid box with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_boxes()`.
    pub fn box_at(&self, index: u64) -> Addr {
        Addr::from_index(self.k, self.depth as usize, index).expect("depth validated")
    }

    /// The scope prefix of phase `i` (1-based) for a member in grid box
    /// `addr`: addresses must agree in the most significant
    /// `(log_K N − i)` digits, i.e. the prefix of length `depth + 1 − i`.
    ///
    /// Phase 1 → the member's own grid box; the final phase → the root.
    ///
    /// ```
    /// use gridagg_hierarchy::Hierarchy;
    ///
    /// let h = Hierarchy::for_group(2, 8).unwrap();
    /// let b10 = h.box_at(2); // grid box "10"
    /// assert_eq!(h.scope(&b10, 1).to_string(), "10"); // own box
    /// assert_eq!(h.scope(&b10, 2).to_string(), "1");  // subtree 1*
    /// assert_eq!(h.scope(&b10, 3).to_string(), "*");  // the whole group
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `phase` is 0 or greater than [`Hierarchy::phases`], or if
    /// `addr` is not a full-depth box address of this hierarchy.
    pub fn scope(&self, addr: &Addr, phase: usize) -> Addr {
        assert!(
            (1..=self.phases()).contains(&phase),
            "phase {phase} out of range 1..={}",
            self.phases()
        );
        assert_eq!(addr.len(), self.depth(), "scope of a non-box address");
        addr.prefix(self.depth() + 1 - phase)
    }

    /// The child prefixes whose aggregates a phase-`i` member combines:
    /// the `K` children of the phase scope (length `depth + 2 − i`).
    /// For phase 1 the "children" are individual member votes, so this is
    /// only meaningful for `phase >= 2`.
    ///
    /// # Panics
    ///
    /// Panics if `phase < 2` or out of range, or `addr` is not a box
    /// address.
    pub fn phase_children(&self, addr: &Addr, phase: usize) -> Vec<Addr> {
        assert!(phase >= 2, "phase 1 gossips votes, not child aggregates");
        self.scope(addr, phase).children().collect()
    }

    /// The child prefix of the phase scope that contains `addr` itself —
    /// the subtree whose aggregate this member computed in the previous
    /// phase.
    ///
    /// # Panics
    ///
    /// As for [`Hierarchy::phase_children`].
    pub fn own_child(&self, addr: &Addr, phase: usize) -> Addr {
        assert!(phase >= 2, "phase 1 has no child subtrees");
        let _ = self.scope(addr, phase); // range-check phase
        addr.prefix(self.depth() + 2 - phase)
    }

    /// Whether two boxes fall in the same phase-`i` scope.
    pub fn same_scope(&self, a: &Addr, b: &Addr, phase: usize) -> bool {
        self.scope(a, phase).contains(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_shape() {
        // N=8, K=2: 4 boxes of 2 digits, 3 phases (Figures 1 and 2).
        let h = Hierarchy::for_group(2, 8).unwrap();
        assert_eq!(h.depth(), 2);
        assert_eq!(h.num_boxes(), 4);
        assert_eq!(h.phases(), 3);
    }

    #[test]
    fn power_of_k_matches_paper_formula() {
        // N = K^d → depth = d - 1... paper: (log_K N - 1) digits.
        for (k, n, digits) in [(2u8, 8usize, 2usize), (2, 16, 3), (4, 256, 3), (4, 64, 2)] {
            let h = Hierarchy::for_group(k, n).unwrap();
            assert_eq!(h.depth(), digits, "K={k} N={n}");
            assert_eq!(h.num_boxes(), (n / k as usize) as u64);
        }
    }

    #[test]
    fn non_power_sizes_keep_occupancy_near_k() {
        for n in [200usize, 300, 500, 1000, 3200] {
            let h = Hierarchy::for_group(4, n).unwrap();
            let occupancy = n as f64 / h.num_boxes() as f64;
            assert!(
                occupancy > 1.0 && occupancy < 16.0,
                "N={n} occupancy {occupancy}"
            );
        }
    }

    #[test]
    fn validation() {
        assert_eq!(
            Hierarchy::for_group(1, 8),
            Err(HierarchyError::BadK { k: 1 })
        );
        assert_eq!(
            Hierarchy::for_group(2, 1),
            Err(HierarchyError::GroupTooSmall { n: 1 })
        );
        assert!(Hierarchy::with_depth(2, 0).is_err());
        assert!(Hierarchy::with_depth(2, 17).is_err());
        assert!(Hierarchy::with_depth(2, 16).is_ok());
    }

    #[test]
    fn tiny_groups_get_depth_one() {
        let h = Hierarchy::for_group(4, 4).unwrap();
        assert_eq!(h.depth(), 1);
        assert_eq!(h.phases(), 2);
    }

    #[test]
    fn box_of_unit_covers_all_boxes() {
        let h = Hierarchy::for_group(2, 8).unwrap();
        assert_eq!(h.box_of_unit(0.0).to_string(), "00");
        assert_eq!(h.box_of_unit(0.26).to_string(), "01");
        assert_eq!(h.box_of_unit(0.51).to_string(), "10");
        assert_eq!(h.box_of_unit(0.99).to_string(), "11");
        // values at/above 1.0 clamp into the last box
        assert_eq!(h.box_of_unit(1.0).to_string(), "11");
    }

    #[test]
    fn scope_progression_matches_figure_2() {
        let h = Hierarchy::for_group(2, 8).unwrap();
        let b10 = h.box_at(2); // "10"
        assert_eq!(h.scope(&b10, 1).display_depth(2), "10");
        assert_eq!(h.scope(&b10, 2).display_depth(2), "1*");
        assert_eq!(h.scope(&b10, 3).display_depth(2), "**");
    }

    #[test]
    fn phase_children_are_scope_children() {
        let h = Hierarchy::for_group(2, 8).unwrap();
        let b10 = h.box_at(2);
        let kids: Vec<String> = h
            .phase_children(&b10, 2)
            .iter()
            .map(|a| a.display_depth(2))
            .collect();
        assert_eq!(kids, ["10", "11"]);
        let kids3: Vec<String> = h
            .phase_children(&b10, 3)
            .iter()
            .map(|a| a.display_depth(2))
            .collect();
        assert_eq!(kids3, ["0*", "1*"]);
    }

    #[test]
    fn own_child_is_previous_phase_scope() {
        let h = Hierarchy::for_group(2, 8).unwrap();
        let b10 = h.box_at(2);
        for phase in 2..=h.phases() {
            assert_eq!(h.own_child(&b10, phase), h.scope(&b10, phase - 1));
        }
    }

    #[test]
    fn same_scope_symmetry() {
        let h = Hierarchy::for_group(2, 8).unwrap();
        let b00 = h.box_at(0);
        let b01 = h.box_at(1);
        let b10 = h.box_at(2);
        assert!(!h.same_scope(&b00, &b01, 1));
        assert!(h.same_scope(&b00, &b01, 2));
        assert!(!h.same_scope(&b00, &b10, 2));
        assert!(h.same_scope(&b00, &b10, 3));
    }

    #[test]
    #[should_panic(expected = "phase 0 out of range")]
    fn scope_phase_zero_panics() {
        let h = Hierarchy::for_group(2, 8).unwrap();
        let b = h.box_at(0);
        let _ = h.scope(&b, 0);
    }

    #[test]
    #[should_panic(expected = "phase 1 gossips votes")]
    fn phase_children_rejects_phase_one() {
        let h = Hierarchy::for_group(2, 8).unwrap();
        let b = h.box_at(0);
        let _ = h.phase_children(&b, 1);
    }

    #[test]
    fn error_display() {
        assert!(Hierarchy::for_group(1, 8)
            .unwrap_err()
            .to_string()
            .contains("K=1"));
        assert!(Hierarchy::for_group(2, 0)
            .unwrap_err()
            .to_string()
            .contains("0"));
    }
}
