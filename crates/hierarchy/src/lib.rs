//! # gridagg-hierarchy
//!
//! The **Grid Box Hierarchy** of the DSN 2001 paper (§6.1): a technique
//! for imposing an abstract hierarchy on a large process group.
//!
//! The `N` group members are divided into `N/K` *grid boxes* with an
//! average of `K` members per box. Each box carries a base-`K` digit
//! string address; *subtrees of height `i`* contain the boxes whose
//! addresses agree in the most significant `(log_K N − i)` digits. The
//! hierarchy is *abstract*: it exists only as address arithmetic, shared
//! by all members through a well-known hash function and an (approximate)
//! estimate of the group size.
//!
//! * [`addr`] — box addresses and subtree prefixes.
//! * [`params`] — the [`Hierarchy`] shape: `K`, digit
//!   count, phase/scope arithmetic.
//! * [`placement`] — the "well-known hash function `H`": fair random
//!   placement, plus explicit placement for tests.
//! * [`topo`] — the *topologically aware* `H` (Grid Location Scheme
//!   adaptation): recursive equal-count splits of a 2-D field, so nearby
//!   members share grid boxes.
//!
//! # Example: the paper's Figure 1
//!
//! Eight members, `K = 2`, four grid boxes `00 01 10 11`:
//!
//! ```
//! use gridagg_hierarchy::Hierarchy;
//!
//! let h = Hierarchy::for_group(2, 8).unwrap();
//! assert_eq!(h.depth(), 2);        // two address digits
//! assert_eq!(h.num_boxes(), 4);    // 00, 01, 10, 11
//! assert_eq!(h.phases(), 3);       // log_2 8 phases
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod addr;
pub mod intern;
pub mod params;
pub mod placement;
pub mod topo;

pub use addr::{Addr, AddrError};
pub use intern::{AddrInterner, AddrSlab};
pub use params::Hierarchy;
pub use placement::{ExplicitPlacement, FairHashPlacement, Placement, PrefixPlacement};
pub use topo::TopologicalPlacement;
