//! Topologically aware placement — the Grid Location Scheme adaptation.
//!
//! Paper §6.1: "it is often possible to have the grid division scheme
//! mirror the geographical/network topology location of the group members
//! … A topologically aware hash function would then (deterministically)
//! map member addresses to grid boxes so that there are an average of K
//! members per grid box, and grid boxes consist of members that are
//! topologically proximate" — citing the Grid Location Scheme of Li et
//! al. \[12\], where "closed regions are tailored to have an equal expected
//! number of members" (Figure 3).
//!
//! [`TopologicalPlacement`] realises this for a 2-D field: it recursively
//! splits the member positions into `K` equal-count slices along
//! alternating axes (a K-d-tree–style decomposition), assigning one
//! address digit per level. The result: exactly balanced box occupancy
//! (±1) *and* spatial locality — members of a box form a contiguous
//! region, and low subtrees of the hierarchy correspond to small regions,
//! so early protocol phases only cross short network distances.
//!
//! Determinism note: the split is computed from the full position table,
//! which in the paper corresponds to "a priori knowledge of the
//! probability distribution of prospective group members across the
//! network region". Every member evaluating the same table gets the same
//! placement.

use gridagg_simnet::topology::Position;
use gridagg_simnet::NodeId;

use crate::addr::Addr;
use crate::params::Hierarchy;
use crate::placement::Placement;

/// A placement that assigns proximate members to the same grid box.
#[derive(Debug, Clone)]
pub struct TopologicalPlacement {
    hierarchy: Hierarchy,
    boxes: Vec<Addr>,
}

impl TopologicalPlacement {
    /// Build the placement from node positions (indexed by `NodeId`).
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty.
    pub fn new(hierarchy: Hierarchy, positions: &[Position]) -> Self {
        assert!(!positions.is_empty(), "cannot place an empty group");
        let mut boxes = vec![Addr::root(hierarchy.k()).expect("k >= 2"); positions.len()];
        let mut indices: Vec<usize> = (0..positions.len()).collect();
        split(
            &hierarchy,
            positions,
            &mut indices,
            0,
            Addr::root(hierarchy.k()).expect("k >= 2"),
            &mut boxes,
        );
        TopologicalPlacement { hierarchy, boxes }
    }

    /// Box occupancy histogram (for tests and the topology ablation).
    pub fn occupancy(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.hierarchy.num_boxes() as usize];
        for b in &self.boxes {
            counts[b.index() as usize] += 1;
        }
        counts
    }
}

/// Recursively partition `indices[..]` (a region) into K equal-count
/// slices along alternating axes, appending one digit per level.
fn split(
    hierarchy: &Hierarchy,
    positions: &[Position],
    indices: &mut [usize],
    level: usize,
    prefix: Addr,
    out: &mut Vec<Addr>,
) {
    if level == hierarchy.depth() {
        for &i in indices.iter() {
            out[i] = prefix;
        }
        return;
    }
    // Alternate split axis per level (x, y, x, ...), breaking coordinate
    // ties by index so the split is total and deterministic.
    if level.is_multiple_of(2) {
        indices
            .sort_unstable_by(|&a, &b| positions[a].x.total_cmp(&positions[b].x).then(a.cmp(&b)));
    } else {
        indices
            .sort_unstable_by(|&a, &b| positions[a].y.total_cmp(&positions[b].y).then(a.cmp(&b)));
    }
    let k = hierarchy.k() as usize;
    let n = indices.len();
    let mut start = 0usize;
    for d in 0..k {
        // Equal-count slicing: slice d gets floor((d+1)·n/k) − floor(d·n/k).
        let end = ((d + 1) * n) / k;
        let child = prefix.child(d as u8).expect("digit < k");
        split(
            hierarchy,
            positions,
            &mut indices[start..end],
            level + 1,
            child,
            out,
        );
        start = end;
    }
}

impl Placement for TopologicalPlacement {
    fn place(&self, id: NodeId) -> Addr {
        self.boxes[id.index()]
    }

    fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridagg_simnet::rng::DetRng;
    use gridagg_simnet::topology::{make_field, FieldKind};

    fn field(n: usize) -> Vec<Position> {
        make_field(FieldKind::UniformRandom, n, &mut DetRng::seeded(9))
    }

    #[test]
    fn occupancy_is_balanced() {
        let h = Hierarchy::for_group(4, 256).unwrap(); // 64 boxes
        let p = TopologicalPlacement::new(h, &field(256));
        let occ = p.occupancy();
        assert_eq!(occ.iter().sum::<usize>(), 256);
        for (i, &c) in occ.iter().enumerate() {
            assert!((3..=5).contains(&c), "box {i} occupancy {c}");
        }
    }

    #[test]
    fn occupancy_balanced_for_awkward_n() {
        let h = Hierarchy::for_group(4, 200).unwrap();
        let p = TopologicalPlacement::new(h, &field(200));
        let occ = p.occupancy();
        let (min, max) = (occ.iter().min().unwrap(), occ.iter().max().unwrap());
        assert!(max - min <= 2, "occupancy spread {min}..{max}");
    }

    #[test]
    fn boxes_are_spatially_compact() {
        let h = Hierarchy::for_group(4, 256).unwrap();
        let pos = field(256);
        let p = TopologicalPlacement::new(h, &pos);
        // mean same-box pairwise distance must be far below the global mean
        let mut same = (0.0, 0usize);
        let mut global = (0.0, 0usize);
        for i in 0..256 {
            for j in (i + 1)..256 {
                let d = pos[i].distance(&pos[j]);
                global = (global.0 + d, global.1 + 1);
                if p.place(NodeId(i as u32)) == p.place(NodeId(j as u32)) {
                    same = (same.0 + d, same.1 + 1);
                }
            }
        }
        let mean_same = same.0 / same.1 as f64;
        let mean_global = global.0 / global.1 as f64;
        assert!(
            mean_same < mean_global / 2.0,
            "same-box {mean_same} vs global {mean_global}"
        );
    }

    #[test]
    fn subtree_scopes_nest_spatially() {
        // phase-2 scopes (larger subtrees) should also be more compact
        // than the whole field.
        let h = Hierarchy::for_group(2, 64).unwrap();
        let pos = field(64);
        let p = TopologicalPlacement::new(h, &pos);
        let phase = 2;
        let mut same = (0.0, 0usize);
        let mut global = (0.0, 0usize);
        for i in 0..64 {
            for j in (i + 1)..64 {
                let d = pos[i].distance(&pos[j]);
                global = (global.0 + d, global.1 + 1);
                let (a, b) = (p.place(NodeId(i as u32)), p.place(NodeId(j as u32)));
                if h.same_scope(&a, &b, phase) {
                    same = (same.0 + d, same.1 + 1);
                }
            }
        }
        let mean_same = same.0 / same.1 as f64;
        let mean_global = global.0 / global.1 as f64;
        assert!(
            mean_same < mean_global,
            "phase-2 scope not compact: {mean_same} vs {mean_global}"
        );
    }

    #[test]
    fn placement_is_deterministic() {
        let h = Hierarchy::for_group(4, 100).unwrap();
        let pos = field(100);
        let a = TopologicalPlacement::new(h, &pos);
        let b = TopologicalPlacement::new(h, &pos);
        for i in 0..100u32 {
            assert_eq!(a.place(NodeId(i)), b.place(NodeId(i)));
        }
    }

    #[test]
    fn all_addresses_full_depth() {
        let h = Hierarchy::for_group(4, 100).unwrap();
        let p = TopologicalPlacement::new(h, &field(100));
        for i in 0..100u32 {
            assert_eq!(p.place(NodeId(i)).len(), h.depth());
        }
    }

    #[test]
    #[should_panic(expected = "empty group")]
    fn empty_group_panics() {
        let h = Hierarchy::for_group(4, 100).unwrap();
        let _ = TopologicalPlacement::new(h, &[]);
    }

    #[test]
    fn figure_3_style_quadrants() {
        // 8 members, K=2, depth 2 → 4 boxes: the x-split then y-split
        // produces the quadrant structure of Figure 3.
        let h = Hierarchy::for_group(2, 8).unwrap();
        let pos = vec![
            Position::new(0.1, 0.1),
            Position::new(0.2, 0.2), // left-bottom pair
            Position::new(0.1, 0.9),
            Position::new(0.2, 0.8), // left-top pair
            Position::new(0.9, 0.1),
            Position::new(0.8, 0.2), // right-bottom pair
            Position::new(0.9, 0.9),
            Position::new(0.8, 0.8), // right-top pair
        ];
        let p = TopologicalPlacement::new(h, &pos);
        // pairs share boxes
        for pair in [(0u32, 1u32), (2, 3), (4, 5), (6, 7)] {
            assert_eq!(p.place(NodeId(pair.0)), p.place(NodeId(pair.1)));
        }
        // left and right halves differ in the first digit
        assert_ne!(p.place(NodeId(0)).digit(0), p.place(NodeId(4)).digit(0));
        assert_eq!(p.place(NodeId(0)).digit(0), p.place(NodeId(2)).digit(0));
    }
}
