//! Address interning: dense `u32` ids for the fixed prefix universe.
//!
//! Once `K` and the depth are known, the set of addresses a run can ever
//! mention is fixed: every prefix of length `0..=depth`, i.e.
//! `(K^(depth+1) − 1)/(K − 1)` addresses in total. That universe is
//! small (5 461 prefixes at `K = 4`, `depth = 6` — the `N = 16384`
//! grid), so an [`Addr`] can be replaced by a dense `u32` id and every
//! `BTreeMap<Addr, _>` on the per-round hot path by a flat vector
//! lookup.
//!
//! The id order is **exactly** the `Ord` order of [`Addr`] (length
//! first, then digits lexicographically — trailing digits beyond `len`
//! are zero, so the derived comparison reduces to `(len, index)`).
//! Iterating a dense table in id order therefore visits addresses in
//! the same order a `DetMap<Addr, _>` would, which is what keeps the
//! frozen goldens byte-identical after the map → slab migration.
//!
//! Two flavors are provided:
//!
//! * [`AddrInterner`] — the global `Addr → u32` table, for run-wide
//!   structures (one per [`crate::Hierarchy`], e.g. a shared committee
//!   directory or a children cache).
//! * [`AddrSlab`] — a per-member dense store over the *chain-local*
//!   sub-universe: the only addresses a member's protocol state ever
//!   holds are the children of its own ancestors plus the root
//!   (`depth·K + 1` slots). A full-universe slab per member would cost
//!   `O(N·K^depth)` memory; the chain slab is `O(depth·K)` and fits in
//!   a cache line or two.

use crate::addr::Addr;
use crate::params::Hierarchy;

/// Global `Addr → u32` interning table for one hierarchy's prefix
/// universe (every prefix of length `0..=depth`).
///
/// Ids are assigned in [`Addr`] `Ord` order: the root is 0, then the
/// `K` length-1 prefixes by digit, and so on. `intern`/`resolve` are
/// O(len) digit arithmetic — no table is materialized for the forward
/// direction; only the per-length offsets are precomputed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrInterner {
    k: u8,
    depth: u8,
    /// `offsets[len]` = id of the first (all-zero-digit) prefix of
    /// length `len`; one extra entry holds the universe size.
    offsets: Vec<u32>,
}

impl AddrInterner {
    /// Build the interner for `hierarchy`'s prefix universe.
    ///
    /// # Panics
    ///
    /// Panics if the universe exceeds `u32::MAX` addresses (impossible
    /// within [`crate::addr::MAX_DEPTH`] for any `K` the protocols use,
    /// but checked rather than silently truncated).
    pub fn new(hierarchy: &Hierarchy) -> Self {
        let k = hierarchy.k();
        let depth = hierarchy.depth();
        let mut offsets = Vec::with_capacity(depth + 2);
        let mut acc: u64 = 0;
        for len in 0..=depth {
            offsets.push(u32::try_from(acc).expect("prefix universe exceeds u32"));
            acc += (k as u64).pow(len as u32);
        }
        offsets.push(u32::try_from(acc).expect("prefix universe exceeds u32"));
        AddrInterner {
            k,
            depth: depth as u8,
            offsets,
        }
    }

    /// Number of interned addresses (valid ids are `0..len()`).
    pub fn len(&self) -> usize {
        *self.offsets.last().expect("offsets never empty") as usize
    }

    /// Whether the universe is empty (it never is: the root always
    /// interns).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dense id of `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not in this hierarchy's universe (wrong base
    /// or longer than the depth) — interning a foreign address is a
    /// logic error upstream, never data-dependent.
    pub fn intern(&self, addr: &Addr) -> u32 {
        assert_eq!(addr.base(), self.k, "address base does not match hierarchy");
        assert!(
            addr.len() <= self.depth as usize,
            "address longer than hierarchy depth"
        );
        self.offsets[addr.len()] + addr.index() as u32
    }

    /// The address with dense id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= len()`.
    pub fn resolve(&self, id: u32) -> Addr {
        assert!((id as usize) < self.len(), "interned id {id} out of range");
        let len = match self.offsets.binary_search(&id) {
            // `id` is the first prefix of some length; equal offsets
            // cannot occur (every length adds at least one prefix)
            Ok(pos) => pos,
            Err(pos) => pos - 1,
        };
        Addr::from_index(self.k, len, (id - self.offsets[len]) as u64)
            .expect("interned id resolves to a valid address")
    }
}

/// A dense per-member store keyed by the member's *chain-local*
/// addresses: the children of its own ancestors, plus the root.
///
/// A member in grid box `b` only ever stores aggregates for addresses
/// `a` with `a.parent().contains(b)` (its phase scopes and their
/// children) and for the root. Those are `depth·K + 1` addresses; slot
/// arithmetic maps them to a flat `Vec<Option<T>>`:
///
/// * root → slot 0,
/// * length-`l` chain address with last digit `d` → `1 + (l−1)·K + d`.
///
/// Slot order equals [`Addr`] `Ord` order over the chain sub-universe
/// (shorter first, then by last digit — the shared ancestor digits tie),
/// so [`AddrSlab::iter`] visits entries exactly as a `DetMap<Addr, _>`
/// restricted to the chain would.
#[derive(Debug, Clone)]
pub struct AddrSlab<T> {
    my_box: Addr,
    slots: Vec<Option<T>>,
}

impl<T> AddrSlab<T> {
    /// An empty slab for the member living in grid box `my_box` (a
    /// full-depth address; its base and length fix `K` and the depth).
    pub fn new(my_box: Addr) -> Self {
        let k = my_box.base() as usize;
        let depth = my_box.len();
        let mut slots = Vec::with_capacity(depth * k + 1);
        slots.resize_with(depth * k + 1, || None);
        AddrSlab { my_box, slots }
    }

    /// The slot of `addr`, or `None` when `addr` is outside this
    /// member's chain (different base, too long, or its parent is not
    /// an ancestor of `my_box`). Doubles as the relevance check.
    pub fn slot(&self, addr: &Addr) -> Option<usize> {
        if addr.base() != self.my_box.base() {
            return None;
        }
        let len = addr.len();
        if len == 0 {
            return Some(0);
        }
        if len > self.my_box.len() || addr.digits()[..len - 1] != self.my_box.digits()[..len - 1] {
            return None;
        }
        Some(1 + (len - 1) * self.my_box.base() as usize + addr.digit(len - 1) as usize)
    }

    /// Borrow the value stored for `addr` (`None` for empty slots *and*
    /// for out-of-chain addresses — absent is absent either way).
    pub fn get(&self, addr: &Addr) -> Option<&T> {
        self.slot(addr).and_then(|s| self.slots[s].as_ref())
    }

    /// Mutably borrow the value stored for `addr`.
    pub fn get_mut(&mut self, addr: &Addr) -> Option<&mut T> {
        match self.slot(addr) {
            Some(s) => self.slots[s].as_mut(),
            None => None,
        }
    }

    /// Whether a value is stored for `addr`.
    pub fn contains_key(&self, addr: &Addr) -> bool {
        self.get(addr).is_some()
    }

    /// Store `value` for `addr`, returning the previous value if any.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is outside the chain: every insert site guards
    /// with the relevance check first, so an out-of-chain insert is a
    /// protocol logic error, not a recoverable condition.
    pub fn insert(&mut self, addr: Addr, value: T) -> Option<T> {
        let slot = self
            .slot(&addr)
            .unwrap_or_else(|| panic!("AddrSlab: {addr} is outside the chain of {}", self.my_box));
        self.slots[slot].replace(value)
    }

    /// Whether no value is stored.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Iterate stored `(addr, value)` pairs in address (`Ord`) order.
    pub fn iter(&self) -> impl Iterator<Item = (Addr, &T)> + '_ {
        let k = self.my_box.base() as usize;
        self.slots.iter().enumerate().filter_map(move |(s, v)| {
            let value = v.as_ref()?;
            let addr = if s == 0 {
                self.my_box.prefix(0)
            } else {
                let len = (s - 1) / k + 1;
                let digit = ((s - 1) % k) as u8;
                self.my_box
                    .prefix(len - 1)
                    .child(digit)
                    .expect("chain slot digit < K")
            };
            Some((addr, value))
        })
    }

    /// Iterate stored values in address (`Ord`) order.
    pub fn values(&self) -> impl Iterator<Item = &T> + '_ {
        self.slots.iter().filter_map(Option::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn interner(k: u8, depth: usize) -> AddrInterner {
        AddrInterner::new(&Hierarchy::with_depth(k, depth).unwrap())
    }

    #[test]
    fn universe_size_is_geometric_sum() {
        assert_eq!(interner(4, 6).len(), (4usize.pow(7) - 1) / 3); // 5461
        assert_eq!(interner(2, 3).len(), 15);
        assert_eq!(interner(3, 1).len(), 4);
    }

    #[test]
    fn intern_resolve_roundtrip_whole_universe() {
        for (k, depth) in [(2u8, 4usize), (4, 3), (3, 2)] {
            let it = interner(k, depth);
            for id in 0..it.len() as u32 {
                let addr = it.resolve(id);
                assert_eq!(it.intern(&addr), id, "k={k} depth={depth} id={id}");
                assert!(addr.len() <= depth);
            }
        }
    }

    #[test]
    fn id_order_equals_addr_ord_order() {
        // the whole point: a dense table in id order iterates exactly
        // like a BTreeMap<Addr, _>
        let it = interner(4, 3);
        let by_id: Vec<Addr> = (0..it.len() as u32).map(|id| it.resolve(id)).collect();
        let mut by_ord = by_id.clone();
        by_ord.sort();
        assert_eq!(by_id, by_ord);
    }

    #[test]
    fn root_is_id_zero() {
        let it = interner(4, 3);
        assert_eq!(it.intern(&Addr::root(4).unwrap()), 0);
        assert!(!it.is_empty());
    }

    #[test]
    #[should_panic(expected = "base does not match")]
    fn foreign_base_panics() {
        interner(4, 3).intern(&Addr::root(2).unwrap());
    }

    #[test]
    #[should_panic(expected = "longer than hierarchy depth")]
    fn too_long_panics() {
        interner(2, 2).intern(&Addr::from_digits(2, &[0, 1, 1]).unwrap());
    }

    fn chain_box() -> Addr {
        Addr::from_digits(4, &[2, 1, 3]).unwrap()
    }

    #[test]
    fn slab_covers_exactly_the_chain() {
        let my_box = chain_box();
        let slab: AddrSlab<u32> = AddrSlab::new(my_box);
        let it = interner(4, 3);
        let mut in_chain = 0;
        for id in 0..it.len() as u32 {
            let addr = it.resolve(id);
            let relevant = addr.is_empty() || addr.parent().is_some_and(|p| p.contains(&my_box));
            assert_eq!(slab.slot(&addr).is_some(), relevant, "addr {addr}");
            in_chain += usize::from(relevant);
        }
        // root + depth levels of K children each
        assert_eq!(in_chain, 3 * 4 + 1);
        // distinct chain addresses get distinct slots
        let slots: std::collections::BTreeSet<usize> = (0..it.len() as u32)
            .filter_map(|id| slab.slot(&it.resolve(id)))
            .collect();
        assert_eq!(slots.len(), in_chain);
    }

    #[test]
    fn slab_insert_get_replace() {
        let mut slab: AddrSlab<u32> = AddrSlab::new(chain_box());
        let scope = chain_box().prefix(2);
        assert!(slab.is_empty());
        assert_eq!(slab.insert(scope, 7), None);
        assert_eq!(slab.get(&scope), Some(&7));
        assert!(slab.contains_key(&scope));
        assert_eq!(slab.insert(scope, 9), Some(7));
        *slab.get_mut(&scope).unwrap() += 1;
        assert_eq!(slab.get(&scope), Some(&10));
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn slab_iter_matches_btree_order() {
        use std::collections::BTreeMap;
        let my_box = chain_box();
        let mut slab: AddrSlab<u32> = AddrSlab::new(my_box);
        let mut map: BTreeMap<Addr, u32> = BTreeMap::new();
        // insert every chain address in a scrambled order
        let mut addrs: Vec<Addr> = vec![my_box.prefix(0)];
        for l in 1..=my_box.len() {
            addrs.extend(my_box.prefix(l - 1).children());
        }
        addrs.reverse();
        addrs.swap(0, 5);
        for (i, a) in addrs.iter().enumerate() {
            slab.insert(*a, i as u32);
            map.insert(*a, i as u32);
        }
        let from_slab: Vec<(Addr, u32)> = slab.iter().map(|(a, &v)| (a, v)).collect();
        let from_map: Vec<(Addr, u32)> = map.into_iter().collect();
        assert_eq!(from_slab, from_map, "slab must iterate in Addr Ord order");
        let vals: Vec<u32> = slab.values().copied().collect();
        assert_eq!(vals, from_slab.iter().map(|(_, v)| *v).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "outside the chain")]
    fn slab_insert_out_of_chain_panics() {
        let my_box = chain_box(); // 213
        let mut slab: AddrSlab<u32> = AddrSlab::new(my_box);
        // 30 — its parent 3* does not contain box 213
        slab.insert(Addr::from_digits(4, &[3, 0]).unwrap(), 1);
    }

    #[test]
    fn slab_get_out_of_chain_is_none() {
        let slab: AddrSlab<u32> = AddrSlab::new(chain_box());
        assert_eq!(slab.get(&Addr::from_digits(4, &[3, 0]).unwrap()), None);
        assert_eq!(slab.get(&Addr::root(2).unwrap()), None); // foreign base
    }
}
