//! Report rendering: the human-readable report and the stable,
//! machine-readable JSON findings document.
//!
//! The JSON output is hand-rolled (the workspace is offline and
//! dependency-free), fully sorted, and contains no timestamps or
//! absolute paths — two runs over the same tree produce byte-identical
//! bytes, so the CI artifact is diff-able across commits.

use crate::{Findings, ALL_RULES};

/// Render findings as the human-readable report the CLI prints (also
/// written to the `--report` file for the CI artifact). Violation
/// lines are shaped for the GitHub problem matcher:
/// `  D00x path:line: excerpt`.
pub fn render_report(findings: &Findings) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "gridagg-lint: {} files scanned, {} violation(s), {} waived, {} malformed waiver(s), {} unused waiver(s)\n",
        findings.files_scanned,
        findings.violations.len(),
        findings.waived.len(),
        findings.bad_waivers.len(),
        findings.unused_waivers.len(),
    ));
    if !findings.violations.is_empty() {
        out.push_str("\nviolations:\n");
        for v in &findings.violations {
            out.push_str(&format!(
                "  {} {}:{}: {}\n      rule: {}\n      note: {}\n",
                v.rule,
                v.file,
                v.line,
                v.excerpt,
                v.rule.summary(),
                v.detail,
            ));
        }
    }
    if !findings.bad_waivers.is_empty() {
        out.push_str("\nmalformed waivers:\n");
        for b in &findings.bad_waivers {
            out.push_str(&format!("  {}:{}: {}\n", b.file, b.line, b.problem));
        }
    }
    if !findings.unused_waivers.is_empty() {
        out.push_str("\nunused waivers (matched no violation — delete them):\n");
        for u in &findings.unused_waivers {
            out.push_str(&format!("  {} {}:{}\n", u.rule, u.file, u.line));
        }
    }
    out.push_str("\nwaiver tally:\n");
    if findings.waived.is_empty() {
        out.push_str("  (none)\n");
    } else {
        for rule in ALL_RULES {
            let of_rule: Vec<_> = findings.waived.iter().filter(|w| w.rule == rule).collect();
            if of_rule.is_empty() {
                continue;
            }
            out.push_str(&format!("  {} ({} site(s)):\n", rule, of_rule.len()));
            for w in of_rule {
                out.push_str(&format!("    {}:{} — {}\n", w.file, w.line, w.reason));
            }
        }
    }
    out
}

/// Escape a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as the stable JSON document (`--format json` / the
/// `--json` CI artifact). Schema version 1.
pub fn render_json(findings: &Findings) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n",
        findings.files_scanned
    ));
    out.push_str(&format!(
        "  \"summary\": {{\"violations\": {}, \"waived\": {}, \"bad_waivers\": {}, \"unused_waivers\": {}}},\n",
        findings.violations.len(),
        findings.waived.len(),
        findings.bad_waivers.len(),
        findings.unused_waivers.len(),
    ));

    out.push_str("  \"violations\": [");
    for (i, v) in findings.violations.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"excerpt\": \"{}\", \"detail\": \"{}\"}}",
            v.rule,
            esc(&v.file),
            v.line,
            esc(&v.excerpt),
            esc(&v.detail),
        ));
    }
    out.push_str(if findings.violations.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    out.push_str("  \"waived\": [");
    for (i, w) in findings.waived.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
            w.rule,
            esc(&w.file),
            w.line,
            esc(&w.reason),
        ));
    }
    out.push_str(if findings.waived.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    out.push_str("  \"bad_waivers\": [");
    for (i, b) in findings.bad_waivers.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"problem\": \"{}\"}}",
            esc(&b.file),
            b.line,
            esc(&b.problem),
        ));
    }
    out.push_str(if findings.bad_waivers.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    out.push_str("  \"unused_waivers\": [");
    for (i, u) in findings.unused_waivers.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}}}",
            u.rule,
            esc(&u.file),
            u.line,
        ));
    }
    out.push_str(if findings.unused_waivers.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });

    out.push_str("  \"waiver_counts\": {");
    for (i, rule) in ALL_RULES.iter().enumerate() {
        let n = findings.waived.iter().filter(|w| w.rule == *rule).count();
        out.push_str(if i == 0 { "" } else { ", " });
        out.push_str(&format!("\"{rule}\": {n}"));
    }
    out.push_str("}\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_source;

    #[test]
    fn json_is_stable_and_escaped() {
        let src = "fn f() { let m = std::collections::HashMap::<u32, &str>::new(); let _ = m; }\n";
        let a = render_json(&lint_source("crates/core/src/x.rs", src));
        let b = render_json(&lint_source("crates/core/src/x.rs", src));
        assert_eq!(a, b, "JSON must be byte-identical across runs");
        assert!(a.contains("\"rule\": \"D001\""));
        assert!(a.contains("\"schema\": 1"));
        // the excerpt contains `&str` — no raw quotes may leak unescaped
        for line in a.lines() {
            if let Some(rest) = line.trim().strip_prefix("{\"rule\"") {
                assert!(!rest.contains("\\\\\""), "double-escaping: {line}");
            }
        }
    }

    #[test]
    fn empty_findings_render_compact_arrays() {
        let f = crate::Findings {
            files_scanned: 0,
            ..crate::Findings::default()
        };
        let j = render_json(&f);
        assert!(j.contains("\"violations\": [],"));
        assert!(j.contains("\"waiver_counts\": {\"D001\": 0"));
    }
}
