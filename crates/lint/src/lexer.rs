//! Line-preserving lexer: strips comments and string/char literals so
//! rules can pattern-match on *code*, while keeping `//` comment text
//! per line for waiver/annotation parsing.

/// One source line after lexing: code with comments/strings blanked
/// out, plus the text of any `//` comment that started on the line.
#[derive(Debug, Clone)]
pub struct LexedLine {
    /// The line's code with comments and literal contents blanked.
    pub code: String,
    /// Text of a plain `//` comment starting on this line, if any
    /// (doc comments `///` and `//!` are never captured — they are
    /// prose about code, not annotations on it).
    pub comment: Option<String>,
}

/// Strip comments and string/char literals from `src`, preserving the
/// line structure exactly (every `\n` survives; removed spans become
/// spaces). Line-comment text is captured per line for waiver parsing.
pub fn lex(src: &str) -> Vec<LexedLine> {
    let bytes = src.as_bytes();
    let mut code = String::with_capacity(src.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                code.push('\n');
                line += 1;
                i += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                // Line comment: blank the span. Only plain `//`
                // comments can carry waivers — doc comments (`///`,
                // `//!`) are prose about code, not annotations on it,
                // so a waiver example in documentation never fires.
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    code.push(' ');
                    i += 1;
                }
                let text = &src[start..i];
                if !text.starts_with("///") && !text.starts_with("//!") {
                    comments.push((line, text.to_string()));
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Block comment, possibly nested; blank it, keep newlines.
                let mut depth = 1usize;
                code.push(' ');
                code.push(' ');
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        code.push_str("  ");
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        code.push_str("  ");
                        i += 2;
                    } else if bytes[i] == b'\n' {
                        code.push('\n');
                        line += 1;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            }
            '"' => {
                // Ordinary string literal (or the body of b"..."):
                // blank contents, keep the quotes for token shape.
                code.push('"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' if i + 1 < bytes.len() => {
                            code.push_str("  ");
                            i += 2;
                        }
                        b'"' => {
                            code.push('"');
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            code.push('\n');
                            line += 1;
                            i += 1;
                        }
                        _ => {
                            code.push(' ');
                            i += 1;
                        }
                    }
                }
            }
            'r' if is_raw_string_start(bytes, i) => {
                // Raw string r"..." / r#"..."# (any hash count).
                let mut j = i + 1;
                let mut hashes = 0usize;
                while j < bytes.len() && bytes[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                // Emit blanks for r##...#"
                for _ in i..=j {
                    code.push(' ');
                }
                i = j + 1; // past the opening quote
                'raw: while i < bytes.len() {
                    if bytes[i] == b'"' {
                        // Check for closing hash run.
                        let mut k = i + 1;
                        let mut seen = 0usize;
                        while k < bytes.len() && bytes[k] == b'#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            for _ in i..k {
                                code.push(' ');
                            }
                            i = k;
                            break 'raw;
                        }
                    }
                    if bytes[i] == b'\n' {
                        code.push('\n');
                        line += 1;
                    } else {
                        code.push(' ');
                    }
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs lifetime. A char literal is '<esc>'
                // or 'X'; anything else ('static, 'a in bounds) is a
                // lifetime and passes through.
                if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                    // Escaped char literal: blank until closing quote.
                    code.push(' ');
                    i += 1;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        code.push(' ');
                        i += 1;
                    }
                    if i < bytes.len() {
                        code.push(' ');
                        i += 1;
                    }
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    code.push_str("   ");
                    i += 3;
                } else {
                    code.push('\'');
                    i += 1;
                }
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }

    let mut lines: Vec<LexedLine> = code
        .split('\n')
        .map(|l| LexedLine {
            code: l.to_string(),
            comment: None,
        })
        .collect();
    for (ln, text) in comments {
        if let Some(slot) = lines.get_mut(ln) {
            slot.comment = Some(text);
        }
    }
    lines
}

/// Whether `bytes[i]` (== `b'r'`) starts a raw string literal rather
/// than an identifier ending in `r`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 {
        let prev = bytes[i - 1] as char;
        // `br"` byte raw strings: allow a `b` prefix, reject other
        // identifier tails (e.g. `attr"` can't occur in valid Rust).
        if (prev.is_alphanumeric() || prev == '_') && prev != 'b' {
            return false;
        }
    }
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

/// Whether `code` contains `word` delimited by non-identifier
/// characters (so `unsafe_flag` does not match `unsafe`).
pub fn contains_word(code: &str, word: &str) -> bool {
    let b = code.as_bytes();
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(word) {
        let i = start + pos;
        let j = i + word.len();
        let left_ok = i == 0 || !is_ident(b[i - 1]);
        let right_ok = j == b.len() || !is_ident(b[j]);
        if left_ok && right_ok {
            return true;
        }
        start = i + 1;
    }
    false
}

/// The last `fn <name>` declared on a lexed line, if any.
pub fn fn_name_on_line(code: &str) -> Option<String> {
    let b = code.as_bytes();
    let mut found = None;
    let mut i = 0usize;
    while i + 2 < b.len() {
        if &b[i..i + 2] == b"fn"
            && (i == 0 || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_'))
            && b[i + 2].is_ascii_whitespace()
        {
            let mut j = i + 2;
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            let start = j;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            if j > start {
                found = Some(code[start..j].to_string());
            }
            i = j;
        } else {
            i += 1;
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_strips_comments_and_strings() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet y = 1; /* HashMap */ let z = 2;\n";
        let lines = lex(src);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.as_deref().unwrap().contains("HashMap"));
        assert!(!lines[1].code.contains("HashMap"));
        assert!(lines[1].code.contains("let z"));
    }

    #[test]
    fn lexer_handles_lifetimes_and_chars() {
        let src = "fn f<'a>(s: &'a str) -> char { 'x' }\nlet nl = '\\n';\nlet s = r#\"raw \"quote\" HashSet\"#;\n";
        let lines = lex(src);
        assert!(lines[0].code.contains("&'a str"));
        assert!(!lines[0].code.contains("'x'"));
        assert!(!lines[2].code.contains("HashSet"));
    }

    #[test]
    fn doc_comments_are_not_captured() {
        let src =
            "/// lint:allow(D001) doc example\n//! lint:allow(D002) inner doc\n// real comment\n";
        let lines = lex(src);
        assert!(lines[0].comment.is_none());
        assert!(lines[1].comment.is_none());
        assert!(lines[2].comment.is_some());
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("unsafe { x }", "unsafe"));
        assert!(!contains_word("let unsafe_count = 1;", "unsafe"));
        assert!(!contains_word("singleton_for_scale(3, 64)", "for_scale"));
        assert!(contains_word("VoteSet::for_scale(64)", "for_scale"));
    }
}
