//! `gridagg-lint` CLI: lint the workspace tree, print the report in
//! the chosen format, optionally write the human report and/or the
//! JSON findings document to files (the CI artifacts), check the
//! per-rule waiver budget, and exit non-zero on any unwaivered
//! violation, malformed waiver, stale waiver, or budget overrun.
//!
//! Usage:
//!   cargo run -p gridagg-lint -- [--root <dir>] [--format human|json]
//!       [--report <file>] [--json <file>] [--budget <file>]
//!
//! `--root` defaults to the workspace root (two levels up from this
//! crate's manifest when run via cargo, else the current directory).
//! `--budget` points at a `lint_budget.json`; when given, each rule's
//! honoured-waiver count is checked against its budget: overruns fail
//! the run, slack is reported so the budget can be ratcheted down.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: gridagg-lint [--root <dir>] [--format human|json] \
[--report <file>] [--json <file>] [--budget <file>]";

enum Format {
    Human,
    Json,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut json_path: Option<PathBuf> = None;
    let mut budget_path: Option<PathBuf> = None;
    let mut format = Format::Human;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a value"),
            },
            "--report" => match args.next() {
                Some(v) => report_path = Some(PathBuf::from(v)),
                None => return usage("--report needs a value"),
            },
            "--json" => match args.next() {
                Some(v) => json_path = Some(PathBuf::from(v)),
                None => return usage("--json needs a value"),
            },
            "--budget" => match args.next() {
                Some(v) => budget_path = Some(PathBuf::from(v)),
                None => return usage("--budget needs a value"),
            },
            "--format" => match args.next().as_deref() {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some(other) => return usage(&format!("unknown format {other:?}")),
                None => return usage("--format needs a value"),
            },
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let root = root.unwrap_or_else(default_root);
    let findings = match gridagg_lint::lint_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("gridagg-lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    // Budget check (before rendering so the human report can carry it).
    let mut budget_text = String::new();
    let mut budget_ok = true;
    if let Some(path) = &budget_path {
        let outcome = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))
            .and_then(|text| gridagg_lint::budget::parse_budget(&text));
        match outcome {
            Ok(budget) => {
                let check = gridagg_lint::budget::check(&budget, &findings);
                budget_ok = check.ok();
                budget_text = gridagg_lint::budget::render_check(&check);
            }
            Err(e) => {
                eprintln!("gridagg-lint: budget error: {e}");
                budget_ok = false;
            }
        }
    }

    let report = format!("{}{budget_text}", gridagg_lint::render_report(&findings));
    let json = gridagg_lint::render_json(&findings);
    match format {
        Format::Human => print!("{report}"),
        Format::Json => print!("{json}"),
    }
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("gridagg-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("gridagg-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    if findings.is_clean() && budget_ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Workspace root: `CARGO_MANIFEST_DIR/../..` when run under cargo,
/// else the current directory.
fn default_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let mut p = PathBuf::from(dir);
            p.pop(); // crates/
            p.pop(); // workspace root
            p
        }
        None => PathBuf::from("."),
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("gridagg-lint: {problem}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}
