//! `gridagg-lint` CLI: lint the workspace tree, print the report,
//! optionally write it to a file (the CI waiver-tally artifact), and
//! exit non-zero on any unwaivered violation or malformed waiver.
//!
//! Usage:
//!   cargo run -p gridagg-lint -- [--root <dir>] [--report <file>]
//!
//! `--root` defaults to the workspace root (two levels up from this
//! crate's manifest when run via cargo, else the current directory).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage("--root needs a value"),
            },
            "--report" => match args.next() {
                Some(v) => report_path = Some(PathBuf::from(v)),
                None => return usage("--report needs a value"),
            },
            "--help" | "-h" => {
                eprintln!("usage: gridagg-lint [--root <dir>] [--report <file>]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let root = root.unwrap_or_else(default_root);
    let findings = match gridagg_lint::lint_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("gridagg-lint: cannot scan {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    let report = gridagg_lint::render_report(&findings);
    print!("{report}");
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, &report) {
            eprintln!("gridagg-lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }

    if findings.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Workspace root: `CARGO_MANIFEST_DIR/../..` when run under cargo,
/// else the current directory.
fn default_root() -> PathBuf {
    match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => {
            let mut p = PathBuf::from(dir);
            p.pop(); // crates/
            p.pop(); // workspace root
            p
        }
        None => PathBuf::from("."),
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("gridagg-lint: {problem}");
    eprintln!("usage: gridagg-lint [--root <dir>] [--report <file>]");
    ExitCode::FAILURE
}
