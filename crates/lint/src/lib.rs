//! In-repo determinism/safety linter for the gridagg workspace.
//!
//! A dependency-free, two-pass static analyzer. **Pass 1** lexes each
//! file (comments and string literals blanked, line structure
//! preserved — see [`lexer`]) and builds a lightweight per-file item
//! index of enums + variants, `match` expressions and their arm
//! patterns, fn definitions and call sites, `// lint:hot` annotations
//! and instrumentation-gated blocks (see [`index`]). **Pass 2** runs
//! the rules: most are per-file line scans over the index; D006 is a
//! cross-file workspace rule (see [`rules`]).
//!
//! # Rules
//!
//! - **D001** — no `HashMap`/`HashSet` in protocol-state crates
//!   (`core`, `simnet`, `hierarchy`, `group`, `aggregate`) outside
//!   tests. Iteration order of the std hash collections is randomized
//!   per process, which silently breaks the repo's byte-identical
//!   golden-run guarantees. Use
//!   `gridagg_simnet::detcol::{DetMap, DetSet}`.
//! - **D002** — no wall-clock reads (`SystemTime::now`,
//!   `Instant::now`), OS threading (`std::thread`), process state
//!   (`std::process`, `std::env`) or entropy-seeded randomness outside
//!   the `runtime` and `bench` crates (and this linter). Simulated
//!   time and `DetRng` are the only clocks and dice the protocol
//!   crates may roll.
//! - **D003** — no `.unwrap()` / `.expect(` / `panic!` /
//!   `unreachable!` / `todo!` inside message-decode paths (`fn decode*`)
//!   and protocol event handlers (`fn on_*`) of the protocol-state
//!   crates. A malformed or unexpected message must surface as an
//!   error or be dropped, never crash the process.
//! - **D004** — no bare `as` float↔int casts in aggregate math (the
//!   `aggregate` crate). Conversions go through the audited helpers in
//!   `gridagg_aggregate`'s `conv` module, which carry exactness and
//!   range assertions under `strict-invariants`.
//! - **D005** — no `unsafe` blocks or unchecked indexing
//!   (`.get_unchecked`/`.get_unchecked_mut`) in protocol-state crates.
//!   The struct-of-arrays member storage is addressed by raw `u32`
//!   indexes into dense `Vec`s; every access must stay bounds-checked
//!   so an index bug surfaces as a panic in CI, not silent memory
//!   corruption at N=10^6.
//! - **D006** — wire-schema completeness (cross-file). Every `Payload`
//!   variant must have an `encode` arm and a `decode` arm in the wire
//!   codec, and be handled or explicitly ignored in every protocol's
//!   `on_message`; wildcard `_ =>` arms in matches over `Payload` in
//!   protocol-state crates are flagged so a future variant can't be
//!   silently dropped.
//! - **D007** — counted-set discipline. The
//!   `for_scale`/`singleton_for_scale`/`empty_for_scale`/
//!   `from_vote_for_scale` constructors trade exact contributor
//!   tracking for counts, which is only sound in structurally-deduping
//!   protocols (hiergossip/flatgossip/leader). Flood and centralized
//!   rely on exact `try_merge` DoubleCount rejection for correctness,
//!   so any other call site is flagged.
//! - **D008** — instrumentation purity. No RNG draws inside blocks
//!   gated by trace/instrumentation flags (`phase_trace`,
//!   `S::ENABLED`, `is_traced()`): toggling tracing must never change
//!   the random stream, or goldens stop being byte-identical.
//! - **D009** — hot-path allocation. Allocation-causing calls
//!   (`Vec::new`, `vec![`, `.to_vec()`, `format!`, `collect::<Vec`,
//!   `.clone()`, …) are flagged inside functions annotated
//!   `// lint:hot` (the engine/hiergossip/simnet round loops).
//!
//! # Waivers
//!
//! A rule can be suppressed at a single site with a comment:
//!
//! ```text
//! // lint:allow(D002) reason why this site is sound
//! ```
//!
//! The reason is mandatory; a reasonless waiver is itself reported.
//! Scoping is exact: a trailing waiver (on a line that carries code)
//! covers only that line; a standalone comment-line waiver covers only
//! the next line. Each waiver is consumed by at most one violation,
//! and a waiver that matches no violation is a **fatal** finding —
//! stale waivers must be deleted, which is what lets the committed
//! `lint_budget.json` ratchet the exception surface (see [`budget`]).
//! Waivers must be plain `//` comments — doc comments (`///`, `//!`)
//! never carry them, so examples like the one above are inert.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod budget;
pub mod index;
pub mod lexer;
pub mod report;
pub mod rules;

pub use report::{render_json, render_report};
pub use rules::{crate_of, D002_EXEMPT_CRATES, PROTOCOL_STATE_CRATES};

use index::FileIndex;
use lexer::LexedLine;

/// The rule set, in the order they are reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Hash collections in protocol-state crates.
    D001,
    /// Wall clocks, OS threads, process/env state outside runtime/bench.
    D002,
    /// Panicking calls in decode/handler paths.
    D003,
    /// Bare `as` float↔int casts in aggregate math.
    D004,
    /// `unsafe` / unchecked indexing in protocol-state crates.
    D005,
    /// Wire-schema completeness for `Payload` (cross-file).
    D006,
    /// Counted-set constructors outside deduping protocols.
    D007,
    /// RNG draws inside instrumentation-gated blocks.
    D008,
    /// Allocations inside `// lint:hot` functions.
    D009,
}

/// All rules, in report order.
pub const ALL_RULES: [Rule; 9] = [
    Rule::D001,
    Rule::D002,
    Rule::D003,
    Rule::D004,
    Rule::D005,
    Rule::D006,
    Rule::D007,
    Rule::D008,
    Rule::D009,
];

impl Rule {
    /// The rule identifier as written in waivers, e.g. `"D001"`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::D005 => "D005",
            Rule::D006 => "D006",
            Rule::D007 => "D007",
            Rule::D008 => "D008",
            Rule::D009 => "D009",
        }
    }

    /// One-line human summary used in reports.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D001 => "hash collection in protocol-state crate (use detcol::DetMap/DetSet)",
            Rule::D002 => "wall clock / OS thread / process state outside runtime+bench",
            Rule::D003 => "panicking call in decode/on_* handler path",
            Rule::D004 => "bare `as` float<->int cast in aggregate math (use the conv module)",
            Rule::D005 => {
                "unsafe / unchecked indexing in protocol-state crate (keep SoA state bounds-checked)"
            }
            Rule::D006 => {
                "wire-schema completeness: every Payload variant needs codec + handler arms, no wildcards"
            }
            Rule::D007 => {
                "counted-set constructor outside hiergossip/flatgossip/leader (breaks exact dedup)"
            }
            Rule::D008 => {
                "RNG draw inside instrumentation-gated block (tracing must not perturb goldens)"
            }
            Rule::D009 => "allocation inside a `// lint:hot` function",
        }
    }

    /// Parse a rule id (`"D001"`..`"D009"`).
    pub fn parse(s: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.id() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// A rule violation at a specific site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
    /// Site-specific diagnosis (which pattern/variant/constructor).
    pub detail: String,
}

/// A violation that was suppressed by a `lint:allow` waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waived {
    /// Which rule was waived.
    pub rule: Rule,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number of the suppressed site.
    pub line: usize,
    /// The justification text from the waiver comment.
    pub reason: String,
}

/// A malformed waiver: unknown rule id or missing reason. These count
/// as findings — a waiver must say *why*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadWaiver {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number of the waiver comment.
    pub line: usize,
    /// What is wrong with it.
    pub problem: String,
}

/// A waiver that matched no violation. Fatal: stale waivers hide the
/// real exception surface and defeat the budget ratchet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnusedWaiver {
    /// The rule the waiver named.
    pub rule: Rule,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number of the waiver comment.
    pub line: usize,
}

/// The outcome of linting one file or a whole tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Findings {
    /// Unwaivered violations — these fail the build.
    pub violations: Vec<Violation>,
    /// Violations suppressed by a well-formed waiver.
    pub waived: Vec<Waived>,
    /// Malformed waivers — these also fail the build.
    pub bad_waivers: Vec<BadWaiver>,
    /// Waivers that matched no violation — these also fail the build.
    pub unused_waivers: Vec<UnusedWaiver>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Findings {
    /// Whether the tree is clean: no unwaivered violations, no
    /// malformed waivers, and no stale (unused) waivers.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.bad_waivers.is_empty() && self.unused_waivers.is_empty()
    }

    fn absorb(&mut self, other: Findings) {
        self.violations.extend(other.violations);
        self.waived.extend(other.waived);
        self.bad_waivers.extend(other.bad_waivers);
        self.unused_waivers.extend(other.unused_waivers);
        self.files_scanned += other.files_scanned;
    }

    fn sort(&mut self) {
        self.violations
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.waived
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
        self.bad_waivers
            .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        self.unused_waivers
            .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    }
}

/// A parsed `lint:allow` waiver with its exact target line.
#[derive(Debug, Clone)]
struct WaiverSite {
    rule: Rule,
    /// Line the comment is on.
    line: usize,
    /// The single line this waiver may suppress: its own line for a
    /// trailing comment, the next line for a standalone comment.
    target: usize,
    reason: String,
    used: bool,
}

/// Waiver declaration parsed from a `//` comment.
enum WaiverDecl {
    Ok { rule: Rule, reason: String },
    Bad { problem: String },
}

/// Parse every `lint:allow(D00x) reason` in a comment. A comment may
/// carry several waivers (two rules firing on one line); each reason
/// runs until the next `lint:allow(` or the end of the comment.
fn parse_waivers(comment: &str) -> Vec<WaiverDecl> {
    const NEEDLE: &str = "lint:allow(";
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(idx) = rest.find(NEEDLE) {
        let after = &rest[idx + NEEDLE.len()..];
        let Some(close) = after.find(')') else {
            out.push(WaiverDecl::Bad {
                problem: "unclosed lint:allow(".to_string(),
            });
            return out;
        };
        let id = after[..close].trim();
        let tail = &after[close + 1..];
        let reason_end = tail.find(NEEDLE).unwrap_or(tail.len());
        let reason = tail[..reason_end].trim().to_string();
        match Rule::parse(id) {
            None => out.push(WaiverDecl::Bad {
                problem: format!("unknown rule id {id:?} in lint:allow"),
            }),
            Some(rule) if reason.is_empty() => out.push(WaiverDecl::Bad {
                problem: format!("waiver for {} has no reason", rule.id()),
            }),
            Some(rule) => out.push(WaiverDecl::Ok { rule, reason }),
        }
        rest = tail;
    }
    out
}

/// Everything pass 1 extracts from one file. Pass 2's cross-file rules
/// read the `index`; waiver application then folds raw violations into
/// [`Findings`].
pub(crate) struct FileAnalysis {
    pub(crate) path: String,
    pub(crate) lines: Vec<LexedLine>,
    pub(crate) excerpts: Vec<String>,
    pub(crate) index: FileIndex,
    raw: Vec<Violation>,
    waivers: Vec<WaiverSite>,
    bad_waivers: Vec<BadWaiver>,
}

/// Pass 1 for a single file: lex, build the item index, run the
/// per-file rules, and collect waiver declarations.
fn analyze_file(path: &str, src: &str) -> FileAnalysis {
    let lines = lexer::lex(src);
    let excerpts: Vec<String> = src.lines().map(|l| l.trim().to_string()).collect();
    let index = index::build_index(&lines, rules::GATE_PATTERNS);

    let mut waivers: Vec<WaiverSite> = Vec::new();
    let mut bad_waivers: Vec<BadWaiver> = Vec::new();
    for (idx, lexed) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let Some(comment) = &lexed.comment else {
            continue;
        };
        let trailing = !lexed.code.trim().is_empty();
        for decl in parse_waivers(comment) {
            match decl {
                WaiverDecl::Ok { rule, reason } => waivers.push(WaiverSite {
                    rule,
                    line: lineno,
                    target: if trailing { lineno } else { lineno + 1 },
                    reason,
                    used: false,
                }),
                WaiverDecl::Bad { problem } => bad_waivers.push(BadWaiver {
                    file: path.to_string(),
                    line: lineno,
                    problem,
                }),
            }
        }
    }

    let raw = rules::scan_file(path, &lines, &excerpts, &index);
    FileAnalysis {
        path: path.to_string(),
        lines,
        excerpts,
        index,
        raw,
        waivers,
        bad_waivers,
    }
}

/// Fold one file's raw violations through its waivers. Each waiver
/// suppresses at most one violation, on exactly its target line.
fn apply_waivers(mut a: FileAnalysis) -> Findings {
    let mut findings = Findings {
        files_scanned: 1,
        bad_waivers: std::mem::take(&mut a.bad_waivers),
        ..Findings::default()
    };
    a.raw.sort_by_key(|x| (x.line, x.rule));
    for v in a.raw {
        let w = a
            .waivers
            .iter_mut()
            .find(|w| !w.used && w.rule == v.rule && w.target == v.line);
        match w {
            Some(w) => {
                w.used = true;
                findings.waived.push(Waived {
                    rule: v.rule,
                    file: v.file,
                    line: v.line,
                    reason: w.reason.clone(),
                });
            }
            None => findings.violations.push(v),
        }
    }
    for w in a.waivers {
        if !w.used {
            findings.unused_waivers.push(UnusedWaiver {
                rule: w.rule,
                file: a.path.clone(),
                line: w.line,
            });
        }
    }
    findings
}

/// Lint a set of files given as `(workspace-relative path, source)`
/// pairs: pass 1 per file, then the cross-file pass (D006), then
/// waiver application. Pure function — the unit the fixture tests
/// drive.
pub fn lint_files(files: &[(String, String)]) -> Findings {
    let mut analyses: Vec<FileAnalysis> = files.iter().map(|(p, s)| analyze_file(p, s)).collect();

    for v in rules::check_wire_schema(&analyses) {
        if let Some(a) = analyses.iter_mut().find(|a| a.path == v.file) {
            a.raw.push(v);
        }
    }

    let mut findings = Findings::default();
    for a in analyses {
        findings.absorb(apply_waivers(a));
    }
    findings.sort();
    findings
}

/// Lint a single file. Cross-file rule D006 sees only this file's
/// items (wildcard matches still fire; codec/handler completeness
/// needs the `Payload` definition in scope).
pub fn lint_source(path: &str, src: &str) -> Findings {
    lint_files(&[(path.to_string(), src.to_string())])
}

/// Recursively collect `.rs` files under `dir`, sorted for
/// deterministic report order.
fn rs_files_under(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            rs_files_under(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every `crates/*/src` tree plus the root `src/` under
/// `workspace_root`. Returns aggregated findings with
/// workspace-relative, forward-slash paths.
pub fn lint_tree(workspace_root: &Path) -> io::Result<Findings> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = workspace_root.join("crates");
    if crates_dir.is_dir() {
        let mut crates: Vec<_> = fs::read_dir(&crates_dir)?.collect::<Result<_, _>>()?;
        crates.sort_by_key(std::fs::DirEntry::file_name);
        for c in crates {
            let src = c.path().join("src");
            if src.is_dir() {
                rs_files_under(&src, &mut files)?;
            }
        }
    }
    let root_src = workspace_root.join("src");
    if root_src.is_dir() {
        rs_files_under(&root_src, &mut files)?;
    }

    let mut sources: Vec<(String, String)> = Vec::with_capacity(files.len());
    for file in files {
        let rel = file
            .strip_prefix(workspace_root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        sources.push((rel, fs::read_to_string(&file)?));
    }
    Ok(lint_files(&sources))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_regions_are_skipped() {
        let src = "\
fn live() {
    let m = std::collections::HashMap::<u32, u32>::new();
    let _ = m;
}

#[cfg(test)]
mod tests {
    fn helper() {
        let m = std::collections::HashMap::<u32, u32>::new();
        let _ = m;
    }
}
";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.violations.len(), 1, "{:?}", f.violations);
        assert_eq!(f.violations[0].line, 2);
    }

    #[test]
    fn d003_only_fires_in_handler_fns() {
        let src = "\
fn compose(x: Option<u32>) -> u32 {
    x.expect(\"invariant\")
}
fn on_round(x: Option<u32>) -> u32 {
    x.expect(\"boom\")
}
fn decode_tag(x: Option<u32>) -> u32 {
    x.unwrap()
}
";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.violations.len(), 2, "{:?}", f.violations);
        assert!(f.violations.iter().all(|v| v.rule == Rule::D003));
        assert_eq!(f.violations[0].line, 5);
        assert_eq!(f.violations[1].line, 8);
    }

    #[test]
    fn crate_scoping() {
        let src = "fn t() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(lint_source("crates/core/src/x.rs", src).violations.len(), 1);
        assert_eq!(
            lint_source("crates/runtime/src/x.rs", src).violations.len(),
            0
        );
        assert_eq!(
            lint_source("crates/bench/src/bin/x.rs", src)
                .violations
                .len(),
            0
        );
        let cast = "fn c(n: u64) -> f64 { n as f64 }\n";
        assert_eq!(
            lint_source("crates/aggregate/src/x.rs", cast)
                .violations
                .len(),
            1
        );
        assert_eq!(
            lint_source("crates/core/src/x.rs", cast).violations.len(),
            0
        );
    }

    #[test]
    fn waiver_same_line_and_preceding_line() {
        let src = "\
fn f() {
    // lint:allow(D002) reason one
    let a = std::time::Instant::now();
    let b = std::time::Instant::now(); // lint:allow(D002) reason two
    let _ = (a, b);
}
";
        let f = lint_source("crates/core/src/x.rs", src);
        assert!(f.violations.is_empty(), "{:?}", f.violations);
        assert_eq!(f.waived.len(), 2);
        assert_eq!(f.waived[0].reason, "reason one");
        assert_eq!(f.waived[1].reason, "reason two");
        assert!(f.is_clean());
    }

    #[test]
    fn standalone_waiver_covers_only_the_next_line() {
        // Regression: a waiver on line L used to match violations on
        // both L and L+1 and could be reused across sites. It must
        // cover exactly one violation on exactly its target line.
        let src = "\
fn f() {
    // lint:allow(D002) only the first site is justified
    let a = std::time::Instant::now();
    let b = std::time::Instant::now();
    let _ = (a, b);
}
";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.waived.len(), 1);
        assert_eq!(f.waived[0].line, 3);
        assert_eq!(f.violations.len(), 1, "{:?}", f.violations);
        assert_eq!(f.violations[0].line, 4, "second site must not ride along");
    }

    #[test]
    fn trailing_waiver_does_not_leak_to_next_line() {
        let src = "\
fn f() {
    let a = std::time::Instant::now(); // lint:allow(D002) this line only
    let b = std::time::Instant::now();
    let _ = (a, b);
}
";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.waived.len(), 1);
        assert_eq!(f.waived[0].line, 2);
        assert_eq!(f.violations.len(), 1);
        assert_eq!(f.violations[0].line, 3);
    }

    #[test]
    fn two_rules_one_line_need_two_waivers() {
        let src = "\
fn f() {
    // lint:allow(D001) det map justified lint:allow(D002) clock justified
    let m: HashMap<u32, std::thread::ThreadId> = make();
    let _ = m;
}
";
        let f = lint_source("crates/core/src/x.rs", src);
        assert!(f.violations.is_empty(), "{:?}", f.violations);
        assert_eq!(f.waived.len(), 2);
        let rules: Vec<Rule> = f.waived.iter().map(|w| w.rule).collect();
        assert_eq!(rules, vec![Rule::D001, Rule::D002]);
        assert_eq!(f.waived[0].reason, "det map justified");
        assert_eq!(f.waived[1].reason, "clock justified");
    }

    #[test]
    fn reasonless_waiver_is_malformed() {
        let src = "\
fn f() {
    // lint:allow(D002)
    let a = std::time::Instant::now();
    let _ = a;
}
";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.bad_waivers.len(), 1);
        assert_eq!(f.violations.len(), 1, "violation must survive");
        assert!(!f.is_clean());
    }

    #[test]
    fn d005_fires_on_unsafe_and_unchecked_indexing() {
        let src = "\
fn f(v: &[u32], i: usize) -> u32 {
    unsafe { *v.get_unchecked(i) }
}
";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.violations.len(), 1, "{:?}", f.violations);
        assert_eq!(f.violations[0].rule, Rule::D005);
        assert_eq!(f.violations[0].line, 2);
        // Out of scope in non-protocol crates.
        assert!(lint_source("crates/bench/src/x.rs", src)
            .violations
            .is_empty());
        // Identifiers merely containing the keyword don't match.
        let ident = "fn g() { let unsafe_count = 1; let _ = unsafe_count; }\n";
        assert!(lint_source("crates/core/src/x.rs", ident)
            .violations
            .is_empty());
    }

    #[test]
    fn unused_waiver_is_fatal() {
        let src = "// lint:allow(D001) nothing here actually uses it\nfn f() {}\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.unused_waivers.len(), 1);
        assert_eq!(f.unused_waivers[0].rule, Rule::D001);
        assert_eq!(f.unused_waivers[0].line, 1);
        assert!(!f.is_clean(), "stale waivers must fail the build");
    }

    #[test]
    fn d006_wildcard_over_payload_fires() {
        let src = "\
fn on_message(&mut self, payload: Payload) {
    match payload {
        Payload::Vote { member, .. } => self.tally(member),
        _ => {}
    }
}
";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.violations.len(), 1, "{:?}", f.violations);
        assert_eq!(f.violations[0].rule, Rule::D006);
        assert_eq!(f.violations[0].line, 4);
        // matches over other enums stay silent
        let other = "\
fn g(x: Mode) -> u32 {
    match x {
        Mode::A => 1,
        _ => 0,
    }
}
";
        assert!(lint_source("crates/core/src/x.rs", other)
            .violations
            .is_empty());
        // and protocol-state scoping applies
        assert!(lint_source("crates/bench/src/x.rs", src)
            .violations
            .is_empty());
    }

    #[test]
    fn d006_codec_and_handler_completeness() {
        let src = "\
pub enum Payload {
    Vote,
    Agg,
}

pub fn encode(p: &Payload) -> u8 {
    match p {
        Payload::Vote => 1,
        Payload::Agg => 2,
    }
}

pub fn decode(b: u8) -> Payload {
    if b == 1 { Payload::Vote } else { Payload::Vote }
}

impl AggregationProtocol for P {
    fn on_message(&mut self, p: Payload) {
        if let Payload::Vote = p {
            self.n += 1;
        }
    }
}
";
        let f = lint_source("crates/core/src/message.rs", src);
        let details: Vec<&str> = f.violations.iter().map(|v| v.detail.as_str()).collect();
        assert_eq!(f.violations.len(), 2, "{details:?}");
        assert!(f.violations.iter().all(|v| v.rule == Rule::D006));
        assert!(details.iter().any(|d| d.contains("decode")), "{details:?}");
        assert!(
            details.iter().any(|d| d.contains("on_message")),
            "{details:?}"
        );
    }

    #[test]
    fn d007_counted_constructors_scoped_to_deduping_protocols() {
        let src = "\
fn build(n: u32) -> VoteSet {
    VoteSet::for_scale(n)
}
";
        let f = lint_source("crates/core/src/baselines/central.rs", src);
        assert_eq!(f.violations.len(), 1, "{:?}", f.violations);
        assert_eq!(f.violations[0].rule, Rule::D007);
        // allowed in the deduping protocols…
        assert!(lint_source("crates/core/src/hiergossip.rs", src)
            .violations
            .is_empty());
        // …and in the defining crate
        assert!(lint_source("crates/aggregate/src/voteset.rs", src)
            .violations
            .is_empty());
        // `singleton_for_scale` must not fire the `for_scale` pattern
        // twice, and definitions are not calls
        let def = "\
impl VoteSet {
    pub fn for_scale(n: u32) -> VoteSet {
        VoteSet::Counted { count: 0, scale: n }
    }
}
";
        assert!(lint_source("crates/core/src/x.rs", def)
            .violations
            .is_empty());
    }

    #[test]
    fn d008_rng_in_gated_block() {
        let src = "\
fn on_round(&mut self, ctx: &mut Ctx) {
    if self.cfg.phase_trace {
        let j = ctx.rng.unit();
        self.trace.push(j);
    }
    let pick = ctx.rng.below(8);
    let _ = pick;
}
";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.violations.len(), 1, "{:?}", f.violations);
        assert_eq!(f.violations[0].rule, Rule::D008);
        assert_eq!(f.violations[0].line, 3, "ungated draw on line 6 is fine");
        // `rngs` (SoA field) must not word-match `rng`
        let soa = "\
fn drive(&mut self) {
    if S::ENABLED {
        self.trace.emit(&self.rngs_snapshot);
    }
}
";
        assert!(lint_source("crates/core/src/x.rs", soa)
            .violations
            .is_empty());
    }

    #[test]
    fn d009_allocations_only_in_hot_fns() {
        let src = "\
// lint:hot
fn round(&mut self) {
    let scratch = Vec::new();
    self.go(scratch);
}

fn setup(&mut self) {
    let scratch: Vec<u32> = Vec::new();
    self.go(scratch);
}
";
        let f = lint_source("crates/bench/src/x.rs", src);
        assert_eq!(f.violations.len(), 1, "{:?}", f.violations);
        assert_eq!(f.violations[0].rule, Rule::D009);
        assert_eq!(f.violations[0].line, 3);
    }

    #[test]
    fn cross_file_codec_check_spans_files() {
        let message = "\
pub enum Payload {
    Vote,
    Flow,
}

pub fn encode(p: &Payload) -> u8 {
    match p {
        Payload::Vote => 1,
        Payload::Flow => 2,
    }
}

pub fn decode(b: u8) -> Payload {
    match b {
        1 => Payload::Vote,
        _ => Payload::Flow,
    }
}
";
        let proto = "\
impl AggregationProtocol for P {
    fn on_message(&mut self, p: Payload) {
        match p {
            Payload::Vote => self.n += 1,
            Payload::Flow => {}
        }
    }
}
";
        let incomplete_proto = "\
impl AggregationProtocol for Q {
    fn on_message(&mut self, p: Payload) {
        if let Payload::Vote = p {
            self.n += 1;
        }
    }
}
";
        let clean = lint_files(&[
            (
                "crates/core/src/message.rs".to_string(),
                message.to_string(),
            ),
            ("crates/core/src/proto.rs".to_string(), proto.to_string()),
        ]);
        assert!(clean.violations.is_empty(), "{:?}", clean.violations);
        let dirty = lint_files(&[
            (
                "crates/core/src/message.rs".to_string(),
                message.to_string(),
            ),
            (
                "crates/core/src/proto.rs".to_string(),
                incomplete_proto.to_string(),
            ),
        ]);
        assert_eq!(dirty.violations.len(), 1, "{:?}", dirty.violations);
        assert_eq!(dirty.violations[0].rule, Rule::D006);
        assert_eq!(dirty.violations[0].file, "crates/core/src/proto.rs");
        assert!(dirty.violations[0].detail.contains("Payload::Flow"));
    }
}
