//! In-repo determinism/safety linter for the gridagg workspace.
//!
//! This is a deliberately small, dependency-free static-analysis pass
//! built on a line-oriented lexer: comments and string literals are
//! stripped (preserving line structure) so rules can pattern-match on
//! *code* without tripping over prose, and `//` comment text is kept
//! separately so waivers can be parsed from it.
//!
//! # Rules
//!
//! - **D001** — no `HashMap`/`HashSet` in protocol-state crates
//!   (`core`, `simnet`, `hierarchy`, `group`, `aggregate`) outside
//!   tests. Iteration order of the std hash collections is randomized
//!   per process, which silently breaks the repo's byte-identical
//!   golden-run guarantees. Use
//!   `gridagg_simnet::detcol::{DetMap, DetSet}`.
//! - **D002** — no wall-clock reads (`SystemTime::now`,
//!   `Instant::now`), OS threading (`std::thread`), process state
//!   (`std::process`, `std::env`) or entropy-seeded randomness outside
//!   the `runtime` and `bench` crates (and this linter). Simulated
//!   time and `DetRng` are the only clocks and dice the protocol
//!   crates may roll.
//! - **D003** — no `.unwrap()` / `.expect(` / `panic!` /
//!   `unreachable!` / `todo!` inside message-decode paths (`fn decode*`)
//!   and protocol event handlers (`fn on_*`) of the protocol-state
//!   crates. A malformed or unexpected message must surface as an
//!   error or be dropped, never crash the process.
//! - **D004** — no bare `as` float↔int casts in aggregate math (the
//!   `aggregate` crate). Conversions go through the audited helpers in
//!   `gridagg_aggregate`'s `conv` module, which carry exactness and
//!   range assertions under `strict-invariants`.
//! - **D005** — no `unsafe` blocks or unchecked indexing
//!   (`.get_unchecked`/`.get_unchecked_mut`) in protocol-state crates.
//!   The struct-of-arrays member storage is addressed by raw `u32`
//!   indexes into dense `Vec`s; every access must stay bounds-checked
//!   so an index bug surfaces as a panic in CI, not silent memory
//!   corruption at N=10^6.
//!
//! # Waivers
//!
//! A rule can be suppressed at a single site with a comment on the
//! same line or the line directly above:
//!
//! ```text
//! // lint:allow(D002) reason why this site is sound
//! ```
//!
//! The reason is mandatory; a reasonless waiver is itself reported.
//! Waivers must be plain `//` comments — doc comments (`///`, `//!`)
//! never carry them, so examples like the one above are inert. All
//! honoured waivers are tallied in the tool's output so the exception
//! surface stays visible.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Crates whose state machines must stay deterministic (rule D001) and
/// whose handler paths must stay panic-free (rule D003).
const PROTOCOL_STATE_CRATES: &[&str] = &["core", "simnet", "hierarchy", "group", "aggregate"];

/// Crates allowed to touch wall clocks, OS threads, process state and
/// entropy (rule D002). `runtime` bridges to real sockets and clocks,
/// `bench` measures them, and the linter itself is a CLI tool.
const D002_EXEMPT_CRATES: &[&str] = &["runtime", "bench", "lint"];

/// The rule set, in the order they are reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Hash collections in protocol-state crates.
    D001,
    /// Wall clocks, OS threads, process/env state outside runtime/bench.
    D002,
    /// Panicking calls in decode/handler paths.
    D003,
    /// Bare `as` float↔int casts in aggregate math.
    D004,
    /// `unsafe` / unchecked indexing in protocol-state crates.
    D005,
}

/// All rules, in report order.
pub const ALL_RULES: [Rule; 5] = [Rule::D001, Rule::D002, Rule::D003, Rule::D004, Rule::D005];

impl Rule {
    /// The rule identifier as written in waivers, e.g. `"D001"`.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::D005 => "D005",
        }
    }

    /// One-line human summary used in reports.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::D001 => "hash collection in protocol-state crate (use detcol::DetMap/DetSet)",
            Rule::D002 => "wall clock / OS thread / process state outside runtime+bench",
            Rule::D003 => "panicking call in decode/on_* handler path",
            Rule::D004 => "bare `as` float<->int cast in aggregate math (use the conv module)",
            Rule::D005 => "unsafe / unchecked indexing in protocol-state crate (keep SoA state bounds-checked)",
        }
    }

    /// Parse a rule id (`"D001"`..`"D005"`).
    pub fn parse(s: &str) -> Option<Rule> {
        match s {
            "D001" => Some(Rule::D001),
            "D002" => Some(Rule::D002),
            "D003" => Some(Rule::D003),
            "D004" => Some(Rule::D004),
            "D005" => Some(Rule::D005),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// A rule violation at a specific site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired.
    pub rule: Rule,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

/// A violation that was suppressed by a `lint:allow` waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waived {
    /// Which rule was waived.
    pub rule: Rule,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number of the suppressed site.
    pub line: usize,
    /// The justification text from the waiver comment.
    pub reason: String,
}

/// A malformed waiver: unknown rule id or missing reason. These count
/// as findings — a waiver must say *why*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadWaiver {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number of the waiver comment.
    pub line: usize,
    /// What is wrong with it.
    pub problem: String,
}

/// The outcome of linting one file or a whole tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Findings {
    /// Unwaivered violations — these fail the build.
    pub violations: Vec<Violation>,
    /// Violations suppressed by a well-formed waiver.
    pub waived: Vec<Waived>,
    /// Malformed waivers — these also fail the build.
    pub bad_waivers: Vec<BadWaiver>,
    /// Waivers that matched no violation (informational only).
    pub unused_waivers: Vec<(Rule, String, usize)>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Findings {
    /// Whether the tree is clean: no unwaivered violations and no
    /// malformed waivers.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.bad_waivers.is_empty()
    }

    fn absorb(&mut self, other: Findings) {
        self.violations.extend(other.violations);
        self.waived.extend(other.waived);
        self.bad_waivers.extend(other.bad_waivers);
        self.unused_waivers.extend(other.unused_waivers);
        self.files_scanned += other.files_scanned;
    }
}

/// One source line after lexing: code with comments/strings blanked
/// out, plus the text of any `//` comment that started on the line.
#[derive(Debug, Clone)]
struct LexedLine {
    code: String,
    comment: Option<String>,
}

/// Strip comments and string/char literals from `src`, preserving the
/// line structure exactly (every `\n` survives; removed spans become
/// spaces). Line-comment text is captured per line for waiver parsing.
fn lex(src: &str) -> Vec<LexedLine> {
    let bytes = src.as_bytes();
    let mut code = String::with_capacity(src.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                code.push('\n');
                line += 1;
                i += 1;
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                // Line comment: blank the span. Only plain `//`
                // comments can carry waivers — doc comments (`///`,
                // `//!`) are prose about code, not annotations on it,
                // so a waiver example in documentation never fires.
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    code.push(' ');
                    i += 1;
                }
                let text = &src[start..i];
                if !text.starts_with("///") && !text.starts_with("//!") {
                    comments.push((line, text.to_string()));
                }
            }
            '/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                // Block comment, possibly nested; blank it, keep newlines.
                let mut depth = 1usize;
                code.push(' ');
                code.push(' ');
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                        depth += 1;
                        code.push_str("  ");
                        i += 2;
                    } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                        depth -= 1;
                        code.push_str("  ");
                        i += 2;
                    } else if bytes[i] == b'\n' {
                        code.push('\n');
                        line += 1;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            }
            '"' => {
                // Ordinary string literal (or the body of b"..."):
                // blank contents, keep the quotes for token shape.
                code.push('"');
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' if i + 1 < bytes.len() => {
                            code.push_str("  ");
                            i += 2;
                        }
                        b'"' => {
                            code.push('"');
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            code.push('\n');
                            line += 1;
                            i += 1;
                        }
                        _ => {
                            code.push(' ');
                            i += 1;
                        }
                    }
                }
            }
            'r' if is_raw_string_start(bytes, i) => {
                // Raw string r"..." / r#"..."# (any hash count).
                let mut j = i + 1;
                let mut hashes = 0usize;
                while j < bytes.len() && bytes[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                // Emit blanks for r##...#"
                for _ in i..=j {
                    code.push(' ');
                }
                i = j + 1; // past the opening quote
                'raw: while i < bytes.len() {
                    if bytes[i] == b'"' {
                        // Check for closing hash run.
                        let mut k = i + 1;
                        let mut seen = 0usize;
                        while k < bytes.len() && bytes[k] == b'#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            for _ in i..k {
                                code.push(' ');
                            }
                            i = k;
                            break 'raw;
                        }
                    }
                    if bytes[i] == b'\n' {
                        code.push('\n');
                        line += 1;
                    } else {
                        code.push(' ');
                    }
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs lifetime. A char literal is '<esc>'
                // or 'X'; anything else ('static, 'a in bounds) is a
                // lifetime and passes through.
                if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                    // Escaped char literal: blank until closing quote.
                    code.push(' ');
                    i += 1;
                    while i < bytes.len() && bytes[i] != b'\'' {
                        code.push(' ');
                        i += 1;
                    }
                    if i < bytes.len() {
                        code.push(' ');
                        i += 1;
                    }
                } else if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                    code.push_str("   ");
                    i += 3;
                } else {
                    code.push('\'');
                    i += 1;
                }
            }
            _ => {
                code.push(c);
                i += 1;
            }
        }
    }

    let mut lines: Vec<LexedLine> = code
        .split('\n')
        .map(|l| LexedLine {
            code: l.to_string(),
            comment: None,
        })
        .collect();
    for (ln, text) in comments {
        if let Some(slot) = lines.get_mut(ln) {
            slot.comment = Some(text);
        }
    }
    lines
}

/// Whether `bytes[i]` (== `b'r'`) starts a raw string literal rather
/// than an identifier ending in `r`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    if i > 0 {
        let prev = bytes[i - 1] as char;
        // `br"` byte raw strings: allow a `b` prefix, reject other
        // identifier tails (e.g. `attr"` can't occur in valid Rust).
        if (prev.is_alphanumeric() || prev == '_') && prev != 'b' {
            return false;
        }
    }
    let mut j = i + 1;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

/// Extract the crate name from a workspace-relative path:
/// `crates/<name>/src/...` → `<name>`; the root `src/` → `"gridagg"`.
fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or(""),
        _ => "gridagg",
    }
}

/// The last `fn <name>` declared on a lexed line, if any.
fn fn_name_on_line(code: &str) -> Option<String> {
    let b = code.as_bytes();
    let mut found = None;
    let mut i = 0usize;
    while i + 2 < b.len() {
        if &b[i..i + 2] == b"fn"
            && (i == 0 || !(b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_'))
            && b[i + 2].is_ascii_whitespace()
        {
            let mut j = i + 2;
            while j < b.len() && b[j].is_ascii_whitespace() {
                j += 1;
            }
            let start = j;
            while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                j += 1;
            }
            if j > start {
                found = Some(code[start..j].to_string());
            }
            i = j;
        } else {
            i += 1;
        }
    }
    found
}

/// Waiver declaration parsed from a `//` comment.
enum WaiverDecl {
    Ok { rule: Rule, reason: String },
    Bad { problem: String },
}

/// Parse `lint:allow(D00x) reason` out of a comment, if present.
fn parse_waiver(comment: &str) -> Option<WaiverDecl> {
    let idx = comment.find("lint:allow(")?;
    let rest = &comment[idx + "lint:allow(".len()..];
    let Some(close) = rest.find(')') else {
        return Some(WaiverDecl::Bad {
            problem: "unclosed lint:allow(".to_string(),
        });
    };
    let id = rest[..close].trim();
    let Some(rule) = Rule::parse(id) else {
        return Some(WaiverDecl::Bad {
            problem: format!("unknown rule id {id:?} in lint:allow"),
        });
    };
    let reason = rest[close + 1..].trim().to_string();
    if reason.is_empty() {
        return Some(WaiverDecl::Bad {
            problem: format!("waiver for {} has no reason", rule.id()),
        });
    }
    Some(WaiverDecl::Ok { rule, reason })
}

/// D002 patterns: wall clocks, OS threads, process/env state, entropy.
const D002_PATTERNS: &[&str] = &[
    "SystemTime::now",
    "Instant::now",
    "std::thread",
    "std::process",
    "std::env",
    "thread_rng",
    "from_entropy",
    "RandomState",
];

/// D003 patterns: calls that can panic on malformed input.
const D003_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
];

/// Line markers indicating a float-valued expression feeding a `as
/// u*`/`as i*` cast (the D004 float→int direction).
const D004_FLOAT_MARKERS: &[&str] = &[
    ".ceil()", ".floor()", ".round()", ".trunc()", ".sqrt()", ": f64", ": f32",
];

/// Integer-target cast tokens for D004's float→int direction.
const D004_INT_CASTS: &[&str] = &[
    " as u8",
    " as u16",
    " as u32",
    " as u64",
    " as u128",
    " as usize",
    " as i8",
    " as i16",
    " as i32",
    " as i64",
    " as i128",
    " as isize",
];

/// D005 unchecked-access tokens. `.get_unchecked` also matches
/// `.get_unchecked_mut`; the raw-parts constructors cover hand-rolled
/// slice aliasing.
const D005_PATTERNS: &[&str] = &[".get_unchecked", "from_raw_parts"];

/// Whether `code` contains `word` delimited by non-identifier
/// characters (so `unsafe_flag` does not match `unsafe`).
fn contains_word(code: &str, word: &str) -> bool {
    let b = code.as_bytes();
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(word) {
        let i = start + pos;
        let j = i + word.len();
        let left_ok = i == 0 || !is_ident(b[i - 1]);
        let right_ok = j == b.len() || !is_ident(b[j]);
        if left_ok && right_ok {
            return true;
        }
        start = i + 1;
    }
    false
}

/// Lint a single file given its workspace-relative pseudo-path (used
/// for crate scoping) and source text. Pure function — the unit the
/// fixture tests drive.
pub fn lint_source(path: &str, src: &str) -> Findings {
    let krate = crate_of(path);
    let lines = lex(src);

    let d001 = PROTOCOL_STATE_CRATES.contains(&krate);
    let d002 = !D002_EXEMPT_CRATES.contains(&krate);
    let d003 = PROTOCOL_STATE_CRATES.contains(&krate);
    let d004 = krate == "aggregate";
    let d005 = PROTOCOL_STATE_CRATES.contains(&krate);

    // Brace-depth walk: track #[cfg(test)] regions (skipped entirely)
    // and the innermost enclosing `fn` (for D003 scoping).
    let mut depth: i32 = 0;
    let mut paren_depth: i32 = 0; // ( and [ — so `[u8; 4]` in a signature isn't a statement end
    let mut test_region: Option<i32> = None; // depth at region's opening brace
    let mut pending_test_attr = false;
    let mut fn_stack: Vec<(String, i32)> = Vec::new();
    let mut pending_fn: Option<String> = None;

    let mut raw_violations: Vec<Violation> = Vec::new();
    let mut waivers: Vec<(Rule, usize, String, bool)> = Vec::new(); // rule, line, reason, used
    let mut bad_waivers: Vec<BadWaiver> = Vec::new();

    for (idx, lexed) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = lexed.code.as_str();
        let in_test_at_start = test_region.is_some();

        if let Some(comment) = &lexed.comment {
            match parse_waiver(comment) {
                Some(WaiverDecl::Ok { rule, reason }) => {
                    waivers.push((rule, lineno, reason, false));
                }
                Some(WaiverDecl::Bad { problem }) => {
                    bad_waivers.push(BadWaiver {
                        file: path.to_string(),
                        line: lineno,
                        problem,
                    });
                }
                None => {}
            }
        }

        if code.contains("#[cfg(test)]") {
            pending_test_attr = true;
        }
        if let Some(name) = fn_name_on_line(code) {
            pending_fn = Some(name);
        }

        // Innermost fn covering any part of this line: the one active
        // at line start, updated if a new body opens mid-line.
        let mut fn_for_line: Option<String> = fn_stack.last().map(|(n, _)| n.clone());

        for ch in code.chars() {
            match ch {
                '{' => {
                    if pending_test_attr {
                        test_region = test_region.or(Some(depth));
                        pending_test_attr = false;
                    } else if let Some(name) = pending_fn.take() {
                        fn_for_line = Some(name.clone());
                        fn_stack.push((name, depth));
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_region == Some(depth) {
                        test_region = None;
                    }
                    while fn_stack.last().is_some_and(|&(_, d)| d >= depth) {
                        fn_stack.pop();
                    }
                }
                '(' | '[' => paren_depth += 1,
                ')' | ']' => paren_depth -= 1,
                ';' if paren_depth == 0 => {
                    // `fn f();` trait decls and `#[cfg(test)] use x;`
                    // never open a body or region.
                    pending_fn = None;
                    pending_test_attr = false;
                }
                _ => {}
            }
        }

        // Skip rule matching if a test region covered the line at its
        // start, or one opened during it.
        let in_test = in_test_at_start || test_region.is_some();
        if in_test {
            continue;
        }

        let fire = |rule: Rule, raw: &mut Vec<Violation>| {
            raw.push(Violation {
                rule,
                file: path.to_string(),
                line: lineno,
                excerpt: src.lines().nth(idx).unwrap_or("").trim().to_string(),
            });
        };

        if d001 && (code.contains("HashMap") || code.contains("HashSet")) {
            fire(Rule::D001, &mut raw_violations);
        }
        if d002 && D002_PATTERNS.iter().any(|p| code.contains(p)) {
            fire(Rule::D002, &mut raw_violations);
        }
        if d003 {
            let in_scope = fn_for_line
                .as_deref()
                .is_some_and(|f| f.starts_with("on_") || f.starts_with("decode"));
            if in_scope && D003_PATTERNS.iter().any(|p| code.contains(p)) {
                fire(Rule::D003, &mut raw_violations);
            }
        }
        if d004 {
            let int_to_float = code.contains(" as f64") || code.contains(" as f32");
            let float_to_int = D004_INT_CASTS.iter().any(|c| code.contains(c))
                && D004_FLOAT_MARKERS.iter().any(|m| code.contains(m));
            if int_to_float || float_to_int {
                fire(Rule::D004, &mut raw_violations);
            }
        }
        if d005 && (contains_word(code, "unsafe") || D005_PATTERNS.iter().any(|p| code.contains(p)))
        {
            fire(Rule::D005, &mut raw_violations);
        }
    }

    // Apply waivers: a waiver on line L covers same-rule violations on
    // line L (trailing comment) or L+1 (comment line above the site).
    let mut findings = Findings {
        files_scanned: 1,
        bad_waivers,
        ..Findings::default()
    };
    for v in raw_violations {
        let w = waivers
            .iter_mut()
            .find(|(rule, wl, _, _)| *rule == v.rule && (*wl == v.line || *wl + 1 == v.line));
        match w {
            Some((rule, _, reason, used)) => {
                *used = true;
                findings.waived.push(Waived {
                    rule: *rule,
                    file: v.file,
                    line: v.line,
                    reason: reason.clone(),
                });
            }
            None => findings.violations.push(v),
        }
    }
    for (rule, line, _, used) in waivers {
        if !used {
            findings.unused_waivers.push((rule, path.to_string(), line));
        }
    }
    findings
}

/// Recursively collect `.rs` files under `dir`, sorted for
/// deterministic report order.
fn rs_files_under(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            rs_files_under(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every `crates/*/src` tree plus the root `src/` under
/// `workspace_root`. Returns aggregated findings with
/// workspace-relative, forward-slash paths.
pub fn lint_tree(workspace_root: &Path) -> io::Result<Findings> {
    let mut files: Vec<PathBuf> = Vec::new();
    let crates_dir = workspace_root.join("crates");
    if crates_dir.is_dir() {
        let mut crates: Vec<_> = fs::read_dir(&crates_dir)?.collect::<Result<_, _>>()?;
        crates.sort_by_key(std::fs::DirEntry::file_name);
        for c in crates {
            let src = c.path().join("src");
            if src.is_dir() {
                rs_files_under(&src, &mut files)?;
            }
        }
    }
    let root_src = workspace_root.join("src");
    if root_src.is_dir() {
        rs_files_under(&root_src, &mut files)?;
    }

    let mut findings = Findings::default();
    for file in files {
        let rel = file
            .strip_prefix(workspace_root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&file)?;
        findings.absorb(lint_source(&rel, &src));
    }
    Ok(findings)
}

/// Render findings as the human-readable report the CLI prints (also
/// written to the `--report` file for the CI artifact).
pub fn render_report(findings: &Findings) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "gridagg-lint: {} files scanned, {} violation(s), {} waived, {} malformed waiver(s)\n",
        findings.files_scanned,
        findings.violations.len(),
        findings.waived.len(),
        findings.bad_waivers.len(),
    ));
    if !findings.violations.is_empty() {
        out.push_str("\nviolations:\n");
        for v in &findings.violations {
            out.push_str(&format!(
                "  {} {}:{}: {}\n      rule: {}\n",
                v.rule,
                v.file,
                v.line,
                v.excerpt,
                v.rule.summary()
            ));
        }
    }
    if !findings.bad_waivers.is_empty() {
        out.push_str("\nmalformed waivers:\n");
        for b in &findings.bad_waivers {
            out.push_str(&format!("  {}:{}: {}\n", b.file, b.line, b.problem));
        }
    }
    out.push_str("\nwaiver tally:\n");
    if findings.waived.is_empty() {
        out.push_str("  (none)\n");
    } else {
        for rule in ALL_RULES {
            let of_rule: Vec<_> = findings.waived.iter().filter(|w| w.rule == rule).collect();
            if of_rule.is_empty() {
                continue;
            }
            out.push_str(&format!("  {} ({} site(s)):\n", rule, of_rule.len()));
            for w in of_rule {
                out.push_str(&format!("    {}:{} — {}\n", w.file, w.line, w.reason));
            }
        }
    }
    if !findings.unused_waivers.is_empty() {
        out.push_str("\nunused waivers (matched no violation):\n");
        for (rule, file, line) in &findings.unused_waivers {
            out.push_str(&format!("  {rule} {file}:{line}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_strips_comments_and_strings() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet y = 1; /* HashMap */ let z = 2;\n";
        let lines = lex(src);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.as_deref().unwrap().contains("HashMap"));
        assert!(!lines[1].code.contains("HashMap"));
        assert!(lines[1].code.contains("let z"));
    }

    #[test]
    fn lexer_handles_lifetimes_and_chars() {
        let src = "fn f<'a>(s: &'a str) -> char { 'x' }\nlet nl = '\\n';\nlet s = r#\"raw \"quote\" HashSet\"#;\n";
        let lines = lex(src);
        assert!(lines[0].code.contains("&'a str"));
        assert!(!lines[0].code.contains("'x'"));
        assert!(!lines[2].code.contains("HashSet"));
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let src = "\
fn live() {
    let m = std::collections::HashMap::<u32, u32>::new();
    let _ = m;
}

#[cfg(test)]
mod tests {
    fn helper() {
        let m = std::collections::HashMap::<u32, u32>::new();
        let _ = m;
    }
}
";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.violations.len(), 1, "{:?}", f.violations);
        assert_eq!(f.violations[0].line, 2);
    }

    #[test]
    fn d003_only_fires_in_handler_fns() {
        let src = "\
fn compose(x: Option<u32>) -> u32 {
    x.expect(\"invariant\")
}
fn on_round(x: Option<u32>) -> u32 {
    x.expect(\"boom\")
}
fn decode_tag(x: Option<u32>) -> u32 {
    x.unwrap()
}
";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.violations.len(), 2, "{:?}", f.violations);
        assert!(f.violations.iter().all(|v| v.rule == Rule::D003));
        assert_eq!(f.violations[0].line, 5);
        assert_eq!(f.violations[1].line, 8);
    }

    #[test]
    fn crate_scoping() {
        let src = "fn t() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(lint_source("crates/core/src/x.rs", src).violations.len(), 1);
        assert_eq!(
            lint_source("crates/runtime/src/x.rs", src).violations.len(),
            0
        );
        assert_eq!(
            lint_source("crates/bench/src/bin/x.rs", src)
                .violations
                .len(),
            0
        );
        let cast = "fn c(n: u64) -> f64 { n as f64 }\n";
        assert_eq!(
            lint_source("crates/aggregate/src/x.rs", cast)
                .violations
                .len(),
            1
        );
        assert_eq!(
            lint_source("crates/core/src/x.rs", cast).violations.len(),
            0
        );
    }

    #[test]
    fn waiver_same_line_and_preceding_line() {
        let src = "\
fn f() {
    // lint:allow(D002) reason one
    let a = std::time::Instant::now();
    let b = std::time::Instant::now(); // lint:allow(D002) reason two
    let _ = (a, b);
}
";
        let f = lint_source("crates/core/src/x.rs", src);
        assert!(f.violations.is_empty(), "{:?}", f.violations);
        assert_eq!(f.waived.len(), 2);
        assert_eq!(f.waived[0].reason, "reason one");
        assert_eq!(f.waived[1].reason, "reason two");
    }

    #[test]
    fn reasonless_waiver_is_malformed() {
        let src = "\
fn f() {
    // lint:allow(D002)
    let a = std::time::Instant::now();
    let _ = a;
}
";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.bad_waivers.len(), 1);
        assert_eq!(f.violations.len(), 1, "violation must survive");
        assert!(!f.is_clean());
    }

    #[test]
    fn d005_fires_on_unsafe_and_unchecked_indexing() {
        let src = "\
fn f(v: &[u32], i: usize) -> u32 {
    unsafe { *v.get_unchecked(i) }
}
";
        let f = lint_source("crates/core/src/x.rs", src);
        assert_eq!(f.violations.len(), 1, "{:?}", f.violations);
        assert_eq!(f.violations[0].rule, Rule::D005);
        assert_eq!(f.violations[0].line, 2);
        // Out of scope in non-protocol crates.
        assert!(lint_source("crates/bench/src/x.rs", src)
            .violations
            .is_empty());
        // Identifiers merely containing the keyword don't match.
        let ident = "fn g() { let unsafe_count = 1; let _ = unsafe_count; }\n";
        assert!(lint_source("crates/core/src/x.rs", ident)
            .violations
            .is_empty());
        // Waiverable like every other rule.
        let waived = "\
fn f(v: &[u32], i: usize) -> u32 {
    // lint:allow(D005) bounds proven by the caller's bitset invariant
    unsafe { *v.get_unchecked(i) }
}
";
        let f = lint_source("crates/core/src/x.rs", waived);
        assert!(f.violations.is_empty(), "{:?}", f.violations);
        assert_eq!(f.waived.len(), 1);
    }

    #[test]
    fn unused_waiver_is_reported_not_fatal() {
        let src = "// lint:allow(D001) nothing here actually uses it\nfn f() {}\n";
        let f = lint_source("crates/core/src/x.rs", src);
        assert!(f.is_clean());
        assert_eq!(f.unused_waivers.len(), 1);
    }
}
