//! Pass-2 rule implementations.
//!
//! Per-file rules (D001–D005, D007–D009) scan one file's lexed lines
//! against its [`FileIndex`]; the cross-file rule D006 runs over the
//! whole workspace's analyses at once (it needs the `Payload` enum's
//! variant list next to every codec fn and protocol handler).

use crate::index::FileIndex;
use crate::lexer::{contains_word, LexedLine};
use crate::{FileAnalysis, Rule, Violation};

/// Crates whose state machines must stay deterministic (D001), whose
/// handler paths must stay panic-free (D003), that may not hold
/// `unsafe` (D005), whose `Payload` matches may not wildcard (D006),
/// and whose instrumentation may not perturb the RNG stream (D008).
pub const PROTOCOL_STATE_CRATES: &[&str] = &["core", "simnet", "hierarchy", "group", "aggregate"];

/// Crates allowed to touch wall clocks, OS threads, process state and
/// entropy (rule D002). `runtime` bridges to real sockets and clocks,
/// `bench` measures them, and the linter itself is a CLI tool.
pub const D002_EXEMPT_CRATES: &[&str] = &["runtime", "bench", "lint"];

/// D002 patterns: wall clocks, OS threads, process/env state, entropy.
const D002_PATTERNS: &[&str] = &[
    "SystemTime::now",
    "Instant::now",
    "std::thread",
    "std::process",
    "std::env",
    "thread_rng",
    "from_entropy",
    "RandomState",
];

/// D003 patterns: calls that can panic on malformed input.
const D003_PATTERNS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
];

/// Line markers indicating a float-valued expression feeding a `as
/// u*`/`as i*` cast (the D004 float→int direction).
const D004_FLOAT_MARKERS: &[&str] = &[
    ".ceil()", ".floor()", ".round()", ".trunc()", ".sqrt()", ": f64", ": f32",
];

/// Integer-target cast tokens for D004's float→int direction.
const D004_INT_CASTS: &[&str] = &[
    " as u8",
    " as u16",
    " as u32",
    " as u64",
    " as u128",
    " as usize",
    " as i8",
    " as i16",
    " as i32",
    " as i64",
    " as i128",
    " as isize",
];

/// D005 unchecked-access tokens. `.get_unchecked` also matches
/// `.get_unchecked_mut`; the raw-parts constructors cover hand-rolled
/// slice aliasing.
const D005_PATTERNS: &[&str] = &[".get_unchecked", "from_raw_parts"];

/// The wire enum whose variants D006 audits for codec and handler
/// completeness.
const WIRE_ENUM: &str = "Payload";

/// D007: the counted-set constructors. Counted `VoteSet`s drop exact
/// contributor tracking above `EXACT_TRACK_MAX`, which is only sound
/// for protocols that dedupe structurally; flood/centralized rely on
/// exact `try_merge` DoubleCount rejection for correctness.
const D007_CONSTRUCTORS: &[&str] = &[
    "for_scale",
    "singleton_for_scale",
    "empty_for_scale",
    "from_vote_for_scale",
];

/// Files allowed to call the counted-set constructors: the
/// structurally-deduping protocols.
const D007_ALLOWED_FILES: &[&str] = &[
    "crates/core/src/hiergossip.rs",
    "crates/core/src/baselines/flatgossip.rs",
    "crates/core/src/baselines/leader.rs",
];

/// D008 gate patterns: a line containing one of these that opens a
/// block makes the block an instrumentation-gated region. RNG draws
/// inside mean toggling tracing changes the random stream and breaks
/// byte-identical goldens.
pub const GATE_PATTERNS: &[&str] = &["phase_trace", "S::ENABLED", "is_traced("];

/// D008 RNG-draw patterns. `rng` is word-boundary matched so SoA
/// fields like `rngs` don't fire.
const D008_RNG_WORDS: &[&str] = &["rng", "DetRng"];
const D008_RNG_CALLS: &[&str] = &[
    ".unit()",
    ".chance(",
    ".below(",
    ".choose(",
    ".sample_distinct",
    ".fork(",
    ".next_u64",
];

/// D009 allocation-causing patterns, flagged inside `// lint:hot`
/// functions. `.clone()` is included because heap clones dominate the
/// hazard class; cheap `Arc` refcount bumps take a reasoned waiver.
const D009_ALLOC_PATTERNS: &[&str] = &[
    "Vec::new",
    "vec![",
    "String::new",
    ".to_string()",
    ".to_vec()",
    ".to_owned()",
    "format!(",
    "collect::<Vec",
    "Box::new",
    ".clone()",
];

/// Extract the crate name from a workspace-relative path:
/// `crates/<name>/src/...` → `<name>`; the root `src/` → `"gridagg"`.
pub fn crate_of(path: &str) -> &str {
    let mut parts = path.split('/');
    match parts.next() {
        Some("crates") => parts.next().unwrap_or(""),
        _ => "gridagg",
    }
}

/// Run every per-file rule over one analyzed file. Returns raw
/// (pre-waiver) violations; at most one per rule per line.
pub(crate) fn scan_file(
    path: &str,
    lines: &[LexedLine],
    excerpts: &[String],
    ix: &FileIndex,
) -> Vec<Violation> {
    let krate = crate_of(path);
    let d001 = PROTOCOL_STATE_CRATES.contains(&krate);
    let d002 = !D002_EXEMPT_CRATES.contains(&krate);
    let d003 = PROTOCOL_STATE_CRATES.contains(&krate);
    let d004 = krate == "aggregate";
    let d005 = PROTOCOL_STATE_CRATES.contains(&krate);
    // The runtime crate hosts protocol state machines on real sockets,
    // so the counted-set constructor restriction applies there too.
    let d007 = (PROTOCOL_STATE_CRATES.contains(&krate) || krate == "runtime")
        && krate != "aggregate"
        && !D007_ALLOWED_FILES.contains(&path);
    let d008 = PROTOCOL_STATE_CRATES.contains(&krate);

    let mut out: Vec<Violation> = Vec::new();
    let fire = |rule: Rule, lineno: usize, detail: String, out: &mut Vec<Violation>| {
        if out.iter().any(|v| v.rule == rule && v.line == lineno) {
            return;
        }
        out.push(Violation {
            rule,
            file: path.to_string(),
            line: lineno,
            excerpt: excerpts.get(lineno - 1).cloned().unwrap_or_default(),
            detail,
        });
    };

    for (idx, lexed) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = lexed.code.as_str();
        if ix.in_test[idx] {
            continue;
        }

        if d001 {
            for pat in ["HashMap", "HashSet"] {
                if code.contains(pat) {
                    fire(
                        Rule::D001,
                        lineno,
                        format!(
                            "`{pat}` has per-process iteration order; use detcol::DetMap/DetSet"
                        ),
                        &mut out,
                    );
                    break;
                }
            }
        }
        if d002 {
            if let Some(pat) = D002_PATTERNS.iter().find(|p| code.contains(*p)) {
                fire(
                    Rule::D002,
                    lineno,
                    format!("`{pat}` outside the runtime/bench crates"),
                    &mut out,
                );
            }
        }
        if d003 {
            let handler = ix.fn_for_line[idx]
                .map(|f| ix.fns[f].name.as_str())
                .filter(|n| n.starts_with("on_") || n.starts_with("decode"));
            if let Some(name) = handler {
                let name = name.to_string();
                if let Some(pat) = D003_PATTERNS.iter().find(|p| code.contains(*p)) {
                    fire(
                        Rule::D003,
                        lineno,
                        format!("`{pat}` can panic inside handler `{name}`"),
                        &mut out,
                    );
                }
            }
        }
        if d004 {
            let int_to_float = code.contains(" as f64") || code.contains(" as f32");
            let float_to_int = D004_INT_CASTS.iter().any(|c| code.contains(c))
                && D004_FLOAT_MARKERS.iter().any(|m| code.contains(m));
            if int_to_float || float_to_int {
                fire(
                    Rule::D004,
                    lineno,
                    "bare `as` float<->int cast; use the audited conv module".to_string(),
                    &mut out,
                );
            }
        }
        if d005 {
            if contains_word(code, "unsafe") {
                fire(Rule::D005, lineno, "`unsafe` block".to_string(), &mut out);
            } else if let Some(pat) = D005_PATTERNS.iter().find(|p| code.contains(*p)) {
                fire(Rule::D005, lineno, format!("`{pat}`"), &mut out);
            }
        }
        if d008 && ix.gated_for_line[idx] {
            let word_hit = D008_RNG_WORDS.iter().find(|w| contains_word(code, w));
            let call_hit = D008_RNG_CALLS.iter().find(|p| code.contains(*p));
            if let Some(pat) = word_hit.or(call_hit) {
                fire(
                    Rule::D008,
                    lineno,
                    format!("RNG draw (`{pat}`) inside an instrumentation-gated block"),
                    &mut out,
                );
            }
        }
        if ix.hot_for_line[idx] {
            if let Some(pat) = D009_ALLOC_PATTERNS.iter().find(|p| code.contains(*p)) {
                fire(
                    Rule::D009,
                    lineno,
                    format!("allocation (`{pat}`) inside a `// lint:hot` function"),
                    &mut out,
                );
            }
        }
    }

    if d007 {
        for call in &ix.calls {
            if D007_CONSTRUCTORS.contains(&call.name.as_str()) {
                fire(
                    Rule::D007,
                    call.line,
                    format!(
                        "counted-set constructor `{}` outside the structurally-deduping protocols",
                        call.name
                    ),
                    &mut out,
                );
            }
        }
    }

    out.sort_by_key(|a| (a.line, a.rule));
    out
}

/// Cross-file rule D006: wire-schema completeness.
///
/// - every `Payload` variant must appear in an `encode` fn and a
///   `decode` fn in the file that defines the enum;
/// - every protocol's `on_message` must mention every variant (handle
///   it or explicitly ignore it);
/// - a top-level `_ =>` wildcard in a `match` over `Payload` in a
///   protocol-state crate silently drops future variants and is
///   flagged at the wildcard arm.
pub(crate) fn check_wire_schema(analyses: &[FileAnalysis]) -> Vec<Violation> {
    let mut out: Vec<Violation> = Vec::new();

    // Locate the wire enum (first definition wins; the workspace has
    // exactly one).
    let def = analyses.iter().find_map(|a| {
        a.index
            .enums
            .iter()
            .find(|e| e.name == WIRE_ENUM)
            .map(|e| (a, e))
    });
    let Some((def_file, def_enum)) = def else {
        // No Payload in scope (single-file lint of a non-codec file):
        // wildcard checking still applies below.
        wildcard_pass(analyses, &mut out);
        return out;
    };

    // Codec completeness: union of all `encode`/`decode` fn bodies in
    // the defining file must mention each variant.
    for codec_fn in ["encode", "decode"] {
        let spans: Vec<(usize, usize)> = def_file
            .index
            .fns
            .iter()
            .filter(|f| f.name == codec_fn)
            .map(|f| (f.body_open, f.body_close))
            .collect();
        if spans.is_empty() {
            continue; // no codec in this workspace slice; nothing to audit
        }
        for variant in &def_enum.variants {
            let needle = format!("{WIRE_ENUM}::{variant}");
            let mentioned = spans.iter().any(|&(lo, hi)| {
                def_file.lines[lo - 1..hi.min(def_file.lines.len())]
                    .iter()
                    .any(|l| contains_word(&l.code, &needle))
            });
            if !mentioned {
                out.push(Violation {
                    rule: Rule::D006,
                    file: def_file.path.clone(),
                    line: def_enum.line,
                    excerpt: def_file
                        .excerpts
                        .get(def_enum.line - 1)
                        .cloned()
                        .unwrap_or_default(),
                    detail: format!("`{needle}` has no arm in the wire `{codec_fn}` fn"),
                });
            }
        }
    }

    // Handler completeness: every protocol impl's `on_message` must
    // mention every variant.
    for a in analyses {
        if !a.index.has_protocol_impl {
            continue;
        }
        for f in a.index.fns.iter().filter(|f| f.name == "on_message") {
            for variant in &def_enum.variants {
                let needle = format!("{WIRE_ENUM}::{variant}");
                let mentioned = a.lines[f.body_open - 1..f.body_close.min(a.lines.len())]
                    .iter()
                    .any(|l| contains_word(&l.code, &needle));
                if !mentioned {
                    out.push(Violation {
                        rule: Rule::D006,
                        file: a.path.clone(),
                        line: f.body_open,
                        excerpt: a.excerpts.get(f.body_open - 1).cloned().unwrap_or_default(),
                        detail: format!(
                            "`{needle}` is neither handled nor explicitly ignored in `on_message`"
                        ),
                    });
                }
            }
        }
    }

    wildcard_pass(analyses, &mut out);
    out
}

/// The wildcard half of D006: flag `_ =>` arms in matches over the
/// wire enum inside protocol-state crates.
fn wildcard_pass(analyses: &[FileAnalysis], out: &mut Vec<Violation>) {
    for a in analyses {
        if !PROTOCOL_STATE_CRATES.contains(&crate_of(&a.path)) {
            continue;
        }
        for m in &a.index.matches {
            let over_wire = m.pattern_enums.iter().any(|e| e == WIRE_ENUM);
            if let (true, Some(wl)) = (over_wire, m.wildcard_line) {
                out.push(Violation {
                    rule: Rule::D006,
                    file: a.path.clone(),
                    line: wl,
                    excerpt: a.excerpts.get(wl - 1).cloned().unwrap_or_default(),
                    detail: format!(
                        "wildcard `_ =>` arm in a match over `{WIRE_ENUM}` silently drops new variants"
                    ),
                });
            }
        }
    }
}
