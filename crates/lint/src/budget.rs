//! The per-rule waiver budget and its ratchet.
//!
//! `lint_budget.json` at the workspace root commits the allowed number
//! of honoured waivers per rule. CI runs the linter with `--budget`:
//! if any rule's actual waiver count exceeds its budget the build
//! fails — growing the exception surface requires an explicit,
//! reviewable edit to the budget file. When actual counts fall below
//! budget the slack is reported so the budget can be tightened (the
//! ratchet only ever turns one way by hand).

use crate::{Findings, Rule, ALL_RULES};

/// A parsed per-rule waiver budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Budget {
    counts: [usize; ALL_RULES.len()],
}

impl Budget {
    /// The budgeted waiver count for a rule.
    pub fn allowance(&self, rule: Rule) -> usize {
        self.counts[ALL_RULES
            .iter()
            .position(|r| *r == rule)
            .expect("rule in ALL_RULES")]
    }
}

/// Parse `lint_budget.json`: a flat object with exactly one integer
/// entry per rule, e.g. `{"D001": 0, ..., "D009": 4}`. Every rule must
/// be present — a new rule without a budget line is a config error,
/// not an implicit zero, so adding a rule forces a budget decision.
pub fn parse_budget(text: &str) -> Result<Budget, String> {
    let mut seen: Vec<(Rule, usize)> = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'"' {
            i += 1;
            continue;
        }
        let start = i + 1;
        let mut j = start;
        while j < bytes.len() && bytes[j] != b'"' {
            j += 1;
        }
        if j >= bytes.len() {
            return Err("unterminated string in budget file".to_string());
        }
        let key = &text[start..j];
        let Some(rule) = Rule::parse(key) else {
            return Err(format!("unknown rule id {key:?} in budget file"));
        };
        // skip to the ':' then parse the integer
        i = j + 1;
        while i < bytes.len() && bytes[i] != b':' {
            if !bytes[i].is_ascii_whitespace() {
                return Err(format!("expected ':' after {key:?} in budget file"));
            }
            i += 1;
        }
        i += 1; // past ':'
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        let num_start = i;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
        if i == num_start {
            return Err(format!("missing integer budget for {key:?}"));
        }
        let n: usize = text[num_start..i]
            .parse()
            .map_err(|e| format!("bad budget for {key:?}: {e}"))?;
        if seen.iter().any(|(r, _)| *r == rule) {
            return Err(format!("duplicate budget entry for {key}"));
        }
        seen.push((rule, n));
    }

    let mut counts = [0usize; ALL_RULES.len()];
    for (idx, rule) in ALL_RULES.iter().enumerate() {
        let Some(&(_, n)) = seen.iter().find(|(r, _)| r == rule) else {
            return Err(format!(
                "budget file has no entry for {rule}; every rule needs an explicit budget"
            ));
        };
        counts[idx] = n;
    }
    Ok(Budget { counts })
}

/// The outcome of checking findings against a budget.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BudgetCheck {
    /// Rules whose waiver count exceeds budget: (rule, actual, budget).
    /// Non-empty fails the build.
    pub overruns: Vec<(Rule, usize, usize)>,
    /// Rules with headroom: (rule, actual, budget). Reported so the
    /// budget can be ratcheted down.
    pub slack: Vec<(Rule, usize, usize)>,
}

impl BudgetCheck {
    /// Whether the findings fit the budget.
    pub fn ok(&self) -> bool {
        self.overruns.is_empty()
    }
}

/// Compare the honoured-waiver counts in `findings` to `budget`.
pub fn check(budget: &Budget, findings: &Findings) -> BudgetCheck {
    let mut out = BudgetCheck::default();
    for rule in ALL_RULES {
        let actual = findings.waived.iter().filter(|w| w.rule == rule).count();
        let allowed = budget.allowance(rule);
        if actual > allowed {
            out.overruns.push((rule, actual, allowed));
        } else if actual < allowed {
            out.slack.push((rule, actual, allowed));
        }
    }
    out
}

/// Render a budget check for the human report / CLI output.
pub fn render_check(check: &BudgetCheck) -> String {
    let mut out = String::new();
    out.push_str("\nwaiver budget:\n");
    if check.overruns.is_empty() && check.slack.is_empty() {
        out.push_str("  exact: every rule's waiver count matches its budget\n");
    }
    for (rule, actual, allowed) in &check.overruns {
        out.push_str(&format!(
            "  OVERRUN {rule}: {actual} waiver(s) but budget is {allowed} — fix the sites or edit lint_budget.json\n"
        ));
    }
    for (rule, actual, allowed) in &check.slack {
        out.push_str(&format!(
            "  slack {rule}: {actual} waiver(s) under a budget of {allowed} — tighten lint_budget.json\n"
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Waived;

    fn budget_json(counts: &[usize; 9]) -> String {
        let mut s = String::from("{\n");
        for (i, rule) in ALL_RULES.iter().enumerate() {
            s.push_str(&format!(
                "  \"{}\": {}{}\n",
                rule,
                counts[i],
                if i + 1 < ALL_RULES.len() { "," } else { "" }
            ));
        }
        s.push('}');
        s
    }

    fn findings_with_waivers(rule: Rule, n: usize) -> Findings {
        let mut f = Findings::default();
        for i in 0..n {
            f.waived.push(Waived {
                rule,
                file: "crates/core/src/x.rs".to_string(),
                line: i + 1,
                reason: "test".to_string(),
            });
        }
        f
    }

    #[test]
    fn parse_roundtrip_and_missing_rule() {
        let b = parse_budget(&budget_json(&[1, 2, 0, 3, 0, 0, 0, 0, 4])).unwrap();
        assert_eq!(b.allowance(Rule::D002), 2);
        assert_eq!(b.allowance(Rule::D009), 4);
        let err = parse_budget("{\"D001\": 1}").unwrap_err();
        assert!(err.contains("no entry for D002"), "{err}");
        let err = parse_budget("{\"D042\": 1}").unwrap_err();
        assert!(err.contains("unknown rule id"), "{err}");
    }

    #[test]
    fn overrun_and_slack() {
        let b = parse_budget(&budget_json(&[0, 2, 0, 0, 0, 0, 0, 0, 0])).unwrap();
        let c = check(&b, &findings_with_waivers(Rule::D002, 3));
        assert!(!c.ok());
        assert_eq!(c.overruns, vec![(Rule::D002, 3, 2)]);
        let c = check(&b, &findings_with_waivers(Rule::D002, 1));
        assert!(c.ok());
        assert_eq!(c.slack, vec![(Rule::D002, 1, 2)]);
        assert!(render_check(&c).contains("slack D002: 1 waiver(s) under a budget of 2"));
    }

    #[test]
    fn duplicate_entry_rejected() {
        let err = parse_budget("{\"D001\": 1, \"D001\": 2}").unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
    }
}
