//! Pass 1: a lightweight per-file item index built on the lexer.
//!
//! One structural walk over the lexed lines tracks brace depth,
//! `#[cfg(test)]` regions, enclosing functions, `enum` bodies, `match`
//! expressions (scrutinee → arm patterns → arm bodies), call sites,
//! `// lint:hot` annotations, and instrumentation-gated blocks. The
//! result is a [`FileIndex`] that pass-2 rules (D003, D006–D009)
//! query without re-walking the source.
//!
//! The walk is token-shaped, not a real parser: it recognizes
//! identifiers and single structural characters on comment- and
//! string-stripped code, which is exactly enough for the rule set and
//! keeps the linter dependency-free.

use crate::lexer::LexedLine;

/// An `enum` definition with its variant names, in declaration order.
#[derive(Debug, Clone)]
pub struct EnumDef {
    /// The enum's name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: usize,
    /// Variant names in declaration order.
    pub variants: Vec<String>,
}

/// A `fn` definition and its body extent.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// 1-based line the `fn` keyword appears on.
    pub line: usize,
    /// 1-based line of the body's opening `{`.
    pub body_open: usize,
    /// 1-based line of the body's closing `}` (fixed up when the body
    /// closes; bodies still open at EOF run to the last line).
    pub body_close: usize,
    /// Whether the definition is annotated `// lint:hot`.
    pub hot: bool,
}

/// A `match` expression: where it is, whether it has a top-level
/// wildcard `_ =>` arm, and which enums its arm *patterns* reference.
#[derive(Debug, Clone)]
pub struct MatchSite {
    /// 1-based line of the `match` keyword.
    pub line: usize,
    /// 1-based line of a top-level `_ =>` arm, if present.
    pub wildcard_line: Option<usize>,
    /// Path-qualifier identifiers referenced in arm patterns (for
    /// `Payload::Vote { .. }` this records `Payload`). Sorted, deduped.
    pub pattern_enums: Vec<String>,
}

/// A call site: an identifier immediately followed by `(`.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called identifier (last path segment; method or free fn).
    pub name: String,
    /// 1-based line.
    pub line: usize,
}

/// Everything pass 1 knows about one file.
#[derive(Debug, Clone, Default)]
pub struct FileIndex {
    /// Per line (0-based index): covered by a `#[cfg(test)]` region.
    pub in_test: Vec<bool>,
    /// Function definitions, in source order (test regions excluded).
    pub fns: Vec<FnDef>,
    /// Per line: index into `fns` of the innermost enclosing function.
    pub fn_for_line: Vec<Option<usize>>,
    /// Per line: inside a function annotated `// lint:hot`.
    pub hot_for_line: Vec<bool>,
    /// Per line: inside an instrumentation-gated block (or carrying a
    /// gate pattern itself) — the D008 scope.
    pub gated_for_line: Vec<bool>,
    /// Enum definitions (test regions excluded).
    pub enums: Vec<EnumDef>,
    /// Match expressions (test regions excluded).
    pub matches: Vec<MatchSite>,
    /// Call sites (test regions excluded).
    pub calls: Vec<CallSite>,
    /// Whether the file implements `AggregationProtocol` for a type.
    pub has_protocol_impl: bool,
}

/// Mode of the innermost `match` context while walking its body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArmMode {
    /// Accumulating an arm pattern, up to its `=>`.
    Pattern,
    /// Just saw `=>`; deciding whether the body is a block.
    BodyStart,
    /// Expression arm body; ends at a top-level `,`.
    BodyExpr,
    /// Block arm body; ends when its `}` closes.
    BodyBlock,
}

#[derive(Debug)]
struct MatchCtx {
    line: usize,
    /// Brace depth at the body's opening `{` (before increment): arm
    /// top level is `open_depth + 1`.
    open_depth: i32,
    /// Paren/bracket depth at the body's opening `{`.
    paren_base: i32,
    mode: ArmMode,
    pattern: String,
    pattern_line: usize,
    wildcard_line: Option<usize>,
    pattern_enums: Vec<String>,
}

#[derive(Debug)]
struct EnumCtx {
    name: String,
    line: usize,
    open_depth: i32,
    paren_base: i32,
    expect_variant: bool,
    variants: Vec<String>,
}

const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "in", "as", "move",
];

/// Build the pass-1 index for one file. `gate_patterns` are the
/// substrings that mark a line as opening an instrumentation-gated
/// block (rule D008's scope) — they live with the rules, not here.
pub fn build_index(lines: &[LexedLine], gate_patterns: &[&str]) -> FileIndex {
    let n = lines.len();
    let mut ix = FileIndex {
        in_test: vec![false; n],
        fn_for_line: vec![None; n],
        hot_for_line: vec![false; n],
        gated_for_line: vec![false; n],
        ..FileIndex::default()
    };

    let mut depth: i32 = 0;
    let mut paren: i32 = 0;
    let mut test_region: Option<i32> = None;
    let mut pending_test_attr = false;
    let mut pending_fn: Option<String> = None;
    let mut pending_hot = false;
    let mut pending_enum: Option<String> = None;
    let mut pending_gate = false;
    // `match` seen, waiting for its body `{` at the recorded paren depth
    let mut match_wait: Option<(usize, i32)> = None;
    let mut fn_stack: Vec<(usize, i32)> = Vec::new();
    let mut enum_stack: Vec<EnumCtx> = Vec::new();
    let mut match_stack: Vec<MatchCtx> = Vec::new();
    let mut gate_stack: Vec<i32> = Vec::new();
    // bracket depth inside a `#[...]` attribute (contents are skipped
    // so `cfg(test)` is not mistaken for a call site); may span lines
    let mut attr_depth: i32 = 0;

    for (idx, lexed) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = lexed.code.as_str();
        let in_test_at_start = test_region.is_some();
        let mut line_fn: Option<usize> = fn_stack.last().map(|&(f, _)| f);
        let mut line_hot = fn_stack.iter().any(|&(f, _)| ix.fns[f].hot);
        let mut line_gated = !gate_stack.is_empty();

        if let Some(comment) = &lexed.comment {
            if comment.contains("lint:hot") {
                pending_hot = true;
            }
        }
        if code.contains("#[cfg(test)]") {
            pending_test_attr = true;
        }
        if gate_patterns.iter().any(|p| code.contains(p)) {
            pending_gate = true;
            line_gated = true;
        }
        if test_region.is_none()
            && crate::lexer::contains_word(code, "impl")
            && code.contains("AggregationProtocol")
            && crate::lexer::contains_word(code, "for")
        {
            ix.has_protocol_impl = true;
        }

        let bytes = code.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i] as char;

            // Attribute contents are opaque to the index.
            if attr_depth > 0 {
                match c {
                    '[' => attr_depth += 1,
                    ']' => attr_depth -= 1,
                    _ => {}
                }
                i += 1;
                continue;
            }
            if c == '#' && i + 1 < bytes.len() && bytes[i + 1] == b'[' {
                attr_depth = 1;
                i += 2;
                continue;
            }

            // Identifier token?
            if c.is_ascii_alphabetic() || c == '_' {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &code[start..i];
                // feed the innermost match pattern accumulator
                if let Some(m) = match_stack.last_mut() {
                    if m.mode == ArmMode::Pattern {
                        if m.pattern.trim().is_empty() && !word.trim().is_empty() {
                            m.pattern_line = lineno;
                        }
                        m.pattern.push_str(word);
                    }
                }
                match word {
                    "fn" => {
                        // consume the function name (may be absent in
                        // `fn` pointer types; ignore those)
                        let mut j = i;
                        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                            j += 1;
                        }
                        let name_start = j;
                        while j < bytes.len()
                            && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                        {
                            j += 1;
                        }
                        if j > name_start {
                            pending_fn = Some(code[name_start..j].to_string());
                            i = j;
                        }
                    }
                    "enum" => {
                        let mut j = i;
                        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                            j += 1;
                        }
                        let name_start = j;
                        while j < bytes.len()
                            && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_')
                        {
                            j += 1;
                        }
                        if j > name_start {
                            pending_enum = Some(code[name_start..j].to_string());
                            i = j;
                        }
                    }
                    "match" => {
                        match_wait = Some((lineno, paren));
                    }
                    _ => {
                        // enum variant position?
                        if let Some(e) = enum_stack.last_mut() {
                            if e.expect_variant && depth == e.open_depth + 1 {
                                e.variants.push(word.to_string());
                                e.expect_variant = false;
                            }
                        }
                        // call site: ident directly followed by `(`
                        // (allowing spaces), excluding keywords and
                        // macro bangs
                        if !CALL_KEYWORDS.contains(&word) {
                            let mut j = i;
                            while j < bytes.len() && bytes[j] == b' ' {
                                j += 1;
                            }
                            if j < bytes.len() && bytes[j] == b'(' && test_region.is_none() {
                                ix.calls.push(CallSite {
                                    name: word.to_string(),
                                    line: lineno,
                                });
                            }
                        }
                    }
                }
                continue;
            }

            // `=>` terminating a top-level arm pattern of the
            // innermost match?
            if c == '=' && i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                if let Some(m) = match_stack.last_mut() {
                    if m.mode == ArmMode::Pattern
                        && depth == m.open_depth + 1
                        && paren == m.paren_base
                    {
                        finish_pattern(m);
                        m.mode = ArmMode::BodyStart;
                        i += 2;
                        continue;
                    }
                    if m.mode == ArmMode::Pattern {
                        m.pattern.push_str("=>");
                    }
                }
                i += 2;
                continue;
            }

            // Pattern accumulation for non-identifier characters.
            if let Some(m) = match_stack.last_mut() {
                match m.mode {
                    ArmMode::Pattern => {
                        if m.pattern.trim().is_empty() && !c.is_whitespace() {
                            m.pattern_line = lineno;
                        }
                        m.pattern.push(c);
                    }
                    ArmMode::BodyStart => {
                        if c == '{' {
                            m.mode = ArmMode::BodyBlock;
                        } else if !c.is_whitespace() {
                            m.mode = ArmMode::BodyExpr;
                        }
                    }
                    ArmMode::BodyExpr => {
                        if c == ',' && depth == m.open_depth + 1 && paren == m.paren_base {
                            m.mode = ArmMode::Pattern;
                            m.pattern.clear();
                        }
                    }
                    ArmMode::BodyBlock => {}
                }
            }

            match c {
                '{' => {
                    let mut consumed_gate = false;
                    if pending_test_attr {
                        test_region = test_region.or(Some(depth));
                        pending_test_attr = false;
                    } else if let Some(name) = pending_fn.take() {
                        if test_region.is_none() {
                            let f = ix.fns.len();
                            ix.fns.push(FnDef {
                                name,
                                line: lineno, // body-open line; decl may be earlier
                                body_open: lineno,
                                body_close: lines.len(),
                                hot: pending_hot,
                            });
                            fn_stack.push((f, depth));
                            line_fn = Some(f);
                            line_hot |= pending_hot;
                        }
                        pending_hot = false;
                        consumed_gate = true; // a fn body is not a gate block
                    } else if let Some(name) = pending_enum.take() {
                        enum_stack.push(EnumCtx {
                            name,
                            line: lineno,
                            open_depth: depth,
                            paren_base: paren,
                            expect_variant: true,
                            variants: Vec::new(),
                        });
                    } else if match_wait.is_some_and(|(_, p)| p == paren) {
                        let (mline, _) = match_wait.take().expect("checked above");
                        match_stack.push(MatchCtx {
                            line: mline,
                            open_depth: depth,
                            paren_base: paren,
                            mode: ArmMode::Pattern,
                            pattern: String::new(),
                            pattern_line: mline,
                            wildcard_line: None,
                            pattern_enums: Vec::new(),
                        });
                    }
                    if pending_gate && !consumed_gate {
                        gate_stack.push(depth);
                        pending_gate = false;
                        line_gated = true;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_region == Some(depth) {
                        test_region = None;
                    }
                    while gate_stack.last().is_some_and(|&d| d >= depth) {
                        gate_stack.pop();
                    }
                    while fn_stack.last().is_some_and(|&(_, d)| d >= depth) {
                        let (f, _) = fn_stack.pop().expect("checked non-empty");
                        ix.fns[f].body_close = lineno;
                    }
                    if enum_stack.last().is_some_and(|e| e.open_depth == depth) {
                        let e = enum_stack.pop().expect("checked non-empty");
                        if test_region.is_none() {
                            ix.enums.push(EnumDef {
                                name: e.name,
                                line: e.line,
                                variants: e.variants,
                            });
                        }
                    }
                    if match_stack.last().is_some_and(|m| m.open_depth == depth) {
                        let mut m = match_stack.pop().expect("checked non-empty");
                        // a trailing pattern with no `=>` is the
                        // (empty) text after the last arm; drop it
                        if test_region.is_none() {
                            m.pattern_enums.sort();
                            m.pattern_enums.dedup();
                            ix.matches.push(MatchSite {
                                line: m.line,
                                wildcard_line: m.wildcard_line,
                                pattern_enums: m.pattern_enums,
                            });
                        }
                    } else if let Some(m) = match_stack.last_mut() {
                        // an arm's block body just closed?
                        if m.mode == ArmMode::BodyBlock && depth == m.open_depth + 1 {
                            m.mode = ArmMode::Pattern;
                            m.pattern.clear();
                        }
                    }
                }
                '(' | '[' => paren += 1,
                ')' | ']' => paren -= 1,
                ',' => {
                    if let Some(e) = enum_stack.last_mut() {
                        if depth == e.open_depth + 1 && paren == e.paren_base {
                            e.expect_variant = true;
                        }
                    }
                }
                ';' if paren == 0 => {
                    // `fn f();` trait decls, `#[cfg(test)] use x;`,
                    // statement ends: nothing pending survives.
                    pending_fn = None;
                    pending_test_attr = false;
                    pending_enum = None;
                    match_wait = None;
                }
                _ => {}
            }
            i += 1;
        }

        pending_gate = false; // a gate must open its block on its own line
        ix.in_test[idx] = in_test_at_start || test_region.is_some();
        ix.fn_for_line[idx] = line_fn;
        ix.hot_for_line[idx] = line_hot;
        ix.gated_for_line[idx] = line_gated || !gate_stack.is_empty();
    }

    ix
}

/// Close out an accumulated arm pattern: record wildcard-ness and the
/// enum qualifiers it references.
fn finish_pattern(m: &mut MatchCtx) {
    let pat = m.pattern.trim().to_string();
    // `_` alone (optionally with a guard) is a wildcard arm; `_name`
    // bindings and `(_, _)` tuples are not the silent-drop shape D006
    // is after.
    let is_wildcard = pat == "_"
        || (pat.starts_with('_')
            && pat[1..]
                .chars()
                .next()
                .is_some_and(|c| !c.is_alphanumeric() && c != '_'));
    if is_wildcard && m.wildcard_line.is_none() {
        m.wildcard_line = Some(m.pattern_line);
    }
    // every `Ident::` qualifier in the pattern
    let bytes = pat.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            if i + 1 < bytes.len() && bytes[i] == b':' && bytes[i + 1] == b':' {
                m.pattern_enums.push(pat[start..i].to_string());
            }
        } else {
            i += 1;
        }
    }
    m.pattern.clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn index(src: &str) -> FileIndex {
        build_index(&lex(src), &["phase_trace"])
    }

    #[test]
    fn enums_and_variants() {
        let src = "\
pub enum Payload {
    Vote { member: u32, value: f64 },
    Agg(u8),
    Final,
}
";
        let ix = index(src);
        assert_eq!(ix.enums.len(), 1);
        assert_eq!(ix.enums[0].name, "Payload");
        assert_eq!(ix.enums[0].variants, vec!["Vote", "Agg", "Final"]);
    }

    #[test]
    fn single_line_enum() {
        let ix = index("enum E { A, B, C }\n");
        assert_eq!(ix.enums[0].variants, vec!["A", "B", "C"]);
    }

    #[test]
    fn match_wildcard_and_pattern_enums() {
        let src = "\
fn f(p: Payload) -> u32 {
    match p {
        Payload::Vote { member, .. } => member,
        Payload::Agg(x) if x > 0 => 1,
        _ => 0,
    }
}
";
        let ix = index(src);
        assert_eq!(ix.matches.len(), 1);
        let m = &ix.matches[0];
        assert_eq!(m.line, 2);
        assert_eq!(m.wildcard_line, Some(5));
        assert_eq!(m.pattern_enums, vec!["Payload"]);
    }

    #[test]
    fn enum_only_in_patterns_not_bodies() {
        // arms that *construct* Payload must not make this a
        // match-over-Payload
        let src = "\
fn f(x: bool) -> Payload {
    match x {
        true => Payload::Vote { member: 0, value: 1.0 },
        false => Payload::Final,
    }
}
";
        let ix = index(src);
        assert_eq!(ix.matches.len(), 1);
        assert!(ix.matches[0].pattern_enums.is_empty());
        assert!(ix.matches[0].wildcard_line.is_none());
    }

    #[test]
    fn nested_matches_and_block_arms_without_commas() {
        let src = "\
fn f(p: P, q: Q) -> u32 {
    match p {
        P::A => {
            match q {
                Q::X => 1,
                _ => 2,
            }
        }
        P::B => 3,
        _ => 4,
    }
}
";
        let ix = index(src);
        assert_eq!(ix.matches.len(), 2);
        // inner first (it closes first)
        assert_eq!(ix.matches[0].pattern_enums, vec!["Q"]);
        assert_eq!(ix.matches[0].wildcard_line, Some(6));
        assert_eq!(ix.matches[1].pattern_enums, vec!["P"]);
        assert_eq!(ix.matches[1].wildcard_line, Some(10));
    }

    #[test]
    fn underscore_bindings_are_not_wildcards() {
        let src = "\
fn f(p: P) -> u32 {
    match p {
        P::A => 1,
        _other => 2,
    }
}
";
        let ix = index(src);
        assert!(ix.matches[0].wildcard_line.is_none());
    }

    #[test]
    fn fn_bodies_hot_markers_and_calls() {
        let src = "\
// lint:hot
fn hot_loop(xs: &[u32]) -> u32 {
    helper(xs)
}

fn cold() {
    other();
}
";
        let ix = index(src);
        assert_eq!(ix.fns.len(), 2);
        assert!(ix.fns[0].hot);
        assert_eq!(ix.fns[0].name, "hot_loop");
        assert_eq!((ix.fns[0].body_open, ix.fns[0].body_close), (2, 4));
        assert!(!ix.fns[1].hot);
        assert!(ix.hot_for_line[2]); // line 3: helper(xs)
        assert!(!ix.hot_for_line[6]); // line 7: other()
        let names: Vec<_> = ix.calls.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"helper"));
        assert!(names.contains(&"other"));
    }

    #[test]
    fn gated_lines_track_blocks() {
        let src = "\
fn f(&mut self) {
    if self.cfg.phase_trace {
        self.trace.push(1);
    }
    self.after = true;
}
";
        let ix = index(src);
        assert!(ix.gated_for_line[1]); // gate line
        assert!(ix.gated_for_line[2]); // inside
        assert!(!ix.gated_for_line[4]); // after the block
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "\
fn live() {}

#[cfg(test)]
mod tests {
    enum E { A }
    fn helper() { call_me(); }
}
";
        let ix = index(src);
        assert_eq!(ix.fns.len(), 1);
        assert!(ix.enums.is_empty());
        assert!(ix.calls.is_empty());
    }

    #[test]
    fn protocol_impl_detection() {
        let ix = index("impl<A: Aggregate> AggregationProtocol<A> for Flood<A> {\n}\n");
        assert!(ix.has_protocol_impl);
        let ix = index("pub trait AggregationProtocol<A> {\n}\n");
        assert!(!ix.has_protocol_impl);
    }
}
