//@path crates/core/src/fixture.rs
//! Unused-waiver fixture: a well-formed `lint:allow` whose next line
//! violates nothing. Stale waivers hide the real exception surface
//! and defeat the budget ratchet, so this is fatal — must produce
//! exactly one unused-waiver finding at the comment line.

fn clean() {
    // lint:allow(D001) fixture: nothing below violates D001
    let x = 1u32;
    let _ = x;
}
