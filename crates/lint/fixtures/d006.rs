//@path crates/core/src/fixture.rs
//! D006 fixture: a wildcard `_ =>` arm in a match over the wire enum
//! `Payload` inside a protocol-state crate. A new variant would be
//! silently dropped instead of forcing a handling decision at compile
//! time. Must fire D006 exactly once, at the wildcard arm.

fn route(p: Payload) {
    match p {
        Payload::Vote { .. } => {}
        _ => {}
    }
}
