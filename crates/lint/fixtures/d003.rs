//@path crates/core/src/fixture.rs
//! D003 fixture: a panicking call inside a protocol event handler. A
//! malformed message must be dropped or surfaced as an error, never
//! crash. Must fire D003 exactly once.

fn on_message(input: Option<u32>) -> u32 {
    input.unwrap()
}
