//@path crates/core/src/fixture.rs
//! D008 fixture: an RNG draw inside an instrumentation-gated block.
//! Toggling the trace flag would change the random stream and break
//! byte-identical goldens. Must fire D008 exactly once, inside the
//! gated block only — the draw after the block is not gated.

fn emit_trace(rng: &mut DetRng, member: u32) {
    if phase_trace(member) {
        let jitter = rng.unit();
        let _ = jitter;
    }
    let ungated = rng.unit();
    let _ = ungated;
}
