//@path crates/core/src/fixture.rs
//! D005 fixture: an `unsafe` block (with an unchecked access inside)
//! in a protocol-state crate. Memory safety is audited at the crate
//! boundary, not inline. Must fire D005 exactly once — the `unsafe`
//! keyword and `.get_unchecked` on one line are one finding.

fn peek(values: &[u32]) -> u32 {
    unsafe { *values.get_unchecked(0) }
}
