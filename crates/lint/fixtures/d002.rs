//@path crates/core/src/fixture.rs
//! D002 fixture: a wall-clock read in a protocol-state crate. The
//! simulation's only clock is the round counter. Must fire D002
//! exactly once.

fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
