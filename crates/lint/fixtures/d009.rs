//@path crates/core/src/fixture.rs
//! D009 fixture: an allocation inside a `// lint:hot` function. Hot
//! round loops must reuse scratch buffers; a fresh `Vec` per call is
//! a per-round, per-member allocation. Must fire D009 exactly once —
//! the allocation in the unannotated fn below is not flagged.

// lint:hot
fn hot_step(buf: &mut [u32]) -> usize {
    let scratch = Vec::new();
    let _: Vec<u32> = scratch;
    buf.len()
}

fn cold_setup() -> Vec<u32> {
    Vec::new()
}
