//@path crates/core/src/fixture.rs
//! Waiver fixture: the same D001 pattern as the d001 fixture, but
//! suppressed by a `lint:allow` comment with a reason. Must produce
//! zero violations and exactly one tallied waiver.

fn protocol_state() {
    // lint:allow(D001) fixture demonstrating the waiver syntax; not protocol state
    let members = std::collections::HashMap::<u32, u32>::new();
    let _ = members;
}
