//@path crates/core/src/fixture.rs
//! Waiver-scoping fixture: a standalone `lint:allow` comment covers
//! exactly the next line. The second identical violation two lines
//! below is NOT covered and must still fire — one waiver, one site.

fn protocol_state() {
    // lint:allow(D001) fixture: this waiver covers only the next line
    let covered = std::collections::HashMap::<u32, u32>::new();
    let uncovered = std::collections::HashMap::<u32, u32>::new();
    let _ = (covered, uncovered);
}
