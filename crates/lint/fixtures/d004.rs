//@path crates/aggregate/src/fixture.rs
//! D004 fixture: a bare `as` widening in aggregate math. Conversions
//! must go through the audited `conv` helpers so `strict-invariants`
//! can assert exactness. Must fire D004 exactly once.

fn mean(sum: f64, count: u64) -> f64 {
    sum / count as f64
}
