//@path crates/core/src/fixture.rs
//! D001 fixture: a hash collection in protocol-state code. Its
//! iteration order is randomized per process, which breaks the
//! byte-identical golden guarantee. Must fire D001 exactly once.

fn protocol_state() {
    let members = std::collections::HashMap::<u32, u32>::new();
    let _ = members;
}
