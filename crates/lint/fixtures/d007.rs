//@path crates/core/src/baselines/fixture.rs
//! D007 fixture: a counted-set constructor outside the structurally
//! deduping protocols. Counted `VoteSet`s drop exact contributor
//! tracking, which is only sound where merges are disjoint by
//! construction. Must fire D007 exactly once.

fn finalize(n: usize) {
    let acc = Tagged::<Average>::empty_for_scale(n);
    let _ = acc;
}
