//! Self-tests for `gridagg-lint`: each rule fixture fires its rule
//! exactly once (and nothing else), the waiver fixture is clean with a
//! tallied waiver, and the real workspace tree lints clean.

use gridagg_lint::{lint_source, lint_tree, Findings, Rule};
use std::path::Path;

/// Lint a fixture under a pseudo-path that puts it in `rule`'s scope.
fn lint_fixture(pseudo_path: &str, fixture: &str) -> Findings {
    lint_source(pseudo_path, fixture)
}

fn assert_fires_exactly_once(f: &Findings, rule: Rule) {
    assert_eq!(
        f.violations.len(),
        1,
        "{rule} fixture must produce exactly one violation, got {:?}",
        f.violations
    );
    assert_eq!(f.violations[0].rule, rule);
    assert!(f.bad_waivers.is_empty());
    assert!(f.waived.is_empty());
}

#[test]
fn d001_fixture_fires_once() {
    let f = lint_fixture(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d001.rs"),
    );
    assert_fires_exactly_once(&f, Rule::D001);
}

#[test]
fn d002_fixture_fires_once() {
    let f = lint_fixture(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d002.rs"),
    );
    assert_fires_exactly_once(&f, Rule::D002);
}

#[test]
fn d003_fixture_fires_once() {
    let f = lint_fixture(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d003.rs"),
    );
    assert_fires_exactly_once(&f, Rule::D003);
}

#[test]
fn d004_fixture_fires_once() {
    let f = lint_fixture(
        "crates/aggregate/src/fixture.rs",
        include_str!("fixtures/d004.rs"),
    );
    assert_fires_exactly_once(&f, Rule::D004);
}

#[test]
fn fixtures_only_fire_in_scope() {
    // The same sources are clean when placed in crates the rules
    // don't cover.
    let d001 = lint_fixture(
        "crates/runtime/src/fixture.rs",
        include_str!("fixtures/d001.rs"),
    );
    assert!(d001.violations.is_empty(), "{:?}", d001.violations);
    let d002 = lint_fixture(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/d002.rs"),
    );
    assert!(d002.violations.is_empty(), "{:?}", d002.violations);
    let d004 = lint_fixture(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d004.rs"),
    );
    assert!(d004.violations.is_empty(), "{:?}", d004.violations);
}

#[test]
fn waiver_fixture_is_clean_and_tallied() {
    let f = lint_fixture(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/waiver.rs"),
    );
    assert!(f.violations.is_empty(), "{:?}", f.violations);
    assert!(f.bad_waivers.is_empty());
    assert_eq!(f.waived.len(), 1, "waivered site must appear in the tally");
    assert_eq!(f.waived[0].rule, Rule::D001);
    assert!(
        f.waived[0].reason.contains("fixture"),
        "tally must carry the reason text"
    );
}

#[test]
fn workspace_tree_lints_clean() {
    // The acceptance gate: `cargo run -p gridagg-lint` over the real
    // tree reports zero unwaivered violations.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let f = lint_tree(root).expect("scan workspace");
    assert!(f.files_scanned > 30, "scan looks too small: {f:?}");
    assert!(
        f.violations.is_empty(),
        "workspace must lint clean; found:\n{}",
        gridagg_lint::render_report(&f)
    );
    assert!(
        f.bad_waivers.is_empty(),
        "malformed waivers:\n{}",
        gridagg_lint::render_report(&f)
    );
    assert!(
        !f.waived.is_empty(),
        "the audited conv/experiment waivers should appear in the tally"
    );
}
