//! Fixture-corpus harness for `gridagg-lint`.
//!
//! Every `.rs` file under `crates/lint/fixtures/` is a small source
//! file whose first line is a `//@path <pseudo-path>` directive
//! placing it in some rule's scope. Each has a sidecar `.expected`
//! snapshot of the findings it must produce. Run with
//! `UPDATE_EXPECT=1` to regenerate the snapshots after an intentional
//! rule change.
//!
//! The corpus seeds one violation per rule D001–D009 plus the waiver
//! edge cases (exact scoping, stale waivers), so a regression in any
//! rule or in waiver bookkeeping shows up as a snapshot diff in the
//! normal test suite.

use gridagg_lint::{lint_source, lint_tree, Findings, Rule};
use std::fs;
use std::path::{Path, PathBuf};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf()
}

/// Canonical one-line-per-finding rendering compared against the
/// `.expected` sidecars. Line numbers refer to the fixture file
/// itself (the `//@path` directive is line 1 and is linted too — it
/// is an ordinary comment).
fn render(f: &Findings) -> String {
    let mut out = String::new();
    for v in &f.violations {
        out.push_str(&format!(
            "violation {} line {}: {}\n",
            v.rule.id(),
            v.line,
            v.detail
        ));
    }
    for w in &f.waived {
        out.push_str(&format!(
            "waived {} line {}: {}\n",
            w.rule.id(),
            w.line,
            w.reason
        ));
    }
    for b in &f.bad_waivers {
        out.push_str(&format!("bad-waiver line {}: {}\n", b.line, b.problem));
    }
    for u in &f.unused_waivers {
        out.push_str(&format!("unused-waiver {} line {}\n", u.rule.id(), u.line));
    }
    out
}

/// Load a fixture, returning its pseudo-path and full source.
fn load_fixture(path: &Path) -> (String, String) {
    let src =
        fs::read_to_string(path).unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    let first = src.lines().next().unwrap_or("");
    let pseudo = first
        .strip_prefix("//@path ")
        .unwrap_or_else(|| {
            panic!(
                "{}: first line must be `//@path <pseudo-path>`",
                path.display()
            )
        })
        .trim()
        .to_string();
    (pseudo, src)
}

fn fixture_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(fixtures_dir())
        .expect("read fixtures dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    files.sort();
    assert!(
        files.len() >= 12,
        "fixture corpus looks incomplete: {files:?}"
    );
    files
}

#[test]
fn fixtures_match_expected_findings() {
    let update = std::env::var("UPDATE_EXPECT").is_ok();
    let mut mismatches = Vec::new();
    for path in fixture_files() {
        let (pseudo, src) = load_fixture(&path);
        let got = render(&lint_source(&pseudo, &src));
        let expected_path = path.with_extension("expected");
        if update {
            fs::write(&expected_path, &got)
                .unwrap_or_else(|e| panic!("write {}: {e}", expected_path.display()));
            continue;
        }
        let want = fs::read_to_string(&expected_path).unwrap_or_default();
        if got != want {
            mismatches.push(format!(
                "== {} ==\n-- expected --\n{want}-- got --\n{got}",
                path.display()
            ));
        }
    }
    assert!(
        mismatches.is_empty(),
        "fixture snapshots out of date (rerun with UPDATE_EXPECT=1 after \
         verifying the new findings are intended):\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn each_rule_fixture_fires_its_own_rule_exactly_once() {
    // Beyond snapshot equality: the dNNN fixtures each seed exactly
    // one violation of their namesake rule, so the snapshots cannot
    // silently drift to a different rule or to zero findings.
    for path in fixture_files() {
        let stem = path.file_stem().unwrap().to_string_lossy().into_owned();
        let Some(rule) = Rule::parse(&stem.to_uppercase()) else {
            continue; // waiver fixtures are checked by their snapshots
        };
        let (pseudo, src) = load_fixture(&path);
        let f = lint_source(&pseudo, &src);
        assert_eq!(
            f.violations.len(),
            1,
            "{stem} must produce exactly one violation, got {:?}",
            f.violations
        );
        assert_eq!(f.violations[0].rule, rule, "{stem} fired the wrong rule");
        assert!(f.bad_waivers.is_empty(), "{stem}: {:?}", f.bad_waivers);
        assert!(
            f.unused_waivers.is_empty(),
            "{stem}: {:?}",
            f.unused_waivers
        );
    }
}

#[test]
fn fixtures_only_fire_in_scope() {
    // The same sources are clean when placed in crates the rules
    // don't cover: crate scoping, not pattern luck, drives the rules.
    let reloc = [
        ("d001.rs", "crates/runtime/src/fixture.rs"),
        ("d002.rs", "crates/bench/src/fixture.rs"),
        ("d004.rs", "crates/core/src/fixture.rs"),
        ("d006.rs", "crates/runtime/src/fixture.rs"),
        ("d007.rs", "crates/core/src/hiergossip.rs"),
        ("d008.rs", "crates/runtime/src/fixture.rs"),
    ];
    for (name, out_of_scope) in reloc {
        let (_, src) = load_fixture(&fixtures_dir().join(name));
        let f = lint_source(out_of_scope, &src);
        assert!(
            f.violations.is_empty(),
            "{name} relocated to {out_of_scope} must be clean, got {:?}",
            f.violations
        );
    }
}

#[test]
fn d007_covers_the_runtime_crate() {
    // The runtime crate hosts protocol state machines on real sockets,
    // so the counted-set constructor restriction extends there: the
    // same fixture that fires in `crates/core` fires when relocated
    // into `crates/runtime` too.
    let (_, src) = load_fixture(&fixtures_dir().join("d007.rs"));
    let f = lint_source("crates/runtime/src/fixture.rs", &src);
    assert_eq!(
        f.violations.len(),
        1,
        "d007.rs relocated into the runtime crate must fire, got {:?}",
        f.violations
    );
    assert_eq!(f.violations[0].rule, Rule::D007);
}

#[test]
fn workspace_tree_lints_clean() {
    // The acceptance gate: `cargo run -p gridagg-lint` over the real
    // tree reports zero unwaivered violations, zero malformed waivers
    // and zero stale waivers.
    let f = lint_tree(&workspace_root()).expect("scan workspace");
    assert!(f.files_scanned > 30, "scan looks too small: {f:?}");
    assert!(
        f.is_clean(),
        "workspace must lint clean; found:\n{}",
        gridagg_lint::render_report(&f)
    );
    assert!(
        !f.waived.is_empty(),
        "the audited conv/experiment/hot-path waivers should appear in the tally"
    );
}

#[test]
fn workspace_json_is_byte_identical_across_runs() {
    let root = workspace_root();
    let a = gridagg_lint::render_json(&lint_tree(&root).expect("scan 1"));
    let b = gridagg_lint::render_json(&lint_tree(&root).expect("scan 2"));
    assert_eq!(a, b, "JSON findings must be deterministic");
    assert!(a.ends_with('\n'), "JSON artifact ends with a newline");
}

#[test]
fn workspace_fits_committed_budget() {
    // The ratchet: the committed per-rule waiver budget in
    // lint_budget.json must cover exactly the waivers in the tree.
    // Raising it is a reviewed diff; lowering it is encouraged.
    let root = workspace_root();
    let text = fs::read_to_string(root.join("lint_budget.json")).expect("read lint_budget.json");
    let budget = gridagg_lint::budget::parse_budget(&text).expect("parse lint_budget.json");
    let f = lint_tree(&root).expect("scan workspace");
    let check = gridagg_lint::budget::check(&budget, &f);
    assert!(
        check.ok(),
        "waivers exceed the committed budget:\n{}",
        gridagg_lint::budget::render_check(&check)
    );
}
