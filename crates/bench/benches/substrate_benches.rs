//! Criterion microbenchmarks for the substrate crates: the hot paths a
//! downstream user of the library would care about — aggregate merges,
//! vote-set operations, hierarchy addressing, placement, scope-index
//! construction, and the raw network loop.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use gridagg_aggregate::{Aggregate, Average, MeanVar, Tagged, VoteSet};
use gridagg_core::baselines::{LeaderDirectory, LeaderElectionConfig};
use gridagg_core::scope::ScopeIndex;
use gridagg_group::view::View;
use gridagg_hierarchy::{Addr, FairHashPlacement, Hierarchy, Placement, TopologicalPlacement};
use gridagg_simnet::loss::UniformLoss;
use gridagg_simnet::network::{NetworkConfig, SimNetwork};
use gridagg_simnet::rng::DetRng;
use gridagg_simnet::topology::{make_field, FieldKind};
use gridagg_simnet::NodeId;

fn aggregates(c: &mut Criterion) {
    let mut g = c.benchmark_group("aggregate_merge");
    g.bench_function("average_chain_1k", |b| {
        b.iter(|| {
            let mut acc = Average::from_vote(0.0);
            for i in 1..1000 {
                acc.merge(&Average::from_vote(black_box(i as f64)));
            }
            black_box(acc)
        });
    });
    g.bench_function("meanvar_chain_1k", |b| {
        b.iter(|| {
            let mut acc = MeanVar::from_vote(0.0);
            for i in 1..1000 {
                acc.merge(&MeanVar::from_vote(black_box(i as f64)));
            }
            black_box(acc)
        });
    });
    g.bench_function("tagged_merge_disjoint_256", |b| {
        b.iter(|| {
            let mut acc = Tagged::<Average>::empty(256);
            for i in 0..256 {
                acc.try_merge(&Tagged::from_vote(i, i as f64, 256)).unwrap();
            }
            black_box(acc)
        });
    });
    g.finish();
}

fn votesets(c: &mut Criterion) {
    let mut g = c.benchmark_group("voteset");
    g.bench_function("insert_4k", |b| {
        b.iter(|| {
            let mut s = VoteSet::new(4096);
            for i in 0..4096 {
                s.insert(black_box(i));
            }
            black_box(s)
        });
    });
    let a: VoteSet = (0..2048).collect();
    let bset: VoteSet = (2048..4096).collect();
    g.bench_function("disjoint_check_4k", |b| {
        b.iter(|| black_box(a.is_disjoint(black_box(&bset))));
    });
    g.bench_function("union_4k", |b| {
        b.iter(|| {
            let mut x = a.clone();
            x.union_with(black_box(&bset));
            black_box(x)
        });
    });
    g.finish();
}

fn hierarchy_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy");
    let h = Hierarchy::for_group(4, 4096).unwrap();
    g.bench_function("box_of_unit", |b| {
        let mut u = 0.0f64;
        b.iter(|| {
            u = (u + 0.618_034) % 1.0;
            black_box(h.box_of_unit(black_box(u)))
        });
    });
    let addr = h.box_at(37);
    g.bench_function("scope_chain", |b| {
        b.iter(|| {
            for phase in 1..=h.phases() {
                black_box(h.scope(black_box(&addr), phase));
            }
        });
    });
    let fair = FairHashPlacement::new(h, 7);
    g.bench_function("fair_hash_place", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            black_box(fair.place(NodeId(i % 4096)))
        });
    });
    g.finish();
}

fn placement_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("placement_and_index_build");
    g.sample_size(20);
    let h = Hierarchy::for_group(4, 1024).unwrap();
    let field = make_field(FieldKind::UniformRandom, 1024, &mut DetRng::seeded(1));
    g.bench_function("topological_placement_1k", |b| {
        b.iter(|| black_box(TopologicalPlacement::new(h, black_box(&field))));
    });
    let fair = FairHashPlacement::new(h, 7);
    let view = View::complete(1024);
    g.bench_function("scope_index_build_1k", |b| {
        b.iter(|| black_box(ScopeIndex::build(black_box(&view), &fair)));
    });
    let index = ScopeIndex::build(&view, &fair);
    g.bench_function("leader_directory_build_1k", |b| {
        let cfg = LeaderElectionConfig::default();
        b.iter(|| black_box(LeaderDirectory::build(black_box(&index), &cfg)));
    });
    g.finish();
}

fn network_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("simnet");
    g.bench_function("send_drain_10k_msgs", |b| {
        b.iter(|| {
            let cfg = NetworkConfig::default().with_loss(UniformLoss::new(0.25).unwrap());
            let mut net: SimNetwork<u64> = SimNetwork::new(cfg, 1);
            for round in 0..10u64 {
                let _ = black_box(net.drain(round));
                for i in 0..1000u32 {
                    net.send(round, NodeId(i), NodeId((i + 1) % 1000), round, 16);
                }
            }
            black_box(net.stats().sent)
        });
    });
    g.bench_function("sample_distinct_fanout2_of_200", |b| {
        let mut rng = DetRng::seeded(3);
        b.iter(|| black_box(rng.sample_distinct(200, Some(7), 2)));
    });
    g.finish();
}

fn addr_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("addr");
    g.bench_function("from_index_and_back", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 4096;
            let a = Addr::from_index(4, 6, black_box(i)).unwrap();
            black_box(a.index())
        });
    });
    let a = Addr::from_index(4, 6, 1234).unwrap();
    let p = a.prefix(3);
    g.bench_function("contains", |b| {
        b.iter(|| black_box(p.contains(black_box(&a))));
    });
    g.finish();
}

criterion_group!(
    benches,
    aggregates,
    votesets,
    hierarchy_ops,
    placement_build,
    network_loop,
    addr_ops
);
criterion_main!(benches);
