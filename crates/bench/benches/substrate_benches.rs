//! Microbenchmarks for the substrate crates: the hot paths a downstream
//! user of the library would care about — aggregate merges, vote-set
//! operations, hierarchy addressing, placement, scope-index
//! construction, and the raw network loop. Runs with `harness = false`
//! through the minimal timer in `gridagg_bench::time_it`.

use std::hint::black_box;

use gridagg_aggregate::{Aggregate, Average, MeanVar, Tagged, VoteSet};
use gridagg_bench::time_it;
use gridagg_core::baselines::{LeaderDirectory, LeaderElectionConfig};
use gridagg_core::scope::ScopeIndex;
use gridagg_group::view::View;
use gridagg_hierarchy::{Addr, FairHashPlacement, Hierarchy, Placement, TopologicalPlacement};
use gridagg_simnet::loss::UniformLoss;
use gridagg_simnet::network::{NetworkConfig, SimNetwork};
use gridagg_simnet::rng::DetRng;
use gridagg_simnet::topology::{make_field, FieldKind};
use gridagg_simnet::NodeId;

fn aggregates() {
    time_it("aggregate_merge", "average_chain_1k", || {
        let mut acc = Average::from_vote(0.0);
        for i in 1..1000 {
            acc.merge(&Average::from_vote(black_box(i as f64)));
        }
        black_box(acc);
    });
    time_it("aggregate_merge", "meanvar_chain_1k", || {
        let mut acc = MeanVar::from_vote(0.0);
        for i in 1..1000 {
            acc.merge(&MeanVar::from_vote(black_box(i as f64)));
        }
        black_box(acc);
    });
    time_it("aggregate_merge", "tagged_merge_disjoint_256", || {
        let mut acc = Tagged::<Average>::empty(256);
        for i in 0..256 {
            acc.try_merge(&Tagged::from_vote(i, i as f64, 256)).unwrap();
        }
        black_box(acc);
    });
}

fn votesets() {
    time_it("voteset", "insert_4k", || {
        let mut s = VoteSet::new(4096);
        for i in 0..4096 {
            s.insert(black_box(i));
        }
        black_box(s);
    });
    let a: VoteSet = (0..2048).collect();
    let bset: VoteSet = (2048..4096).collect();
    time_it("voteset", "disjoint_check_4k", || {
        black_box(a.is_disjoint(black_box(&bset)));
    });
    time_it("voteset", "union_4k", || {
        let mut x = a.clone();
        x.union_with(black_box(&bset));
        black_box(x);
    });
}

fn hierarchy_ops() {
    let h = Hierarchy::for_group(4, 4096).unwrap();
    let mut u = 0.0f64;
    time_it("hierarchy", "box_of_unit", || {
        u = (u + 0.618_034) % 1.0;
        black_box(h.box_of_unit(black_box(u)));
    });
    let addr = h.box_at(37);
    time_it("hierarchy", "scope_chain", || {
        for phase in 1..=h.phases() {
            black_box(h.scope(black_box(&addr), phase));
        }
    });
    let fair = FairHashPlacement::new(h, 7);
    let mut i = 0u32;
    time_it("hierarchy", "fair_hash_place", || {
        i = i.wrapping_add(1);
        black_box(fair.place(NodeId(i % 4096)));
    });
}

fn placement_build() {
    let h = Hierarchy::for_group(4, 1024).unwrap();
    let field = make_field(FieldKind::UniformRandom, 1024, &mut DetRng::seeded(1));
    time_it(
        "placement_and_index_build",
        "topological_placement_1k",
        || {
            black_box(TopologicalPlacement::new(h, black_box(&field)));
        },
    );
    let fair = FairHashPlacement::new(h, 7);
    let view = View::complete(1024);
    time_it("placement_and_index_build", "scope_index_build_1k", || {
        black_box(ScopeIndex::build(black_box(&view), &fair));
    });
    let index = ScopeIndex::build(&view, &fair);
    let cfg = LeaderElectionConfig::default();
    time_it(
        "placement_and_index_build",
        "leader_directory_build_1k",
        || {
            black_box(LeaderDirectory::build(black_box(&index), &cfg));
        },
    );
}

fn network_loop() {
    time_it("simnet", "send_drain_10k_msgs", || {
        let cfg = NetworkConfig::default().with_loss(UniformLoss::new(0.25).unwrap());
        let mut net: SimNetwork<u64> = SimNetwork::new(cfg, 1);
        for round in 0..10u64 {
            let _ = black_box(net.drain(round));
            for i in 0..1000u32 {
                net.send(round, NodeId(i), NodeId((i + 1) % 1000), round, 16);
            }
        }
        black_box(net.stats().sent);
    });
    let mut rng = DetRng::seeded(3);
    time_it("simnet", "sample_distinct_fanout2_of_200", || {
        black_box(rng.sample_distinct(200, Some(7), 2));
    });
}

fn addr_ops() {
    let mut i = 0u64;
    time_it("addr", "from_index_and_back", || {
        i = (i + 1) % 4096;
        let a = Addr::from_index(4, 6, black_box(i)).unwrap();
        black_box(a.index());
    });
    let a = Addr::from_index(4, 6, 1234).unwrap();
    let p = a.prefix(3);
    time_it("addr", "contains", || {
        black_box(p.contains(black_box(&a)));
    });
}

fn main() {
    aggregates();
    votesets();
    hierarchy_ops();
    placement_build();
    network_loop();
    addr_ops();
}
