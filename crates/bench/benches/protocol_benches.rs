//! Protocol benchmarks, one group per reproduced figure/table.
//!
//! Each benchmark times one representative simulation run (or analytic
//! evaluation) of the corresponding experiment, so `cargo bench` both
//! exercises every experiment path end-to-end and tracks the
//! simulator's performance over time. The full sweeps (many runs per
//! point) live in the `figNN` binaries. Runs with `harness = false`
//! through the minimal timer in `gridagg_bench::time_it`.

use std::hint::black_box;

use gridagg_aggregate::Average;
use gridagg_analysis::{c1_incompleteness, ci_lower_bound};
use gridagg_bench::time_it;
use gridagg_core::baselines::{CentralizedConfig, FloodConfig, LeaderElectionConfig};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::{
    run_centralized, run_flatgossip, run_flood, run_hiergossip, run_leader_election,
};

fn fig04_fig05_analytic() {
    for n in [1000u64, 4000] {
        time_it(
            "fig04_fig05_analytic_c1",
            &format!("c1_incompleteness/{n}"),
            || {
                black_box(c1_incompleteness(black_box(n), 2.0, 4.0));
            },
        );
    }
    time_it("fig04_fig05_analytic_c1", "ci_lower_bound", || {
        black_box(ci_lower_bound(black_box(2000.0), 2.0, 4.0));
    });
}

fn fig06_scalability() {
    for n in [200usize, 800] {
        let cfg = ExperimentConfig::paper_defaults().with_n(n);
        let mut seed = 0;
        time_it(
            "fig06_incompleteness_vs_n",
            &format!("hiergossip/{n}"),
            || {
                seed += 1;
                black_box(run_hiergossip::<Average>(&cfg, seed));
            },
        );
    }
}

fn fig07_loss() {
    for ucastl in [0.25f64, 0.7] {
        let cfg = ExperimentConfig::paper_defaults().with_ucastl(ucastl);
        let mut seed = 0;
        time_it(
            "fig07_incompleteness_vs_ucastl",
            &format!("hiergossip/{ucastl}"),
            || {
                seed += 1;
                black_box(run_hiergossip::<Average>(&cfg, seed));
            },
        );
    }
}

fn fig08_gossip_rate() {
    for rpp in [1u32, 5] {
        let cfg = ExperimentConfig::paper_defaults().with_rounds_per_phase(rpp);
        let mut seed = 0;
        time_it(
            "fig08_incompleteness_vs_rounds_per_phase",
            &format!("hiergossip/{rpp}"),
            || {
                seed += 1;
                black_box(run_hiergossip::<Average>(&cfg, seed));
            },
        );
    }
}

fn fig09_partition() {
    let cfg = ExperimentConfig::paper_defaults().with_partl(0.6);
    let mut seed = 0;
    time_it(
        "fig09_incompleteness_vs_partl",
        "hiergossip_partl_0.6",
        || {
            seed += 1;
            black_box(run_hiergossip::<Average>(&cfg, seed));
        },
    );
}

fn fig10_crashes() {
    let cfg = ExperimentConfig::paper_defaults().with_pf(0.008);
    let mut seed = 0;
    time_it("fig10_incompleteness_vs_pf", "hiergossip_pf_0.008", || {
        seed += 1;
        black_box(run_hiergossip::<Average>(&cfg, seed));
    });
}

fn fig11_bound() {
    let mut cfg = ExperimentConfig::paper_defaults()
        .with_n(300)
        .with_ucastl(0.0);
    cfg.pf = 0.0;
    cfg.round_factor = 1.4;
    let mut seed = 0;
    time_it("fig11_bound_check", "hiergossip_n300_c1.4", || {
        seed += 1;
        black_box(run_hiergossip::<Average>(&cfg, seed));
    });
}

fn complexity_table() {
    let n = 128usize;
    let mut cfg = ExperimentConfig::paper_defaults()
        .with_n(n)
        .with_ucastl(0.0);
    cfg.pf = 0.0;
    let mut seed = 0;
    time_it("complexity_table_protocols", "hiergossip", || {
        seed += 1;
        black_box(run_hiergossip::<Average>(&cfg, seed));
    });
    let mut seed = 0;
    time_it("complexity_table_protocols", "flood", || {
        seed += 1;
        black_box(run_flood::<Average>(&cfg, FloodConfig::default(), seed));
    });
    let mut seed = 0;
    time_it("complexity_table_protocols", "centralized", || {
        seed += 1;
        black_box(run_centralized::<Average>(
            &cfg,
            CentralizedConfig::for_group(n),
            seed,
        ));
    });
    let mut seed = 0;
    time_it("complexity_table_protocols", "leader_election", || {
        seed += 1;
        black_box(run_leader_election::<Average>(
            &cfg,
            LeaderElectionConfig::default(),
            seed,
        ));
    });
    let mut seed = 0;
    time_it("complexity_table_protocols", "flatgossip", || {
        seed += 1;
        black_box(run_flatgossip::<Average>(&cfg, seed));
    });
}

fn ablations() {
    let mut topo = ExperimentConfig::paper_defaults();
    topo.topo_aware = true;
    let mut seed = 0;
    time_it("ablations", "topo_aware_placement_run", || {
        seed += 1;
        black_box(run_hiergossip::<Average>(&topo, seed));
    });
    let mut push = ExperimentConfig::paper_defaults();
    push.batch_exchange = false;
    let mut seed = 0;
    time_it("ablations", "one_value_push_run", || {
        seed += 1;
        black_box(run_hiergossip::<Average>(&push, seed));
    });
}

fn main() {
    fig04_fig05_analytic();
    fig06_scalability();
    fig07_loss();
    fig08_gossip_rate();
    fig09_partition();
    fig10_crashes();
    fig11_bound();
    complexity_table();
    ablations();
}
