//! Criterion benchmarks, one group per reproduced figure/table.
//!
//! Each benchmark times one representative simulation run (or analytic
//! evaluation) of the corresponding experiment, so `cargo bench` both
//! exercises every experiment path end-to-end and tracks the
//! simulator's performance over time. The full sweeps (many runs per
//! point) live in the `figNN` binaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gridagg_aggregate::Average;
use gridagg_analysis::{c1_incompleteness, ci_lower_bound};
use gridagg_core::baselines::{CentralizedConfig, FloodConfig, LeaderElectionConfig};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::{
    run_centralized, run_flatgossip, run_flood, run_hiergossip, run_leader_election,
};

fn fig04_fig05_analytic(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig04_fig05_analytic_c1");
    for n in [1000u64, 4000] {
        g.bench_with_input(BenchmarkId::new("c1_incompleteness", n), &n, |b, &n| {
            b.iter(|| black_box(c1_incompleteness(black_box(n), 2.0, 4.0)));
        });
    }
    g.bench_function("ci_lower_bound", |b| {
        b.iter(|| black_box(ci_lower_bound(black_box(2000.0), 2.0, 4.0)));
    });
    g.finish();
}

fn fig06_scalability(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig06_incompleteness_vs_n");
    g.sample_size(10);
    for n in [200usize, 800] {
        let cfg = ExperimentConfig::paper_defaults().with_n(n);
        g.bench_with_input(BenchmarkId::new("hiergossip", n), &cfg, |b, cfg| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run_hiergossip::<Average>(cfg, seed))
            });
        });
    }
    g.finish();
}

fn fig07_loss(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig07_incompleteness_vs_ucastl");
    g.sample_size(10);
    for ucastl in [0.25f64, 0.7] {
        let cfg = ExperimentConfig::paper_defaults().with_ucastl(ucastl);
        g.bench_with_input(
            BenchmarkId::new("hiergossip", format!("{ucastl}")),
            &cfg,
            |b, cfg| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    black_box(run_hiergossip::<Average>(cfg, seed))
                });
            },
        );
    }
    g.finish();
}

fn fig08_gossip_rate(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig08_incompleteness_vs_rounds_per_phase");
    g.sample_size(10);
    for rpp in [1u32, 5] {
        let cfg = ExperimentConfig::paper_defaults().with_rounds_per_phase(rpp);
        g.bench_with_input(BenchmarkId::new("hiergossip", rpp), &cfg, |b, cfg| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run_hiergossip::<Average>(cfg, seed))
            });
        });
    }
    g.finish();
}

fn fig09_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_incompleteness_vs_partl");
    g.sample_size(10);
    let cfg = ExperimentConfig::paper_defaults().with_partl(0.6);
    g.bench_function("hiergossip_partl_0.6", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_hiergossip::<Average>(&cfg, seed))
        });
    });
    g.finish();
}

fn fig10_crashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_incompleteness_vs_pf");
    g.sample_size(10);
    let cfg = ExperimentConfig::paper_defaults().with_pf(0.008);
    g.bench_function("hiergossip_pf_0.008", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_hiergossip::<Average>(&cfg, seed))
        });
    });
    g.finish();
}

fn fig11_bound(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_bound_check");
    g.sample_size(10);
    let mut cfg = ExperimentConfig::paper_defaults()
        .with_n(300)
        .with_ucastl(0.0);
    cfg.pf = 0.0;
    cfg.round_factor = 1.4;
    g.bench_function("hiergossip_n300_c1.4", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_hiergossip::<Average>(&cfg, seed))
        });
    });
    g.finish();
}

fn complexity_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("complexity_table_protocols");
    g.sample_size(10);
    let n = 128usize;
    let mut cfg = ExperimentConfig::paper_defaults()
        .with_n(n)
        .with_ucastl(0.0);
    cfg.pf = 0.0;
    g.bench_function("hiergossip", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_hiergossip::<Average>(&cfg, seed))
        });
    });
    g.bench_function("flood", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_flood::<Average>(&cfg, FloodConfig::default(), seed))
        });
    });
    g.bench_function("centralized", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_centralized::<Average>(
                &cfg,
                CentralizedConfig::for_group(n),
                seed,
            ))
        });
    });
    g.bench_function("leader_election", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_leader_election::<Average>(
                &cfg,
                LeaderElectionConfig::default(),
                seed,
            ))
        });
    });
    g.bench_function("flatgossip", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_flatgossip::<Average>(&cfg, seed))
        });
    });
    g.finish();
}

fn ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    let mut topo = ExperimentConfig::paper_defaults();
    topo.topo_aware = true;
    g.bench_function("topo_aware_placement_run", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_hiergossip::<Average>(&topo, seed))
        });
    });
    let mut push = ExperimentConfig::paper_defaults();
    push.batch_exchange = false;
    g.bench_function("one_value_push_run", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(run_hiergossip::<Average>(&push, seed))
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    fig04_fig05_analytic,
    fig06_scalability,
    fig07_loss,
    fig08_gossip_rate,
    fig09_partition,
    fig10_crashes,
    fig11_bound,
    complexity_table,
    ablations
);
criterion_main!(benches);
