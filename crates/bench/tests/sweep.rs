//! Sweep executor integration: parallel execution must be
//! output-equivalent to serial execution on real protocol cells, and a
//! panicking cell must fail the whole sweep naming the cell.

use gridagg_bench::sweep::Sweep;
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::{run_flatgossip, run_hiergossip};
use gridagg_core::RunReport;

use gridagg_aggregate::Average;

fn protocol_cells() -> Sweep<RunReport> {
    let mut sweep = Sweep::new();
    for n in [64usize, 128] {
        let cfg = ExperimentConfig::paper_defaults().with_n(n);
        sweep.push_seeded(&format!("hier/n={n}"), 3, 50, move |seed| {
            run_hiergossip::<Average>(&cfg, seed)
        });
        sweep.push_seeded(&format!("flat/n={n}"), 2, 50, move |seed| {
            run_flatgossip::<Average>(&cfg, seed)
        });
    }
    sweep
}

#[test]
fn sweep_parallel_determinism() {
    // The whole point of the executor: results keyed by declaration
    // index, so jobs=4 is indistinguishable from jobs=1 — per-report,
    // field by field, float bits included.
    let serial = protocol_cells().run_with_jobs(1).expect("serial ok");
    let parallel = protocol_cells().run_with_jobs(4).expect("parallel ok");
    assert_eq!(serial.len(), parallel.len());
    for (i, (s, p)) in serial.iter().zip(&parallel).enumerate() {
        assert_eq!(s.rounds, p.rounds, "cell {i}: rounds");
        assert_eq!(s.net, p.net, "cell {i}: network stats");
        assert_eq!(s.outcomes, p.outcomes, "cell {i}: outcomes");
        assert_eq!(
            s.mean_completeness().unwrap_or(-1.0).to_bits(),
            p.mean_completeness().unwrap_or(-1.0).to_bits(),
            "cell {i}: completeness bits"
        );
    }
}

#[test]
fn panicking_protocol_cell_reports_its_id() {
    let mut sweep = protocol_cells();
    sweep.push("poison/n=0", || {
        // a deliberately broken cell: with_n(0) is rejected upstream,
        // simulate any cell-level panic
        panic!("simulated cell failure")
    });
    let err = sweep.run_with_jobs(4).expect_err("poisoned sweep fails");
    assert!(err.failures.iter().any(|(id, _)| id == "poison/n=0"));
    assert!(err.to_string().contains("simulated cell failure"));
}
