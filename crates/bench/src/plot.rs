//! Minimal SVG line plots — figures as visual artifacts, no plotting
//! dependency.
//!
//! Each `figNN` binary can emit `results/figNN.svg` next to its CSV:
//! log-scale y (incompleteness spans many decades, exactly like the
//! paper's figures), optional log-scale x, multiple labelled series.

/// A single curve.
#[derive(Debug, Clone)]
pub struct PlotSeries {
    /// Legend label.
    pub label: String,
    /// `(x, y)` points in data coordinates.
    pub points: Vec<(f64, f64)>,
}

/// Axis scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Base-10 logarithmic axis (non-positive values are clamped to the
    /// smallest positive value in the data, or 1e-12).
    Log,
}

/// Plot description.
#[derive(Debug, Clone)]
pub struct Plot {
    /// Title printed above the axes.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// X-axis scale.
    pub x_scale: Scale,
    /// Y-axis scale.
    pub y_scale: Scale,
    /// The curves.
    pub series: Vec<PlotSeries>,
}

const WIDTH: f64 = 640.0;
const HEIGHT: f64 = 420.0;
const MARGIN_L: f64 = 70.0;
const MARGIN_R: f64 = 20.0;
const MARGIN_T: f64 = 40.0;
const MARGIN_B: f64 = 50.0;
const COLORS: [&str; 6] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#17becf",
];

fn transform(v: f64, scale: Scale, floor: f64) -> f64 {
    match scale {
        Scale::Linear => v,
        Scale::Log => v.max(floor).log10(),
    }
}

impl Plot {
    /// Render the plot to an SVG string.
    ///
    /// Returns `None` when there is nothing to draw (no finite points).
    pub fn to_svg(&self) -> Option<String> {
        use std::fmt::Write as _;

        // smallest positive y for the log floor
        let floor = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.1))
            .filter(|&y| y > 0.0)
            .fold(f64::INFINITY, f64::min);
        let floor = if floor.is_finite() {
            floor / 2.0
        } else {
            1e-12
        };
        let xfloor = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|p| p.0))
            .filter(|&x| x > 0.0)
            .fold(f64::INFINITY, f64::min)
            .min(1.0);

        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter())
            .map(|&(x, y)| {
                (
                    transform(x, self.x_scale, xfloor),
                    transform(y, self.y_scale, floor),
                )
            })
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if pts.is_empty() {
            return None;
        }
        let (mut x0, mut x1) = pts
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), p| {
                (a.min(p.0), b.max(p.0))
            });
        let (mut y0, mut y1) = pts
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(a, b), p| {
                (a.min(p.1), b.max(p.1))
            });
        if (x1 - x0).abs() < 1e-12 {
            x0 -= 0.5;
            x1 += 0.5;
        }
        if (y1 - y0).abs() < 1e-12 {
            y0 -= 0.5;
            y1 += 0.5;
        }
        let pad_y = (y1 - y0) * 0.05;
        y0 -= pad_y;
        y1 += pad_y;

        let px = |x: f64| MARGIN_L + (x - x0) / (x1 - x0) * (WIDTH - MARGIN_L - MARGIN_R);
        let py = |y: f64| HEIGHT - MARGIN_B - (y - y0) / (y1 - y0) * (HEIGHT - MARGIN_T - MARGIN_B);

        let mut svg = String::new();
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}" font-family="sans-serif" font-size="12">"#
        );
        let _ = write!(
            svg,
            r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="22" text-anchor="middle" font-size="15">{}</text>"#,
            WIDTH / 2.0,
            xml_escape(&self.title)
        );
        // axes
        let _ = write!(
            svg,
            r#"<line x1="{l}" y1="{b}" x2="{r}" y2="{b}" stroke="black"/><line x1="{l}" y1="{t}" x2="{l}" y2="{b}" stroke="black"/>"#,
            l = MARGIN_L,
            r = WIDTH - MARGIN_R,
            t = MARGIN_T,
            b = HEIGHT - MARGIN_B
        );
        // ticks: 5 per axis
        for i in 0..=4 {
            let fx = x0 + (x1 - x0) * i as f64 / 4.0;
            let fy = y0 + (y1 - y0) * i as f64 / 4.0;
            let (lx, ly) = (px(fx), py(fy));
            let xv = match self.x_scale {
                Scale::Linear => format_tick(fx),
                Scale::Log => format!("1e{}", fx.round() as i64),
            };
            let yv = match self.y_scale {
                Scale::Linear => format_tick(fy),
                Scale::Log => format!("1e{}", fy.round() as i64),
            };
            let _ = write!(
                svg,
                r#"<line x1="{lx}" y1="{b}" x2="{lx}" y2="{b2}" stroke="black"/><text x="{lx}" y="{ty}" text-anchor="middle">{xv}</text>"#,
                b = HEIGHT - MARGIN_B,
                b2 = HEIGHT - MARGIN_B + 5.0,
                ty = HEIGHT - MARGIN_B + 18.0,
            );
            let _ = write!(
                svg,
                r#"<line x1="{l}" y1="{ly}" x2="{l2}" y2="{ly}" stroke="black"/><text x="{tx}" y="{typ}" text-anchor="end">{yv}</text>"#,
                l = MARGIN_L,
                l2 = MARGIN_L - 5.0,
                tx = MARGIN_L - 8.0,
                typ = ly + 4.0,
            );
        }
        // axis labels
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle">{}</text>"#,
            (MARGIN_L + WIDTH - MARGIN_R) / 2.0,
            HEIGHT - 12.0,
            xml_escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            (MARGIN_T + HEIGHT - MARGIN_B) / 2.0,
            (MARGIN_T + HEIGHT - MARGIN_B) / 2.0,
            xml_escape(&self.y_label)
        );
        // series
        for (si, s) in self.series.iter().enumerate() {
            let color = COLORS[si % COLORS.len()];
            let mut path = String::new();
            for (i, &(x, y)) in s.points.iter().enumerate() {
                let tx = transform(x, self.x_scale, xfloor);
                let ty = transform(y, self.y_scale, floor);
                let _ = write!(
                    path,
                    "{}{:.2},{:.2} ",
                    if i == 0 { "M" } else { "L" },
                    px(tx),
                    py(ty)
                );
            }
            let _ = write!(
                svg,
                r#"<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>"#
            );
            for &(x, y) in &s.points {
                let tx = transform(x, self.x_scale, xfloor);
                let ty = transform(y, self.y_scale, floor);
                let _ = write!(
                    svg,
                    r#"<circle cx="{:.2}" cy="{:.2}" r="3.5" fill="{color}"/>"#,
                    px(tx),
                    py(ty)
                );
            }
            // legend
            let ly = MARGIN_T + 8.0 + si as f64 * 18.0;
            let _ = write!(
                svg,
                r#"<rect x="{x}" y="{y}" width="14" height="4" fill="{color}"/><text x="{tx}" y="{ty}">{label}</text>"#,
                x = WIDTH - MARGIN_R - 170.0,
                y = ly,
                tx = WIDTH - MARGIN_R - 150.0,
                ty = ly + 6.0,
                label = xml_escape(&s.label)
            );
        }
        svg.push_str("</svg>");
        Some(svg)
    }

    /// Write the plot as `name` under the output directory.
    pub fn write(&self, name: &str) {
        if let Some(svg) = self.to_svg() {
            let path = crate::out_dir().join(name);
            match std::fs::write(&path, svg) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("could not write {}: {e}", path.display()),
            }
        }
    }
}

fn format_tick(v: f64) -> String {
    if v.abs() >= 1000.0 || (v.abs() < 0.01 && v != 0.0) {
        format!("{v:.1e}")
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.2}")
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plot() -> Plot {
        Plot {
            title: "test <plot>".into(),
            x_label: "N".into(),
            y_label: "incompleteness".into(),
            x_scale: Scale::Log,
            y_scale: Scale::Log,
            series: vec![
                PlotSeries {
                    label: "measured".into(),
                    points: vec![(200.0, 1e-2), (400.0, 1e-3), (800.0, 1e-4)],
                },
                PlotSeries {
                    label: "1/N".into(),
                    points: vec![(200.0, 5e-3), (400.0, 2.5e-3), (800.0, 1.25e-3)],
                },
            ],
        }
    }

    #[test]
    fn renders_valid_svg_skeleton() {
        let svg = plot().to_svg().expect("non-empty plot");
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<path").count(), 2, "one path per series");
        assert_eq!(svg.matches("<circle").count(), 6, "one marker per point");
        assert!(svg.contains("test &lt;plot&gt;"), "title XML-escaped");
        assert!(svg.contains("incompleteness"));
    }

    #[test]
    fn zero_values_survive_log_scale() {
        let mut p = plot();
        p.series[0].points.push((1600.0, 0.0));
        let svg = p.to_svg().expect("plot renders");
        assert!(
            !svg.contains("NaN") && !svg.contains("inf"),
            "no NaN/inf coords"
        );
    }

    #[test]
    fn empty_plot_returns_none() {
        let p = Plot {
            title: "empty".into(),
            x_label: String::new(),
            y_label: String::new(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            series: vec![],
        };
        assert!(p.to_svg().is_none());
    }

    #[test]
    fn linear_scale_single_point() {
        let p = Plot {
            title: "one".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            series: vec![PlotSeries {
                label: "s".into(),
                points: vec![(1.0, 2.0)],
            }],
        };
        let svg = p.to_svg().expect("renders");
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn tick_formatting() {
        assert_eq!(format_tick(200.0), "200");
        assert_eq!(format_tick(0.25), "0.25");
        assert!(format_tick(12345.0).contains('e'));
        assert!(format_tick(0.0001).contains('e'));
        assert_eq!(format_tick(0.0), "0");
    }
}
