//! # gridagg-bench
//!
//! The figure/table regeneration harness: one binary per figure of the
//! paper's evaluation (§7) plus the complexity table and ablations.
//! Shared helpers here: run-count control, aligned table printing, and
//! CSV output under `results/`.
//!
//! Every `figNN` binary prints the paper's series (x, incompleteness,
//! auxiliary columns) and writes `results/figNN.csv`. Absolute values
//! need not match the 2001 testbed; the *shapes* — directions, rough
//! factors, crossovers — are the reproduction target (see
//! EXPERIMENTS.md).
//!
//! Environment knobs:
//! * `GRIDAGG_RUNS` — runs per sweep point (default 40; figures in the
//!   paper average "several runs").
//! * `GRIDAGG_SEED` — base seed (default 2001).
//! * `GRIDAGG_OUT` — output directory for CSVs (default `results`).
//! * `GRIDAGG_JOBS` — sweep worker threads (default: all cores); the
//!   `--jobs N` flag takes precedence. See [`sweep`].

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
use std::fmt::Write as _;
use std::path::PathBuf;

pub mod plot;
pub mod sweep;

/// Runs per sweep point (`GRIDAGG_RUNS`, default 40).
pub fn runs() -> usize {
    std::env::var("GRIDAGG_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40)
}

/// Base seed (`GRIDAGG_SEED`, default 2001).
pub fn base_seed() -> u64 {
    std::env::var("GRIDAGG_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2001)
}

/// Output directory (`GRIDAGG_OUT`, default `results`), created on
/// demand.
///
/// # Panics
///
/// Panics if the directory cannot be created: results silently landing
/// nowhere is worse than a loud stop (a bench run whose CSVs vanish
/// looks identical to one that succeeded).
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("GRIDAGG_OUT").unwrap_or_else(|_| "results".to_string());
    let path = PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&path) {
        panic!(
            "gridagg-bench: cannot create output directory {}: {e}",
            path.display()
        );
    }
    path
}

/// Write a CSV under the output directory.
///
/// # Panics
///
/// Panics if the file cannot be written — bench output is the whole
/// point of a run, so an I/O failure must not be reduced to a log line.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let mut body = header.join(",");
    body.push('\n');
    for row in rows {
        body.push_str(&row.join(","));
        body.push('\n');
    }
    let path = out_dir().join(name);
    match std::fs::write(&path, body) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => panic!("gridagg-bench: could not write {}: {e}", path.display()),
    }
}

/// Serialize a value as pretty JSON under the output directory —
/// experiment configs are recorded next to their results so every CSV
/// is reproducible from its own provenance file.
///
/// # Panics
///
/// Panics if the file cannot be written (see [`write_csv`]).
pub fn write_json<T: gridagg_core::json::ToJson>(name: &str, value: &T) {
    let path = out_dir().join(name);
    let body = value.to_json().to_string_pretty();
    match std::fs::write(&path, body) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => panic!("gridagg-bench: could not write {}: {e}", path.display()),
    }
}

/// Time budget per benchmark in milliseconds (`GRIDAGG_BENCH_MS`,
/// default 300).
pub fn bench_budget_ms() -> u64 {
    std::env::var("GRIDAGG_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300u64)
}

/// Calibrated mean wall-clock time of `f`: one warm-up call sizes an
/// iteration count targeting `budget_ms` of work (capped at
/// `max_iters`), then the mean per-iteration duration and the number of
/// timed iterations are returned.
///
/// This is the core of [`time_it`], exposed separately so callers that
/// *record* timings (e.g. `bench_baseline`) can bound cost with a hard
/// iteration cap — pass [`runs()`] so `GRIDAGG_RUNS=2` keeps a CI smoke
/// run cheap — and format the result themselves.
pub fn time_mean(
    budget_ms: u64,
    max_iters: u32,
    mut f: impl FnMut(),
) -> (std::time::Duration, u32) {
    use std::time::{Duration, Instant};
    let start = Instant::now();
    f();
    let once = start.elapsed().max(Duration::from_nanos(50));
    let target = Duration::from_millis(budget_ms);
    let iters = (target.as_nanos() / once.as_nanos()).clamp(1, u128::from(max_iters.max(1))) as u32;
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (start.elapsed() / iters, iters)
}

/// Minimal timing harness used by the `benches/` targets (they run with
/// `harness = false`): one warm-up call calibrates an iteration count
/// targeting ~300ms of work, then the mean per-iteration time is
/// printed. `GRIDAGG_BENCH_MS` overrides the time budget per benchmark.
pub fn time_it(group: &str, name: &str, f: impl FnMut()) {
    let (per, iters) = time_mean(bench_budget_ms(), 1_000_000, f);
    println!("{group}/{name:<44} {per:>12?}  ({iters} iters)");
}

/// Format a float in compact scientific-ish notation for tables.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 0.01 && x.abs() < 10_000.0 {
        format!("{x:.4}")
    } else {
        format!("{x:.3e}")
    }
}

/// Print an aligned table with a title.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    let _ = writeln!(out, "{}", fmt_row(&header_cells, &widths));
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
    );
    for row in rows {
        let _ = writeln!(out, "{}", fmt_row(row, &widths));
    }
    println!("{out}");
}

/// Shape check helper: non-increasing series.
pub fn is_decreasing(values: &[f64]) -> bool {
    values.windows(2).all(|w| w[1] <= w[0])
}

/// Shape check helper tolerant of sampling noise: each step may exceed
/// its predecessor by at most 30% + epsilon, and the series must fall
/// clearly end to end.
pub fn is_decreasing_noisy(values: &[f64]) -> bool {
    if values.len() < 2 {
        return true;
    }
    let steps_ok = values.windows(2).all(|w| w[1] <= w[0] * 1.3 + 1e-6);
    let overall = values[values.len() - 1] <= values[0] * 0.5 + 1e-9;
    steps_ok && overall
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sci_formats() {
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(0.1234), "0.1234");
        assert!(sci(1.5e-7).contains('e'));
        assert!(sci(1.0e9).contains('e'));
    }

    #[test]
    fn decreasing_check() {
        assert!(is_decreasing(&[3.0, 2.0, 2.0, 0.0]));
        assert!(!is_decreasing(&[1.0, 2.0]));
        assert!(is_decreasing(&[]));
    }

    #[test]
    fn noisy_decreasing_check() {
        // small upward noise allowed
        assert!(is_decreasing_noisy(&[0.17, 0.066, 0.0054, 0.0057]));
        // clear end-to-end fall required
        assert!(!is_decreasing_noisy(&[0.01, 0.0099]));
        // large upward jump rejected
        assert!(!is_decreasing_noisy(&[0.1, 0.2, 0.001]));
        assert!(is_decreasing_noisy(&[1.0]));
    }

    #[test]
    fn defaults_without_env() {
        assert!(runs() > 0);
        let _ = base_seed();
    }
}
