//! Deterministic parallel sweep executor.
//!
//! Every experiment in this harness is a grid of independent cells —
//! one `(protocol, parameter point, seed)` simulation each, a pure
//! function of its inputs. [`Sweep`] fans those cells across a scoped
//! std-thread worker pool and merges the results **in declaration
//! order**, so the output of a sweep is byte-identical no matter how
//! many workers ran it (proven by the `sweep_parallel_determinism`
//! test and the CI `jobs=1` vs `jobs=4` diff gate). Threads are legal
//! here: `bench` is on the `gridagg-lint` D002 exemption list, because
//! nothing in this crate is protocol state — determinism is preserved
//! structurally, by keying every cell with a stable id and never
//! letting completion order reach the output.
//!
//! Failure handling is loud: a panicking cell fails the whole sweep,
//! and the [`SweepError`] names each failed cell id and its panic
//! message. Workers stop picking up new cells once a failure is
//! flagged (already-running cells finish).
//!
//! Worker count, in precedence order: a `--jobs N` / `--jobs=N`
//! command-line flag, the `GRIDAGG_JOBS` environment variable, then
//! [`std::thread::available_parallelism`]. See [`jobs`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// One failed cell: `(cell id, panic message)`.
pub type CellFailure = (String, String);

/// Error of a sweep in which at least one cell panicked.
///
/// Carries every failure observed before the sweep stopped (workers
/// stop claiming new cells after the first failure, so under parallel
/// execution this is not necessarily *all* cells that would fail).
#[derive(Debug)]
pub struct SweepError {
    /// The failed cells, in declaration order.
    pub failures: Vec<CellFailure>,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} sweep cell(s) failed:", self.failures.len())?;
        for (id, msg) in &self.failures {
            write!(f, "\n  {id}: {msg}")?;
        }
        Ok(())
    }
}

impl std::error::Error for SweepError {}

struct Cell<T> {
    id: String,
    task: Box<dyn FnOnce() -> T + Send>,
}

/// A batch of independent cells, executed by [`Sweep::run`] with
/// results returned in declaration order.
#[derive(Default)]
pub struct Sweep<T> {
    cells: Vec<Cell<T>>,
}

impl<T: Send> Sweep<T> {
    /// An empty sweep.
    pub fn new() -> Self {
        Sweep { cells: Vec::new() }
    }

    /// Number of queued cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cells are queued.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Queue one cell. `id` is the stable identity used in error
    /// reports — make it name the cell's inputs (`"fig07/loss=0.5"`),
    /// not its position.
    pub fn push(&mut self, id: impl Into<String>, task: impl FnOnce() -> T + Send + 'static) {
        self.cells.push(Cell {
            id: id.into(),
            task: Box::new(task),
        });
    }

    /// Queue `runs` cells running `f(seed)` for seeds `base_seed..`,
    /// one cell per seed — the common "several runs per point" shape.
    /// After [`Sweep::run`], `results.chunks(runs)` recovers the
    /// per-point report slices in declaration order.
    pub fn push_seeded<F>(&mut self, label: &str, runs: usize, base_seed: u64, f: F)
    where
        F: Fn(u64) -> T + Send + Clone + 'static,
    {
        for i in 0..runs {
            let seed = base_seed + i as u64;
            let f = f.clone();
            self.push(format!("{label}/seed={seed}"), move || f(seed));
        }
    }

    /// Execute every cell with [`jobs`] workers and return the results
    /// in declaration order.
    ///
    /// # Errors
    ///
    /// Returns a [`SweepError`] naming each panicked cell.
    pub fn run(self) -> Result<Vec<T>, SweepError> {
        let jobs = jobs();
        self.run_with_jobs(jobs)
    }

    /// [`Sweep::run`], but on failure print the error (prefixed with
    /// the binary name) and exit with status 1 — the shared main-path
    /// error handling of the figure and ablation binaries.
    pub fn run_or_exit(self, binary: &str) -> Vec<T> {
        self.run().unwrap_or_else(|e| {
            eprintln!("{binary}: {e}");
            std::process::exit(1);
        })
    }

    /// Execute every cell with an explicit worker count (`<= 1` runs
    /// serially on the calling thread). Results are in declaration
    /// order regardless of `jobs` — the cell → result mapping is by
    /// index, never by completion order.
    ///
    /// # Errors
    ///
    /// Returns a [`SweepError`] naming each panicked cell.
    pub fn run_with_jobs(self, jobs: usize) -> Result<Vec<T>, SweepError> {
        let n = self.cells.len();
        if jobs <= 1 || n <= 1 {
            // serial fast path: same catch-unwind semantics, no pool
            let mut results = Vec::with_capacity(n);
            let mut failures = Vec::new();
            for cell in self.cells {
                match catch_unwind(AssertUnwindSafe(cell.task)) {
                    Ok(v) => results.push(v),
                    Err(p) => failures.push((cell.id, panic_message(&*p))),
                }
            }
            return if failures.is_empty() {
                Ok(results)
            } else {
                Err(SweepError { failures })
            };
        }

        // Each slot is claimed by exactly one worker via the shared
        // cursor; the mutexes are uncontended and only exist to hand
        // tasks out and results back across the scope safely.
        let slots: Vec<Mutex<Option<Cell<T>>>> = self
            .cells
            .into_iter()
            .map(|c| Mutex::new(Some(c)))
            .collect();
        let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let failures: Mutex<Vec<(usize, CellFailure)>> = Mutex::new(Vec::new());
        let cursor = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);

        std::thread::scope(|scope| {
            for _ in 0..jobs.min(n) {
                scope.spawn(|| loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let cell = slots[i]
                        .lock()
                        .expect("sweep slot lock")
                        .take()
                        .expect("each slot claimed once");
                    match catch_unwind(AssertUnwindSafe(cell.task)) {
                        Ok(v) => *results[i].lock().expect("sweep result lock") = Some(v),
                        Err(p) => {
                            failures
                                .lock()
                                .expect("sweep failure lock")
                                .push((i, (cell.id, panic_message(&*p))));
                            failed.store(true, Ordering::Relaxed);
                        }
                    }
                });
            }
        });

        let mut failures = failures.into_inner().expect("sweep failure lock");
        if failures.is_empty() {
            Ok(results
                .into_iter()
                .map(|r| {
                    r.into_inner()
                        .expect("sweep result lock")
                        .expect("every cell completed")
                })
                .collect())
        } else {
            failures.sort_by_key(|(i, _)| *i);
            Err(SweepError {
                failures: failures.into_iter().map(|(_, f)| f).collect(),
            })
        }
    }
}

/// Extract a readable message from a panic payload.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The sweep worker count: `--jobs N` / `--jobs=N` on the command
/// line, else the `GRIDAGG_JOBS` environment variable, else
/// [`std::thread::available_parallelism`]. Always at least 1.
pub fn jobs() -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        let value = if a == "--jobs" {
            args.next()
        } else {
            a.strip_prefix("--jobs=").map(str::to_string)
        };
        if let Some(n) = value.and_then(|v| v.trim().parse::<usize>().ok()) {
            return n.max(1);
        }
    }
    if let Some(n) = std::env::var("GRIDAGG_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        return n.max(1);
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// In-run engine thread count: `--engine-jobs N` / `--engine-jobs=N`
/// on the command line, else the `GRIDAGG_ENGINE_JOBS` environment
/// variable, else 1 (serial round loop).
///
/// Composes with the sweep executor so cells × engine threads never
/// oversubscribe: when the sweep itself runs cells concurrently
/// (`sweep_jobs > 1`), an *environment-derived* engine thread count is
/// capped at `cores / sweep_jobs`. An explicit `--engine-jobs` flag is
/// taken at face value — measurement runs (e.g. the wall-clock threads
/// ladder) must be able to pin exact thread counts.
///
/// Results are byte-identical at any value either way; this only
/// affects wall-clock.
pub fn engine_jobs(sweep_jobs: usize) -> usize {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        let value = if a == "--engine-jobs" {
            args.next()
        } else {
            a.strip_prefix("--engine-jobs=").map(str::to_string)
        };
        if let Some(n) = value.and_then(|v| v.trim().parse::<usize>().ok()) {
            return n.max(1);
        }
    }
    let requested = std::env::var("GRIDAGG_ENGINE_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(1)
        .max(1);
    if sweep_jobs <= 1 {
        return requested;
    }
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    requested.min((cores / sweep_jobs).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sweep_is_ok() {
        let sweep: Sweep<u32> = Sweep::new();
        assert!(sweep.is_empty());
        assert_eq!(sweep.run_with_jobs(4).expect("empty ok"), Vec::<u32>::new());
    }

    #[test]
    fn results_in_declaration_order_any_jobs() {
        for jobs in [1usize, 2, 4, 8] {
            let mut sweep = Sweep::new();
            for i in 0..32u64 {
                // vary per-cell work so completion order scrambles
                sweep.push(format!("cell-{i}"), move || {
                    let spins = (31 - i) * 1000;
                    let mut acc = i;
                    for s in 0..spins {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(s);
                    }
                    std::hint::black_box(acc);
                    i
                });
            }
            let got = sweep.run_with_jobs(jobs).expect("no panics");
            assert_eq!(got, (0..32).collect::<Vec<u64>>(), "jobs={jobs}");
        }
    }

    #[test]
    fn push_seeded_enumerates_seeds() {
        let mut sweep = Sweep::new();
        sweep.push_seeded("point", 5, 100, |seed| seed);
        assert_eq!(sweep.len(), 5);
        assert_eq!(
            sweep.run_with_jobs(2).expect("ok"),
            vec![100, 101, 102, 103, 104]
        );
    }

    #[test]
    fn panicking_cell_fails_sweep_with_id() {
        for jobs in [1usize, 4] {
            let mut sweep = Sweep::new();
            sweep.push("fine/seed=1", || 1u32);
            sweep.push("broken/seed=2", || panic!("boom at seed 2"));
            sweep.push("fine/seed=3", || 3u32);
            let err = sweep.run_with_jobs(jobs).expect_err("must fail");
            assert!(
                err.failures.iter().any(|(id, _)| id == "broken/seed=2"),
                "jobs={jobs}: failure must carry the cell id, got {err}"
            );
            let msg = err.to_string();
            assert!(msg.contains("broken/seed=2") && msg.contains("boom at seed 2"));
        }
    }

    #[test]
    fn jobs_is_at_least_one() {
        assert!(jobs() >= 1);
    }
}
