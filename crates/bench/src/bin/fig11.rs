//! Figure 11 — Scalability 2: incompleteness bounded by 1/N.
//!
//! Paper: `C = 1.4, ucastl = pf = 0` (so `b ≈ 1.0`); although Theorem 1's
//! conditions do not hold, measured incompleteness "falls with N, and is
//! upper bounded by 1/N".

use gridagg_aggregate::Average;
use gridagg_bench::plot::{Plot, PlotSeries, Scale};
use gridagg_bench::sweep::Sweep;
use gridagg_bench::{base_seed, print_table, runs, sci, write_csv};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::run_hiergossip;
use gridagg_core::summarize;

fn main() {
    let ns = [300usize, 400, 500, 600];
    let mut sweep = Sweep::new();
    for (i, &n) in ns.iter().enumerate() {
        let mut cfg = ExperimentConfig::paper_defaults()
            .with_n(n)
            .with_ucastl(0.0);
        cfg.pf = 0.0;
        cfg.round_factor = 1.4;
        let base = base_seed() + (i as u64) * 10_000;
        sweep.push_seeded(&format!("fig11/n={n}"), runs(), base, move |seed| {
            run_hiergossip::<Average>(&cfg, seed)
        });
    }
    let reports = sweep.run_or_exit("fig11");
    let mut rows = Vec::new();
    let mut series = Vec::new();
    let mut ok = true;
    for (&n, point) in ns.iter().zip(reports.chunks(runs())) {
        let s = summarize(point);
        let bound = 1.0 / n as f64;
        series.push(s.mean_incompleteness);
        ok &= s.mean_incompleteness <= bound;
        rows.push(vec![
            n.to_string(),
            sci(s.mean_incompleteness),
            sci(bound),
            (s.mean_incompleteness <= bound).to_string(),
            s.runs.to_string(),
        ]);
    }
    print_table(
        "Figure 11: incompleteness vs N at C=1.4, ucastl=pf=0, vs 1/N bound",
        &["N", "incompleteness", "1/N bound", "below bound", "runs"],
        &rows,
    );
    write_csv(
        "fig11.csv",
        &["n", "incompleteness", "bound", "below_bound", "runs"],
        &rows,
    );
    Plot {
        title: "Figure 11: incompleteness vs N at C=1.4, no loss".into(),
        x_label: "group size N".into(),
        y_label: "incompleteness".into(),
        x_scale: Scale::Linear,
        y_scale: Scale::Log,
        series: vec![
            PlotSeries {
                label: "measured".into(),
                points: ns
                    .iter()
                    .zip(&series)
                    .map(|(&n, &y)| (n as f64, y))
                    .collect(),
            },
            PlotSeries {
                label: "1/N bound".into(),
                points: ns.iter().map(|&n| (n as f64, 1.0 / n as f64)).collect(),
            },
        ],
    }
    .write("fig11.svg");
    assert!(ok, "incompleteness must stay below the 1/N bound");
    println!("shape check: incompleteness <= 1/N at every N = true");
}
