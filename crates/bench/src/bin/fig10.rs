//! Figure 10 — Fault-tolerance 3: member crash rate.
//!
//! Paper: "The protocol's incompleteness falls very quickly (faster than
//! exponential) with falling member failure rate." `pf` sweeps 0.008
//! down to 0.002 per round, N = 200.

use gridagg_aggregate::Average;
use gridagg_bench::plot::{Plot, PlotSeries, Scale};
use gridagg_bench::sweep::Sweep;
use gridagg_bench::{base_seed, is_decreasing_noisy, print_table, runs, sci, write_csv};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::run_hiergossip;
use gridagg_core::summarize;

fn main() {
    let pfs = [0.008f64, 0.006, 0.004, 0.002, 0.001];
    let mut sweep = Sweep::new();
    for (i, &pf) in pfs.iter().enumerate() {
        let cfg = ExperimentConfig::paper_defaults().with_pf(pf);
        let base = base_seed() + (i as u64) * 10_000;
        sweep.push_seeded(&format!("fig10/pf={pf}"), runs(), base, move |seed| {
            run_hiergossip::<Average>(&cfg, seed)
        });
    }
    let reports = sweep.run_or_exit("fig10");
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (&pf, point) in pfs.iter().zip(reports.chunks(runs())) {
        let s = summarize(point);
        series.push(s.mean_incompleteness);
        rows.push(vec![
            format!("{pf}"),
            sci(s.mean_incompleteness),
            sci(s.std_incompleteness),
            format!("{:.3}", s.mean_crashed),
            s.runs.to_string(),
        ]);
    }
    print_table(
        "Figure 10: incompleteness vs member failure rate pf (N=200)",
        &["pf", "incompleteness", "std", "crashed frac", "runs"],
        &rows,
    );
    write_csv(
        "fig10.csv",
        &["pf", "incompleteness", "std", "crashed_frac", "runs"],
        &rows,
    );
    Plot {
        title: "Figure 10: incompleteness vs member failure rate".into(),
        x_label: "per-round crash probability pf".into(),
        y_label: "incompleteness".into(),
        x_scale: Scale::Linear,
        y_scale: Scale::Log,
        series: vec![PlotSeries {
            label: "N=200".into(),
            points: pfs.iter().zip(&series).map(|(&x, &y)| (x, y)).collect(),
        }],
    }
    .write("fig10.svg");
    gridagg_bench::write_json("fig10.config.json", &ExperimentConfig::paper_defaults());
    // Where crashes land is the dominant noise source in this figure,
    // so per-point monotonicity only emerges with enough runs. The
    // always-on check compares the sweep's ends averaged over two
    // points each, which stays stable down to the CI smoke's
    // GRIDAGG_RUNS=4; the strict noisy-monotone check still gates the
    // full-size run.
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (high_pf, low_pf) = (mean(&series[..2]), mean(&series[series.len() - 2..]));
    assert!(
        high_pf >= low_pf,
        "incompleteness must not rise as pf falls: high-pf end {high_pf} < low-pf end {low_pf} ({series:?})"
    );
    if runs() >= 8 {
        assert!(
            is_decreasing_noisy(&series),
            "incompleteness must fall with pf: {series:?}"
        );
        println!("shape check: monotone fall with pf = true");
    } else {
        println!(
            "shape check: endpoint fall with pf = true (strict monotone needs GRIDAGG_RUNS >= 8)"
        );
    }
}
