//! Figure 6 — Scalability 1: incompleteness vs group size N.
//!
//! Paper: "Even at low gossip rates (where Theorem 1 does not apply),
//! the protocol's completeness scales well at high values of group size
//! N." Defaults: `ucastl=0.25, pf=0.001, K=4, M=2, C=1.0`; N doubles
//! from 200 to 3200.

use gridagg_aggregate::Average;
use gridagg_bench::plot::{Plot, PlotSeries, Scale};
use gridagg_bench::sweep::Sweep;
use gridagg_bench::{base_seed, print_table, runs, sci, write_csv};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::run_hiergossip;
use gridagg_core::summarize;

fn main() {
    let ns = [200usize, 400, 800, 1600, 3200];
    let mut sweep = Sweep::new();
    for (i, &n) in ns.iter().enumerate() {
        let cfg = ExperimentConfig::paper_defaults().with_n(n);
        let base = base_seed() + (i as u64) * 10_000;
        sweep.push_seeded(&format!("fig06/n={n}"), runs(), base, move |seed| {
            run_hiergossip::<Average>(&cfg, seed)
        });
    }
    let reports = sweep.run_or_exit("fig06");
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (&n, point) in ns.iter().zip(reports.chunks(runs())) {
        let s = summarize(point);
        series.push(s.mean_incompleteness);
        rows.push(vec![
            n.to_string(),
            sci(s.mean_incompleteness),
            sci(s.std_incompleteness),
            format!("{:.0}", s.mean_messages),
            format!("{:.1}", s.mean_rounds),
            s.runs.to_string(),
        ]);
    }
    print_table(
        "Figure 6: incompleteness vs N (K=4, M=2, ucastl=0.25, pf=0.001)",
        &["N", "incompleteness", "std", "messages", "rounds", "runs"],
        &rows,
    );
    write_csv(
        "fig06.csv",
        &["n", "incompleteness", "std", "messages", "rounds", "runs"],
        &rows,
    );
    Plot {
        title: "Figure 6: incompleteness vs group size N".into(),
        x_label: "group size N".into(),
        y_label: "incompleteness".into(),
        x_scale: Scale::Log,
        y_scale: Scale::Log,
        series: vec![PlotSeries {
            label: "K=4, M=2".into(),
            points: ns
                .iter()
                .zip(&series)
                .map(|(&n, &y)| (n as f64, y))
                .collect(),
        }],
    }
    .write("fig06.svg");
    gridagg_bench::write_json("fig06.config.json", &ExperimentConfig::paper_defaults());
    // paper's claim: completeness does not degrade as N grows into the
    // thousands (it improves slightly)
    let first = series.first().copied().unwrap_or(0.0);
    let last = series.last().copied().unwrap_or(0.0);
    println!(
        "shape check: incompleteness at N=3200 ({}) <= 2x incompleteness at N=200 ({}) = {}",
        sci(last),
        sci(first),
        last <= 2.0 * first.max(1e-9)
    );
}
