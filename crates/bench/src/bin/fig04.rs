//! Figure 4 — first-phase completeness vs group size.
//!
//! Paper: "-log(1 − C1(N, K, b)) varies linearly with log(N)" at
//! `K = 2, b = 4`, with the `1/N` line as the pessimistic reference
//! (Postulate 1: `C1 ≥ 1 − 1/N`).
//!
//! The paper evaluates `C1` by simulation-plus-reasoning; we compute the
//! binomial-over-box-occupancy expression exactly (in log space) from
//! `gridagg-analysis`, and print the paper's reference line alongside.

use gridagg_analysis::{c1_incompleteness, theorem1_bound};
use gridagg_bench::plot::{Plot, PlotSeries, Scale};
use gridagg_bench::{is_decreasing, print_table, sci, write_csv};

fn main() {
    let k = 2.0;
    let b = 4.0;
    let ns = [1000u64, 2000, 4000, 8000];
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for &n in &ns {
        let inc = c1_incompleteness(n, k, b);
        let reference = 1.0 - theorem1_bound(n as f64); // 1/N
        series.push(inc);
        rows.push(vec![
            n.to_string(),
            sci(inc),
            sci(-(inc.max(f64::MIN_POSITIVE)).ln()),
            sci(reference),
        ]);
    }
    print_table(
        "Figure 4: 1-C1(N, K=2, b=4) vs N (analytic), with 1/N reference",
        &["N", "1-C1", "-ln(1-C1)", "1/N (ref)"],
        &rows,
    );
    write_csv(
        "fig04.csv",
        &["n", "incompleteness", "neglog", "ref_1_over_n"],
        &rows,
    );
    Plot {
        title: "Figure 4: first-phase incompleteness vs N (K=2, b=4)".into(),
        x_label: "group size N".into(),
        y_label: "1 - C1".into(),
        x_scale: Scale::Log,
        y_scale: Scale::Log,
        series: vec![
            PlotSeries {
                label: "analytic 1-C1".into(),
                points: ns
                    .iter()
                    .zip(&series)
                    .map(|(&n, &y)| (n as f64, y))
                    .collect(),
            },
            PlotSeries {
                label: "1/N reference".into(),
                points: ns.iter().map(|&n| (n as f64, 1.0 / n as f64)).collect(),
            },
        ],
    }
    .write("fig04.svg");

    assert!(is_decreasing(&series), "incompleteness must fall with N");
    let below_ref = series
        .iter()
        .zip(&ns)
        .all(|(inc, &n)| *inc <= 1.0 / n as f64);
    println!(
        "shape check: decreasing in N = true; below 1/N reference = {below_ref} (Postulate 1)"
    );
}
