//! `run_all` — regenerate the entire evaluation in one command.
//!
//! Invokes every figure, the complexity table, and every ablation,
//! honouring the same `GRIDAGG_RUNS` / `GRIDAGG_SEED` / `GRIDAGG_OUT`
//! environment knobs. Equivalent to running each `figNN` /
//! `ablation_*` binary, for CI and EXPERIMENTS.md refreshes:
//!
//! ```console
//! $ GRIDAGG_RUNS=40 cargo run --release -p gridagg-bench --bin run_all
//! ```
//!
//! Sub-binaries run concurrently on the sweep worker pool (`--jobs` /
//! `GRIDAGG_JOBS`); their output is captured and replayed in
//! declaration order, so the console transcript is identical however
//! many workers ran. When more than one worker is active, children are
//! pinned to `GRIDAGG_JOBS=1` — the parallelism budget is spent here,
//! across binaries, not inside each one. Binaries that fail are
//! reported together at the end and make `run_all` exit non-zero.

use std::io::Write as _;
use std::process::Command;

use gridagg_bench::sweep::{jobs, Sweep};

const BINARIES: &[&str] = &[
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "complexity",
    "ablation_leader",
    "ablation_topo",
    "ablation_bump",
    "ablation_views",
    "ablation_nestimate",
    "ablation_delay",
    "ablation_fanout",
    "ablation_k",
    "phase_profile",
    "churn",
];

fn main() {
    // run sibling binaries from the same build directory so `run_all`
    // works both via `cargo run` and from a plain target/ directory
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("binary directory").to_path_buf();
    let jobs = jobs();

    let mut sweep = Sweep::new();
    for bin in BINARIES {
        let path = dir.join(bin);
        sweep.push(*bin, move || {
            let mut cmd = Command::new(&path);
            if jobs > 1 {
                cmd.env("GRIDAGG_JOBS", "1");
            }
            cmd.output()
        });
    }
    let outputs = sweep.run_or_exit("run_all");

    let mut failures = Vec::new();
    for (bin, result) in BINARIES.iter().zip(outputs) {
        println!("\n########## {bin} ##########");
        match result {
            Ok(out) => {
                std::io::stdout()
                    .write_all(&out.stdout)
                    .expect("replay stdout");
                std::io::stderr()
                    .write_all(&out.stderr)
                    .expect("replay stderr");
                if !out.status.success() {
                    eprintln!("{bin} exited with {}", out.status);
                    failures.push(*bin);
                }
            }
            Err(e) => {
                eprintln!(
                    "could not run {} ({e}); build it first with `cargo build --release -p gridagg-bench`",
                    dir.join(bin).display()
                );
                failures.push(*bin);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiment binaries completed", BINARIES.len());
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
