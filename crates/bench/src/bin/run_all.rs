//! `run_all` — regenerate the entire evaluation in one command.
//!
//! Invokes every figure, the complexity table, and every ablation in
//! sequence (in-process, not by spawning binaries), honouring the same
//! `GRIDAGG_RUNS` / `GRIDAGG_SEED` / `GRIDAGG_OUT` environment knobs.
//! Equivalent to running each `figNN` / `ablation_*` binary, for CI and
//! EXPERIMENTS.md refreshes:
//!
//! ```console
//! $ GRIDAGG_RUNS=40 cargo run --release -p gridagg-bench --bin run_all
//! ```

use std::process::Command;

const BINARIES: &[&str] = &[
    "fig04",
    "fig05",
    "fig06",
    "fig07",
    "fig08",
    "fig09",
    "fig10",
    "fig11",
    "complexity",
    "ablation_leader",
    "ablation_topo",
    "ablation_bump",
    "ablation_views",
    "ablation_nestimate",
    "ablation_delay",
    "ablation_fanout",
    "ablation_k",
    "phase_profile",
];

fn main() {
    // run sibling binaries from the same build directory so `run_all`
    // works both via `cargo run` and from a plain target/ directory
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("binary directory");
    let mut failures = Vec::new();
    for bin in BINARIES {
        println!("\n########## {bin} ##########");
        let path = dir.join(bin);
        let status = Command::new(&path).status();
        match status {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("{bin} exited with {s}");
                failures.push(*bin);
            }
            Err(e) => {
                eprintln!("could not run {} ({e}); build it first with `cargo build --release -p gridagg-bench`", path.display());
                failures.push(*bin);
            }
        }
    }
    if failures.is_empty() {
        println!("\nall {} experiment binaries completed", BINARIES.len());
    } else {
        eprintln!("\nfailed: {failures:?}");
        std::process::exit(1);
    }
}
