//! Phase profile — where does incompleteness come from?
//!
//! Drives the engine loop manually to keep the per-member [`PhaseTrace`]
//! instrumentation, then reports, per phase: how many members finished
//! it missing components, the mean votes covered, and the phase-end
//! round distribution. This is the diagnostic that motivated the
//! reactive-reply exchange (DESIGN.md §6).
//!
//! [`PhaseTrace`]: gridagg_core::hiergossip::PhaseTrace

use gridagg_aggregate::Average;
use gridagg_bench::{base_seed, print_table, sci, write_csv};
use gridagg_core::hiergossip::{HierGossip, HierGossipConfig};
use gridagg_core::protocol::{AggregationProtocol, Ctx, Outbox};
use gridagg_core::scope::ScopeIndex;
use gridagg_core::Payload;
use gridagg_group::view::View;
use gridagg_group::{GroupBuilder, MemberId, VoteDistribution};
use gridagg_hierarchy::{FairHashPlacement, Hierarchy};
use gridagg_simnet::loss::UniformLoss;
use gridagg_simnet::network::{NetworkConfig, SimNetwork};
use gridagg_simnet::rng::DetRng;

fn main() {
    let n = 200usize;
    let seed = base_seed();
    let group = GroupBuilder::new(n)
        .votes(VoteDistribution::Index)
        .seed(seed)
        .build();
    let h = Hierarchy::for_group(4, n).unwrap();
    let index = ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, seed));
    let mut protos: Vec<HierGossip<Average>> = group
        .members()
        .iter()
        .map(|m| HierGossip::new(m.id, m.vote, index.clone(), HierGossipConfig::default()))
        .collect();
    let mut net: SimNetwork<Payload<Average>> = SimNetwork::new(
        NetworkConfig::default().with_loss(UniformLoss::new(0.25).expect("valid")),
        seed,
    );
    let root = DetRng::seeded(seed).fork(0x6D62_7273);
    let mut rngs: Vec<DetRng> = (0..n).map(|i| root.fork(i as u64)).collect();
    let mut out = Outbox::new();
    for round in 0..500u64 {
        for env in net.drain(round) {
            let to = env.to.index();
            let mut ctx = Ctx::new(round, &mut rngs[to]);
            protos[to].on_message(env.from, env.payload, &mut ctx, &mut out);
            for (t, p) in out.drain() {
                let b = p.wire_size();
                net.send(round, env.to, t, p, b);
            }
        }
        let mut live = false;
        for (i, proto) in protos.iter_mut().enumerate() {
            if proto.is_done() {
                continue;
            }
            live = true;
            let mut ctx = Ctx::new(round, &mut rngs[i]);
            proto.on_round(&mut ctx, &mut out);
            let me = MemberId(i as u32);
            for (t, p) in out.drain() {
                let b = p.wire_size();
                net.send(round, me, t, p, b);
            }
        }
        if !live {
            break;
        }
    }

    let phases = h.phases();
    let mut rows = Vec::new();
    for ph in 1..=phases {
        let (mut total, mut incomplete, mut missing, mut votes, mut last) = (0, 0, 0, 0usize, 0);
        for p in &protos {
            for t in &p.trace {
                if t.phase == ph {
                    total += 1;
                    if t.known < t.expected {
                        incomplete += 1;
                        missing += t.expected - t.known;
                    }
                    votes += t.votes;
                    last = last.max(t.at);
                }
            }
        }
        rows.push(vec![
            ph.to_string(),
            format!("{incomplete}/{total}"),
            missing.to_string(),
            format!("{:.1}", votes as f64 / total.max(1) as f64),
            last.to_string(),
        ]);
    }
    print_table(
        "Phase profile (N=200, ucastl=0.25): component losses by phase",
        &[
            "phase",
            "members short",
            "missing components",
            "mean votes",
            "last finish",
        ],
        &rows,
    );
    write_csv(
        "phase_profile.csv",
        &[
            "phase",
            "members_short",
            "missing_components",
            "mean_votes",
            "last_finish",
        ],
        &rows,
    );
    let mean_c: f64 = protos
        .iter()
        .filter_map(|p| p.estimate().map(|e| e.completeness(n)))
        .sum::<f64>()
        / n as f64;
    println!("final mean completeness: {}", sci(mean_c));
}
