//! Ablation §2 — partial membership views.
//!
//! "We assume henceforth that all members know about each other,
//! although this can be relaxed in our final hierarchical gossiping
//! solution." This sweep quantifies the relaxation: each member knows
//! only a uniform sample of the group; completeness degrades smoothly
//! as the view shrinks, and is nearly indistinguishable from complete
//! views once views cover a reasonable fraction of the group.

use gridagg_aggregate::Average;
use gridagg_bench::sweep::Sweep;
use gridagg_bench::{base_seed, print_table, runs, sci, write_csv};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::run_hiergossip;
use gridagg_core::summarize;

fn main() {
    let n = 200usize;
    let views: [Option<usize>; 5] = [Some(25), Some(50), Some(100), Some(150), None];
    let mut sweep = Sweep::new();
    for (i, &view) in views.iter().enumerate() {
        let mut cfg = ExperimentConfig::paper_defaults().with_n(n);
        cfg.partial_view = view;
        let base = base_seed() + (i as u64) * 10_000;
        let label = view.map_or("complete".to_string(), |v| v.to_string());
        sweep.push_seeded(
            &format!("ablation_views/view={label}"),
            runs(),
            base,
            move |seed| run_hiergossip::<Average>(&cfg, seed),
        );
    }
    let reports = sweep.run_or_exit("ablation_views");
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (&view, point) in views.iter().zip(reports.chunks(runs())) {
        let s = summarize(point);
        series.push(s.mean_incompleteness);
        rows.push(vec![
            view.map_or("complete".to_string(), |v| v.to_string()),
            sci(s.mean_incompleteness),
            sci(s.std_incompleteness),
            s.runs.to_string(),
        ]);
    }
    print_table(
        "Ablation: partial views (N=200, defaults): view size vs incompleteness",
        &["view size", "incompleteness", "std", "runs"],
        &rows,
    );
    write_csv(
        "ablation_views.csv",
        &["view_size", "incompleteness", "std", "runs"],
        &rows,
    );
    assert!(
        series.windows(2).all(|w| w[1] <= w[0] + 1e-9),
        "incompleteness must not grow with view size: {series:?}"
    );
    println!("shape check: completeness improves monotonically with view size = true");
}
