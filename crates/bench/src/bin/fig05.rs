//! Figure 5 — first-phase completeness vs grid box size K.
//!
//! Paper: "the completeness is monotonically increasing with K"
//! (equivalently, `1 − C1` falls with K) at `N = 2000, b = 4`, both
//! axes logarithmic.

use gridagg_analysis::c1_incompleteness;
use gridagg_bench::plot::{Plot, PlotSeries, Scale};
use gridagg_bench::{is_decreasing, print_table, sci, write_csv};

fn main() {
    let n = 2000u64;
    let b = 4.0;
    let ks = [4.0f64, 8.0, 16.0, 32.0];
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for &k in &ks {
        let inc = c1_incompleteness(n, k, b);
        series.push(inc);
        rows.push(vec![k.to_string(), sci(inc)]);
    }
    print_table(
        "Figure 5: 1-C1(N=2000, K, b=4) vs K (analytic)",
        &["K", "1-C1"],
        &rows,
    );
    write_csv("fig05.csv", &["k", "incompleteness"], &rows);
    Plot {
        title: "Figure 5: first-phase incompleteness vs K (N=2000, b=4)".into(),
        x_label: "grid box size K".into(),
        y_label: "1 - C1".into(),
        x_scale: Scale::Log,
        y_scale: Scale::Log,
        series: vec![PlotSeries {
            label: "analytic 1-C1".into(),
            points: ks.iter().zip(&series).map(|(&k, &y)| (k, y)).collect(),
        }],
    }
    .write("fig05.svg");
    assert!(
        is_decreasing(&series),
        "incompleteness must fall monotonically with K: {series:?}"
    );
    println!("shape check: monotonically decreasing in K = true");
}
