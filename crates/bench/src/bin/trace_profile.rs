//! Trace profile — what does one run actually *do*, round by round?
//!
//! Runs hierarchical gossip with the [`RunTrace`] recorder attached and
//! renders the derived views: per-phase transition statistics (entry
//! rounds, early bump-ups), the per-round message histogram, and the
//! mean incompleteness-over-time curve. The full trace summary is
//! written as JSON (and the curves as CSV) under `results/`, so the
//! observability layer's output is a first-class artifact next to the
//! figure CSVs.
//!
//! Usage: `trace_profile [--n <size>]... [--engine-jobs <T>]` — each
//! `--n` adds a group size; with no arguments the paper-bracketing
//! pair 64 and 1024 runs. `--engine-jobs` (or `GRIDAGG_ENGINE_JOBS`)
//! sets the fork-join engine thread count; the full trace — every
//! event, in order — is byte-identical at any value, which is what the
//! CI engine-determinism gate diffs.
//!
//! [`RunTrace`]: gridagg_core::trace::RunTrace

use gridagg_aggregate::Average;
use gridagg_bench::{base_seed, print_table, sci, write_csv, write_json};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::run_hiergossip_traced;
use gridagg_core::trace::RunTrace;
use gridagg_core::RunReport;

fn parse_sizes() -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--n" => {
                let v = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| die("expected a group size after --n"));
                sizes.push(v);
            }
            // consumed here; sweep::engine_jobs re-reads it from argv
            "--engine-jobs" => {
                if args.next().is_none() {
                    die("expected a thread count after --engine-jobs");
                }
            }
            other if other.starts_with("--engine-jobs=") => {}
            other => die(&format!(
                "unknown argument {other:?} (expected --n <size>, --engine-jobs <T>)"
            )),
        }
    }
    if sizes.is_empty() {
        sizes = vec![64, 1024];
    }
    sizes
}

fn die(msg: &str) -> ! {
    eprintln!("trace_profile: {msg}");
    std::process::exit(2);
}

fn profile(n: usize, seed: u64) -> (RunReport, RunTrace) {
    // trace_profile runs its sizes serially, so the engine thread
    // count composes with a sweep width of 1 (env value uncapped).
    let cfg = ExperimentConfig::paper_defaults()
        .with_n(n)
        .with_engine_jobs(gridagg_bench::sweep::engine_jobs(1));
    if let Err(e) = cfg.validate() {
        die(&format!("invalid --n {n}: {e}"));
    }
    run_hiergossip_traced::<Average>(&cfg, seed)
}

fn phase_table(n: usize, trace: &RunTrace) {
    let timelines = trace.phase_timelines();
    let max_phase = timelines
        .iter()
        .flat_map(|t| t.iter().map(|p| p.phase))
        .max()
        .unwrap_or(0);
    let mut rows = Vec::new();
    for phase in 1..=max_phase {
        let entries: Vec<&gridagg_core::trace::PhasePoint> = timelines
            .iter()
            .flat_map(|t| t.iter().filter(|p| p.phase == phase))
            .collect();
        if entries.is_empty() {
            continue;
        }
        let first = entries.iter().map(|p| p.at).min().unwrap();
        let last = entries.iter().map(|p| p.at).max().unwrap();
        let mean = entries.iter().map(|p| p.at as f64).sum::<f64>() / entries.len() as f64;
        let early = entries.iter().filter(|p| p.early).count();
        rows.push(vec![
            phase.to_string(),
            entries.len().to_string(),
            first.to_string(),
            format!("{mean:.1}"),
            last.to_string(),
            early.to_string(),
        ]);
    }
    print_table(
        &format!("Phase transitions (N={n})"),
        &[
            "phase",
            "members entered",
            "first round",
            "mean round",
            "last round",
            "early bump-ups",
        ],
        &rows,
    );
}

fn round_table(n: usize, trace: &RunTrace) {
    let messages = trace.per_round_messages();
    let curve = trace.incompleteness_over_time();
    let rows: Vec<Vec<String>> = messages
        .iter()
        .enumerate()
        .map(|(round, m)| {
            vec![
                round.to_string(),
                m.sent.to_string(),
                m.delivered.to_string(),
                m.dropped_loss.to_string(),
                m.dropped_bandwidth.to_string(),
                sci(curve.get(round).copied().unwrap_or(f64::NAN)),
            ]
        })
        .collect();
    // A 1024-member run has hundreds of rounds; print a readable slice
    // and leave the full series to the CSV.
    let shown: Vec<Vec<String>> = if rows.len() > 24 {
        let mut s: Vec<Vec<String>> = rows.iter().take(12).cloned().collect();
        s.push(vec!["...".into(); 6]);
        s.extend(rows.iter().skip(rows.len() - 12).cloned());
        s
    } else {
        rows.clone()
    };
    print_table(
        &format!("Per-round messages and incompleteness (N={n})"),
        &[
            "round",
            "sent",
            "delivered",
            "dropped loss",
            "dropped bw",
            "mean incompleteness",
        ],
        &shown,
    );
    write_csv(
        &format!("trace_profile_n{n}_rounds.csv"),
        &[
            "round",
            "sent",
            "delivered",
            "dropped_loss",
            "dropped_bandwidth",
            "mean_incompleteness",
        ],
        &rows,
    );
}

fn main() {
    let seed = base_seed();
    for n in parse_sizes() {
        let (report, trace) = profile(n, seed);
        println!(
            "\n#### N={n}: {} rounds, {} messages sent, {} trace events",
            report.rounds,
            report.net.sent,
            trace.len()
        );
        phase_table(n, &trace);
        round_table(n, &trace);

        let done = trace.terminations().iter().filter(|t| t.is_some()).count();
        println!(
            "terminated members   : {done}/{n}\n\
             final incompleteness : {}",
            sci(report.mean_incompleteness()),
        );
        write_json(&format!("trace_profile_n{n}.json"), &trace);
    }
}
