//! Figure 8 — Effect of gossip rate: incompleteness vs rounds per phase.
//!
//! Paper: "The protocol's incompleteness falls exponentially with
//! increasing gossip rate / gossip round length" — x is the number of
//! gossip rounds per protocol phase (1..5), N = 200.

use gridagg_aggregate::Average;
use gridagg_bench::plot::{Plot, PlotSeries, Scale};
use gridagg_bench::sweep::Sweep;
use gridagg_bench::{base_seed, is_decreasing, print_table, runs, sci, write_csv};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::run_hiergossip;
use gridagg_core::summarize;

fn main() {
    let rounds_per_phase = [1u32, 2, 3, 4, 5];
    let mut sweep = Sweep::new();
    for (i, &rpp) in rounds_per_phase.iter().enumerate() {
        let cfg = ExperimentConfig::paper_defaults().with_rounds_per_phase(rpp);
        let base = base_seed() + (i as u64) * 10_000;
        sweep.push_seeded(&format!("fig08/rpp={rpp}"), runs(), base, move |seed| {
            run_hiergossip::<Average>(&cfg, seed)
        });
    }
    let reports = sweep.run_or_exit("fig08");
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (&rpp, point) in rounds_per_phase.iter().zip(reports.chunks(runs())) {
        let s = summarize(point);
        series.push(s.mean_incompleteness);
        rows.push(vec![
            rpp.to_string(),
            sci(s.mean_incompleteness),
            sci(s.std_incompleteness),
            format!("{:.1}", s.mean_rounds),
            s.runs.to_string(),
        ]);
    }
    print_table(
        "Figure 8: incompleteness vs gossip rounds per phase (N=200, K=4, M=2)",
        &[
            "rounds/phase",
            "incompleteness",
            "std",
            "total rounds",
            "runs",
        ],
        &rows,
    );
    write_csv(
        "fig08.csv",
        &[
            "rounds_per_phase",
            "incompleteness",
            "std",
            "total_rounds",
            "runs",
        ],
        &rows,
    );
    Plot {
        title: "Figure 8: incompleteness vs gossip rounds per phase".into(),
        x_label: "gossip rounds per phase".into(),
        y_label: "incompleteness".into(),
        x_scale: Scale::Linear,
        y_scale: Scale::Log,
        series: vec![PlotSeries {
            label: "N=200, K=4, M=2".into(),
            points: rounds_per_phase
                .iter()
                .zip(&series)
                .map(|(&x, &y)| (x as f64, y))
                .collect(),
        }],
    }
    .write("fig08.svg");
    gridagg_bench::write_json("fig08.config.json", &ExperimentConfig::paper_defaults());
    assert!(
        is_decreasing(&series),
        "incompleteness must fall with phase length: {series:?}"
    );
    let factor = series[0] / series[series.len() - 1].max(1e-9);
    println!("shape check: monotone fall = true; 1 -> 5 rounds shrink factor = {factor:.0}x");
}
