//! Deterministic benchmark baseline for the five protocols.
//!
//! Times a single simulated run of each protocol at N ∈ {256, 1024,
//! 4096} — plus N = 16384 for every protocol except `flood` — and
//! records, next to the (machine-dependent) wall-clock mean, the
//! **deterministic proxy counters** that make the result comparable
//! across machines: messages sent, bytes encoded on the wire, peak
//! in-flight envelopes, deliveries, rounds, and the heap-allocation
//! count of one run (measured with a counting global allocator).
//!
//! The proxies are pure functions of `(protocol, N, seed)`, so any
//! change in them is a behavior or efficiency change, never noise —
//! which is what lets CI gate on them with a 0% tolerance while
//! treating wall-clock as informational.
//!
//! Cells execute on the [`gridagg_bench::sweep`] worker pool. The
//! allocation counter is **per-thread** (each cell runs wholly on one
//! worker), so `allocs_single_run` is exact at any `--jobs`, and the
//! output cells are merged in declaration order, so the JSON is
//! byte-identical whether one worker ran or eight did.
//!
//! Usage:
//!
//! * `bench_baseline` — measure and write `results/BENCH_protocols.json`
//!   (`GRIDAGG_OUT` overrides the directory; `GRIDAGG_RUNS` caps timed
//!   iterations per cell, so `GRIDAGG_RUNS=2` keeps a CI smoke run
//!   cheap; `GRIDAGG_SEED` sets the seed).
//! * `bench_baseline --jobs <J>` — run cells on `J` workers
//!   (`GRIDAGG_JOBS` works too; default: all cores).
//! * `bench_baseline --proxies-only` — skip wall-clock sampling and
//!   zero the machine-dependent fields (`wall_secs_mean`,
//!   `timed_iters`), making the whole output file deterministic — this
//!   is what the CI parallel-determinism gate byte-diffs across
//!   `--jobs` values.
//! * `bench_baseline --check <path>` — additionally compare the
//!   deterministic counters against a committed baseline JSON and exit
//!   non-zero if `messages_sent` or `bytes_sent` increased for any
//!   cell.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell as StdCell;

use gridagg_aggregate::Average;
use gridagg_bench::sweep::Sweep;
use gridagg_bench::{base_seed, bench_budget_ms, print_table, runs, time_mean, write_json};
use gridagg_core::baselines::{CentralizedConfig, FloodConfig, LeaderElectionConfig};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::json::{Json, ToJson};
use gridagg_core::runner::{
    run_centralized, run_flatgossip, run_flood, run_hiergossip, run_leader_election,
};
use gridagg_core::RunReport;

/// Counts every allocation (and reallocation) on top of the system
/// allocator. The count is a deterministic proxy for hot-path churn:
/// two binaries built from the same tree report the same number for the
/// same `(protocol, N, seed)` cell.
///
/// The counter is per-thread so concurrent sweep cells never bleed into
/// each other's counts: a cell runs start-to-finish on one worker, and
/// [`allocs_now`] reads that worker's own tally. `const`-initialized
/// `Cell<u64>` TLS performs no lazy allocation and has no destructor,
/// so touching it inside the allocator cannot recurse.
struct CountingAlloc;

thread_local! {
    static ALLOCS: StdCell<u64> = const { StdCell::new(0) };
}

/// This thread's allocation count so far.
fn allocs_now() -> u64 {
    ALLOCS.try_with(StdCell::get).unwrap_or(0)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const SIZES: [usize; 3] = [256, 1024, 4096];

/// The large-grid extension: every protocol except `flood`, whose
/// O(N²) message complexity is pathological at this size.
const BIG_N: usize = 16384;

/// One `(protocol, N)` measurement.
struct Cell {
    protocol: &'static str,
    n: usize,
    seed: u64,
    /// Mean wall-clock seconds per run (machine-dependent).
    wall_secs_mean: f64,
    /// Timed iterations behind the mean (capped by `GRIDAGG_RUNS`).
    timed_iters: u32,
    // Deterministic proxies, exact for (protocol, n, seed):
    rounds: u64,
    messages_sent: u64,
    bytes_sent: u64,
    peak_in_flight: u64,
    delivered: u64,
    allocs_single_run: u64,
}

impl ToJson for Cell {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("protocol".into(), Json::Str(self.protocol.into())),
            ("n".into(), Json::Num(self.n as f64)),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("wall_secs_mean".into(), Json::Num(self.wall_secs_mean)),
            ("timed_iters".into(), Json::Num(f64::from(self.timed_iters))),
            ("rounds".into(), Json::Num(self.rounds as f64)),
            ("messages_sent".into(), Json::Num(self.messages_sent as f64)),
            ("bytes_sent".into(), Json::Num(self.bytes_sent as f64)),
            (
                "peak_in_flight".into(),
                Json::Num(self.peak_in_flight as f64),
            ),
            ("delivered".into(), Json::Num(self.delivered as f64)),
            (
                "allocs_single_run".into(),
                Json::Num(self.allocs_single_run as f64),
            ),
        ])
    }
}

struct Baseline {
    cells: Vec<Cell>,
}

impl ToJson for Baseline {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "schema".into(),
                Json::Str("gridagg-bench-baseline-v1".into()),
            ),
            (
                "cells".into(),
                Json::Arr(self.cells.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

fn measure(
    protocol: &'static str,
    n: usize,
    seed: u64,
    timing: bool,
    run: impl Fn() -> RunReport,
) -> Cell {
    // One instrumented run yields the deterministic proxies and the
    // allocation count; only then is the wall clock sampled.
    let before = allocs_now();
    let report = run();
    let allocs_single_run = allocs_now() - before;
    let (wall_secs_mean, timed_iters) = if timing {
        let (per, iters) = time_mean(bench_budget_ms(), runs() as u32, || {
            std::hint::black_box(run());
        });
        (per.as_secs_f64(), iters)
    } else {
        (0.0, 0)
    };
    Cell {
        protocol,
        n,
        seed,
        wall_secs_mean,
        timed_iters,
        rounds: report.rounds,
        messages_sent: report.net.sent,
        bytes_sent: report.net.bytes_sent,
        peak_in_flight: report.net.peak_in_flight,
        delivered: report.net.delivered,
        allocs_single_run,
    }
}

/// Queue one `(protocol, n)` cell; `flood: false` drops the quadratic
/// protocol from large grids.
fn queue_cells(sweep: &mut Sweep<Cell>, n: usize, seed: u64, timing: bool, flood: bool) {
    let cfg = ExperimentConfig::paper_defaults().with_n(n);
    cfg.validate().expect("paper defaults are valid");
    sweep.push(format!("hiergossip/n={n}"), move || {
        measure("hiergossip", n, seed, timing, || {
            run_hiergossip::<Average>(&cfg, seed)
        })
    });
    sweep.push(format!("flatgossip/n={n}"), move || {
        measure("flatgossip", n, seed, timing, || {
            run_flatgossip::<Average>(&cfg, seed)
        })
    });
    if flood {
        sweep.push(format!("flood/n={n}"), move || {
            measure("flood", n, seed, timing, || {
                run_flood::<Average>(&cfg, FloodConfig::default(), seed)
            })
        });
    }
    sweep.push(format!("centralized/n={n}"), move || {
        measure("centralized", n, seed, timing, || {
            run_centralized::<Average>(&cfg, CentralizedConfig::for_group(n), seed)
        })
    });
    sweep.push(format!("leader/n={n}"), move || {
        measure("leader", n, seed, timing, || {
            run_leader_election::<Average>(&cfg, LeaderElectionConfig::default(), seed)
        })
    });
}

fn measure_all(seed: u64, timing: bool) -> Vec<Cell> {
    let mut sweep = Sweep::new();
    for n in SIZES {
        queue_cells(&mut sweep, n, seed, timing, true);
    }
    eprintln!(
        "skipping flood at N={BIG_N}: O(N^2) messages is pathological at this size \
         (every other protocol gets an N={BIG_N} cell)"
    );
    queue_cells(&mut sweep, BIG_N, seed, timing, false);
    eprintln!(
        "measuring {} cells on {} worker(s) ...",
        sweep.len(),
        gridagg_bench::sweep::jobs()
    );
    sweep.run_or_exit("bench_baseline")
}

fn millis(secs: f64) -> String {
    format!("{:.3}ms", secs * 1e3)
}

fn report_table(cells: &[Cell]) {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.protocol.to_string(),
                c.n.to_string(),
                millis(c.wall_secs_mean),
                c.timed_iters.to_string(),
                c.rounds.to_string(),
                c.messages_sent.to_string(),
                c.bytes_sent.to_string(),
                c.peak_in_flight.to_string(),
                c.allocs_single_run.to_string(),
            ]
        })
        .collect();
    print_table(
        "Protocol baseline (wall-clock is machine-dependent; the rest is deterministic)",
        &[
            "protocol",
            "N",
            "wall/run",
            "iters",
            "rounds",
            "msgs sent",
            "bytes sent",
            "peak in-flight",
            "allocs/run",
        ],
        &rows,
    );
}

/// Compare `cells` against a committed baseline file. Returns the
/// number of regressions: a cell whose `messages_sent` or `bytes_sent`
/// *increased* over the baseline, or a baseline cell that disappeared.
fn check_against(cells: &[Cell], path: &str) -> usize {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_baseline: cannot read baseline {path}: {e}"));
    let json = Json::parse(&text)
        .unwrap_or_else(|e| panic!("bench_baseline: malformed baseline {path}: {e}"));
    let Some(Json::Arr(base_cells)) = json.get("cells") else {
        panic!("bench_baseline: baseline {path} has no `cells` array");
    };

    let counter = |obj: &Json, key: &str| -> u64 {
        obj.get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("bench_baseline: baseline cell missing `{key}`"))
            as u64
    };

    let mut regressions = 0;
    for base in base_cells {
        let proto = base
            .get("protocol")
            .and_then(Json::as_str)
            .expect("baseline cell has a protocol");
        let n = counter(base, "n") as usize;
        let Some(cur) = cells.iter().find(|c| c.protocol == proto && c.n == n) else {
            eprintln!("REGRESSION {proto}/N={n}: cell missing from this run");
            regressions += 1;
            continue;
        };
        // Gated counters: any increase fails the run, and the failure
        // names the counter and both values so the log alone localizes
        // the regression.
        for (key, base_v, cur_v) in [
            (
                "messages_sent",
                counter(base, "messages_sent"),
                cur.messages_sent,
            ),
            ("bytes_sent", counter(base, "bytes_sent"), cur.bytes_sent),
        ] {
            if cur_v > base_v {
                eprintln!(
                    "REGRESSION {proto}/N={n}: {key} {base_v} -> {cur_v} (+{:.2}%)",
                    (cur_v as f64 / base_v as f64 - 1.0) * 100.0
                );
                regressions += 1;
            } else if cur_v < base_v {
                // An improvement is worth noticing too: refresh the
                // committed baseline so the gate tightens.
                eprintln!(
                    "improved {proto}/N={n}: {key} {base_v} -> {cur_v} \
                     (consider refreshing the baseline)"
                );
            }
        }
        // Informational counters: also deterministic, but not gated
        // (a rounds or delivery-count shift may be a deliberate
        // protocol change). Any drift is still printed with both
        // values — a silent divergence here usually foreshadows a
        // gated one. Allocation counters stay out entirely: they vary
        // across toolchains.
        for (key, base_v, cur_v) in [
            ("rounds", counter(base, "rounds"), cur.rounds),
            ("delivered", counter(base, "delivered"), cur.delivered),
            (
                "peak_in_flight",
                counter(base, "peak_in_flight"),
                cur.peak_in_flight,
            ),
        ] {
            if cur_v != base_v {
                eprintln!("note {proto}/N={n}: {key} {base_v} -> {cur_v} (not gated)");
            }
        }
    }
    regressions
}

fn main() {
    let mut check_path = None;
    let mut timing = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {
                check_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("bench_baseline: expected a path after --check");
                    std::process::exit(2);
                }));
            }
            "--proxies-only" => timing = false,
            // consumed here; the sweep executor re-reads it from argv
            "--jobs" => {
                if args.next().is_none() {
                    eprintln!("bench_baseline: expected a worker count after --jobs");
                    std::process::exit(2);
                }
            }
            other if other.starts_with("--jobs=") => {}
            other => {
                eprintln!(
                    "bench_baseline: unknown argument {other:?} \
                     (expected --check <path>, --jobs <J>, --proxies-only)"
                );
                std::process::exit(2);
            }
        }
    }

    let seed = base_seed();
    let baseline = Baseline {
        cells: measure_all(seed, timing),
    };
    report_table(&baseline.cells);
    write_json("BENCH_protocols.json", &baseline);

    if let Some(path) = check_path {
        let regressions = check_against(&baseline.cells, &path);
        if regressions > 0 {
            eprintln!("bench_baseline: {regressions} regression(s) vs {path}");
            std::process::exit(1);
        }
        println!("bench_baseline: deterministic counters match or improve on {path}");
    }
}
