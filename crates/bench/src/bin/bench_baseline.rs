//! Deterministic benchmark baseline for the five protocols.
//!
//! Times a single simulated run of each protocol at N ∈ {256, 1024,
//! 4096} — plus N = 16384 for every protocol except `flood` — and
//! records, next to the (machine-dependent) wall-clock mean, the
//! **deterministic proxy counters** that make the result comparable
//! across machines: messages sent, bytes encoded on the wire, peak
//! in-flight envelopes, deliveries, rounds, and the heap-allocation
//! count of one run (measured with a counting global allocator).
//!
//! The proxies are pure functions of `(protocol, N, seed)`, so any
//! change in them is a behavior or efficiency change, never noise —
//! which is what lets CI gate on them with a 0% tolerance while
//! treating wall-clock as informational.
//!
//! Cells execute on the [`gridagg_bench::sweep`] worker pool. The
//! allocation counter is **per-thread** (each cell runs wholly on one
//! worker), so `allocs_single_run` is exact at any `--jobs`, and the
//! output cells are merged in declaration order, so the JSON is
//! byte-identical whether one worker ran or eight did.
//!
//! The grid is a **scale ladder**: N ∈ {256, …, 1048576}. Every
//! protocol declares the largest N it is benchmarked at (`max_n` in
//! [`PROTOCOLS`]) with a stated reason; cells above a protocol's cap
//! are skipped with that reason logged. On top of that, a run carries
//! its own `--min-n`/`--max-n` window — the default window tops out at
//! N = 16384 so an ordinary CI run stays cheap, while the scale-smoke
//! and nightly jobs select the big cells explicitly.
//!
//! Each cell also records `peak_heap_bytes`: the high-water mark of
//! live heap bytes over one instrumented run, measured by the counting
//! allocator. The mark is per-thread and the run is deterministic, so
//! the value is reproducible for a given toolchain; `--check` gates it
//! with a ±25% ratio tolerance (byte counts drift across toolchains,
//! unlike the exactly-gated message counters).
//!
//! Usage:
//!
//! * `bench_baseline` — measure and write `results/BENCH_protocols.json`
//!   (`GRIDAGG_OUT` overrides the directory; `GRIDAGG_RUNS` caps timed
//!   iterations per cell, so `GRIDAGG_RUNS=2` keeps a CI smoke run
//!   cheap; `GRIDAGG_SEED` sets the seed).
//! * `bench_baseline --jobs <J>` — run cells on `J` workers
//!   (`GRIDAGG_JOBS` works too; default: all cores).
//! * `bench_baseline --min-n <N>` / `--max-n <N>` — bound the grid
//!   sizes this run measures (defaults: 0 and 16384). Baseline cells
//!   outside the window are skipped by `--check`, not failed.
//! * `bench_baseline --proxies-only` — skip wall-clock sampling and
//!   zero the machine-dependent fields (`wall_secs_mean`,
//!   `timed_iters`), making the whole output file deterministic — this
//!   is what the CI parallel-determinism gate byte-diffs across
//!   `--jobs` values.
//! * `bench_baseline --check <path>` — additionally compare the
//!   deterministic counters against a committed baseline JSON and exit
//!   non-zero if `messages_sent` or `bytes_sent` increased — or
//!   `peak_heap_bytes` grew by more than 25% — for any compared cell.
//! * `bench_baseline --engine-jobs <T>` — run each cell's round loop
//!   on `T` fork-join engine threads (`GRIDAGG_ENGINE_JOBS` works too;
//!   default 1). Every deterministic counter is byte-identical at any
//!   `T` — only `wall_secs_mean` moves — and the cell records the
//!   thread count in its `threads` field.
//! * `bench_baseline --threads-ladder` — measurement mode: instead of
//!   the protocol grid, run only the hiergossip rungs above the frozen
//!   grid (intersected with `--min-n`/`--max-n`) at engine threads
//!   {1, 2, 4}, one cell per thread count. Combine with `--jobs 1` so
//!   cells run back-to-back and the wall-clock comparison is clean.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell as StdCell;

use gridagg_aggregate::Average;
use gridagg_bench::sweep::Sweep;
use gridagg_bench::{base_seed, bench_budget_ms, print_table, runs, time_mean, write_json};
use gridagg_core::baselines::{CentralizedConfig, FloodConfig, LeaderElectionConfig};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::json::{Json, ToJson};
use gridagg_core::runner::{
    run_centralized, run_flatgossip, run_flood, run_hiergossip, run_leader_election,
};
use gridagg_core::RunReport;

/// Counts every allocation (and reallocation) on top of the system
/// allocator. The count is a deterministic proxy for hot-path churn:
/// two binaries built from the same tree report the same number for the
/// same `(protocol, N, seed)` cell.
///
/// The counter is per-thread so concurrent sweep cells never bleed into
/// each other's counts: a cell runs start-to-finish on one worker, and
/// [`allocs_now`] reads that worker's own tally. `const`-initialized
/// `Cell<u64>` TLS performs no lazy allocation and has no destructor,
/// so touching it inside the allocator cannot recurse.
struct CountingAlloc;

thread_local! {
    static ALLOCS: StdCell<u64> = const { StdCell::new(0) };
    /// Live heap bytes this thread has allocated minus freed.
    static CUR_BYTES: StdCell<u64> = const { StdCell::new(0) };
    /// High-water mark of `CUR_BYTES` since the last [`heap_mark`].
    static PEAK_BYTES: StdCell<u64> = const { StdCell::new(0) };
}

/// This thread's allocation count so far.
fn allocs_now() -> u64 {
    ALLOCS.try_with(StdCell::get).unwrap_or(0)
}

/// Start a peak-memory measurement window: returns the current live
/// byte count and resets the peak to it.
fn heap_mark() -> u64 {
    let cur = CUR_BYTES.try_with(StdCell::get).unwrap_or(0);
    let _ = PEAK_BYTES.try_with(|c| c.set(cur));
    cur
}

/// Peak live bytes since `mark` was taken, relative to the mark: the
/// high-water mark of heap growth inside the window.
fn heap_peak_since(mark: u64) -> u64 {
    PEAK_BYTES
        .try_with(StdCell::get)
        .unwrap_or(0)
        .saturating_sub(mark)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        let _ = CUR_BYTES.try_with(|c| {
            let cur = c.get() + layout.size() as u64;
            c.set(cur);
            let _ = PEAK_BYTES.try_with(|p| p.set(p.get().max(cur)));
        });
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // saturating: memory allocated on another thread (or before the
        // counters existed) may be freed here
        let _ = CUR_BYTES.try_with(|c| c.set(c.get().saturating_sub(layout.size() as u64)));
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
        let _ = CUR_BYTES.try_with(|c| {
            let cur = c
                .get()
                .saturating_sub(layout.size() as u64)
                .saturating_add(new_size as u64);
            c.set(cur);
            let _ = PEAK_BYTES.try_with(|p| p.set(p.get().max(cur)));
        });
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// The full scale ladder. A run measures the slice selected by its
/// `--min-n`/`--max-n` window intersected with each protocol's own
/// `max_n` cap.
const SIZES: [usize; 7] = [256, 1024, 4096, 16384, 65536, 262144, 1048576];

/// Default `--max-n`: the top of the frozen golden/proxy grid. Cells
/// above it are the scale ladder, selected explicitly by the
/// scale-smoke and nightly jobs. Runs at larger N also disable
/// hiergossip's per-phase trace recording (pure instrumentation,
/// O(phases) heap per member).
const DEFAULT_MAX_N: usize = 16384;

/// Per-protocol scale policy: the largest N each protocol is
/// benchmarked at, and why bigger grids are skipped. Skips are logged
/// uniformly with the reason so a grid change never silently narrows
/// coverage.
struct ProtocolSpec {
    name: &'static str,
    max_n: usize,
    cap_reason: &'static str,
}

const PROTOCOLS: [ProtocolSpec; 5] = [
    ProtocolSpec {
        name: "hiergossip",
        max_n: 1_048_576,
        cap_reason: "top of the ladder",
    },
    ProtocolSpec {
        name: "flatgossip",
        max_n: 65_536,
        cap_reason: "per-member known-vote lists are O(coverage) and message volume O(N*rounds)",
    },
    ProtocolSpec {
        name: "flood",
        max_n: 4_096,
        cap_reason: "O(N^2) messages is pathological at larger sizes",
    },
    ProtocolSpec {
        name: "centralized",
        max_n: 16_384,
        cap_reason:
            "duplicate-vote rejection at the leader requires exact, O(N)-bit contributor sets",
    },
    ProtocolSpec {
        name: "leader",
        max_n: 262_144,
        cap_reason: "per-member address-chain slabs dominate memory at larger sizes",
    },
];

/// Engine thread counts the `--threads-ladder` mode measures at each
/// big hiergossip rung. The counters are identical across the row —
/// only wall-clock moves — which is exactly what makes the ladder a
/// speedup measurement rather than a new baseline surface.
const LADDER_THREADS: [usize; 3] = [1, 2, 4];

/// One `(protocol, N, engine threads)` measurement.
struct Cell {
    protocol: &'static str,
    n: usize,
    seed: u64,
    /// Fork-join engine threads the run's round loop used. Purely an
    /// execution knob: every protocol-level counter below is identical
    /// at any value; only `wall_secs_mean` responds to it. The two
    /// allocator-derived fields are the exception — the counting
    /// allocator's tallies are per-thread, so work done on shard
    /// threads lands on *their* counters — which is why `--check`
    /// compares cells only at matching thread counts.
    threads: usize,
    /// Mean wall-clock seconds per run (machine-dependent).
    wall_secs_mean: f64,
    /// Timed iterations behind the mean (capped by `GRIDAGG_RUNS`).
    timed_iters: u32,
    // Deterministic proxies, exact for (protocol, n, seed):
    rounds: u64,
    messages_sent: u64,
    bytes_sent: u64,
    peak_in_flight: u64,
    delivered: u64,
    allocs_single_run: u64,
    /// High-water mark of live heap bytes over the one instrumented
    /// run (counting-allocator delta, relative to the pre-run mark).
    peak_heap_bytes: u64,
}

impl ToJson for Cell {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("protocol".into(), Json::Str(self.protocol.into())),
            ("n".into(), Json::Num(self.n as f64)),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("threads".into(), Json::Num(self.threads as f64)),
            ("wall_secs_mean".into(), Json::Num(self.wall_secs_mean)),
            ("timed_iters".into(), Json::Num(f64::from(self.timed_iters))),
            ("rounds".into(), Json::Num(self.rounds as f64)),
            ("messages_sent".into(), Json::Num(self.messages_sent as f64)),
            ("bytes_sent".into(), Json::Num(self.bytes_sent as f64)),
            (
                "peak_in_flight".into(),
                Json::Num(self.peak_in_flight as f64),
            ),
            ("delivered".into(), Json::Num(self.delivered as f64)),
            (
                "allocs_single_run".into(),
                Json::Num(self.allocs_single_run as f64),
            ),
            (
                "peak_heap_bytes".into(),
                Json::Num(self.peak_heap_bytes as f64),
            ),
        ])
    }
}

struct Baseline {
    cells: Vec<Cell>,
}

impl ToJson for Baseline {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "schema".into(),
                Json::Str("gridagg-bench-baseline-v1".into()),
            ),
            (
                "cells".into(),
                Json::Arr(self.cells.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

fn measure(
    protocol: &'static str,
    n: usize,
    seed: u64,
    threads: usize,
    timing: bool,
    run: impl Fn() -> RunReport,
) -> Cell {
    // One instrumented run yields the deterministic proxies, the
    // allocation count, and the peak-heap high-water mark; only then is
    // the wall clock sampled. The whole window runs on this worker
    // thread, so the per-thread counters are exact at any `--jobs`.
    let before = allocs_now();
    let mark = heap_mark();
    let report = run();
    let allocs_single_run = allocs_now() - before;
    let peak_heap_bytes = heap_peak_since(mark);
    let (wall_secs_mean, timed_iters) = if timing {
        let (per, iters) = time_mean(bench_budget_ms(), runs() as u32, || {
            std::hint::black_box(run());
        });
        (per.as_secs_f64(), iters)
    } else {
        (0.0, 0)
    };
    Cell {
        protocol,
        n,
        seed,
        threads,
        wall_secs_mean,
        timed_iters,
        rounds: report.rounds,
        messages_sent: report.net.sent,
        bytes_sent: report.net.bytes_sent,
        peak_in_flight: report.net.peak_in_flight,
        delivered: report.net.delivered,
        allocs_single_run,
        peak_heap_bytes,
    }
}

/// Queue every protocol's `(protocol, n)` cell, honoring each
/// protocol's `max_n` cap with a logged reason.
fn queue_cells(sweep: &mut Sweep<Cell>, n: usize, seed: u64, threads: usize, timing: bool) {
    let mut cfg = ExperimentConfig::paper_defaults()
        .with_n(n)
        .with_engine_jobs(threads);
    // Above the frozen grid, per-phase trace recording is pure memory
    // overhead (it never draws randomness or sends): turn it off so
    // the peak-heap ceiling reflects protocol state, not telemetry.
    cfg.phase_trace = n <= DEFAULT_MAX_N;
    cfg.validate().expect("paper defaults are valid");
    for spec in &PROTOCOLS {
        if n > spec.max_n {
            eprintln!(
                "skipping {}/N={n}: max N is {} ({})",
                spec.name, spec.max_n, spec.cap_reason
            );
            continue;
        }
        let name = spec.name;
        sweep.push(format!("{name}/n={n}/t={threads}"), move || {
            measure(name, n, seed, threads, timing, || match name {
                "hiergossip" => run_hiergossip::<Average>(&cfg, seed),
                "flatgossip" => run_flatgossip::<Average>(&cfg, seed),
                "flood" => run_flood::<Average>(&cfg, FloodConfig::default(), seed),
                "centralized" => {
                    run_centralized::<Average>(&cfg, CentralizedConfig::for_group(n), seed)
                }
                "leader" => {
                    run_leader_election::<Average>(&cfg, LeaderElectionConfig::default(), seed)
                }
                other => unreachable!("unknown protocol {other}"),
            })
        });
    }
}

/// Queue the `--threads-ladder` cells for one rung: hiergossip at
/// every [`LADDER_THREADS`] engine thread count. Only the rungs above
/// the frozen grid carry enough per-round work for the fork-join
/// engine to matter, so the ladder starts where the default window
/// ends.
fn queue_threads_ladder(sweep: &mut Sweep<Cell>, n: usize, seed: u64, timing: bool) {
    for threads in LADDER_THREADS {
        let mut cfg = ExperimentConfig::paper_defaults()
            .with_n(n)
            .with_engine_jobs(threads);
        cfg.phase_trace = n <= DEFAULT_MAX_N;
        cfg.validate().expect("paper defaults are valid");
        sweep.push(format!("hiergossip/n={n}/t={threads}"), move || {
            measure("hiergossip", n, seed, threads, timing, || {
                run_hiergossip::<Average>(&cfg, seed)
            })
        });
    }
}

fn measure_all(
    seed: u64,
    timing: bool,
    min_n: usize,
    max_n: usize,
    engine_jobs: usize,
    threads_ladder: bool,
) -> Vec<Cell> {
    let mut sweep = Sweep::new();
    for n in SIZES {
        if n < min_n || n > max_n {
            eprintln!("skipping N={n} cells: outside this run's --min-n/--max-n window");
            continue;
        }
        if threads_ladder {
            if n <= DEFAULT_MAX_N {
                eprintln!(
                    "skipping N={n} cells: --threads-ladder measures only the rungs \
                     above N={DEFAULT_MAX_N}"
                );
                continue;
            }
            queue_threads_ladder(&mut sweep, n, seed, timing);
        } else {
            queue_cells(&mut sweep, n, seed, engine_jobs, timing);
        }
    }
    eprintln!(
        "measuring {} cells on {} worker(s) ...",
        sweep.len(),
        gridagg_bench::sweep::jobs()
    );
    sweep.run_or_exit("bench_baseline")
}

fn millis(secs: f64) -> String {
    format!("{:.3}ms", secs * 1e3)
}

fn report_table(cells: &[Cell]) {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.protocol.to_string(),
                c.n.to_string(),
                c.threads.to_string(),
                millis(c.wall_secs_mean),
                c.timed_iters.to_string(),
                c.rounds.to_string(),
                c.messages_sent.to_string(),
                c.bytes_sent.to_string(),
                c.peak_in_flight.to_string(),
                c.allocs_single_run.to_string(),
                c.peak_heap_bytes.to_string(),
            ]
        })
        .collect();
    print_table(
        "Protocol baseline (wall-clock is machine-dependent; the rest is deterministic)",
        &[
            "protocol",
            "N",
            "threads",
            "wall/run",
            "iters",
            "rounds",
            "msgs sent",
            "bytes sent",
            "peak in-flight",
            "allocs/run",
            "peak heap B",
        ],
        &rows,
    );
}

/// Ratio tolerance for the `peak_heap_bytes` gate: byte counts are
/// deterministic for one toolchain but drift across compiler and
/// allocator versions, so the gate fires only on a >25% increase.
const PEAK_HEAP_TOLERANCE: f64 = 1.25;

/// Compare `cells` against a committed baseline file. Returns the
/// number of regressions: a cell whose `messages_sent` or `bytes_sent`
/// *increased* over the baseline, whose `peak_heap_bytes` grew by more
/// than [`PEAK_HEAP_TOLERANCE`], or a baseline cell that this run
/// should have measured but did not. Baseline cells outside the run's
/// `--min-n`/`--max-n` window (or a protocol's `max_n` cap) are
/// skipped with a logged reason, so a windowed run can still check
/// against the full committed ladder.
///
/// Cells are matched on `(protocol, n, threads)` — a baseline recorded
/// before the fork-join engine has no `threads` field and matches as
/// `threads = 1`. Baseline cells at an engine thread count this run
/// did not measure (e.g. the committed threads-ladder rows during an
/// ordinary serial run) are skipped, not failed: the counters are
/// identical at every thread count, so checking one count checks all.
fn check_against(cells: &[Cell], path: &str, min_n: usize, max_n: usize) -> usize {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench_baseline: cannot read baseline {path}: {e}"));
    let json = Json::parse(&text)
        .unwrap_or_else(|e| panic!("bench_baseline: malformed baseline {path}: {e}"));
    let Some(Json::Arr(base_cells)) = json.get("cells") else {
        panic!("bench_baseline: baseline {path} has no `cells` array");
    };

    let counter = |obj: &Json, key: &str| -> u64 {
        obj.get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("bench_baseline: baseline cell missing `{key}`"))
            as u64
    };

    let mut regressions = 0;
    for base in base_cells {
        let proto = base
            .get("protocol")
            .and_then(Json::as_str)
            .expect("baseline cell has a protocol");
        let n = counter(base, "n") as usize;
        let threads = base
            .get("threads")
            .and_then(Json::as_f64)
            .map_or(1, |v| v as usize);
        if n < min_n || n > max_n {
            eprintln!(
                "skipping baseline cell {proto}/N={n}: outside this run's \
                 --min-n/--max-n window"
            );
            continue;
        }
        if let Some(spec) = PROTOCOLS.iter().find(|s| s.name == proto) {
            if n > spec.max_n {
                eprintln!(
                    "skipping baseline cell {proto}/N={n}: above the protocol's \
                     max N of {} ({})",
                    spec.max_n, spec.cap_reason
                );
                continue;
            }
        }
        if !cells.iter().any(|c| c.threads == threads) {
            eprintln!(
                "skipping baseline cell {proto}/N={n}/threads={threads}: this run \
                 measured no cells at that engine-thread count"
            );
            continue;
        }
        let Some(cur) = cells
            .iter()
            .find(|c| c.protocol == proto && c.n == n && c.threads == threads)
        else {
            eprintln!("REGRESSION {proto}/N={n}/threads={threads}: cell missing from this run");
            regressions += 1;
            continue;
        };
        // Gated counters: any increase fails the run, and the failure
        // names the counter and both values so the log alone localizes
        // the regression.
        for (key, base_v, cur_v) in [
            (
                "messages_sent",
                counter(base, "messages_sent"),
                cur.messages_sent,
            ),
            ("bytes_sent", counter(base, "bytes_sent"), cur.bytes_sent),
        ] {
            if cur_v > base_v {
                eprintln!(
                    "REGRESSION {proto}/N={n}: {key} {base_v} -> {cur_v} (+{:.2}%)",
                    (cur_v as f64 / base_v as f64 - 1.0) * 100.0
                );
                regressions += 1;
            } else if cur_v < base_v {
                // An improvement is worth noticing too: refresh the
                // committed baseline so the gate tightens.
                eprintln!(
                    "improved {proto}/N={n}: {key} {base_v} -> {cur_v} \
                     (consider refreshing the baseline)"
                );
            }
        }
        // Peak-memory gate: ratio-tolerant (see PEAK_HEAP_TOLERANCE).
        // Baselines recorded before the scale ladder have no
        // peak_heap_bytes; those are reported, not failed.
        match base.get("peak_heap_bytes").and_then(Json::as_f64) {
            Some(base_peak) if base_peak > 0.0 => {
                let ratio = cur.peak_heap_bytes as f64 / base_peak;
                if ratio > PEAK_HEAP_TOLERANCE {
                    eprintln!(
                        "REGRESSION {proto}/N={n}: peak_heap_bytes {base_peak:.0} -> {} \
                         (x{ratio:.2}, tolerance x{PEAK_HEAP_TOLERANCE})",
                        cur.peak_heap_bytes
                    );
                    regressions += 1;
                } else if ratio < 1.0 / PEAK_HEAP_TOLERANCE {
                    eprintln!(
                        "improved {proto}/N={n}: peak_heap_bytes {base_peak:.0} -> {} \
                         (consider refreshing the baseline)",
                        cur.peak_heap_bytes
                    );
                }
            }
            _ => {
                eprintln!(
                    "note {proto}/N={n}: baseline has no peak_heap_bytes \
                     (this run: {}) — not compared",
                    cur.peak_heap_bytes
                );
            }
        }
        // Informational counters: also deterministic, but not gated
        // (a rounds or delivery-count shift may be a deliberate
        // protocol change). Any drift is still printed with both
        // values — a silent divergence here usually foreshadows a
        // gated one. Allocation counters stay out entirely: they vary
        // across toolchains.
        for (key, base_v, cur_v) in [
            ("rounds", counter(base, "rounds"), cur.rounds),
            ("delivered", counter(base, "delivered"), cur.delivered),
            (
                "peak_in_flight",
                counter(base, "peak_in_flight"),
                cur.peak_in_flight,
            ),
        ] {
            if cur_v != base_v {
                eprintln!("note {proto}/N={n}: {key} {base_v} -> {cur_v} (not gated)");
            }
        }
    }
    regressions
}

fn main() {
    let mut check_path = None;
    let mut timing = true;
    let mut min_n: usize = 0;
    let mut max_n: usize = DEFAULT_MAX_N;
    let mut threads_ladder = false;
    let mut args = std::env::args().skip(1);
    let parse_n = |args: &mut dyn Iterator<Item = String>, flag: &str| -> usize {
        args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("bench_baseline: expected a group size after {flag}");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {
                check_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("bench_baseline: expected a path after --check");
                    std::process::exit(2);
                }));
            }
            "--proxies-only" => timing = false,
            "--threads-ladder" => threads_ladder = true,
            "--min-n" => min_n = parse_n(&mut args, "--min-n"),
            "--max-n" => max_n = parse_n(&mut args, "--max-n"),
            // consumed here; the sweep executor re-reads them from argv
            "--jobs" | "--engine-jobs" => {
                if args.next().is_none() {
                    eprintln!("bench_baseline: expected a count after {arg}");
                    std::process::exit(2);
                }
            }
            other if other.starts_with("--jobs=") || other.starts_with("--engine-jobs=") => {}
            other => {
                eprintln!(
                    "bench_baseline: unknown argument {other:?} \
                     (expected --check <path>, --jobs <J>, --engine-jobs <T>, \
                      --proxies-only, --threads-ladder, --min-n <N>, --max-n <N>)"
                );
                std::process::exit(2);
            }
        }
    }
    if min_n > max_n {
        eprintln!("bench_baseline: --min-n {min_n} exceeds --max-n {max_n}");
        std::process::exit(2);
    }

    let seed = base_seed();
    let engine_jobs = gridagg_bench::sweep::engine_jobs(gridagg_bench::sweep::jobs());
    let baseline = Baseline {
        cells: measure_all(seed, timing, min_n, max_n, engine_jobs, threads_ladder),
    };
    report_table(&baseline.cells);
    write_json("BENCH_protocols.json", &baseline);

    if let Some(path) = check_path {
        let regressions = check_against(&baseline.cells, &path, min_n, max_n);
        if regressions > 0 {
            eprintln!("bench_baseline: {regressions} regression(s) vs {path}");
            std::process::exit(1);
        }
        println!("bench_baseline: deterministic counters match or improve on {path}");
    }
}
