//! Ablation §6.2 — leader election is fragile under crash failures.
//!
//! Paper: "Failure of a member elected as the leader of a subtree of
//! height i would result in the exclusion of the votes of an expected
//! K^i members from the final global estimate", and committees need
//! K' = O(logN) to survive. We sweep the per-round crash rate and
//! compare single-leader and committee variants against Hierarchical
//! Gossiping.

use gridagg_aggregate::Average;
use gridagg_bench::sweep::Sweep;
use gridagg_bench::{base_seed, print_table, runs, sci, write_csv};
use gridagg_core::baselines::LeaderElectionConfig;
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::{run_hiergossip, run_leader_election};
use gridagg_core::summarize;

fn main() {
    let pfs = [0.0f64, 0.001, 0.002, 0.005, 0.01];
    let mut sweep = Sweep::new();
    for (i, &pf) in pfs.iter().enumerate() {
        let cfg = {
            let mut c = ExperimentConfig::paper_defaults().with_n(256);
            c.pf = pf;
            c
        };
        // same seeds for all three protocols at each pf: paired runs
        let seed = base_seed() + (i as u64) * 10_000;
        sweep.push_seeded(
            &format!("ablation_leader/pf={pf}/hiergossip"),
            runs(),
            seed,
            move |s| run_hiergossip::<Average>(&cfg, s),
        );
        for committee in [1usize, 3] {
            let label = format!("ablation_leader/pf={pf}/leader{committee}");
            sweep.push_seeded(&label, runs(), seed, move |s| {
                run_leader_election::<Average>(
                    &cfg,
                    LeaderElectionConfig {
                        committee,
                        ..Default::default()
                    },
                    s,
                )
            });
        }
    }
    let reports = sweep.run_or_exit("ablation_leader");
    let mut points = reports.chunks(runs());
    let mut rows = Vec::new();
    let mut worst = (0.0f64, 0.0f64); // (leader1 inc, hier inc) at max pf
    for &pf in &pfs {
        let hier = summarize(points.next().expect("hiergossip slice"));
        let leader1 = summarize(points.next().expect("leader1 slice"));
        let leader3 = summarize(points.next().expect("leader3 slice"));
        if pf == 0.01 {
            worst = (leader1.mean_incompleteness, hier.mean_incompleteness);
        }
        rows.push(vec![
            format!("{pf}"),
            sci(hier.mean_incompleteness),
            sci(leader1.mean_incompleteness),
            sci(leader3.mean_incompleteness),
        ]);
    }
    print_table(
        "Ablation: leader election fragility vs crash rate (N=256, ucastl=0.25)",
        &["pf", "hiergossip", "leader K'=1", "leader K'=3"],
        &rows,
    );
    write_csv(
        "ablation_leader.csv",
        &["pf", "hiergossip_inc", "leader1_inc", "leader3_inc"],
        &rows,
    );
    println!(
        "shape check: at pf=0.01, leader-election incompleteness ({}) exceeds hiergossip ({}) = {}",
        sci(worst.0),
        sci(worst.1),
        worst.0 > worst.1
    );
}
