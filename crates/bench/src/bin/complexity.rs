//! Complexity comparison — the claims of §§4–6 as one table.
//!
//! | protocol            | messages        | time    | §   |
//! |---------------------|-----------------|---------|-----|
//! | fully distributed   | O(N²)           | O(N)    | 4   |
//! | centralized leader  | O(N)            | O(N)    | 5   |
//! | leader election     | O(N)            | O(logN) | 6.2 |
//! | hierarchical gossip | O(N·log²N)      | O(log²N)| 6.3 |
//!
//! Measured at zero loss (complexity) and at the paper's default lossy
//! network (completeness), for doubling group sizes.

use gridagg_aggregate::Average;
use gridagg_bench::sweep::Sweep;
use gridagg_bench::{base_seed, print_table, runs, sci, write_csv};
use gridagg_core::baselines::{CentralizedConfig, FloodConfig, LeaderElectionConfig};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::*;
use gridagg_core::{summarize, RunReport};

fn run_protocol(cfg: &ExperimentConfig, which: &str, seed: u64) -> RunReport {
    let n = cfg.n;
    match which {
        "hiergossip" => run_hiergossip::<Average>(cfg, seed),
        "flood" => run_flood::<Average>(cfg, FloodConfig::default(), seed),
        "centralized" => run_centralized::<Average>(cfg, CentralizedConfig::for_group(n), seed),
        "leader" => run_leader_election::<Average>(cfg, LeaderElectionConfig::default(), seed),
        "flatgossip" => run_flatgossip::<Average>(cfg, seed),
        other => unreachable!("unknown protocol {other}"),
    }
}

fn main() {
    let protocols = ["hiergossip", "leader", "centralized", "flood", "flatgossip"];
    let ns = [64usize, 128, 256, 512, 1024];
    let losses = [("zero loss", 0.0, 0.0), ("lossy (defaults)", 0.25, 0.001)];
    let r = runs().min(10);

    // Queue the whole (loss x N x protocol x seed) grid as one sweep,
    // then consume the reports in the same declaration order below.
    let mut sweep = Sweep::new();
    for &(_, ucastl, pf) in &losses {
        for &n in &ns {
            let mut cfg = ExperimentConfig::paper_defaults()
                .with_n(n)
                .with_ucastl(ucastl);
            cfg.pf = pf;
            for which in protocols {
                let label = format!("complexity/ucastl={ucastl}/n={n}/{which}");
                sweep.push_seeded(&label, r, base_seed(), move |seed| {
                    run_protocol(&cfg, which, seed)
                });
            }
        }
    }
    let reports = sweep.run_or_exit("complexity");
    let mut points = reports.chunks(r);

    for (loss_label, ucastl, _pf) in losses {
        let mut rows = Vec::new();
        for &n in &ns {
            for which in protocols {
                let s = summarize(points.next().expect("one report slice per grid point"));
                rows.push(vec![
                    n.to_string(),
                    which.to_string(),
                    format!("{:.0}", s.mean_messages),
                    format!("{:.2}", s.mean_messages / n as f64),
                    format!("{:.1}", s.mean_rounds),
                    sci(1.0 - s.mean_completeness),
                ]);
            }
        }
        print_table(
            &format!("Complexity table ({loss_label}): messages, rounds, incompleteness"),
            &[
                "N",
                "protocol",
                "messages",
                "msgs/N",
                "rounds",
                "incompleteness",
            ],
            &rows,
        );
        let name = if ucastl == 0.0 {
            "complexity_zero_loss.csv"
        } else {
            "complexity_lossy.csv"
        };
        write_csv(
            name,
            &[
                "n",
                "protocol",
                "messages",
                "msgs_per_n",
                "rounds",
                "incompleteness",
            ],
            &rows,
        );
    }
    println!(
        "expected shapes: flood msgs/N grows ~linearly in N (O(N^2) total); centralized and \n\
         leader msgs/N stay ~constant (O(N)); hiergossip msgs/N grows ~log^2 N; flood and \n\
         centralized rounds grow with N while hierarchical protocols stay polylog; under loss, \n\
         hiergossip completeness dominates leader election and centralized."
    );
}
