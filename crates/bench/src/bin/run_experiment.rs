//! `run_experiment` — run any protocol at any parameter point from the
//! command line.
//!
//! ```console
//! $ run_experiment protocol=hiergossip n=800 ucastl=0.3 runs=20
//! $ run_experiment protocol=centralized n=400 pf=0.01
//! $ run_experiment protocol=hiergossip n=200 partl=0.6 aggregate=max
//! $ run_experiment protocol=leader committee=3 seed=7
//! ```
//!
//! Accepted keys (defaults are the paper's §7 values):
//! `protocol` (hiergossip|flood|centralized|leader|flatgossip),
//! `aggregate` (average|sum|count|min|max|meanvar|histogram|topk),
//! `n`, `k`, `m` (fanout), `c` (round factor), `rounds_per_phase`,
//! `ucastl`, `partl`, `pf`, `runs`, `seed`, `committee`,
//! `partial_view`, `n_estimate`, `start_spread`, `max_delay`,
//! `topo` (true/false), `early_bump` (true/false), `batch` (true/false).

use gridagg_aggregate::wire::WireAggregate;
use gridagg_aggregate::{Average, Count, Histogram16, Max, MeanVar, Min, Sum, TopK};
use gridagg_bench::sweep::Sweep;
use gridagg_bench::{print_table, sci};
use gridagg_core::baselines::{CentralizedConfig, FloodConfig, LeaderElectionConfig};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::{
    run_centralized, run_flatgossip, run_flood, run_hiergossip, run_leader_election,
};
use gridagg_core::summarize;

fn parse_args() -> Result<std::collections::BTreeMap<String, String>, String> {
    let mut map = std::collections::BTreeMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--help" || arg == "-h" || arg == "help" {
            return Err("help".to_string());
        }
        // worker-count flag, consumed by the sweep executor (which
        // re-reads argv); tolerated here so `--jobs 4` composes with
        // the key=value grammar
        if arg == "--jobs" {
            if args.next().is_none() {
                return Err("expected a worker count after --jobs".to_string());
            }
            continue;
        }
        if arg.starts_with("--jobs=") {
            continue;
        }
        let Some((k, v)) = arg.split_once('=') else {
            return Err(format!("argument `{arg}` is not key=value"));
        };
        map.insert(k.to_string(), v.to_string());
    }
    Ok(map)
}

fn get<T: std::str::FromStr>(
    args: &std::collections::BTreeMap<String, String>,
    key: &str,
) -> Result<Option<T>, String> {
    match args.get(key) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("could not parse {key}={v}")),
    }
}

fn run<A: WireAggregate>(
    args: &std::collections::BTreeMap<String, String>,
    cfg: &ExperimentConfig,
    protocol: &str,
    runs: usize,
    seed: u64,
) -> Result<(), String> {
    let committee: usize = get(args, "committee")?.unwrap_or(1);
    let cfg = *cfg;
    let protocol_owned = protocol.to_string();
    let mut sweep = Sweep::new();
    sweep.push_seeded(protocol, runs, seed, move |s| {
        match protocol_owned.as_str() {
            "hiergossip" => run_hiergossip::<A>(&cfg, s),
            "flood" => run_flood::<A>(&cfg, FloodConfig::default(), s),
            "centralized" => run_centralized::<A>(&cfg, CentralizedConfig::for_group(cfg.n), s),
            "leader" => run_leader_election::<A>(
                &cfg,
                LeaderElectionConfig {
                    committee,
                    ..Default::default()
                },
                s,
            ),
            "flatgossip" => run_flatgossip::<A>(&cfg, s),
            other => panic!("unknown protocol `{other}`"),
        }
    });
    let reports = sweep.run_or_exit("run_experiment");
    let s = summarize(&reports);
    print_table(
        &format!(
            "{protocol} at N={} ({} runs, base seed {seed})",
            cfg.n, runs
        ),
        &["metric", "value"],
        &[
            vec!["mean incompleteness".into(), sci(s.mean_incompleteness)],
            vec!["std incompleteness".into(), sci(s.std_incompleteness)],
            vec![
                "mean completeness".into(),
                format!("{:.6}", s.mean_completeness),
            ],
            vec!["mean messages".into(), format!("{:.0}", s.mean_messages)],
            vec![
                "messages / member".into(),
                format!("{:.1}", s.mean_messages / cfg.n as f64),
            ],
            vec!["mean rounds".into(), format!("{:.1}", s.mean_rounds)],
            vec!["mean value error".into(), sci(s.mean_value_error)],
            vec!["crashed fraction".into(), format!("{:.4}", s.mean_crashed)],
        ],
    );
    Ok(())
}

fn main() {
    if let Err(e) = real_main() {
        if e == "help" {
            println!("{}", HELP);
            return;
        }
        eprintln!("error: {e}\n\n{}", HELP);
        std::process::exit(2);
    }
}

const HELP: &str = "usage: run_experiment [key=value ...] [--jobs J] — see the module docs; \
keys: protocol aggregate n k m c rounds_per_phase ucastl partl pf runs seed \
committee partial_view n_estimate start_spread max_delay topo early_bump batch";

fn real_main() -> Result<(), String> {
    let args = parse_args()?;
    let mut cfg = ExperimentConfig::paper_defaults();
    if let Some(n) = get(&args, "n")? {
        cfg.n = n;
    }
    if let Some(k) = get(&args, "k")? {
        cfg.k = k;
    }
    if let Some(m) = get(&args, "m")? {
        cfg.fanout = m;
    }
    if let Some(c) = get(&args, "c")? {
        cfg.round_factor = c;
    }
    if let Some(r) = get(&args, "rounds_per_phase")? {
        cfg.rounds_per_phase = Some(r);
    }
    if let Some(u) = get(&args, "ucastl")? {
        cfg.ucastl = u;
    }
    if let Some(p) = get(&args, "partl")? {
        cfg.partl = Some(p);
    }
    if let Some(p) = get(&args, "pf")? {
        cfg.pf = p;
    }
    if let Some(v) = get(&args, "partial_view")? {
        cfg.partial_view = Some(v);
    }
    if let Some(e) = get(&args, "n_estimate")? {
        cfg.n_estimate = Some(e);
    }
    if let Some(sp) = get(&args, "start_spread")? {
        cfg.start_spread = Some(sp);
    }
    if let Some(d) = get(&args, "max_delay")? {
        cfg.max_delay = Some(d);
    }
    if let Some(t) = get(&args, "topo")? {
        cfg.topo_aware = t;
    }
    if let Some(b) = get(&args, "early_bump")? {
        cfg.early_bump = b;
    }
    if let Some(b) = get(&args, "batch")? {
        cfg.batch_exchange = b;
    }
    cfg.validate()?;

    let runs: usize = get(&args, "runs")?.unwrap_or(10);
    let seed: u64 = get(&args, "seed")?.unwrap_or(2001);
    let protocol = args
        .get("protocol")
        .map(String::as_str)
        .unwrap_or("hiergossip");
    if !["hiergossip", "flood", "centralized", "leader", "flatgossip"].contains(&protocol) {
        return Err(format!("unknown protocol `{protocol}`"));
    }
    let aggregate = args
        .get("aggregate")
        .map(String::as_str)
        .unwrap_or("average");
    match aggregate {
        "average" => run::<Average>(&args, &cfg, protocol, runs, seed),
        "sum" => run::<Sum>(&args, &cfg, protocol, runs, seed),
        "count" => run::<Count>(&args, &cfg, protocol, runs, seed),
        "min" => run::<Min>(&args, &cfg, protocol, runs, seed),
        "max" => run::<Max>(&args, &cfg, protocol, runs, seed),
        "meanvar" => run::<MeanVar>(&args, &cfg, protocol, runs, seed),
        "histogram" => run::<Histogram16>(&args, &cfg, protocol, runs, seed),
        "topk" => run::<TopK>(&args, &cfg, protocol, runs, seed),
        other => Err(format!("unknown aggregate `{other}`")),
    }
}
