//! Ablation §6.1 — approximate group-size estimates.
//!
//! "The global knowledge of N is trivial if the maximal group
//! membership is fixed. For a dynamically changing group membership,
//! members need to be periodically informed of changes in the group
//! size. However, an approximate estimate of N at each member usually
//! suffices, and thus these updates can be done rather infrequently."
//!
//! We run the true group at N=200 while the hierarchy is derived from
//! estimates off by up to 4x in either direction.

use gridagg_aggregate::Average;
use gridagg_bench::sweep::Sweep;
use gridagg_bench::{base_seed, print_table, runs, sci, write_csv};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::run_hiergossip;
use gridagg_core::summarize;

fn main() {
    let n = 200usize;
    let estimates: [usize; 5] = [50, 100, 200, 400, 800];
    let mut sweep = Sweep::new();
    for (i, &est) in estimates.iter().enumerate() {
        let mut cfg = ExperimentConfig::paper_defaults().with_n(n);
        cfg.n_estimate = Some(est);
        let base = base_seed() + (i as u64) * 10_000;
        sweep.push_seeded(
            &format!("ablation_nestimate/est={est}"),
            runs(),
            base,
            move |seed| run_hiergossip::<Average>(&cfg, seed),
        );
    }
    let reports = sweep.run_or_exit("ablation_nestimate");
    let mut rows = Vec::new();
    let mut worst: f64 = 0.0;
    for (&est, point) in estimates.iter().zip(reports.chunks(runs())) {
        let s = summarize(point);
        worst = worst.max(s.mean_incompleteness);
        rows.push(vec![
            est.to_string(),
            format!("{:.2}", est as f64 / n as f64),
            sci(s.mean_incompleteness),
            format!("{:.1}", s.mean_rounds),
            format!("{:.0}", s.mean_messages),
        ]);
    }
    print_table(
        "Ablation: hierarchy from an approximate N estimate (true N=200)",
        &["estimate", "est/N", "incompleteness", "rounds", "messages"],
        &rows,
    );
    write_csv(
        "ablation_nestimate.csv",
        &["estimate", "ratio", "incompleteness", "rounds", "messages"],
        &rows,
    );
    assert!(
        worst < 0.1,
        "4x-off estimates must not break the protocol (worst {worst})"
    );
    println!(
        "shape check: worst incompleteness across 4x-off estimates = {}",
        sci(worst)
    );
}
