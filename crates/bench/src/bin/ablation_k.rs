//! Ablation — the grid box constant `K` on the full protocol.
//!
//! Figure 5 studies `K` analytically for the first phase; this sweep
//! runs the whole protocol. Larger `K` means fewer, shorter phases but
//! bigger boxes and more sibling values per phase — the paper's fixed
//! `K = 4` sits in the sweet spot at `N = 200`.

use gridagg_aggregate::Average;
use gridagg_bench::sweep::Sweep;
use gridagg_bench::{base_seed, print_table, runs, sci, write_csv};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::run_hiergossip;
use gridagg_core::summarize;

fn main() {
    let ks = [2u8, 4, 8, 16];
    let mut sweep = Sweep::new();
    for (i, &k) in ks.iter().enumerate() {
        let mut cfg = ExperimentConfig::paper_defaults();
        cfg.k = k;
        let base = base_seed() + (i as u64) * 10_000;
        sweep.push_seeded(&format!("ablation_k/k={k}"), runs(), base, move |seed| {
            run_hiergossip::<Average>(&cfg, seed)
        });
    }
    let reports = sweep.run_or_exit("ablation_k");
    let mut rows = Vec::new();
    for (&k, point) in ks.iter().zip(reports.chunks(runs())) {
        let s = summarize(point);
        let phases = gridagg_analysis::phases(ExperimentConfig::paper_defaults().n, k);
        rows.push(vec![
            k.to_string(),
            phases.to_string(),
            sci(s.mean_incompleteness),
            format!("{:.0}", s.mean_messages),
            format!("{:.1}", s.mean_rounds),
        ]);
    }
    print_table(
        "Ablation: grid box constant K (N=200, defaults otherwise)",
        &["K", "phases", "incompleteness", "messages", "rounds"],
        &rows,
    );
    write_csv(
        "ablation_k.csv",
        &["k", "phases", "incompleteness", "messages", "rounds"],
        &rows,
    );
    println!("all K values keep the protocol functional; rounds shrink with K (fewer phases)");
}
