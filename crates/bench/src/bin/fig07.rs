//! Figure 7 — Fault-tolerance 1: incompleteness vs unicast loss.
//!
//! Paper: "The protocol's incompleteness falls exponentially fast with
//! decreasing unicast message loss probability." `ucastl` sweeps 0.7
//! down to 0.4 (we extend to the 0.25 default), N = 200.

use gridagg_aggregate::Average;
use gridagg_bench::plot::{Plot, PlotSeries, Scale};
use gridagg_bench::sweep::Sweep;
use gridagg_bench::{base_seed, is_decreasing_noisy, print_table, runs, sci, write_csv};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::run_hiergossip;
use gridagg_core::summarize;

fn main() {
    let losses = [0.7f64, 0.6, 0.5, 0.4, 0.25];
    let mut sweep = Sweep::new();
    for (i, &ucastl) in losses.iter().enumerate() {
        let cfg = ExperimentConfig::paper_defaults().with_ucastl(ucastl);
        let base = base_seed() + (i as u64) * 10_000;
        sweep.push_seeded(
            &format!("fig07/ucastl={ucastl}"),
            runs(),
            base,
            move |seed| run_hiergossip::<Average>(&cfg, seed),
        );
    }
    let reports = sweep.run_or_exit("fig07");
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (&ucastl, point) in losses.iter().zip(reports.chunks(runs())) {
        let s = summarize(point);
        series.push(s.mean_incompleteness);
        rows.push(vec![
            format!("{ucastl}"),
            sci(s.mean_incompleteness),
            sci(s.std_incompleteness),
            s.runs.to_string(),
        ]);
    }
    print_table(
        "Figure 7: incompleteness vs ucastl (N=200, K=4, M=2)",
        &["ucastl", "incompleteness", "std", "runs"],
        &rows,
    );
    write_csv(
        "fig07.csv",
        &["ucastl", "incompleteness", "std", "runs"],
        &rows,
    );
    Plot {
        title: "Figure 7: incompleteness vs unicast loss".into(),
        x_label: "message loss probability ucastl".into(),
        y_label: "incompleteness".into(),
        x_scale: Scale::Linear,
        y_scale: Scale::Log,
        series: vec![PlotSeries {
            label: "N=200, K=4, M=2".into(),
            points: losses.iter().zip(&series).map(|(&x, &y)| (x, y)).collect(),
        }],
    }
    .write("fig07.svg");
    gridagg_bench::write_json("fig07.config.json", &ExperimentConfig::paper_defaults());
    assert!(
        is_decreasing_noisy(&series),
        "incompleteness must fall with reliability: {series:?}"
    );
    // exponential-ish: each 0.1 drop in loss shrinks incompleteness by a
    // roughly constant factor — check the end-to-end factor is large
    let factor = series[0] / series[series.len() - 1].max(1e-9);
    println!("shape check: monotone fall = true; 0.7 -> 0.25 shrink factor = {factor:.0}x");
}
