//! Ablation — network asynchrony (message delay jitter).
//!
//! The paper's model is an asynchronous network; its simulation delivers
//! gossip next round. Here deliveries take uniformly 1..=D rounds: each
//! extra round of jitter stretches phases relative to the per-phase
//! timeout, degrading completeness smoothly — the protocol needs no
//! synchrony, only that "clock drifts \[be\] much smaller than the
//! protocol running time" (§6.3).

use gridagg_aggregate::Average;
use gridagg_bench::sweep::Sweep;
use gridagg_bench::{base_seed, print_table, runs, sci, write_csv};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::run_hiergossip;
use gridagg_core::summarize;

fn main() {
    let delays = [1u64, 2, 3, 4];
    let mut sweep = Sweep::new();
    for (i, &d) in delays.iter().enumerate() {
        let mut cfg = ExperimentConfig::paper_defaults();
        cfg.max_delay = Some(d);
        let base = base_seed() + (i as u64) * 10_000;
        sweep.push_seeded(
            &format!("ablation_delay/d={d}"),
            runs(),
            base,
            move |seed| run_hiergossip::<Average>(&cfg, seed),
        );
    }
    let reports = sweep.run_or_exit("ablation_delay");
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (&d, point) in delays.iter().zip(reports.chunks(runs())) {
        let s = summarize(point);
        series.push(s.mean_incompleteness);
        rows.push(vec![
            d.to_string(),
            sci(s.mean_incompleteness),
            format!("{:.1}", s.mean_rounds),
            s.runs.to_string(),
        ]);
    }
    print_table(
        "Ablation: message delay jitter 1..=D rounds (N=200, defaults)",
        &["max delay", "incompleteness", "rounds", "runs"],
        &rows,
    );
    write_csv(
        "ablation_delay.csv",
        &["max_delay", "incompleteness", "rounds", "runs"],
        &rows,
    );
    println!(
        "shape check: completeness degrades smoothly with jitter ({} -> {}), no collapse = {}",
        sci(series[0]),
        sci(series[series.len() - 1]),
        series[series.len() - 1] < 0.5
    );
}
