//! Ablation — step 2(b) early bump-up and the gossip-exchange mode.
//!
//! Four variants of Hierarchical Gossiping at the paper's defaults:
//! early bump on/off × exchange One/Batch. `Batch` is the "gossip with"
//! interpretation that calibrates to the paper's figures; `One` is the
//! paper-literal single-value push (see DESIGN.md).

use gridagg_aggregate::Average;
use gridagg_bench::sweep::Sweep;
use gridagg_bench::{base_seed, print_table, runs, sci, write_csv};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::run_hiergossip;
use gridagg_core::summarize;

const VARIANTS: [(&str, bool, bool); 4] = [
    ("batch + early bump (default)", true, true),
    ("batch, synchronous phases", false, true),
    ("one-value push + early bump", true, false),
    ("one-value push, synchronous", false, false),
];

fn main() {
    let mut sweep = Sweep::new();
    for (label, early, batch) in VARIANTS {
        let mut cfg = ExperimentConfig::paper_defaults();
        cfg.early_bump = early;
        cfg.batch_exchange = batch;
        // deliberately the same seeds for every variant: paired runs
        sweep.push_seeded(
            &format!("ablation_bump/{label}"),
            runs(),
            base_seed(),
            move |seed| run_hiergossip::<Average>(&cfg, seed),
        );
    }
    let reports = sweep.run_or_exit("ablation_bump");
    let mut rows = Vec::new();
    let mut incs = Vec::new();
    for ((label, _, _), point) in VARIANTS.into_iter().zip(reports.chunks(runs())) {
        let s = summarize(point);
        incs.push(s.mean_incompleteness);
        rows.push(vec![
            label.to_string(),
            sci(s.mean_incompleteness),
            format!("{:.1}", s.mean_rounds),
            format!("{:.0}", s.mean_messages),
        ]);
    }
    print_table(
        "Ablation: early bump (step 2b) x exchange mode (N=200, defaults)",
        &["variant", "incompleteness", "rounds", "messages"],
        &rows,
    );
    write_csv(
        "ablation_bump.csv",
        &["variant", "incompleteness", "rounds", "messages"],
        &rows,
    );
    println!(
        "shape check: batch exchange beats one-value push ({} < {}) = {}",
        sci(incs[0]),
        sci(incs[2]),
        incs[0] < incs[2]
    );
}
