//! Ablation §6.1 — topologically aware placement cuts long-haul load.
//!
//! Paper: "Using such a topologically aware H would result in a
//! reduction of the load ... the (O(N)) messages in the initial phases
//! of the protocol would be restricted to travel short distances
//! (hops), and longer network routes would be taken only by the (much
//! fewer) messages in the latter phases."
//!
//! Both variants run over the *same* 2-D sensor field; only the hash
//! changes: fair (random boxes) vs topologically aware (K-d equal-count
//! splits, Figure 3).

use gridagg_aggregate::Average;
use gridagg_bench::sweep::Sweep;
use gridagg_bench::{base_seed, print_table, runs, sci, write_csv};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::run_hiergossip;

const VARIANTS: [(&str, bool); 2] = [("fair hash", false), ("topo-aware", true)];

fn main() {
    let n = 256usize;
    let r = runs().min(10);
    let mut sweep = Sweep::new();
    for (label, topo) in VARIANTS {
        let mut cfg = ExperimentConfig::paper_defaults().with_n(n);
        cfg.topo_aware = topo;
        cfg.positioned = true; // same field for both, for load accounting
        sweep.push_seeded(
            &format!("ablation_topo/{label}"),
            r,
            base_seed(),
            move |seed| run_hiergossip::<Average>(&cfg, seed),
        );
    }
    let all = sweep.run_or_exit("ablation_topo");
    let mut rows = Vec::new();
    let mut shares = Vec::new();
    let mut hops = Vec::new();
    for ((label, _), reports) in VARIANTS.into_iter().zip(all.chunks(r)) {
        let mut sent = 0u64;
        let mut total_hops = 0u64;
        let mut far = 0.0;
        let mut inc = 0.0;
        for r in reports {
            sent += r.net.sent;
            total_hops += r.net.total_hops;
            far += r.net.long_haul_share(4);
            inc += r.mean_incompleteness();
        }
        let share = far / reports.len() as f64;
        let hops_per_msg = total_hops as f64 / sent.max(1) as f64;
        shares.push(share);
        hops.push(hops_per_msg);
        rows.push(vec![
            label.to_string(),
            format!("{sent}"),
            format!("{:.3}", hops_per_msg),
            sci(share),
            sci(inc / reports.len() as f64),
        ]);
    }
    print_table(
        "Ablation: fair vs topologically-aware hash (N=256): link load",
        &[
            "placement",
            "messages",
            "hops/msg",
            "long-haul share",
            "incompleteness",
        ],
        &rows,
    );
    write_csv(
        "ablation_topo.csv",
        &[
            "placement",
            "messages",
            "hops_per_msg",
            "long_haul_share",
            "incompleteness",
        ],
        &rows,
    );
    assert!(
        hops[1] < hops[0],
        "topo-aware placement must reduce mean hops per message"
    );
    println!(
        "shape check: topo-aware cuts hops/msg {:.2} -> {:.2} ({:.1}x) and long-haul share {} -> {}",
        hops[0],
        hops[1],
        hops[0] / hops[1].max(1e-9),
        sci(shares[0]),
        sci(shares[1]),
    );
}
