//! Churn scenarios — restart-per-epoch Hierarchical Gossiping vs the
//! persistent Flow-Updating baseline under sustained join/leave/crash/
//! recover churn.
//!
//! The paper's protocol is one-shot (§7); its §2 "periodically
//! calculate the global aggregate" extension meets reality here: the
//! continuous service runs 24 epochs while the membership churns, and
//! each epoch publishes a completeness score against the epoch's true
//! membership. Restarting hiergossip each epoch buys fresh-view
//! accuracy at a per-epoch message cost; Flow-Updating carries its
//! mass-conserving state across epochs and absorbs churn by flow
//! reclaim and overlay healing.
//!
//! Outputs (under `results/`):
//! * `churn.csv` — the hiergossip-vs-Flow-Updating comparison grid
//!   (per churn level: completeness, tracking error, messages/epoch).
//! * `churn_epochs.csv` — the per-epoch trajectory (first seed of each
//!   cell): population, churn events, truth, estimate, completeness.

use gridagg_bench::sweep::Sweep;
use gridagg_bench::{base_seed, print_table, runs, sci, write_csv};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::continuous::{
    run_continuous, ContinuousOptions, ContinuousOutcome, ContinuousProtocol,
};
use gridagg_core::periodic::VoteProcess;
use gridagg_group::membership::ChurnModel;

const EPOCHS: usize = 24;

fn scenario_config() -> ExperimentConfig {
    let mut cfg = ExperimentConfig::paper_defaults().with_n(96);
    cfg.pf = 0.002; // within-epoch crashes on top of between-epoch churn
    cfg
}

fn levels() -> Vec<(&'static str, ChurnModel)> {
    vec![
        ("none", ChurnModel::none()),
        (
            "low",
            ChurnModel {
                join_rate: 0.5,
                leave_prob: 0.005,
                crash_prob: 0.01,
                recover_prob: 0.5,
            },
        ),
        (
            "high",
            ChurnModel {
                join_rate: 2.0,
                leave_prob: 0.02,
                crash_prob: 0.05,
                recover_prob: 0.5,
            },
        ),
    ]
}

fn options_for(protocol: ContinuousProtocol, churn: ChurnModel) -> ContinuousOptions {
    let mut opts = ContinuousOptions::new(protocol);
    opts.epochs = EPOCHS;
    opts.churn = churn;
    opts.votes = VoteProcess::RandomWalk { sigma: 0.5 };
    opts.recovery = 0.3; // hier mode: within-epoch PerRoundWithRecovery
    opts
}

struct CellSummary {
    mean_completeness: f64,
    mean_error: f64,
    mean_messages: f64,
    epochs_run: f64,
    collapsed: usize,
}

fn summarize_cells(outcomes: &[ContinuousOutcome]) -> CellSummary {
    let mut cpl = Vec::new();
    let mut err = Vec::new();
    let mut msgs = Vec::new();
    let mut epochs_run = 0usize;
    let mut collapsed = 0usize;
    for out in outcomes {
        epochs_run += out.epochs.len();
        collapsed += usize::from(out.collapsed());
        for e in &out.epochs {
            cpl.push(e.completeness);
            if e.published > 0 {
                err.push(e.tracking_error());
            }
            msgs.push(e.messages as f64);
        }
    }
    let mean = |v: &[f64]| {
        if v.is_empty() {
            f64::NAN
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    CellSummary {
        mean_completeness: mean(&cpl),
        mean_error: mean(&err),
        mean_messages: mean(&msgs),
        epochs_run: epochs_run as f64 / outcomes.len() as f64,
        collapsed,
    }
}

fn main() {
    // Engine threads compose with the sweep width (cells × engine
    // threads never oversubscribe); the CSVs are byte-identical at any
    // value of either knob, and the config artifact never records the
    // execution knob.
    let mut cfg = scenario_config();
    cfg = cfg.with_engine_jobs(gridagg_bench::sweep::engine_jobs(
        gridagg_bench::sweep::jobs(),
    ));
    let protocols = [
        ("hiergossip", ContinuousProtocol::HierGossipRestart),
        ("flowupdate", ContinuousProtocol::FlowUpdating),
    ];

    let mut sweep = Sweep::new();
    for (pi, &(pname, protocol)) in protocols.iter().enumerate() {
        for (li, (lname, churn)) in levels().into_iter().enumerate() {
            let opts = options_for(protocol, churn);
            let base = base_seed() + (pi as u64) * 100_000 + (li as u64) * 10_000;
            sweep.push_seeded(
                &format!("churn/{pname}/{lname}"),
                runs(),
                base,
                move |seed| run_continuous(&cfg, &opts, seed),
            );
        }
    }
    let results = sweep.run_or_exit("churn");

    let mut rows = Vec::new();
    let mut epoch_rows = Vec::new();
    let level_names: Vec<&str> = levels().iter().map(|(n, _)| *n).collect();
    for (ci, chunk) in results.chunks(runs()).enumerate() {
        let (pname, _) = protocols[ci / level_names.len()];
        let lname = level_names[ci % level_names.len()];
        let s = summarize_cells(chunk);
        rows.push(vec![
            pname.to_string(),
            lname.to_string(),
            sci(s.mean_completeness),
            sci(s.mean_error),
            sci(s.mean_messages),
            format!("{:.2}", s.epochs_run),
            s.collapsed.to_string(),
        ]);
        // per-epoch trajectory for the cell's first seed
        for e in &chunk[0].epochs {
            epoch_rows.push(vec![
                pname.to_string(),
                lname.to_string(),
                e.epoch.to_string(),
                e.up.to_string(),
                e.joins.to_string(),
                e.leaves.to_string(),
                e.crashes.to_string(),
                e.recoveries.to_string(),
                format!("{:.6}", e.true_value),
                format!("{:.6}", e.estimate),
                format!("{:.6}", e.completeness),
                e.published.to_string(),
                e.messages.to_string(),
            ]);
        }
    }

    print_table(
        &format!("Churn scenarios: hiergossip restart vs Flow-Updating (N=96, {EPOCHS} epochs)"),
        &[
            "protocol",
            "churn",
            "completeness",
            "|error|",
            "msgs/epoch",
            "epochs",
            "collapsed",
        ],
        &rows,
    );
    write_csv(
        "churn.csv",
        &[
            "protocol",
            "churn",
            "completeness",
            "error",
            "msgs_per_epoch",
            "epochs_run",
            "collapsed",
        ],
        &rows,
    );
    write_csv(
        "churn_epochs.csv",
        &[
            "protocol",
            "churn",
            "epoch",
            "up",
            "joins",
            "leaves",
            "crashes",
            "recoveries",
            "truth",
            "estimate",
            "completeness",
            "published",
            "messages",
        ],
        &epoch_rows,
    );
    gridagg_bench::write_json("churn.config.json", &cfg);

    // Shape checks robust at the CI smoke's low run count: every epoch
    // must publish a completeness score in [0, 1], and without churn
    // the restart protocol must stay essentially complete.
    for out in &results {
        for e in &out.epochs {
            assert!(
                (0.0..=1.0).contains(&e.completeness),
                "completeness out of range: {}",
                e.completeness
            );
        }
    }
    let hier_none = summarize_cells(&results[..runs()]);
    assert!(
        hier_none.mean_completeness > 0.9,
        "hiergossip without churn must stay near-complete, got {}",
        hier_none.mean_completeness
    );
    // Flow-Updating is a tracking protocol: its estimates lag the vote
    // random walk, but a mean error beyond a few units means the
    // mass-conserving exchange is oscillating again (the dual-writer
    // bug produced errors in the hundreds here).
    for (ci, chunk) in results.chunks(runs()).enumerate() {
        if ci / level_names.len() == 1 {
            let s = summarize_cells(chunk);
            assert!(
                s.mean_error < 10.0,
                "flowupdate/{} mean tracking error {} — oscillation regression?",
                level_names[ci % level_names.len()],
                s.mean_error
            );
        }
    }
    println!("shape check: per-epoch completeness published and bounded = true");
}
