//! Figure 9 — Fault-tolerance 2: soft network partitions.
//!
//! Paper: the group is split into two halves; cross-partition messages
//! drop with probability `partl`, intra-half with `ucastl`. "The
//! protocol's completeness degrades gracefully as the
//! partition/correlated failure rate becomes worse."

use gridagg_aggregate::Average;
use gridagg_bench::plot::{Plot, PlotSeries, Scale};
use gridagg_bench::sweep::Sweep;
use gridagg_bench::{base_seed, print_table, runs, sci, write_csv};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::run_hiergossip;
use gridagg_core::summarize;

fn main() {
    let partls = [0.5f64, 0.55, 0.6, 0.65, 0.7];
    let mut sweep = Sweep::new();
    for (i, &partl) in partls.iter().enumerate() {
        let cfg = ExperimentConfig::paper_defaults().with_partl(partl);
        let base = base_seed() + (i as u64) * 10_000;
        sweep.push_seeded(&format!("fig09/partl={partl}"), runs(), base, move |seed| {
            run_hiergossip::<Average>(&cfg, seed)
        });
    }
    let reports = sweep.run_or_exit("fig09");
    let mut rows = Vec::new();
    let mut series = Vec::new();
    for (&partl, point) in partls.iter().zip(reports.chunks(runs())) {
        let s = summarize(point);
        series.push(s.mean_incompleteness);
        rows.push(vec![
            format!("{partl}"),
            sci(s.mean_incompleteness),
            sci(s.std_incompleteness),
            s.runs.to_string(),
        ]);
    }
    print_table(
        "Figure 9: incompleteness vs partition loss partl (N=200, ucastl=0.25)",
        &["partl", "incompleteness", "std", "runs"],
        &rows,
    );
    write_csv(
        "fig09.csv",
        &["partl", "incompleteness", "std", "runs"],
        &rows,
    );
    Plot {
        title: "Figure 9: incompleteness vs partition loss".into(),
        x_label: "partition message loss partl".into(),
        y_label: "incompleteness".into(),
        x_scale: Scale::Linear,
        y_scale: Scale::Log,
        series: vec![PlotSeries {
            label: "N=200, ucastl=0.25".into(),
            points: partls.iter().zip(&series).map(|(&x, &y)| (x, y)).collect(),
        }],
    }
    .write("fig09.svg");
    gridagg_bench::write_json(
        "fig09.config.json",
        &ExperimentConfig::paper_defaults().with_partl(0.6),
    );
    // graceful degradation: grows with partl but stays far from total
    // failure at partl = 0.7
    let grows = series.windows(2).all(|w| w[1] >= w[0] * 0.5);
    let graceful = series[series.len() - 1] < 0.5;
    println!("shape check: degrades with partl = {grows}; graceful (inc@0.7 < 0.5) = {graceful}");
}
