//! Real-socket scale benchmark: a multiplexed loopback cluster driven
//! to convergence under injected loss, reported next to the simulator
//! at matching loss.
//!
//! Three presets ride the same harness:
//!
//! * `smoke` — 512 members over 16 sockets (the CI smoke rung);
//! * `full` — 10,000 members over 64 sockets and ≤ `num_cpus` worker
//!   threads (the nightly rung and the tentpole's acceptance cell);
//! * `full-mw4` — the same 10,000-member grid pinned to **4 worker
//!   threads**, exercising the sharded multi-worker event loop at
//!   scale regardless of how many cores the measuring box exposes.
//!
//! Each preset runs the cluster once, then runs the **simulator** on
//! the same protocol at the same group size and loss probability — the
//! in-run reference that makes the headline claim checkable: the
//! real-socket runtime, with retry-on-silence at the socket boundary,
//! must reach completeness at least the simulator's.
//!
//! Wall-clock is machine-dependent and therefore informational; the
//! `--check` gate holds the *structural* results: every member
//! reports, completeness does not fall below the committed baseline
//! (minus a small noise margin), the runtime stays ≥ the in-run
//! simulator reference, and datagram coalescing does not regress.
//! Throughput (`frames_per_sec`) sits between the two: a loose floor
//! ratio catches an event-loop collapse without firing on ordinary
//! machine variance.
//!
//! Usage:
//!
//! * `cluster_10k` — run every preset, write
//!   `results/BENCH_runtime.json` (`GRIDAGG_OUT` overrides the
//!   directory, `GRIDAGG_SEED` the seed).
//! * `cluster_10k --preset smoke|full|full-mw4` — run one preset.
//! * `cluster_10k --check <path>` — additionally compare against a
//!   committed baseline JSON and exit non-zero on a regression.
//!   Baseline cells whose preset this run did not measure are skipped,
//!   so the CI smoke job checks only the smoke cell.

use std::time::Duration;

use gridagg_aggregate::Average;
use gridagg_bench::{base_seed, print_table, write_json};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::hiergossip::HierGossipConfig;
use gridagg_core::json::{Json, ToJson};
use gridagg_core::runner::run_hiergossip;
use gridagg_core::scope::ScopeIndex;
use gridagg_group::view::View;
use gridagg_hierarchy::{FairHashPlacement, Hierarchy};
use gridagg_runtime::{run_cluster, RuntimeConfig};

/// Noise margin for the completeness-vs-baseline gate: loopback runs
/// are wall-clock scheduled, so completeness varies run to run.
const COMPLETENESS_MARGIN: f64 = 0.05;

/// Margin for the runtime-vs-simulator gate (the acceptance claim).
const SIM_MARGIN: f64 = 0.02;

/// The coalescing gate: frames-per-datagram may not fall below this
/// fraction of the committed baseline.
const COALESCE_RATIO_FLOOR: f64 = 0.7;

/// The throughput gate: `frames_per_sec` may not fall below this
/// fraction of the committed baseline. Throughput is machine-bound,
/// so the floor is deliberately loose — it catches an event-loop
/// collapse (a 4x slowdown), not scheduling noise.
const FRAMES_PER_SEC_FLOOR: f64 = 0.25;

struct Preset {
    name: &'static str,
    n: usize,
    sockets: usize,
    /// Worker threads driving the member shards; 0 means the
    /// [`RuntimeConfig`] default (one per available core).
    workers: usize,
    round_interval: Duration,
    loss: f64,
    /// Datagram coalescing cap. At N = 10,000 exact contributor sets
    /// make one frame ≈ 1.3 KB, so an MTU-sized cap degenerates to one
    /// frame per datagram and the per-socket bursts overflow kernel
    /// receive buffers; loopback carries 64 KB datagrams happily.
    max_datagram: usize,
}

const PRESETS: [Preset; 3] = [
    Preset {
        name: "smoke",
        n: 512,
        sockets: 16,
        workers: 0,
        round_interval: Duration::from_millis(5),
        loss: 0.10,
        max_datagram: 1400,
    },
    // The full round interval is sized so one worker core can tick all
    // 10,000 members (plus deliveries) inside a round: a too-short
    // interval makes rounds fire back-to-back, messages straddle round
    // boundaries, and members finalize before their aggregates fill.
    Preset {
        name: "full",
        n: 10_000,
        sockets: 64,
        workers: 0,
        round_interval: Duration::from_millis(100),
        loss: 0.10,
        max_datagram: 32 * 1024,
    },
    // Same grid, pinned to 4 workers: each worker owns 16 of the 64
    // sockets, so the sharded event loop's cross-worker handoff paths
    // run at scale even on a box whose core count would otherwise
    // collapse the pool to one worker.
    Preset {
        name: "full-mw4",
        n: 10_000,
        sockets: 64,
        workers: 4,
        round_interval: Duration::from_millis(100),
        loss: 0.10,
        max_datagram: 32 * 1024,
    },
];

/// One preset's measurement: the cluster run plus its simulator
/// reference at matching loss.
struct Cell {
    preset: &'static str,
    n: usize,
    sockets: usize,
    workers: usize,
    loss: f64,
    seed: u64,
    // Machine-dependent (informational):
    wall_secs: f64,
    frames_per_sec: f64,
    // Structural (gated):
    reported: usize,
    mean_completeness: f64,
    min_completeness: f64,
    frames_per_datagram: f64,
    // Simulator reference at matching n and loss:
    sim_mean_completeness: f64,
    sim_rounds: u64,
    // Context (informational):
    mean_rounds: f64,
    max_rounds_seen: u64,
    frames_sent: u64,
    datagrams_sent: u64,
    batched_sends: u64,
    bytes_sent: u64,
    retries: u64,
    injected_drops: u64,
    decode_errors: u64,
    mailbox_high_water: u64,
    wakeups: u64,
}

impl ToJson for Cell {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("preset".into(), Json::Str(self.preset.into())),
            ("n".into(), Json::Num(self.n as f64)),
            ("sockets".into(), Json::Num(self.sockets as f64)),
            ("workers".into(), Json::Num(self.workers as f64)),
            ("loss".into(), Json::Num(self.loss)),
            ("seed".into(), Json::Num(self.seed as f64)),
            ("wall_secs".into(), Json::Num(self.wall_secs)),
            ("frames_per_sec".into(), Json::Num(self.frames_per_sec)),
            ("reported".into(), Json::Num(self.reported as f64)),
            (
                "mean_completeness".into(),
                Json::Num(self.mean_completeness),
            ),
            ("min_completeness".into(), Json::Num(self.min_completeness)),
            (
                "frames_per_datagram".into(),
                Json::Num(self.frames_per_datagram),
            ),
            (
                "sim_mean_completeness".into(),
                Json::Num(self.sim_mean_completeness),
            ),
            ("sim_rounds".into(), Json::Num(self.sim_rounds as f64)),
            ("mean_rounds".into(), Json::Num(self.mean_rounds)),
            (
                "max_rounds_seen".into(),
                Json::Num(self.max_rounds_seen as f64),
            ),
            ("frames_sent".into(), Json::Num(self.frames_sent as f64)),
            (
                "datagrams_sent".into(),
                Json::Num(self.datagrams_sent as f64),
            ),
            ("batched_sends".into(), Json::Num(self.batched_sends as f64)),
            ("bytes_sent".into(), Json::Num(self.bytes_sent as f64)),
            ("retries".into(), Json::Num(self.retries as f64)),
            (
                "injected_drops".into(),
                Json::Num(self.injected_drops as f64),
            ),
            ("decode_errors".into(), Json::Num(self.decode_errors as f64)),
            (
                "mailbox_high_water".into(),
                Json::Num(self.mailbox_high_water as f64),
            ),
            ("wakeups".into(), Json::Num(self.wakeups as f64)),
        ])
    }
}

struct Runtime {
    cells: Vec<Cell>,
}

impl ToJson for Runtime {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "schema".into(),
                Json::Str("gridagg-bench-runtime-v1".into()),
            ),
            (
                "cells".into(),
                Json::Arr(self.cells.iter().map(ToJson::to_json).collect()),
            ),
        ])
    }
}

fn measure(preset: &Preset, seed: u64) -> Cell {
    let n = preset.n;
    eprintln!(
        "cluster_10k: running preset {} — {n} members over {} sockets, {:.0}% loss ...",
        preset.name,
        preset.sockets,
        preset.loss * 100.0
    );

    let h = Hierarchy::for_group(4, n).expect("hierarchy shape");
    let index = ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, seed));
    let votes: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut rt_cfg = RuntimeConfig {
        sockets: preset.sockets,
        round_interval: preset.round_interval,
        max_datagram: preset.max_datagram,
        seed,
        ..Default::default()
    }
    .with_uniform_loss(preset.loss);
    if preset.workers > 0 {
        rt_cfg.workers = preset.workers;
    }
    let run = run_cluster::<Average>(votes, index, HierGossipConfig::default(), rt_cfg)
        .unwrap_or_else(|e| panic!("cluster_10k: preset {} failed: {e}", preset.name));
    let r = &run.report;

    // Simulator reference: same protocol, same N, same loss, no
    // process failures (the loopback cluster has none).
    let mut sim_cfg = ExperimentConfig::paper_defaults()
        .with_n(n)
        .with_ucastl(preset.loss)
        .with_pf(0.0);
    sim_cfg.phase_trace = false;
    sim_cfg.validate().expect("sim reference config is valid");
    let sim = run_hiergossip::<Average>(&sim_cfg, seed);

    Cell {
        preset: preset.name,
        n,
        sockets: r.sockets,
        workers: r.workers,
        loss: preset.loss,
        seed,
        wall_secs: r.wall.as_secs_f64(),
        frames_per_sec: r.frames_per_sec(),
        reported: r.reported,
        mean_completeness: r.mean_completeness,
        min_completeness: r.min_completeness,
        frames_per_datagram: r.frames_per_datagram(),
        sim_mean_completeness: sim.mean_completeness().unwrap_or(0.0),
        sim_rounds: sim.rounds,
        mean_rounds: r.mean_rounds,
        max_rounds_seen: r.max_rounds_seen,
        frames_sent: r.stats.frames_sent,
        datagrams_sent: r.stats.datagrams_sent,
        batched_sends: r.stats.batched_sends,
        bytes_sent: r.stats.bytes_sent,
        retries: r.stats.retries,
        injected_drops: r.stats.injected_drops,
        decode_errors: r.stats.decode_errors,
        mailbox_high_water: r.stats.mailbox_high_water,
        wakeups: r.stats.wakeups,
    }
}

fn report_table(cells: &[Cell]) {
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.preset.to_string(),
                c.n.to_string(),
                format!("{}/{}", c.sockets, c.workers),
                format!("{:.3}s", c.wall_secs),
                format!("{:.4}", c.mean_completeness),
                format!("{:.4}", c.sim_mean_completeness),
                format!("{:.2}", c.frames_per_datagram),
                format!("{:.0}", c.frames_per_sec),
                c.retries.to_string(),
                c.injected_drops.to_string(),
            ]
        })
        .collect();
    print_table(
        "Loopback cluster vs simulator at matching loss (wall-clock is machine-dependent)",
        &[
            "preset",
            "N",
            "socks/wrk",
            "wall",
            "completeness",
            "sim ref",
            "frames/dgram",
            "frames/s",
            "retries",
            "drops",
        ],
        &rows,
    );
}

/// Gate this run's cells: in-run simulator comparison plus regression
/// checks against the committed baseline. Returns the failure count.
fn check_against(cells: &[Cell], path: &str) -> usize {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cluster_10k: cannot read baseline {path}: {e}"));
    let json = Json::parse(&text)
        .unwrap_or_else(|e| panic!("cluster_10k: malformed baseline {path}: {e}"));
    let Some(Json::Arr(base_cells)) = json.get("cells") else {
        panic!("cluster_10k: baseline {path} has no `cells` array");
    };

    let num = |obj: &Json, key: &str| -> f64 {
        obj.get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("cluster_10k: baseline cell missing `{key}`"))
    };

    let mut failures = 0;

    // In-run structural gates: these hold for every measured cell
    // regardless of the baseline's contents.
    for c in cells {
        if c.reported != c.n {
            eprintln!(
                "REGRESSION {}: only {}/{} members reported an outcome",
                c.preset, c.reported, c.n
            );
            failures += 1;
        }
        if c.mean_completeness + SIM_MARGIN < c.sim_mean_completeness {
            eprintln!(
                "REGRESSION {}: cluster completeness {:.4} fell below the simulator's \
                 {:.4} at matching loss (margin {SIM_MARGIN})",
                c.preset, c.mean_completeness, c.sim_mean_completeness
            );
            failures += 1;
        }
    }

    for base in base_cells {
        let preset = base
            .get("preset")
            .and_then(Json::as_str)
            .expect("baseline cell has a preset");
        let Some(cur) = cells.iter().find(|c| c.preset == preset) else {
            eprintln!("skipping baseline cell {preset}: not measured by this run");
            continue;
        };
        let base_completeness = num(base, "mean_completeness");
        if cur.mean_completeness < base_completeness - COMPLETENESS_MARGIN {
            eprintln!(
                "REGRESSION {preset}: mean_completeness {base_completeness:.4} -> {:.4} \
                 (margin {COMPLETENESS_MARGIN})",
                cur.mean_completeness
            );
            failures += 1;
        }
        let base_coalesce = num(base, "frames_per_datagram");
        if cur.frames_per_datagram < base_coalesce * COALESCE_RATIO_FLOOR {
            eprintln!(
                "REGRESSION {preset}: frames_per_datagram {base_coalesce:.2} -> {:.2} \
                 (floor x{COALESCE_RATIO_FLOOR})",
                cur.frames_per_datagram
            );
            failures += 1;
        }
        let base_fps = num(base, "frames_per_sec");
        if cur.frames_per_sec < base_fps * FRAMES_PER_SEC_FLOOR {
            eprintln!(
                "REGRESSION {preset}: frames_per_sec {base_fps:.0} -> {:.0} \
                 (floor x{FRAMES_PER_SEC_FLOOR})",
                cur.frames_per_sec
            );
            failures += 1;
        }
        // Informational: wall-clock and throughput are machine-bound.
        let base_wall = num(base, "wall_secs");
        if cur.wall_secs > base_wall * 2.0 {
            eprintln!(
                "note {preset}: wall_secs {base_wall:.3} -> {:.3} (not gated)",
                cur.wall_secs
            );
        }
    }
    failures
}

fn main() {
    let mut check_path = None;
    let mut only: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => {
                check_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("cluster_10k: expected a path after --check");
                    std::process::exit(2);
                }));
            }
            "--preset" => {
                let name = args.next().unwrap_or_else(|| {
                    eprintln!("cluster_10k: expected a preset name after --preset");
                    std::process::exit(2);
                });
                if !PRESETS.iter().any(|p| p.name == name) {
                    eprintln!(
                        "cluster_10k: unknown preset {name:?} \
                         (expected smoke, full, or full-mw4)"
                    );
                    std::process::exit(2);
                }
                only = Some(name);
            }
            other => {
                eprintln!(
                    "cluster_10k: unknown argument {other:?} \
                     (expected --preset <smoke|full>, --check <path>)"
                );
                std::process::exit(2);
            }
        }
    }

    let seed = base_seed();
    let runtime = Runtime {
        cells: PRESETS
            .iter()
            .filter(|p| only.as_deref().is_none_or(|o| o == p.name))
            .map(|p| measure(p, seed))
            .collect(),
    };
    report_table(&runtime.cells);
    write_json("BENCH_runtime.json", &runtime);

    if let Some(path) = check_path {
        let failures = check_against(&runtime.cells, &path);
        if failures > 0 {
            eprintln!("cluster_10k: {failures} regression(s) vs {path}");
            std::process::exit(1);
        }
        println!("cluster_10k: completeness and coalescing hold against {path}");
    }
}
