//! Ablation — gossip fanout `M`.
//!
//! The paper fixes `M = 2` ("A gossip round at a member consisted of
//! attempts to gossip with M randomly selected members", §7). This sweep
//! shows the completeness/message trade-off: higher fanout buys
//! completeness sub-linearly while messages grow linearly — why the
//! paper runs at a small constant fanout and spends rounds instead
//! (Figure 8's axis).

use gridagg_aggregate::Average;
use gridagg_bench::sweep::Sweep;
use gridagg_bench::{base_seed, print_table, runs, sci, write_csv};
use gridagg_core::config::ExperimentConfig;
use gridagg_core::runner::run_hiergossip;
use gridagg_core::summarize;

fn main() {
    let fanouts = [1u32, 2, 3, 4];
    let mut sweep = Sweep::new();
    for (i, &m) in fanouts.iter().enumerate() {
        let mut cfg = ExperimentConfig::paper_defaults();
        cfg.fanout = m;
        let base = base_seed() + (i as u64) * 10_000;
        sweep.push_seeded(
            &format!("ablation_fanout/m={m}"),
            runs(),
            base,
            move |seed| run_hiergossip::<Average>(&cfg, seed),
        );
    }
    let reports = sweep.run_or_exit("ablation_fanout");
    let mut rows = Vec::new();
    let mut incs = Vec::new();
    for (&m, point) in fanouts.iter().zip(reports.chunks(runs())) {
        let s = summarize(point);
        incs.push(s.mean_incompleteness);
        rows.push(vec![
            m.to_string(),
            sci(s.mean_incompleteness),
            format!("{:.0}", s.mean_messages),
            format!("{:.1}", s.mean_rounds),
            s.runs.to_string(),
        ]);
    }
    print_table(
        "Ablation: gossip fanout M (N=200, defaults otherwise)",
        &["M", "incompleteness", "messages", "rounds", "runs"],
        &rows,
    );
    write_csv(
        "ablation_fanout.csv",
        &["fanout", "incompleteness", "messages", "rounds", "runs"],
        &rows,
    );
    assert!(incs[1] <= incs[0], "M=2 must beat M=1: {incs:?}");
    println!(
        "shape check: M=1 -> M=2 improves completeness ({} -> {}); diminishing returns beyond",
        sci(incs[0]),
        sci(incs[1])
    );
}
