//! The sharded event loop: one worker thread drives many members.
//!
//! A `Worker` owns a disjoint subset of the socket pool and, with it,
//! the shard of members homed on those sockets. Its loop is a batched
//! multiplexer:
//!
//! 1. **drain** — poll every owned socket non-blocking, demultiplex
//!    frames into per-member mailboxes ([`FrameIter`] rejects garbage
//!    as `DecodeError` values, counted not panicked);
//! 2. **deliver** — run `on_message` for every mailbox in member order,
//!    collecting gossip into the outbox;
//! 3. **tick** — pop due round deadlines off the [`TimerWheel`] and run
//!    `on_round` (plus termination, linger, and retry-on-silence
//!    bookkeeping) for each;
//! 4. **flush** — coalesce queued frames per destination socket into
//!    few large datagrams, route them through the [`FaultInjector`],
//!    and put them on the wire;
//! 5. **sleep** until the next deadline (bounded by a short poll cap so
//!    inbound traffic is never stalled a full round).
//!
//! Everything a member needs lives in its `MemberSlot`; everything a
//! worker reuses across wakeups (receive buffer, outbox, datagram
//! buffers, free list) is preallocated scratch, so the steady-state
//! loop does not allocate.

use std::collections::VecDeque;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use gridagg_aggregate::wire::{EncodeMemo, WireAggregate};
use gridagg_core::hiergossip::HierGossip;
use gridagg_core::message::codec;
use gridagg_core::protocol::{AggregationProtocol, Ctx, Outbox};
use gridagg_core::Payload;
use gridagg_group::MemberId;
use gridagg_simnet::rng::DetRng;

use crate::endpoint::{frame_len, push_frame, FaultInjector, FrameIter};
use crate::timer::TimerWheel;
use crate::{MemberOutcome, RuntimeConfig};

/// Cap on the frames a member keeps for retry-on-silence resends.
const RETRY_FRAME_CAP: usize = 16;

/// Wire bytes sent between inbound drains. Loopback `send_to` delivers
/// straight into the destination socket's kernel receive queue
/// (`rmem_default` ≈ 208 KB), so a worker that emits a multi-megabyte
/// round burst before reading again overflows those queues and the
/// kernel drops datagrams silently — loss far above the injected rate,
/// invisible to every counter here. Draining after every 64 KB of
/// sends keeps each receive queue shallow no matter the burst size.
const DRAIN_EVERY_BYTES: u64 = 64 * 1024;

/// Per-worker observability counters, merged into the
/// [`RuntimeReport`](crate::cluster::RuntimeReport) at teardown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Datagrams put on the wire.
    pub datagrams_sent: u64,
    /// Datagrams received off the wire.
    pub datagrams_recv: u64,
    /// Protocol frames sent (several frames coalesce into one datagram).
    pub frames_sent: u64,
    /// Protocol frames received and demultiplexed.
    pub frames_recv: u64,
    /// Datagrams that carried more than one coalesced frame.
    pub batched_sends: u64,
    /// Wire bytes sent (headers included).
    pub bytes_sent: u64,
    /// Event-loop iterations.
    pub wakeups: u64,
    /// High-water mark of any member mailbox depth.
    pub mailbox_high_water: u64,
    /// Retry-on-silence frame resends.
    pub retries: u64,
    /// Frames dropped by the injected loss model.
    pub injected_drops: u64,
    /// Datagrams held back and swapped by the reorder injector.
    pub reordered: u64,
    /// Frames or payloads rejected by the decoders (`DecodeError`s).
    pub decode_errors: u64,
    /// Well-formed frames addressed to members this worker does not own.
    pub stray_frames: u64,
}

impl WorkerStats {
    /// Accumulate `other` into `self` (counters add, high-waters max).
    pub fn merge(&mut self, other: &WorkerStats) {
        self.datagrams_sent += other.datagrams_sent;
        self.datagrams_recv += other.datagrams_recv;
        self.frames_sent += other.frames_sent;
        self.frames_recv += other.frames_recv;
        self.batched_sends += other.batched_sends;
        self.bytes_sent += other.bytes_sent;
        self.wakeups += other.wakeups;
        self.mailbox_high_water = self.mailbox_high_water.max(other.mailbox_high_water);
        self.retries += other.retries;
        self.injected_drops += other.injected_drops;
        self.reordered += other.reordered;
        self.decode_errors += other.decode_errors;
        self.stray_frames += other.stray_frames;
    }
}

/// Everything one member needs inside its worker's shard.
struct MemberSlot<A> {
    id: MemberId,
    proto: HierGossip<A>,
    rng: DetRng,
    /// Memoized wire form of the last payload sent: gossip fans the
    /// same payload to several peers, so most sends reuse the bytes.
    memo: EncodeMemo<Payload<A>>,
    mailbox: VecDeque<(MemberId, Payload<A>)>,
    in_dirty: bool,
    /// Completed wall-clock rounds.
    round: u64,
    /// Round of the most recent inbound message (for retry-on-silence).
    last_rx_round: u64,
    reported: bool,
    linger_left: u64,
    retired: bool,
    /// Encoded frames of the most recent non-empty flush, kept for
    /// retry-on-silence. `(dst, payload bytes)`, entries reused.
    last_frames: Vec<(u32, Vec<u8>)>,
    last_frames_len: usize,
}

/// One shard-owning worker thread of a [`Cluster`](crate::cluster::Cluster).
pub(crate) struct Worker<A> {
    /// Owned sockets, each tagged with its pool index.
    pub(crate) sockets: Vec<(usize, UdpSocket)>,
    pub(crate) addrs: Arc<Vec<SocketAddr>>,
    pub(crate) n_members: u32,
    pub(crate) n_sockets: usize,
    pub(crate) cfg: RuntimeConfig,
    pub(crate) epoch: Instant,
    pub(crate) done: mpsc::Sender<MemberOutcome<A>>,
    pub(crate) shutdown: Arc<AtomicBool>,
    pub(crate) faults: FaultInjector,

    slots: Vec<MemberSlot<A>>,
    /// Global member id -> local slot index (`u32::MAX` = not ours).
    local_of: Vec<u32>,
    wheel: TimerWheel,
    live: usize,
    stats: WorkerStats,

    // Reused scratch:
    outbox: Outbox<A>,
    dirty: Vec<u32>,
    due: Vec<u32>,
    /// Per-destination-socket datagram under construction.
    out_bufs: Vec<Vec<u8>>,
    /// Frames coalesced into each `out_bufs` entry so far.
    out_frames: Vec<u32>,
    /// Completed datagrams awaiting the wire: `(dest socket index, bytes)`.
    ready: Vec<(usize, Vec<u8>)>,
    /// Datagrams sequenced (possibly reordered) for sending.
    wire: Vec<(SocketAddr, Vec<u8>)>,
    /// Recycled datagram buffers.
    spare: Vec<Vec<u8>>,
    recv_buf: Vec<u8>,
}

impl<A: WireAggregate> Worker<A> {
    /// Assemble a worker over its sockets and the members homed there.
    /// `members` is the full per-member constructor output; the worker
    /// adopts the subset whose home socket it owns.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        worker_id: usize,
        sockets: Vec<(usize, UdpSocket)>,
        addrs: Arc<Vec<SocketAddr>>,
        members: Vec<(MemberId, HierGossip<A>)>,
        n_members: u32,
        n_sockets: usize,
        cfg: RuntimeConfig,
        epoch: Instant,
        root_rng: &DetRng,
        done: mpsc::Sender<MemberOutcome<A>>,
        shutdown: Arc<AtomicBool>,
    ) -> Self {
        let mut local_of = vec![u32::MAX; n_members as usize];
        let mut slots = Vec::with_capacity(members.len());
        for (id, proto) in members {
            local_of[id.index()] = slots.len() as u32;
            slots.push(MemberSlot {
                id,
                proto,
                rng: root_rng.fork(0x7275_6E00 ^ u64::from(id.0)), // "run"
                memo: EncodeMemo::new(),
                mailbox: VecDeque::new(),
                in_dirty: false,
                round: 0,
                last_rx_round: 0,
                reported: false,
                linger_left: cfg.linger_rounds,
                retired: false,
                last_frames: Vec::new(),
                last_frames_len: 0,
            });
        }
        let interval = cfg.round_interval.max(Duration::from_micros(200));
        // Slot count ≈ one round of granularity-interval/4 ticks per
        // lap; laps are handled by the wheel anyway.
        let mut wheel = TimerWheel::new(epoch, interval / 4, 64);
        for local in 0..slots.len() as u32 {
            wheel.schedule(epoch + interval, local);
        }
        let live = slots.len();
        let faults = FaultInjector::new(
            cfg.loss.clone(),
            cfg.reorder,
            root_rng.fork(0x6661_756C ^ worker_id as u64), // "faul"
        );
        Worker {
            sockets,
            addrs,
            n_members,
            n_sockets,
            cfg,
            epoch,
            done,
            shutdown,
            faults,
            slots,
            local_of,
            wheel,
            live,
            stats: WorkerStats::default(),
            outbox: Outbox::new(),
            dirty: Vec::new(),
            due: Vec::new(),
            out_bufs: (0..n_sockets).map(|_| Vec::new()).collect(),
            out_frames: vec![0; n_sockets],
            ready: Vec::new(),
            wire: Vec::new(),
            spare: Vec::new(),
            recv_buf: vec![0u8; 64 * 1024],
        }
    }

    /// The worker's event loop; returns its counters at exit.
    pub(crate) fn run(mut self) -> WorkerStats {
        let interval = self.cfg.round_interval.max(Duration::from_micros(200));
        let poll_cap = (interval / 4).clamp(Duration::from_micros(200), Duration::from_millis(2));
        loop {
            self.stats.wakeups += 1;
            self.drain_sockets();
            self.deliver_mailboxes();
            self.tick_due(Instant::now());
            self.flush_ready();
            if self.live == 0 || self.shutdown.load(Ordering::Relaxed) {
                break;
            }
            let now = Instant::now();
            let until_deadline = self
                .wheel
                .next_deadline()
                .map_or(poll_cap, |d| d.saturating_duration_since(now));
            std::thread::sleep(until_deadline.min(poll_cap).max(Duration::from_micros(50)));
        }
        self.stats
    }

    /// Poll every owned socket dry, demultiplexing frames into member
    /// mailboxes.
    // lint:hot — the receive path: every datagram of a 10k-member
    // cluster crosses this loop; scratch is reused, nothing allocates.
    fn drain_sockets(&mut self) {
        for (_, socket) in &self.sockets {
            // `WouldBlock` (or any transient error) ends this socket's drain.
            while let Ok((len, _)) = socket.recv_from(&mut self.recv_buf) {
                self.stats.datagrams_recv += 1;
                for frame in FrameIter::new(&self.recv_buf[..len], self.n_members) {
                    let frame = match frame {
                        Ok(f) => f,
                        Err(_) => {
                            self.stats.decode_errors += 1;
                            break; // rest of the datagram is unusable
                        }
                    };
                    self.stats.frames_recv += 1;
                    let local = self.local_of[frame.dst as usize];
                    if local == u32::MAX {
                        self.stats.stray_frames += 1;
                        continue;
                    }
                    let mut bytes = frame.payload;
                    let payload = match codec::decode::<A, _>(&mut bytes) {
                        Ok(p) => p,
                        Err(_) => {
                            self.stats.decode_errors += 1;
                            continue;
                        }
                    };
                    let slot = &mut self.slots[local as usize];
                    if slot.retired {
                        continue;
                    }
                    slot.mailbox.push_back((MemberId(frame.src), payload));
                    self.stats.mailbox_high_water =
                        self.stats.mailbox_high_water.max(slot.mailbox.len() as u64);
                    if !slot.in_dirty {
                        slot.in_dirty = true;
                        self.dirty.push(local);
                    }
                }
            }
        }
    }

    /// Run `on_message` for every member with mail, in member order, and
    /// flush the gossip each delivery produced.
    fn deliver_mailboxes(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        self.dirty.sort_unstable();
        let mut i = 0;
        while i < self.dirty.len() {
            let local = self.dirty[i];
            i += 1;
            let slot = &mut self.slots[local as usize];
            slot.in_dirty = false;
            slot.last_rx_round = slot.round;
            while let Some((from, payload)) = slot.mailbox.pop_front() {
                let mut ctx = Ctx::new(slot.round, &mut slot.rng);
                slot.proto
                    .on_message(from, payload, &mut ctx, &mut self.outbox);
            }
            self.flush_outbox(local, false);
        }
        self.dirty.clear();
    }

    /// Pop due round deadlines and advance each member's round state.
    fn tick_due(&mut self, now: Instant) {
        let interval = self.cfg.round_interval.max(Duration::from_micros(200));
        self.due.clear();
        self.wheel.pop_due(now, &mut self.due);
        let mut k = 0;
        while k < self.due.len() {
            let local = self.due[k];
            k += 1;
            let slot = &mut self.slots[local as usize];
            if slot.retired {
                continue;
            }
            if !slot.reported {
                if !slot.proto.is_done() && slot.round < self.cfg.max_rounds {
                    let mut ctx = Ctx::new(slot.round, &mut slot.rng);
                    slot.proto.on_round(&mut ctx, &mut self.outbox);
                    // Retry-on-silence backs off exponentially: resend
                    // after r, 2r, 4r, ... silent rounds, not every
                    // round — a congested cluster must not answer
                    // silence with a retry storm.
                    let silent_rounds = slot.round.saturating_sub(slot.last_rx_round);
                    let r = self.cfg.retry_silent_rounds;
                    let silent = r > 0
                        && silent_rounds >= r
                        && silent_rounds.is_multiple_of(r)
                        && (silent_rounds / r).is_power_of_two();
                    self.flush_outbox(local, silent);
                }
                let slot = &mut self.slots[local as usize];
                slot.round += 1;
                if slot.proto.is_done() || slot.round >= self.cfg.max_rounds {
                    slot.reported = true;
                    let outcome = MemberOutcome {
                        member: slot.id,
                        estimate: slot.proto.estimate().cloned(),
                        rounds: slot.round,
                    };
                    // The collector may already have what it needs and
                    // hung up; lingering members keep serving either way.
                    let _ = self.done.send(outcome);
                }
            } else {
                slot.round += 1;
                if slot.linger_left == 0 {
                    slot.retired = true;
                    self.live -= 1;
                    continue;
                }
                slot.linger_left -= 1;
            }
            let slot = &self.slots[local as usize];
            let next = self.epoch + interval * u32::try_from(slot.round + 1).unwrap_or(u32::MAX);
            self.wheel.schedule(next, local);
        }
    }

    /// Encode and coalesce one member's queued gossip; on `retry`,
    /// additionally resend the frames of its last non-empty flush.
    // lint:hot — the send path: every protocol message is encoded,
    // loss-filtered, and coalesced here.
    fn flush_outbox(&mut self, local: u32, retry: bool) {
        let slot = &mut self.slots[local as usize];
        let fresh = !self.outbox.is_empty();
        if fresh {
            slot.last_frames_len = 0;
        }
        for (to, payload) in self.outbox.drain() {
            let bytes = slot
                .memo
                .bytes_for(&payload, |p, buf| codec::encode(p, buf));
            // Remember the frame for retry-on-silence before loss
            // injection: a retry resends what the protocol *tried* to
            // send, whether or not the channel ate it.
            if slot.last_frames_len < RETRY_FRAME_CAP {
                if slot.last_frames.len() == slot.last_frames_len {
                    // lint:allow(D009) one-time retry-cache growth, bounded by RETRY_FRAME_CAP
                    slot.last_frames.push((to.0, Vec::new()));
                }
                let entry = &mut slot.last_frames[slot.last_frames_len];
                entry.0 = to.0;
                entry.1.clear();
                entry.1.extend_from_slice(bytes);
                slot.last_frames_len += 1;
            }
            if self.faults.drop_frame(slot.id, to, slot.round) {
                self.stats.injected_drops += 1;
                continue;
            }
            let sock = to.index() % self.n_sockets;
            let need = frame_len(bytes.len());
            let buf = &mut self.out_bufs[sock];
            if !buf.is_empty() && buf.len() + need > self.cfg.max_datagram {
                let full = std::mem::replace(buf, self.spare.pop().unwrap_or_default());
                self.ready.push((sock, full));
                if self.out_frames[sock] > 1 {
                    self.stats.batched_sends += 1;
                }
                self.out_frames[sock] = 0;
            }
            push_frame(&mut self.out_bufs[sock], to.0, slot.id.0, bytes);
            self.out_frames[sock] += 1;
            self.stats.frames_sent += 1;
        }
        if retry && !slot.proto.is_done() && slot.last_frames_len > 0 {
            for i in 0..slot.last_frames_len {
                let (to, ref bytes) = slot.last_frames[i];
                if self.faults.drop_frame(slot.id, MemberId(to), slot.round) {
                    self.stats.injected_drops += 1;
                    continue;
                }
                let sock = to as usize % self.n_sockets;
                let need = frame_len(bytes.len());
                let buf = &mut self.out_bufs[sock];
                if !buf.is_empty() && buf.len() + need > self.cfg.max_datagram {
                    let full = std::mem::replace(buf, self.spare.pop().unwrap_or_default());
                    self.ready.push((sock, full));
                    if self.out_frames[sock] > 1 {
                        self.stats.batched_sends += 1;
                    }
                    self.out_frames[sock] = 0;
                }
                push_frame(&mut self.out_bufs[sock], to, slot.id.0, bytes);
                self.out_frames[sock] += 1;
                self.stats.frames_sent += 1;
                self.stats.retries += 1;
            }
        }
    }

    /// Seal every pending datagram, sequence the batch through the
    /// reorder pocket, and put it on the wire.
    // lint:hot — one call per wakeup; sends the whole coalesced batch.
    fn flush_ready(&mut self) {
        for sock in 0..self.n_sockets {
            if self.out_bufs[sock].is_empty() {
                continue;
            }
            let full = std::mem::replace(
                &mut self.out_bufs[sock],
                self.spare.pop().unwrap_or_default(),
            );
            self.ready.push((sock, full));
            if self.out_frames[sock] > 1 {
                self.stats.batched_sends += 1;
            }
            self.out_frames[sock] = 0;
        }
        if self.ready.is_empty() {
            return;
        }
        for (sock, bytes) in self.ready.drain(..) {
            let dest = self.addrs[sock];
            if self.faults.sequence(dest, bytes, &mut self.wire) {
                self.stats.reordered += 1;
            }
        }
        self.faults.flush_pocket(&mut self.wire);
        let mut wire = std::mem::take(&mut self.wire);
        let mut since_drain = 0u64;
        for (dest, bytes) in wire.drain(..) {
            self.stats.datagrams_sent += 1;
            self.stats.bytes_sent += bytes.len() as u64;
            since_drain += bytes.len() as u64;
            let _ = self.sockets[0].1.send_to(&bytes, dest);
            let mut recycled = bytes;
            recycled.clear();
            self.spare.push(recycled);
            // Backpressure: reading our own sockets mid-burst stops the
            // kernel receive queues from overflowing (see
            // DRAIN_EVERY_BYTES). Received frames wait in mailboxes for
            // the next delivery pass.
            if since_drain >= DRAIN_EVERY_BYTES {
                since_drain = 0;
                self.drain_sockets();
            }
        }
        self.wire = wire;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::FRAME_HEADER_LEN;

    #[test]
    fn worker_stats_merge_adds_and_maxes() {
        let mut a = WorkerStats {
            datagrams_sent: 3,
            mailbox_high_water: 5,
            ..Default::default()
        };
        let b = WorkerStats {
            datagrams_sent: 4,
            mailbox_high_water: 2,
            frames_recv: 9,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.datagrams_sent, 7);
        assert_eq!(a.mailbox_high_water, 5);
        assert_eq!(a.frames_recv, 9);
    }

    #[test]
    fn frame_header_constant_matches_format() {
        // dst u32 + src u32 + len u16
        assert_eq!(FRAME_HEADER_LEN, 4 + 4 + 2);
    }
}
