//! A hashed timer wheel driving round and linger deadlines.
//!
//! Each [`Worker`](crate::multiplex) owns one wheel. Members schedule
//! their next round tick (and retry / linger expiries) as absolute
//! deadlines; the worker advances the wheel once per wakeup and
//! processes whatever fell due. The wheel is anchored at a cluster-wide
//! epoch so that members sharing a cadence land in the same slot and
//! round boundaries stay aligned across workers — the property that
//! makes the wall-clock runtime behave like the synchronous simulator
//! plus channel faults.
//!
//! The wheel is deliberately simple: `SLOTS` buckets of `tick`-sized
//! granularity, entries carry their absolute tick index so a slot can
//! hold timers several laps apart without confusion. All operations are
//! O(1) amortized; the wheel never allocates after the first lap at a
//! given load (slot `Vec`s are drained in place and reused).

use std::time::{Duration, Instant};

/// A deadline wheel over member-local timers.
#[derive(Debug)]
pub struct TimerWheel {
    /// Anchor: tick 0 is `epoch`; all deadlines are quantized against it.
    epoch: Instant,
    /// Slot granularity.
    tick: Duration,
    /// `slots[i]` holds entries whose `abs_tick % slots.len() == i`.
    slots: Vec<Vec<Entry>>,
    /// The next absolute tick the wheel will inspect.
    cursor: u64,
    /// Scheduled-but-not-yet-popped entries.
    pending: usize,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    abs_tick: u64,
    member: u32,
}

impl TimerWheel {
    /// A wheel anchored at `epoch` with `slots` buckets of `tick`
    /// granularity. `slots` is rounded up to a power of two so the slot
    /// index is a mask, and `tick` is floored at 100µs to keep the
    /// quantization sane.
    pub fn new(epoch: Instant, tick: Duration, slots: usize) -> Self {
        let tick = tick.max(Duration::from_micros(100));
        let slots = slots.max(8).next_power_of_two();
        TimerWheel {
            epoch,
            tick,
            slots: (0..slots).map(|_| Vec::new()).collect(),
            cursor: 0,
            pending: 0,
        }
    }

    /// Absolute tick index of a deadline (saturating below the epoch).
    fn tick_of(&self, deadline: Instant) -> u64 {
        let dt = deadline.saturating_duration_since(self.epoch);
        // Integer division by the tick length; u128 arithmetic so huge
        // deadlines cannot overflow.
        (dt.as_nanos() / self.tick.as_nanos().max(1)) as u64
    }

    /// Schedule `member`'s timer at `deadline`. A deadline already in
    /// the past lands on the cursor and pops on the next advance —
    /// timers never silently vanish behind the wheel.
    pub fn schedule(&mut self, deadline: Instant, member: u32) {
        let abs_tick = self.tick_of(deadline).max(self.cursor);
        let mask = self.slots.len() as u64 - 1;
        self.slots[(abs_tick & mask) as usize].push(Entry { abs_tick, member });
        self.pending += 1;
    }

    /// Advance the wheel to `now`, appending every due member to `out`
    /// (in slot order; members due in the same slot pop in scheduling
    /// order). Returns the number popped.
    pub fn pop_due(&mut self, now: Instant, out: &mut Vec<u32>) -> usize {
        let target = self.tick_of(now);
        let mask = self.slots.len() as u64 - 1;
        let mut popped = 0;
        // Inspect at most one full lap: past `target` and past one lap
        // there is nothing more to find this call.
        let span = (target.saturating_sub(self.cursor) + 1).min(self.slots.len() as u64);
        for step in 0..span {
            let tick = self.cursor + step;
            let slot = &mut self.slots[(tick & mask) as usize];
            let mut i = 0;
            while i < slot.len() {
                if slot[i].abs_tick <= target {
                    out.push(slot.swap_remove(i).member);
                    popped += 1;
                } else {
                    i += 1;
                }
            }
        }
        self.cursor = target + 1;
        self.pending -= popped;
        popped
    }

    /// Earliest pending deadline, if any — what the worker sleeps
    /// towards. O(slots + pending); called once per wakeup.
    pub fn next_deadline(&self) -> Option<Instant> {
        let mut best: Option<u64> = None;
        for slot in &self.slots {
            for e in slot {
                best = Some(best.map_or(e.abs_tick, |b: u64| b.min(e.abs_tick)));
            }
        }
        best.map(|t| self.epoch + self.tick * u32::try_from(t).unwrap_or(u32::MAX))
    }

    /// Number of scheduled, not-yet-popped timers.
    pub fn pending(&self) -> usize {
        self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wheel(tick_ms: u64) -> (TimerWheel, Instant) {
        let epoch = Instant::now();
        (
            TimerWheel::new(epoch, Duration::from_millis(tick_ms), 16),
            epoch,
        )
    }

    #[test]
    fn due_timers_pop_in_order() {
        let (mut w, epoch) = wheel(1);
        w.schedule(epoch + Duration::from_millis(5), 1);
        w.schedule(epoch + Duration::from_millis(2), 2);
        w.schedule(epoch + Duration::from_millis(9), 3);
        let mut due = Vec::new();
        w.pop_due(epoch + Duration::from_millis(3), &mut due);
        assert_eq!(due, vec![2]);
        w.pop_due(epoch + Duration::from_millis(20), &mut due);
        assert_eq!(due, vec![2, 1, 3]);
        assert_eq!(w.pending(), 0);
    }

    #[test]
    fn past_deadlines_fire_immediately() {
        let (mut w, epoch) = wheel(1);
        let mut due = Vec::new();
        w.pop_due(epoch + Duration::from_millis(50), &mut due); // move cursor forward
        w.schedule(epoch + Duration::from_millis(10), 7); // already past
        w.pop_due(epoch + Duration::from_millis(51), &mut due);
        assert_eq!(due, vec![7]);
    }

    #[test]
    fn laps_do_not_collide() {
        // Two timers one full wheel lap apart share a slot; only the
        // near one pops.
        let (mut w, epoch) = wheel(1);
        w.schedule(epoch + Duration::from_millis(3), 1);
        w.schedule(epoch + Duration::from_millis(3 + 16), 2);
        let mut due = Vec::new();
        w.pop_due(epoch + Duration::from_millis(4), &mut due);
        assert_eq!(due, vec![1]);
        assert_eq!(w.pending(), 1);
        w.pop_due(epoch + Duration::from_millis(30), &mut due);
        assert_eq!(due, vec![1, 2]);
    }

    #[test]
    fn next_deadline_tracks_earliest() {
        let (mut w, epoch) = wheel(2);
        assert!(w.next_deadline().is_none());
        w.schedule(epoch + Duration::from_millis(8), 1);
        w.schedule(epoch + Duration::from_millis(4), 2);
        let next = w.next_deadline().expect("pending");
        assert!(next <= epoch + Duration::from_millis(4));
        assert!(next >= epoch + Duration::from_millis(2));
    }

    #[test]
    fn repeated_schedule_reuses_slots() {
        let (mut w, epoch) = wheel(1);
        let mut due = Vec::new();
        for lap in 0..100u64 {
            for m in 0..8 {
                w.schedule(epoch + Duration::from_millis(lap + 1), m);
            }
            due.clear();
            w.pop_due(epoch + Duration::from_millis(lap + 1), &mut due);
            assert_eq!(due.len(), 8, "lap {lap}");
        }
        assert_eq!(w.pending(), 0);
    }
}
