//! # gridagg-runtime
//!
//! A **real-network runtime** for the Hierarchical Gossiping protocol:
//! every group member is a thread with its own UDP socket, gossip
//! rounds are wall-clock timer ticks, and messages are the binary wire
//! form from `gridagg_core::message::codec` — no simulator in the loop.
//!
//! The protocol state machine ([`HierGossip`]) is *identical* to the one
//! the simulator drives: `AggregationProtocol` is runtime-agnostic, so
//! the code path evaluated in the paper's figures is the code path that
//! runs on sockets here. That separation — pure protocol logic, swap
//! the harness — is the core design property this crate demonstrates.
//!
//! ```no_run
//! use gridagg_runtime::{run_group, RuntimeConfig};
//! use gridagg_core::hiergossip::HierGossipConfig;
//! use gridagg_core::scope::ScopeIndex;
//! use gridagg_group::view::View;
//! use gridagg_hierarchy::{FairHashPlacement, Hierarchy};
//! use gridagg_aggregate::{Aggregate, Average};
//!
//! # fn demo() -> std::io::Result<()> {
//! let n = 32;
//! let h = Hierarchy::for_group(4, n).unwrap();
//! let index = ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, 1));
//! let votes: Vec<f64> = (0..n).map(|i| i as f64).collect();
//! let outcomes = run_group::<Average>(
//!     votes,
//!     index,
//!     HierGossipConfig::default(),
//!     RuntimeConfig::default(),
//! )?;
//! assert_eq!(outcomes.len(), 32);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use gridagg_aggregate::wire::{EncodeMemo, WireAggregate};
use gridagg_aggregate::Tagged;
use gridagg_core::hiergossip::{HierGossip, HierGossipConfig};
use gridagg_core::message::codec;
use gridagg_core::protocol::{AggregationProtocol, Ctx, Outbox};
use gridagg_core::scope::ScopeIndex;
use gridagg_core::Payload;
use gridagg_group::MemberId;
use gridagg_simnet::rng::DetRng;

/// Wall-clock parameters of a real-network group run.
#[derive(Debug, Clone, Copy)]
pub struct RuntimeConfig {
    /// Length of one gossip round.
    pub round_interval: Duration,
    /// Safety cap: a member gives up after this many rounds even if the
    /// protocol has not terminated.
    pub max_rounds: u64,
    /// Send-side message drop probability (deterministic per member
    /// stream) — lets a localhost demo exhibit the paper's loss
    /// tolerance without a lossy network.
    pub inject_loss: f64,
    /// Seed for per-member randomness (gossipee selection, injected
    /// loss). The run is *not* globally deterministic — real schedulers
    /// and sockets interleave freely — but member-local choices are.
    pub seed: u64,
    /// How long terminated members linger to keep answering stragglers'
    /// pushes before the group shuts down, in rounds.
    pub linger_rounds: u64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            round_interval: Duration::from_millis(5),
            max_rounds: 400,
            inject_loss: 0.0,
            seed: 1,
            linger_rounds: 20,
        }
    }
}

/// One member's outcome of a real-network run.
#[derive(Debug, Clone)]
pub struct MemberOutcome<A> {
    /// The member.
    pub member: MemberId,
    /// Its final estimate, if the protocol terminated in time.
    pub estimate: Option<Tagged<A>>,
    /// Wall-clock rounds the member ran before terminating.
    pub rounds: u64,
}

impl<A: WireAggregate> MemberOutcome<A> {
    /// Completeness of the estimate over a group of `n` (0 when the
    /// member never finished).
    pub fn completeness(&self, n: usize) -> f64 {
        self.estimate.as_ref().map_or(0.0, |e| e.completeness(n))
    }
}

/// Run a whole group over localhost UDP and collect every member's
/// outcome. Sockets are bound to ephemeral ports up front, so parallel
/// runs (e.g. concurrent tests) never collide. Blocks until every
/// member has reported (bounded by `max_rounds` ticks).
///
/// # Errors
///
/// Returns any socket I/O error raised while binding.
///
/// # Panics
///
/// Panics if `votes.len()` does not match the index population.
pub fn run_group<A: WireAggregate + Send + 'static>(
    votes: Vec<f64>,
    index: Arc<ScopeIndex>,
    proto_cfg: HierGossipConfig,
    rt_cfg: RuntimeConfig,
) -> std::io::Result<Vec<MemberOutcome<A>>> {
    let n = votes.len();
    assert_eq!(n, index.len(), "one vote per indexed member");

    // Bind everyone first and share the address table.
    let mut sockets = Vec::with_capacity(n);
    let mut addrs = Vec::with_capacity(n);
    for _ in 0..n {
        let socket = UdpSocket::bind(("127.0.0.1", 0))?;
        addrs.push(socket.local_addr()?);
        sockets.push(socket);
    }
    let addrs = Arc::new(addrs);

    let (done_tx, done_rx) = mpsc::channel::<MemberOutcome<A>>();
    let shutdown = Arc::new(AtomicBool::new(false));

    let root_rng = DetRng::seeded(rt_cfg.seed);
    let mut handles = Vec::with_capacity(n);
    for (i, socket) in sockets.into_iter().enumerate() {
        let me = MemberId(i as u32);
        let proto = HierGossip::<A>::new(me, votes[i], index.clone(), proto_cfg);
        let task = MemberTask {
            me,
            socket,
            addrs: addrs.clone(),
            proto,
            rng: root_rng.fork(0x7275_6E00 ^ i as u64), // "run"
            cfg: rt_cfg,
            done: done_tx.clone(),
            shutdown: shutdown.clone(),
            wire: EncodeMemo::new(),
        };
        handles.push(std::thread::spawn(move || task.run()));
    }
    drop(done_tx);

    // Collect one outcome per member, then release the lingerers.
    let mut outcomes = Vec::with_capacity(n);
    while outcomes.len() < n {
        match done_rx.recv() {
            Ok(o) => outcomes.push(o),
            Err(_) => break, // all senders gone (shouldn't happen)
        }
    }
    shutdown.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }
    outcomes.sort_by_key(|o| o.member);
    Ok(outcomes)
}

struct MemberTask<A> {
    me: MemberId,
    socket: UdpSocket,
    addrs: Arc<Vec<std::net::SocketAddr>>,
    proto: HierGossip<A>,
    rng: DetRng,
    cfg: RuntimeConfig,
    done: mpsc::Sender<MemberOutcome<A>>,
    shutdown: Arc<AtomicBool>,
    /// Memoized wire form of the last payload sent. Gossip fans the
    /// same payload out to several peers (and repeats it across rounds
    /// while state is stable), so most sends reuse the cached bytes
    /// instead of re-encoding.
    wire: EncodeMemo<Payload<A>>,
}

impl<A: WireAggregate> MemberTask<A> {
    fn run(mut self) {
        let interval = self.cfg.round_interval.max(Duration::from_micros(200));
        let mut out = Outbox::new();
        let mut buf = vec![0u8; 64 * 1024];
        let mut round: u64 = 0;
        let mut reported = false;
        let mut linger_left = self.cfg.linger_rounds;
        let mut next_tick = Instant::now() + interval;

        loop {
            // Round ticks on wall-clock boundaries; like a timer with
            // "delay" missed-tick behaviour, a late tick reschedules
            // from now rather than bursting to catch up.
            if Instant::now() >= next_tick {
                next_tick = Instant::now() + interval;
                if !self.proto.is_done() && round < self.cfg.max_rounds {
                    let mut ctx = Ctx::new(round, &mut self.rng);
                    self.proto.on_round(&mut ctx, &mut out);
                    self.flush(&mut out);
                }
                round += 1;
                let finished = self.proto.is_done() || round >= self.cfg.max_rounds;
                if finished && !reported {
                    reported = true;
                    let outcome = MemberOutcome {
                        member: self.me,
                        estimate: self.proto.estimate().cloned(),
                        rounds: round,
                    };
                    let _ = self.done.send(outcome);
                }
                if reported {
                    // linger to answer stragglers, then leave once the
                    // coordinator signals or patience runs out
                    if self.shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                    if linger_left == 0 {
                        return;
                    }
                    linger_left -= 1;
                }
            }

            // Receive until the next tick is due.
            let wait = next_tick
                .saturating_duration_since(Instant::now())
                .max(Duration::from_micros(100));
            let _ = self.socket.set_read_timeout(Some(wait));
            match self.socket.recv_from(&mut buf) {
                Ok((len, from_addr)) => {
                    let Some(from) = self.addrs.iter().position(|a| *a == from_addr) else {
                        continue; // not a group member
                    };
                    let mut slice = &buf[..len];
                    let Ok(payload) = codec::decode::<A, _>(&mut slice) else {
                        continue; // junk datagram
                    };
                    let mut ctx = Ctx::new(round, &mut self.rng);
                    self.proto
                        .on_message(MemberId(from as u32), payload, &mut ctx, &mut out);
                    self.flush(&mut out);
                }
                Err(_) => {
                    // timeout (fall through to the tick check) or a
                    // transient socket error — either way, keep going
                }
            }
        }
    }

    fn flush(&mut self, out: &mut Outbox<A>) {
        for (to, payload) in out.drain() {
            if self.cfg.inject_loss > 0.0 && self.rng.chance(self.cfg.inject_loss) {
                continue; // injected send-side loss
            }
            let wire = self
                .wire
                .bytes_for(&payload, |p, buf| codec::encode(p, buf));
            let _ = self.socket.send_to(wire, self.addrs[to.index()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridagg_aggregate::{Aggregate, Average};
    use gridagg_group::view::View;
    use gridagg_hierarchy::{FairHashPlacement, Hierarchy};

    fn index(n: usize) -> Arc<ScopeIndex> {
        let h = Hierarchy::for_group(4, n).expect("shape");
        ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, 9))
    }

    #[test]
    fn udp_group_converges_on_loopback() {
        let n = 24;
        let votes: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let truth = (n as f64 - 1.0) / 2.0;
        let outcomes = run_group::<Average>(
            votes,
            index(n),
            HierGossipConfig::default(),
            RuntimeConfig::default(),
        )
        .expect("run");
        assert_eq!(outcomes.len(), n);
        let mean_completeness: f64 =
            outcomes.iter().map(|o| o.completeness(n)).sum::<f64>() / n as f64;
        assert!(
            mean_completeness > 0.9,
            "loopback run incomplete: {mean_completeness}"
        );
        // fully complete members computed the exact average
        for o in &outcomes {
            if o.completeness(n) == 1.0 {
                let est = o.estimate.as_ref().unwrap();
                assert!((est.aggregate().unwrap().summary() - truth).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn udp_group_tolerates_injected_loss() {
        let n = 24;
        let votes: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let cfg = RuntimeConfig {
            inject_loss: 0.25,
            ..Default::default()
        };
        let outcomes =
            run_group::<Average>(votes, index(n), HierGossipConfig::default(), cfg).expect("run");
        let mean_completeness: f64 =
            outcomes.iter().map(|o| o.completeness(n)).sum::<f64>() / n as f64;
        assert!(
            mean_completeness > 0.7,
            "lossy loopback run collapsed: {mean_completeness}"
        );
    }

    #[test]
    fn concurrent_groups_do_not_collide() {
        // ephemeral ports mean two groups can run side by side
        let run = |seed: u64| {
            let n = 8;
            let votes: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let cfg = RuntimeConfig {
                seed,
                ..Default::default()
            };
            run_group::<Average>(votes, index(n), HierGossipConfig::default(), cfg).expect("run")
        };
        let (a, b) = std::thread::scope(|s| {
            let ta = s.spawn(|| run(1));
            let tb = s.spawn(|| run(2));
            (ta.join().expect("a"), tb.join().expect("b"))
        });
        assert_eq!(a.len(), 8);
        assert_eq!(b.len(), 8);
    }
}
