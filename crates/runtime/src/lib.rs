//! # gridagg-runtime
//!
//! A **multiplexed real-network runtime** for the Hierarchical
//! Gossiping protocol: thousands of group members share a small pool of
//! UDP sockets and worker threads, gossip rounds are wall-clock timer
//! ticks, and messages are the binary wire form from
//! `gridagg_core::message::codec` — no simulator in the loop.
//!
//! The protocol state machine ([`HierGossip`](gridagg_core::hiergossip::HierGossip)) is *identical* to the
//! one the simulator drives: `AggregationProtocol` is runtime-agnostic,
//! so the code path evaluated in the paper's figures is the code path
//! that runs on sockets here. That separation — pure protocol logic,
//! swap the harness — is the core design property this crate
//! demonstrates, now at 10,000-member scale on loopback.
//!
//! ## Architecture
//!
//! - [`endpoint`] — the shared socket pool, the per-frame demux header
//!   (`dst | src | len | payload`) that lets one socket serve many
//!   members, and fault injection (loss models + reorder) at the socket
//!   boundary.
//! - [`multiplex`] — the sharded event loop: each worker thread owns a
//!   disjoint subset of sockets and the members homed on them, with
//!   per-member mailboxes, an outbox coalescing frames per destination
//!   socket, and per-worker counters.
//! - [`timer`] — the epoch-anchored timer wheel driving round and
//!   linger deadlines, keeping round boundaries aligned across workers.
//! - [`cluster`] — assembly, outcome collection, graceful teardown, and
//!   the [`cluster::RuntimeReport`] mirroring the
//!   simulator's `RunReport`.
//!
//! ```no_run
//! use gridagg_runtime::{run_group, RuntimeConfig};
//! use gridagg_core::hiergossip::HierGossipConfig;
//! use gridagg_core::scope::ScopeIndex;
//! use gridagg_group::view::View;
//! use gridagg_hierarchy::{FairHashPlacement, Hierarchy};
//! use gridagg_aggregate::{Aggregate, Average};
//!
//! # fn demo() -> Result<(), gridagg_runtime::RuntimeError> {
//! let n = 32;
//! let h = Hierarchy::for_group(4, n).unwrap();
//! let index = ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, 1));
//! let votes: Vec<f64> = (0..n).map(|i| i as f64).collect();
//! let outcomes = run_group::<Average>(
//!     votes,
//!     index,
//!     HierGossipConfig::default(),
//!     RuntimeConfig::default(),
//! )?;
//! assert_eq!(outcomes.len(), 32);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]

pub mod cluster;
pub mod endpoint;
pub mod multiplex;
pub mod timer;

use std::sync::Arc;
use std::time::Duration;

use gridagg_aggregate::wire::WireAggregate;
use gridagg_aggregate::Tagged;
use gridagg_core::hiergossip::HierGossipConfig;
use gridagg_core::scope::ScopeIndex;
use gridagg_group::MemberId;
use gridagg_simnet::loss::{LossModel, UniformLoss};

pub use cluster::{run_cluster, Cluster, ClusterRun, RuntimeReport};
pub use multiplex::WorkerStats;

/// Wall-clock and multiplexing parameters of a real-network cluster.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Length of one gossip round.
    pub round_interval: Duration,
    /// Safety cap: a member gives up after this many rounds even if the
    /// protocol has not terminated.
    pub max_rounds: u64,
    /// Seed for per-member randomness (gossipee selection, injected
    /// faults). The run is *not* globally deterministic — real
    /// schedulers and sockets interleave freely — but member-local
    /// choices are.
    pub seed: u64,
    /// How long terminated members linger to keep answering stragglers'
    /// pushes before retiring, in rounds.
    pub linger_rounds: u64,
    /// Size of the shared UDP socket pool members multiplex over.
    pub sockets: usize,
    /// Worker threads driving the member shards (capped at the socket
    /// count; each worker owns the sockets `s` with `s % workers == w`).
    pub workers: usize,
    /// Multiplexing budget: at most `sockets × members_per_socket`
    /// members may share the pool. Exceeding it is a loud
    /// [`RuntimeError::BudgetExceeded`], never a hang.
    pub members_per_socket: usize,
    /// Byte cap per coalesced datagram (≈ one MTU of frames).
    pub max_datagram: usize,
    /// Resend the last flushed frames after this many rounds without
    /// any inbound traffic (0 disables retry-on-silence).
    pub retry_silent_rounds: u64,
    /// Channel loss injected at the socket boundary — any simulator
    /// [`LossModel`] (`None` = perfect channel).
    pub loss: Option<Arc<dyn LossModel>>,
    /// Per-datagram probability of being held back behind the next
    /// datagram (pairwise reorder at the socket boundary).
    pub reorder: f64,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            round_interval: Duration::from_millis(5),
            max_rounds: 400,
            seed: 1,
            linger_rounds: 20,
            sockets: 16,
            workers: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
            members_per_socket: 256,
            max_datagram: 1400,
            retry_silent_rounds: 2,
            loss: None,
            reorder: 0.0,
        }
    }
}

impl RuntimeConfig {
    /// Inject uniform i.i.d. loss with probability `p` at the socket
    /// boundary — the `ucastl` knob of the paper's simulations, applied
    /// to real datagrams.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability in `[0, 1]`.
    #[must_use]
    pub fn with_uniform_loss(mut self, p: f64) -> Self {
        self.loss = Some(Arc::new(
            UniformLoss::new(p).expect("probability in [0, 1]"),
        ));
        self
    }

    /// Largest group the configured pool may host.
    pub fn capacity(&self) -> usize {
        self.sockets
            .max(1)
            .saturating_mul(self.members_per_socket.max(1))
    }
}

/// Why a cluster could not run.
#[derive(Debug)]
pub enum RuntimeError {
    /// Socket or thread-spawn I/O failure.
    Io(std::io::Error),
    /// The requested member count exceeds the multiplexing budget
    /// (`sockets × members_per_socket`). Raise the budget or shrink the
    /// group; the runtime refuses to over-subscribe and hang.
    BudgetExceeded {
        /// Members requested.
        members: usize,
        /// Sockets in the configured pool.
        sockets: usize,
        /// Configured members-per-socket budget.
        members_per_socket: usize,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Io(e) => write!(f, "runtime I/O failure: {e}"),
            RuntimeError::BudgetExceeded {
                members,
                sockets,
                members_per_socket,
            } => write!(
                f,
                "{members} members exceed the multiplexing budget of \
                 {sockets} sockets x {members_per_socket} members/socket \
                 (= {} max); raise RuntimeConfig::sockets or members_per_socket",
                sockets * members_per_socket
            ),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Io(e) => Some(e),
            RuntimeError::BudgetExceeded { .. } => None,
        }
    }
}

impl From<std::io::Error> for RuntimeError {
    fn from(e: std::io::Error) -> Self {
        RuntimeError::Io(e)
    }
}

/// One member's outcome of a real-network run.
#[derive(Debug, Clone)]
pub struct MemberOutcome<A> {
    /// The member.
    pub member: MemberId,
    /// Its final estimate, if the protocol terminated in time.
    pub estimate: Option<Tagged<A>>,
    /// Wall-clock rounds the member ran before terminating.
    pub rounds: u64,
}

impl<A: WireAggregate> MemberOutcome<A> {
    /// Completeness of the estimate over a group of `n` (0 when the
    /// member never finished).
    pub fn completeness(&self, n: usize) -> f64 {
        self.estimate.as_ref().map_or(0.0, |e| e.completeness(n))
    }
}

/// Run a whole group over localhost UDP and collect every member's
/// outcome, sorted by member id. Sockets are bound to ephemeral ports
/// up front, so parallel runs (e.g. concurrent tests) never collide.
/// Blocks until every member has reported (bounded by `max_rounds`
/// ticks); teardown joins all worker threads before returning.
///
/// This is the outcome-only convenience wrapper over
/// [`run_cluster`], which additionally returns the
/// [`RuntimeReport`].
///
/// # Errors
///
/// See [`Cluster::launch`].
///
/// # Panics
///
/// Panics if `votes.len()` does not match the index population.
pub fn run_group<A: WireAggregate + Send + 'static>(
    votes: Vec<f64>,
    index: Arc<ScopeIndex>,
    proto_cfg: HierGossipConfig,
    rt_cfg: RuntimeConfig,
) -> Result<Vec<MemberOutcome<A>>, RuntimeError> {
    Ok(run_cluster(votes, index, proto_cfg, rt_cfg)?.outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridagg_aggregate::{Aggregate, Average};
    use gridagg_group::view::View;
    use gridagg_hierarchy::{FairHashPlacement, Hierarchy};

    fn index(n: usize) -> Arc<ScopeIndex> {
        let h = Hierarchy::for_group(4, n).expect("shape");
        ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, 9))
    }

    #[test]
    fn udp_group_converges_on_loopback() {
        let n = 24;
        let votes: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let truth = (n as f64 - 1.0) / 2.0;
        let outcomes = run_group::<Average>(
            votes,
            index(n),
            HierGossipConfig::default(),
            RuntimeConfig::default(),
        )
        .expect("run");
        assert_eq!(outcomes.len(), n);
        let mean_completeness: f64 =
            outcomes.iter().map(|o| o.completeness(n)).sum::<f64>() / n as f64;
        assert!(
            mean_completeness > 0.9,
            "loopback run incomplete: {mean_completeness}"
        );
        // fully complete members computed the exact average
        for o in &outcomes {
            if o.completeness(n) == 1.0 {
                let est = o.estimate.as_ref().unwrap();
                assert!((est.aggregate().unwrap().summary() - truth).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn udp_group_tolerates_injected_loss() {
        let n = 24;
        let votes: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let cfg = RuntimeConfig::default().with_uniform_loss(0.25);
        let outcomes =
            run_group::<Average>(votes, index(n), HierGossipConfig::default(), cfg).expect("run");
        let mean_completeness: f64 =
            outcomes.iter().map(|o| o.completeness(n)).sum::<f64>() / n as f64;
        assert!(
            mean_completeness > 0.7,
            "lossy loopback run collapsed: {mean_completeness}"
        );
    }

    #[test]
    fn concurrent_groups_do_not_collide() {
        // ephemeral ports mean two groups can run side by side
        let run = |seed: u64| {
            let n = 8;
            let votes: Vec<f64> = (0..n).map(|i| i as f64).collect();
            let cfg = RuntimeConfig {
                seed,
                sockets: 4,
                ..Default::default()
            };
            run_group::<Average>(votes, index(n), HierGossipConfig::default(), cfg).expect("run")
        };
        let (a, b) = std::thread::scope(|s| {
            let ta = s.spawn(|| run(1));
            let tb = s.spawn(|| run(2));
            (ta.join().expect("a"), tb.join().expect("b"))
        });
        assert_eq!(a.len(), 8);
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn budget_error_is_descriptive() {
        let err = RuntimeError::BudgetExceeded {
            members: 100,
            sockets: 4,
            members_per_socket: 8,
        };
        let msg = err.to_string();
        assert!(msg.contains("100 members"), "got: {msg}");
        assert!(msg.contains("= 32 max"), "got: {msg}");
    }
}
