//! Cluster assembly, outcome collection, and the [`RuntimeReport`].
//!
//! A [`Cluster`] binds the socket pool, shards members across worker
//! threads, and anchors every worker at a shared epoch so round
//! boundaries align cluster-wide. [`Cluster::join`] collects one
//! outcome per member, signals shutdown, joins every worker thread
//! (no thread or socket outlives the call), and folds the per-worker
//! counters into a [`RuntimeReport`] — the real-network mirror of the
//! simulator's `RunReport`.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gridagg_aggregate::wire::WireAggregate;
use gridagg_core::hiergossip::{HierGossip, HierGossipConfig};
use gridagg_core::scope::ScopeIndex;
use gridagg_group::MemberId;
use gridagg_simnet::rng::DetRng;

use crate::endpoint::EndpointPool;
use crate::multiplex::{Worker, WorkerStats};
use crate::{MemberOutcome, RuntimeConfig, RuntimeError};

/// Aggregated result of one real-network cluster run: the per-member
/// outcomes plus the cluster-wide [`RuntimeReport`].
#[derive(Debug)]
pub struct ClusterRun<A> {
    /// One outcome per member, sorted by member id.
    pub outcomes: Vec<MemberOutcome<A>>,
    /// Cluster-wide wall-clock and wire observability.
    pub report: RuntimeReport,
}

/// The real-network mirror of the simulator's `RunReport`: wall-clock,
/// completeness, and wire-level counters of one cluster run.
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    /// Group size.
    pub n: usize,
    /// Sockets in the shared pool.
    pub sockets: usize,
    /// Worker threads that drove the shards.
    pub workers: usize,
    /// Epoch-to-last-outcome wall clock.
    pub wall: Duration,
    /// Members that reported an outcome before the collection deadline.
    pub reported: usize,
    /// Mean completeness over **all** `n` members (missing = 0).
    pub mean_completeness: f64,
    /// Minimum completeness (0 if any member failed to report).
    pub min_completeness: f64,
    /// Mean wall-clock rounds members ran before terminating.
    pub mean_rounds: f64,
    /// Largest round count any member reached.
    pub max_rounds_seen: u64,
    /// Merged per-worker wire counters.
    pub stats: WorkerStats,
}

impl RuntimeReport {
    /// Protocol frames sent per wall-clock second.
    pub fn frames_per_sec(&self) -> f64 {
        self.stats.frames_sent as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Mean frames coalesced into each datagram (the multiplexing win).
    pub fn frames_per_datagram(&self) -> f64 {
        self.stats.frames_sent as f64 / (self.stats.datagrams_sent as f64).max(1.0)
    }
}

/// A launched cluster: members sharded over worker threads, gossiping
/// over the socket pool. Obtain one with [`Cluster::launch`], then
/// [`Cluster::join`] to collect outcomes and tear everything down.
#[derive(Debug)]
pub struct Cluster<A> {
    handles: Vec<JoinHandle<WorkerStats>>,
    done_rx: mpsc::Receiver<MemberOutcome<A>>,
    shutdown: Arc<AtomicBool>,
    addrs: Arc<Vec<SocketAddr>>,
    n: usize,
    sockets: usize,
    workers: usize,
    epoch: Instant,
    interval: Duration,
    max_rounds: u64,
    linger_rounds: u64,
}

impl<A: WireAggregate + Send + 'static> Cluster<A> {
    /// Bind the socket pool, shard `votes.len()` members across worker
    /// threads, and start every member's round clock at a shared epoch.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::BudgetExceeded`] when the member count exceeds
    /// `sockets × members_per_socket` — the configured multiplexing
    /// budget — and [`RuntimeError::Io`] for socket or thread-spawn
    /// failures. Failing loudly here is what keeps an over-subscribed
    /// cluster from hanging half-started.
    ///
    /// # Panics
    ///
    /// Panics if `votes.len()` does not match the index population.
    pub fn launch(
        votes: Vec<f64>,
        index: Arc<ScopeIndex>,
        proto_cfg: HierGossipConfig,
        rt_cfg: RuntimeConfig,
    ) -> Result<Self, RuntimeError> {
        let n = votes.len();
        assert_eq!(n, index.len(), "one vote per indexed member");

        let sockets = rt_cfg.sockets.max(1);
        let capacity = sockets.saturating_mul(rt_cfg.members_per_socket.max(1));
        if n > capacity {
            return Err(RuntimeError::BudgetExceeded {
                members: n,
                sockets,
                members_per_socket: rt_cfg.members_per_socket.max(1),
            });
        }
        let workers = rt_cfg.workers.max(1).min(sockets);

        let pool = EndpointPool::bind(sockets)?;
        let addrs = pool.addrs();
        let socket_sets = pool.split(workers);

        // Shard members: member -> home socket -> owning worker. The
        // same arithmetic the send path uses, so ownership is exclusive.
        let mut shards: Vec<Vec<(MemberId, HierGossip<A>)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, vote) in votes.iter().enumerate() {
            let me = MemberId(i as u32);
            let sock = EndpointPool::home_socket(me.0, sockets);
            let proto = HierGossip::<A>::new(me, *vote, index.clone(), proto_cfg);
            shards[sock % workers].push((me, proto));
        }

        // Anchor all round clocks at a shared epoch far enough out that
        // every worker is polling before round 0 ends.
        let grace = Duration::from_millis(20 + (n as u64 / 200));
        let epoch = Instant::now() + grace;

        let (done_tx, done_rx) = mpsc::channel::<MemberOutcome<A>>();
        let shutdown = Arc::new(AtomicBool::new(false));
        let root_rng = DetRng::seeded(rt_cfg.seed);

        let mut handles = Vec::with_capacity(workers);
        for (w, (sockets_of, members)) in socket_sets.into_iter().zip(shards).enumerate() {
            let worker = Worker::new(
                w,
                sockets_of,
                addrs.clone(),
                members,
                n as u32,
                sockets,
                rt_cfg.clone(),
                epoch,
                &root_rng,
                done_tx.clone(),
                shutdown.clone(),
            );
            let spawned = std::thread::Builder::new()
                .name(format!("gridagg-w{w}"))
                .spawn(move || worker.run());
            match spawned {
                Ok(h) => handles.push(h),
                Err(e) => {
                    // Unwind anything already running before reporting.
                    shutdown.store(true, Ordering::Relaxed);
                    for h in handles {
                        let _ = h.join();
                    }
                    return Err(RuntimeError::Io(e));
                }
            }
        }
        drop(done_tx);

        Ok(Cluster {
            handles,
            done_rx,
            shutdown,
            addrs,
            n,
            sockets,
            workers,
            epoch,
            interval: rt_cfg.round_interval.max(Duration::from_micros(200)),
            max_rounds: rt_cfg.max_rounds,
            linger_rounds: rt_cfg.linger_rounds,
        })
    }

    /// The socket pool's address table — where the cluster listens.
    /// Exposed so tests can throw hostile datagrams at a live cluster.
    pub fn addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Group size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Worker threads driving the shards.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Collect one outcome per member (bounded by the round budget),
    /// signal shutdown, and join every worker thread. No worker thread
    /// or pool socket survives this call — the graceful-teardown
    /// property the lifecycle tests pin down.
    pub fn join(self) -> ClusterRun<A> {
        let Cluster {
            handles,
            done_rx,
            shutdown,
            n,
            sockets,
            workers,
            epoch,
            interval,
            max_rounds,
            linger_rounds,
            ..
        } = self;

        // Hard deadline: the full round budget plus linger and slack —
        // a wedged worker must not hang the collector forever.
        let budget = max_rounds.saturating_add(linger_rounds).saturating_add(16);
        let deadline =
            epoch + interval * u32::try_from(budget).unwrap_or(u32::MAX) + Duration::from_secs(5);

        let mut outcomes: Vec<MemberOutcome<A>> = Vec::with_capacity(n);
        let mut last_done = epoch;
        while outcomes.len() < n {
            let now = Instant::now();
            let Some(wait) = deadline.checked_duration_since(now) else {
                break;
            };
            match done_rx.recv_timeout(wait) {
                Ok(o) => {
                    last_done = Instant::now();
                    outcomes.push(o);
                }
                Err(_) => break, // timeout or every worker already gone
            }
        }

        shutdown.store(true, Ordering::Relaxed);
        let mut stats = WorkerStats::default();
        for h in handles {
            if let Ok(s) = h.join() {
                stats.merge(&s);
            }
        }
        outcomes.sort_by_key(|o| o.member);

        let reported = outcomes.len();
        let mean_completeness =
            outcomes.iter().map(|o| o.completeness(n)).sum::<f64>() / (n as f64).max(1.0);
        let min_completeness = if reported < n {
            0.0
        } else {
            outcomes
                .iter()
                .map(|o| o.completeness(n))
                .fold(f64::INFINITY, f64::min)
                .min(1.0)
        };
        let mean_rounds =
            outcomes.iter().map(|o| o.rounds as f64).sum::<f64>() / (reported as f64).max(1.0);
        let max_rounds_seen = outcomes.iter().map(|o| o.rounds).max().unwrap_or(0);
        let report = RuntimeReport {
            n,
            sockets,
            workers,
            wall: last_done.saturating_duration_since(epoch),
            reported,
            mean_completeness,
            min_completeness,
            mean_rounds,
            max_rounds_seen,
            stats,
        };
        ClusterRun { outcomes, report }
    }
}

/// Launch a cluster and immediately join it: the one-call entry point
/// for running a whole group over localhost UDP.
///
/// # Errors
///
/// See [`Cluster::launch`].
pub fn run_cluster<A: WireAggregate + Send + 'static>(
    votes: Vec<f64>,
    index: Arc<ScopeIndex>,
    proto_cfg: HierGossipConfig,
    rt_cfg: RuntimeConfig,
) -> Result<ClusterRun<A>, RuntimeError> {
    Ok(Cluster::launch(votes, index, proto_cfg, rt_cfg)?.join())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridagg_aggregate::Average;
    use gridagg_group::view::View;
    use gridagg_hierarchy::{FairHashPlacement, Hierarchy};

    fn index(n: usize) -> Arc<ScopeIndex> {
        let h = Hierarchy::for_group(4, n).expect("shape");
        ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, 9))
    }

    #[test]
    fn budget_exceeded_fails_loudly_not_hangs() {
        let n = 40;
        let votes: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let cfg = RuntimeConfig {
            sockets: 2,
            members_per_socket: 8,
            ..Default::default()
        };
        let err = Cluster::<Average>::launch(votes, index(n), HierGossipConfig::default(), cfg)
            .expect_err("over budget");
        match err {
            RuntimeError::BudgetExceeded {
                members,
                sockets,
                members_per_socket,
            } => {
                assert_eq!(members, 40);
                assert_eq!(sockets, 2);
                assert_eq!(members_per_socket, 8);
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn report_reflects_multiplexed_wire_traffic() {
        let n = 24;
        let votes: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let cfg = RuntimeConfig {
            sockets: 4,
            workers: 2,
            ..Default::default()
        };
        let run =
            run_cluster::<Average>(votes, index(n), HierGossipConfig::default(), cfg).expect("run");
        let r = &run.report;
        assert_eq!(r.n, n);
        assert_eq!(r.sockets, 4);
        assert!(r.workers <= 2);
        assert_eq!(r.reported, n, "every member reports");
        assert!(r.stats.frames_sent > 0);
        assert!(r.stats.datagrams_sent > 0);
        assert!(
            r.stats.datagrams_sent <= r.stats.frames_sent,
            "coalescing can only shrink the datagram count"
        );
        assert!(r.stats.wakeups > 0);
        assert!(r.mean_completeness > 0.9, "got {}", r.mean_completeness);
        assert!(r.wall > Duration::ZERO);
    }
}
