//! Socket-pool endpoints and the datagram frame format.
//!
//! Thousands of members share a small pool of UDP sockets. A member's
//! **home socket** is `member % pool_size`; every datagram carries a
//! per-message frame header naming the destination *and* source member,
//! so one endpoint demultiplexes traffic for many members and replies
//! can be routed without per-member ports. Frames destined for members
//! homed on the same socket are **coalesced** into one datagram (up to
//! a configurable byte cap), which is what turns 10,000 members' gossip
//! into a few hundred `sendto` calls per round.
//!
//! ## Frame format
//!
//! ```text
//! datagram := frame*
//! frame    := dst_member: u32 | src_member: u32 | len: u16 | payload: [u8; len]
//! ```
//!
//! `payload` is the [`gridagg_core::message::codec`] encoding of one
//! protocol message. Malformed input at any layer — short header,
//! clipped payload, out-of-range member id — is reported as a
//! [`DecodeError`] value, never a panic: the receive path treats the
//! network as hostile exactly like the codec does.
//!
//! ## Fault injection
//!
//! [`FaultInjector`] drops and reorders traffic *at the socket
//! boundary*, reusing the simulator's [`LossModel`] implementations
//! (uniform loss, soft partitions, distance loss, mid-run switches), so
//! a loopback cluster exhibits the paper's loss regimes on real
//! sockets with the same models the figures were generated from.

use std::net::{SocketAddr, UdpSocket};
use std::sync::Arc;

use gridagg_core::message::codec::DecodeError;
use gridagg_group::MemberId;
use gridagg_simnet::loss::LossModel;
use gridagg_simnet::rng::DetRng;

/// Bytes of the per-frame header: dst u32, src u32, len u16.
pub const FRAME_HEADER_LEN: usize = 10;

/// One demultiplexed frame inside a datagram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame<'a> {
    /// Destination member.
    pub dst: u32,
    /// Sending member.
    pub src: u32,
    /// The codec-encoded payload bytes.
    pub payload: &'a [u8],
}

/// Append one frame to a datagram under construction.
pub fn push_frame(buf: &mut Vec<u8>, dst: u32, src: u32, payload: &[u8]) {
    debug_assert!(payload.len() <= u16::MAX as usize, "payload exceeds frame");
    buf.extend_from_slice(&dst.to_be_bytes());
    buf.extend_from_slice(&src.to_be_bytes());
    buf.extend_from_slice(&(payload.len() as u16).to_be_bytes());
    buf.extend_from_slice(payload);
}

/// Wire size of one frame carrying `payload_len` payload bytes.
pub fn frame_len(payload_len: usize) -> usize {
    FRAME_HEADER_LEN + payload_len
}

/// Iterator over the frames of one received datagram. Yields
/// `Err(DecodeError)` (and then stops) if the datagram is truncated,
/// clipped mid-frame, or names a member outside the group — the
/// demux header rejects garbage with an error value, never a panic.
#[derive(Debug)]
pub struct FrameIter<'a> {
    rest: &'a [u8],
    n_members: u32,
    failed: bool,
}

impl<'a> FrameIter<'a> {
    /// Iterate the frames of `datagram` for a group of `n_members`.
    pub fn new(datagram: &'a [u8], n_members: u32) -> Self {
        FrameIter {
            rest: datagram,
            n_members,
            failed: false,
        }
    }
}

impl<'a> Iterator for FrameIter<'a> {
    type Item = Result<Frame<'a>, DecodeError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.rest.is_empty() {
            return None;
        }
        if self.rest.len() < FRAME_HEADER_LEN {
            self.failed = true;
            return Some(Err(DecodeError::Truncated { variant: "frame" }));
        }
        let dst = u32::from_be_bytes(self.rest[0..4].try_into().expect("4 bytes"));
        let src = u32::from_be_bytes(self.rest[4..8].try_into().expect("4 bytes"));
        let len = u16::from_be_bytes(self.rest[8..10].try_into().expect("2 bytes")) as usize;
        if self.rest.len() < FRAME_HEADER_LEN + len {
            self.failed = true;
            return Some(Err(DecodeError::Truncated { variant: "frame" }));
        }
        if dst >= self.n_members || src >= self.n_members {
            self.failed = true;
            return Some(Err(DecodeError::Malformed { variant: "frame" }));
        }
        let payload = &self.rest[FRAME_HEADER_LEN..FRAME_HEADER_LEN + len];
        self.rest = &self.rest[FRAME_HEADER_LEN + len..];
        Some(Ok(Frame { dst, src, payload }))
    }
}

/// The shared pool of UDP sockets members multiplex over.
///
/// All sockets are bound to loopback ephemeral ports and set
/// non-blocking; workers own disjoint subsets and poll them. The
/// address table is shared read-only across workers.
#[derive(Debug)]
pub struct EndpointPool {
    sockets: Vec<UdpSocket>,
    addrs: Arc<Vec<SocketAddr>>,
}

impl EndpointPool {
    /// Bind `count` non-blocking loopback sockets on ephemeral ports.
    ///
    /// # Errors
    ///
    /// Returns any socket I/O error raised while binding.
    pub fn bind(count: usize) -> std::io::Result<Self> {
        let mut sockets = Vec::with_capacity(count);
        let mut addrs = Vec::with_capacity(count);
        for _ in 0..count {
            let socket = UdpSocket::bind(("127.0.0.1", 0))?;
            socket.set_nonblocking(true)?;
            addrs.push(socket.local_addr()?);
            sockets.push(socket);
        }
        Ok(EndpointPool {
            sockets,
            addrs: Arc::new(addrs),
        })
    }

    /// Number of sockets in the pool.
    pub fn len(&self) -> usize {
        self.sockets.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.sockets.is_empty()
    }

    /// The shared address table (index = socket index).
    pub fn addrs(&self) -> Arc<Vec<SocketAddr>> {
        self.addrs.clone()
    }

    /// The home socket index of a member in a pool of `pool` sockets.
    pub fn home_socket(member: u32, pool: usize) -> usize {
        member as usize % pool.max(1)
    }

    /// Split the pool into per-worker socket sets: worker `w` owns the
    /// sockets whose index `% workers == w`, each tagged with its pool
    /// index. Consumes the pool; the address table survives via
    /// [`EndpointPool::addrs`].
    pub fn split(self, workers: usize) -> Vec<Vec<(usize, UdpSocket)>> {
        let workers = workers.max(1);
        let mut out: Vec<Vec<(usize, UdpSocket)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, s) in self.sockets.into_iter().enumerate() {
            out[i % workers].push((i, s));
        }
        out
    }
}

/// Channel-fault injection at the socket boundary: per-frame loss via a
/// simulator [`LossModel`] and per-datagram reordering via a one-deep
/// hold-back pocket. Each worker owns one injector with a private
/// deterministic stream, so member-local fault decisions are
/// reproducible per seed even though wall-clock interleavings are not.
#[derive(Debug)]
pub struct FaultInjector {
    loss: Option<Arc<dyn LossModel>>,
    reorder: f64,
    rng: DetRng,
    /// Held-back datagram (destination addr, bytes) awaiting a later
    /// send, realizing a pairwise reorder.
    pocket: Option<(SocketAddr, Vec<u8>)>,
}

impl FaultInjector {
    /// An injector with the given loss model (`None` = perfect), a
    /// per-datagram reorder probability, and a private random stream.
    pub fn new(loss: Option<Arc<dyn LossModel>>, reorder: f64, rng: DetRng) -> Self {
        FaultInjector {
            loss,
            reorder,
            pocket: None,
            rng,
        }
    }

    /// Whether the frame `from -> to` sent in `round` should be dropped.
    pub fn drop_frame(&mut self, from: MemberId, to: MemberId, round: u64) -> bool {
        match &self.loss {
            Some(model) => model.dropped(from, to, round, &mut self.rng),
            None => false,
        }
    }

    /// Route one outbound datagram through the reorder pocket: returns
    /// the datagram(s) to actually put on the wire now, in order. With
    /// probability `reorder` the datagram is held back and rides behind
    /// the *next* one (a pairwise swap, the classic UDP reorder shape).
    pub fn sequence(
        &mut self,
        dest: SocketAddr,
        bytes: Vec<u8>,
        out: &mut Vec<(SocketAddr, Vec<u8>)>,
    ) -> bool {
        if self.reorder > 0.0 && self.pocket.is_none() && self.rng.chance(self.reorder) {
            self.pocket = Some((dest, bytes));
            return true;
        }
        out.push((dest, bytes));
        if let Some(held) = self.pocket.take() {
            out.push(held);
        }
        false
    }

    /// Flush a held-back datagram at the end of a batch so nothing is
    /// delayed past one wakeup.
    pub fn flush_pocket(&mut self, out: &mut Vec<(SocketAddr, Vec<u8>)>) {
        if let Some(held) = self.pocket.take() {
            out.push(held);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridagg_simnet::loss::UniformLoss;

    #[test]
    fn frames_roundtrip_through_a_datagram() {
        let mut dgram = Vec::new();
        push_frame(&mut dgram, 3, 1, b"abc");
        push_frame(&mut dgram, 9, 2, b"");
        push_frame(&mut dgram, 0, 3, b"xyzw");
        let frames: Vec<Frame<'_>> = FrameIter::new(&dgram, 16)
            .collect::<Result<_, _>>()
            .expect("clean datagram");
        assert_eq!(frames.len(), 3);
        assert_eq!(
            frames[0],
            Frame {
                dst: 3,
                src: 1,
                payload: b"abc"
            }
        );
        assert_eq!(frames[1].payload, b"");
        assert_eq!(
            frames[2],
            Frame {
                dst: 0,
                src: 3,
                payload: b"xyzw"
            }
        );
    }

    #[test]
    fn truncated_header_rejected_with_decode_error() {
        for len in 1..FRAME_HEADER_LEN {
            let junk = vec![0u8; len];
            let r: Vec<_> = FrameIter::new(&junk, 8).collect();
            assert_eq!(r, vec![Err(DecodeError::Truncated { variant: "frame" })]);
        }
    }

    #[test]
    fn clipped_payload_rejected_with_decode_error() {
        let mut dgram = Vec::new();
        push_frame(&mut dgram, 1, 0, b"hello");
        dgram.truncate(dgram.len() - 2);
        let r: Vec<_> = FrameIter::new(&dgram, 8).collect();
        assert_eq!(r, vec![Err(DecodeError::Truncated { variant: "frame" })]);
    }

    #[test]
    fn out_of_range_member_rejected_as_malformed() {
        let mut dgram = Vec::new();
        push_frame(&mut dgram, 200, 0, b"x");
        let r: Vec<_> = FrameIter::new(&dgram, 8).collect();
        assert_eq!(r, vec![Err(DecodeError::Malformed { variant: "frame" })]);

        let mut dgram = Vec::new();
        push_frame(&mut dgram, 0, 200, b"x");
        let r: Vec<_> = FrameIter::new(&dgram, 8).collect();
        assert_eq!(r, vec![Err(DecodeError::Malformed { variant: "frame" })]);
    }

    #[test]
    fn error_stops_iteration_after_valid_prefix() {
        let mut dgram = Vec::new();
        push_frame(&mut dgram, 1, 0, b"ok");
        dgram.extend_from_slice(&[0xFF; 5]); // garbage tail
        let r: Vec<_> = FrameIter::new(&dgram, 8).collect();
        assert_eq!(r.len(), 2);
        assert!(r[0].is_ok());
        assert!(r[1].is_err());
    }

    #[test]
    fn empty_datagram_yields_nothing() {
        assert_eq!(FrameIter::new(&[], 8).count(), 0);
    }

    #[test]
    fn pool_binds_and_splits_round_robin() {
        let pool = EndpointPool::bind(5).expect("bind");
        assert_eq!(pool.len(), 5);
        let addrs = pool.addrs();
        assert_eq!(addrs.len(), 5);
        let sets = pool.split(2);
        assert_eq!(sets.len(), 2);
        assert_eq!(
            sets[0].iter().map(|(i, _)| *i).collect::<Vec<_>>(),
            [0, 2, 4]
        );
        assert_eq!(sets[1].iter().map(|(i, _)| *i).collect::<Vec<_>>(), [1, 3]);
        assert_eq!(EndpointPool::home_socket(7, 5), 2);
    }

    #[test]
    fn injector_drops_with_the_loss_model() {
        let loss = Arc::new(UniformLoss::new(1.0).expect("probability"));
        let mut inj = FaultInjector::new(Some(loss), 0.0, DetRng::seeded(1));
        assert!(inj.drop_frame(MemberId(0), MemberId(1), 0));
        let mut none = FaultInjector::new(None, 0.0, DetRng::seeded(1));
        assert!(!none.drop_frame(MemberId(0), MemberId(1), 0));
    }

    #[test]
    fn reorder_swaps_adjacent_datagrams() {
        let addr: SocketAddr = "127.0.0.1:9".parse().expect("addr");
        let mut inj = FaultInjector::new(None, 1.0, DetRng::seeded(7));
        let mut wire = Vec::new();
        let held = inj.sequence(addr, vec![1], &mut wire);
        assert!(held && wire.is_empty());
        inj.sequence(addr, vec![2], &mut wire);
        // the second datagram goes first, the held one follows
        assert_eq!(wire.iter().map(|(_, b)| b[0]).collect::<Vec<_>>(), [2, 1]);
        inj.flush_pocket(&mut wire);
        assert_eq!(wire.len(), 2, "pocket was already empty");
    }
}
