//! Wire-path robustness under real-channel faults.
//!
//! Two properties the multiplexed runtime must hold on a live socket
//! pool: convergence survives injected loss *and* reorder together,
//! and hostile datagrams (truncated, malformed, junk-payload) are
//! rejected through the `DecodeError` path — counted, never a panic
//! and never a wedge.

use std::net::UdpSocket;
use std::sync::Arc;
use std::time::Duration;

use gridagg_aggregate::Average;
use gridagg_core::hiergossip::HierGossipConfig;
use gridagg_core::scope::ScopeIndex;
use gridagg_group::view::View;
use gridagg_hierarchy::{FairHashPlacement, Hierarchy};
use gridagg_runtime::endpoint::push_frame;
use gridagg_runtime::{run_cluster, Cluster, RuntimeConfig};

fn index(n: usize) -> Arc<ScopeIndex> {
    let h = Hierarchy::for_group(4, n).expect("shape");
    ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, 11))
}

#[test]
fn converges_under_loss_and_reorder_together() {
    let n = 32;
    let votes: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let cfg = RuntimeConfig {
        sockets: 8,
        workers: 2,
        reorder: 0.25,
        seed: 5,
        ..Default::default()
    }
    .with_uniform_loss(0.15);
    let run = run_cluster::<Average>(votes, index(n), HierGossipConfig::default(), cfg)
        .expect("cluster runs");
    let r = &run.report;
    assert!(r.stats.injected_drops > 0, "loss model never fired");
    assert!(r.stats.reordered > 0, "reorder pocket never fired");
    assert_eq!(r.reported, n, "every member must still report");
    assert!(
        r.mean_completeness > 0.7,
        "faulty-channel run collapsed: {}",
        r.mean_completeness
    );
}

#[test]
fn hostile_datagrams_rejected_via_decode_error_not_panic() {
    let n = 16;
    let votes: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let cfg = RuntimeConfig {
        sockets: 4,
        workers: 2,
        seed: 9,
        ..Default::default()
    };
    let cluster = Cluster::<Average>::launch(votes, index(n), HierGossipConfig::default(), cfg)
        .expect("launch");
    let targets: Vec<_> = cluster.addrs().to_vec();

    // An outsider throws garbage at every pool socket while the
    // cluster is live: truncated headers, out-of-range member ids, and
    // well-framed junk payloads the codec must reject.
    let attacker = UdpSocket::bind(("127.0.0.1", 0)).expect("attacker socket");
    for burst in 0..5 {
        for addr in &targets {
            // (a) shorter than one frame header
            let _ = attacker.send_to(&[0xAA; 5], addr);
            // (b) header whose dst/src are far outside the group
            let _ = attacker.send_to(&[0xFF; 23], addr);
            // (c) valid demux header, junk payload for the codec
            let mut framed = Vec::new();
            push_frame(&mut framed, burst % n as u32, 0, &[0xEE; 9]);
            let _ = attacker.send_to(&framed, addr);
        }
        std::thread::sleep(Duration::from_millis(3));
    }

    let run = cluster.join();
    let r = &run.report;
    assert!(
        r.stats.decode_errors > 0,
        "hostile datagrams must surface as counted DecodeErrors"
    );
    assert_eq!(r.reported, n, "garbage must not wedge the cluster");
    assert!(
        r.mean_completeness > 0.9,
        "garbage disturbed convergence: {}",
        r.mean_completeness
    );
}
