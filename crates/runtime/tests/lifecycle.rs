//! Graceful shutdown: repeated cluster start/stop must leak neither
//! worker threads nor sockets.
//!
//! `Cluster::join` joins every worker thread before returning, and the
//! pool sockets are owned by the workers, so both counts must return
//! to their pre-run values after each run. Counted via procfs, so the
//! check is Linux-only (which covers CI).

#![cfg(target_os = "linux")]

use std::sync::Arc;
use std::time::Duration;

use gridagg_aggregate::Average;
use gridagg_core::hiergossip::HierGossipConfig;
use gridagg_core::scope::ScopeIndex;
use gridagg_group::view::View;
use gridagg_hierarchy::{FairHashPlacement, Hierarchy};
use gridagg_runtime::{run_cluster, RuntimeConfig};

fn index(n: usize) -> Arc<ScopeIndex> {
    let h = Hierarchy::for_group(4, n).expect("shape");
    ScopeIndex::build(&View::complete(n), &FairHashPlacement::new(h, 3))
}

fn thread_count() -> usize {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .expect("read /proc/self/fd")
        .count()
}

fn one_run(seed: u64) {
    let n = 16;
    let votes: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let cfg = RuntimeConfig {
        sockets: 4,
        workers: 2,
        seed,
        round_interval: Duration::from_millis(2),
        ..Default::default()
    };
    let run = run_cluster::<Average>(votes, index(n), HierGossipConfig::default(), cfg)
        .expect("cluster runs");
    assert_eq!(run.report.reported, n);
}

#[test]
fn repeated_start_stop_leaks_no_threads_or_sockets() {
    // Warm-up: lazy std/test-harness initialization must not count
    // against the first measured run.
    one_run(100);

    let threads_before = thread_count();
    let fds_before = fd_count();
    for seed in 0..3 {
        one_run(seed);
        assert_eq!(
            thread_count(),
            threads_before,
            "worker thread leaked by run {seed}"
        );
        assert_eq!(fd_count(), fds_before, "socket fd leaked by run {seed}");
    }
}
