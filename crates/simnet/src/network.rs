//! The round-based network core.
//!
//! [`SimNetwork`] accepts `send` calls during round `t` and, after loss,
//! bandwidth-cap, and delay decisions, queues survivors for delivery at
//! round `t + delay`. The engine calls [`SimNetwork::drain`] at the start
//! of each round to collect due messages.
//!
//! In-flight messages live in a **ring of per-round buckets** indexed by
//! `delivery_round - head_round` rather than a `BTreeMap<Round, Vec<_>>`:
//! the hot send path is an index plus a push (no tree rebalancing or
//! node allocation), and drained buckets stay in the ring with their
//! capacity intact, so the steady state allocates nothing per round.
//! Rounds are expected to advance monotonically (each `drain` moves the
//! head forward); a send targeting a round at or before the head is
//! clamped to the next drain.

use crate::delay::{DelayModel, NextRound};
use crate::loss::{LossModel, Perfect};
use crate::rng::DetRng;
use crate::stats::NetworkStats;
use crate::topology::{distance_bucket, hops, Position};
use crate::{NodeId, Round};

/// A message in flight or delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<P> {
    /// Sending node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Round in which the message was sent.
    pub sent_at: Round,
    /// Payload carried by the message.
    pub payload: P,
}

/// What happened to one [`SimNetwork::send`] call.
///
/// Returned so callers (e.g. a tracing simulation engine) can observe
/// per-message fates without the network knowing about trace sinks.
/// Plain senders simply ignore the return value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message survived loss and bandwidth checks and is queued for
    /// delivery at the given round.
    Queued {
        /// Round the message will be delivered in.
        at: Round,
    },
    /// Dropped by the per-node, per-round bandwidth cap.
    DroppedBandwidth,
    /// Dropped by the loss model.
    DroppedLoss,
}

/// Static configuration of a [`SimNetwork`].
///
/// Built with a non-consuming builder per Rust API conventions:
///
/// ```
/// use gridagg_simnet::network::NetworkConfig;
/// use gridagg_simnet::loss::UniformLoss;
///
/// let cfg = NetworkConfig::default()
///     .with_loss(UniformLoss::new(0.25).unwrap())
///     .with_bandwidth_cap(8);
/// assert_eq!(cfg.bandwidth_cap(), Some(8));
/// ```
#[derive(Debug)]
pub struct NetworkConfig {
    loss: Box<dyn LossModel>,
    delay: Box<dyn DelayModel>,
    bandwidth_cap: Option<u32>,
    positions: Option<Vec<Position>>,
    hop_range: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            loss: Box::new(Perfect),
            delay: Box::new(NextRound),
            bandwidth_cap: None,
            positions: None,
            hop_range: 0.125,
        }
    }
}

impl NetworkConfig {
    /// Set the loss model.
    pub fn with_loss(mut self, loss: impl LossModel + 'static) -> Self {
        self.loss = Box::new(loss);
        self
    }

    /// Set a boxed loss model (for dynamically chosen models).
    pub fn with_boxed_loss(mut self, loss: Box<dyn LossModel>) -> Self {
        self.loss = loss;
        self
    }

    /// Set the delay model.
    pub fn with_delay(mut self, delay: impl DelayModel + 'static) -> Self {
        self.delay = Box::new(delay);
        self
    }

    /// Cap the number of messages each node may send per round; excess
    /// sends are counted in `dropped_bandwidth` and discarded.
    pub fn with_bandwidth_cap(mut self, cap: u32) -> Self {
        self.bandwidth_cap = Some(cap);
        self
    }

    /// Provide node positions, enabling per-distance load accounting.
    pub fn with_positions(mut self, positions: Vec<Position>) -> Self {
        self.positions = Some(positions);
        self
    }

    /// Radio range used to convert distance to hop counts in accounting.
    pub fn with_hop_range(mut self, range: f64) -> Self {
        self.hop_range = range.max(1e-6);
        self
    }

    /// The configured bandwidth cap, if any.
    pub fn bandwidth_cap(&self) -> Option<u32> {
        self.bandwidth_cap
    }
}

/// The simulated network: loss + delay + bandwidth caps + accounting.
///
/// Generic over the payload type `P`, so protocol crates define their own
/// wire payloads without this crate knowing about them.
#[derive(Debug)]
pub struct SimNetwork<P> {
    cfg: NetworkConfig,
    /// Ring of per-round delivery buckets. `ring[(ring_base + off) &
    /// (len - 1)]` holds messages due at `head_round + off`; the length
    /// is always a power of two and grows (rarely) when a delay model
    /// reaches past the current horizon. Drained buckets stay in place,
    /// empty but with capacity, for reuse.
    ring: Vec<Vec<Envelope<P>>>,
    ring_base: usize,
    /// Earliest round the ring can still hold: one past the last
    /// drained round.
    head_round: Round,
    stats: NetworkStats,
    rng: DetRng,
    sends_this_round: Vec<u32>,
    counted_round: Round,
    in_flight_now: u64,
}

/// Initial ring length: covers the common next-round and small-jitter
/// delay models without ever growing. Must be a power of two.
const INITIAL_RING: usize = 8;

impl<P> SimNetwork<P> {
    /// Create a network with the given configuration and loss/delay RNG
    /// seed (fork of the run seed).
    pub fn new(cfg: NetworkConfig, seed: u64) -> Self {
        let mut ring = Vec::with_capacity(INITIAL_RING);
        ring.resize_with(INITIAL_RING, Vec::new);
        SimNetwork {
            cfg,
            ring,
            ring_base: 0,
            head_round: 0,
            stats: NetworkStats::default(),
            rng: DetRng::seeded(seed).fork(0x6E65_7477), // "netw"
            sends_this_round: Vec::new(),
            counted_round: 0,
            in_flight_now: 0,
        }
    }

    /// Pre-size the per-sender bandwidth counters for `n` nodes so the
    /// hot send path never grows them incrementally.
    pub fn reserve_nodes(&mut self, n: usize) {
        if self.sends_this_round.len() < n {
            self.sends_this_round.resize(n, 0);
        }
    }

    /// Submit a message in `round`; it is delivered (or not) in a later
    /// round according to the loss, bandwidth, and delay models.
    /// `wire_bytes` is the serialized size used for byte accounting.
    /// Returns the message's fate; plain senders may ignore it.
    // lint:hot — called once per message; the delay ring reuses its
    // buckets in place.
    pub fn send(
        &mut self,
        round: Round,
        from: NodeId,
        to: NodeId,
        payload: P,
        wire_bytes: u32,
    ) -> SendOutcome {
        self.stats.sent += 1;
        self.stats.bytes_sent += wire_bytes as u64;

        if let Some(pos) = &self.cfg.positions {
            if let (Some(a), Some(b)) = (pos.get(from.index()), pos.get(to.index())) {
                let d = a.distance(b);
                self.stats.load_by_distance[distance_bucket(d)] += 1;
                self.stats.total_hops += hops(d, self.cfg.hop_range) as u64;
            }
        }

        if let Some(cap) = self.cfg.bandwidth_cap {
            if round != self.counted_round {
                self.sends_this_round.iter_mut().for_each(|c| *c = 0);
                self.counted_round = round;
            }
            let idx = from.index();
            if idx >= self.sends_this_round.len() {
                self.sends_this_round.resize(idx + 1, 0);
            }
            if self.sends_this_round[idx] >= cap {
                self.stats.dropped_bandwidth += 1;
                return SendOutcome::DroppedBandwidth;
            }
            self.sends_this_round[idx] += 1;
        }

        if self.cfg.loss.dropped(from, to, round, &mut self.rng) {
            self.stats.dropped_loss += 1;
            return SendOutcome::DroppedLoss;
        }

        let delay = self.cfg.delay.delay(&mut self.rng).max(1);
        self.stats.delivered += 1;
        self.stats.bytes_delivered += wire_bytes as u64;
        // monotone-round contract: a send aimed at an already-drained
        // round lands in the next drain instead
        let at = (round + delay).max(self.head_round);
        let off = (at - self.head_round) as usize;
        if off >= self.ring.len() {
            self.grow_ring(off + 1);
        }
        let idx = (self.ring_base + off) & (self.ring.len() - 1);
        self.ring[idx].push(Envelope {
            from,
            to,
            sent_at: round,
            payload,
        });
        self.in_flight_now += 1;
        self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.in_flight_now);
        SendOutcome::Queued { at }
    }

    /// Grow the ring to at least `min_len` buckets (next power of two),
    /// re-basing existing buckets so offsets stay valid.
    fn grow_ring(&mut self, min_len: usize) {
        let new_len = min_len.next_power_of_two().max(INITIAL_RING);
        let mut new_ring: Vec<Vec<Envelope<P>>> = Vec::with_capacity(new_len);
        new_ring.resize_with(new_len, Vec::new);
        let old_len = self.ring.len();
        for (off, slot) in new_ring.iter_mut().enumerate().take(old_len) {
            let idx = (self.ring_base + off) & (old_len - 1);
            *slot = std::mem::take(&mut self.ring[idx]);
        }
        self.ring = new_ring;
        self.ring_base = 0;
    }

    /// Collect every message due at or before `round`. Call once per round
    /// before stepping the protocols.
    pub fn drain(&mut self, round: Round) -> Vec<Envelope<P>> {
        let mut due = Vec::new();
        self.drain_into(round, &mut due);
        due
    }

    /// Like [`SimNetwork::drain`], but appends into a caller-provided
    /// buffer (cleared first) so a round-loop can reuse one allocation
    /// for the whole run. Emptied per-round queues are recycled for
    /// future sends.
    // lint:hot — the per-round delivery drain; must stay append-into.
    pub fn drain_into(&mut self, round: Round, due: &mut Vec<Envelope<P>>) {
        due.clear();
        if round < self.head_round {
            return;
        }
        let len = self.ring.len();
        // nothing can be queued beyond head + len - 1, so at most `len`
        // buckets hold messages no matter how far the round jumps
        let span = (round - self.head_round + 1).min(len as Round) as usize;
        for off in 0..span {
            let idx = (self.ring_base + off) & (len - 1);
            due.append(&mut self.ring[idx]);
        }
        self.ring_base = (self.ring_base + span) & (len - 1);
        self.head_round = round + 1;
        self.in_flight_now -= due.len() as u64;
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.ring.iter().map(Vec::len).sum()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::UniformDelay;
    use crate::loss::UniformLoss;

    fn perfect_net() -> SimNetwork<u32> {
        SimNetwork::new(NetworkConfig::default(), 7)
    }

    #[test]
    fn delivers_next_round() {
        let mut net = perfect_net();
        net.send(0, NodeId(0), NodeId(1), 42, 8);
        assert!(net.drain(0).is_empty());
        let due = net.drain(1);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].payload, 42);
        assert_eq!(due[0].from, NodeId(0));
        assert_eq!(due[0].to, NodeId(1));
        assert_eq!(due[0].sent_at, 0);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn drain_collects_overdue() {
        let mut net = perfect_net();
        net.send(0, NodeId(0), NodeId(1), 1, 8);
        net.send(1, NodeId(0), NodeId(1), 2, 8);
        let due = net.drain(10);
        assert_eq!(due.len(), 2);
    }

    #[test]
    fn total_loss_drops_everything() {
        let cfg = NetworkConfig::default().with_loss(UniformLoss::new(1.0).unwrap());
        let mut net: SimNetwork<u32> = SimNetwork::new(cfg, 7);
        for i in 0..50 {
            net.send(0, NodeId(0), NodeId(1), i, 8);
        }
        assert!(net.drain(1).is_empty());
        assert_eq!(net.stats().dropped_loss, 50);
        assert_eq!(net.stats().delivered, 0);
        assert_eq!(net.stats().delivery_rate(), 0.0);
    }

    #[test]
    fn bandwidth_cap_enforced_per_round() {
        let cfg = NetworkConfig::default().with_bandwidth_cap(2);
        let mut net: SimNetwork<u32> = SimNetwork::new(cfg, 7);
        for i in 0..5 {
            net.send(0, NodeId(0), NodeId(1), i, 8);
        }
        // another sender is unaffected
        net.send(0, NodeId(1), NodeId(0), 99, 8);
        assert_eq!(net.stats().dropped_bandwidth, 3);
        assert_eq!(net.drain(1).len(), 3);
        // next round the counter resets
        net.send(1, NodeId(0), NodeId(1), 7, 8);
        assert_eq!(net.drain(2).len(), 1);
    }

    #[test]
    fn byte_accounting() {
        let mut net = perfect_net();
        net.send(0, NodeId(0), NodeId(1), 1, 100);
        net.send(0, NodeId(0), NodeId(1), 2, 50);
        assert_eq!(net.stats().bytes_sent, 150);
        assert_eq!(net.stats().bytes_delivered, 150);
    }

    #[test]
    fn distance_accounting_with_positions() {
        let pos = vec![Position::new(0.0, 0.0), Position::new(1.0, 1.0)];
        let cfg = NetworkConfig::default()
            .with_positions(pos)
            .with_hop_range(0.25);
        let mut net: SimNetwork<u32> = SimNetwork::new(cfg, 7);
        net.send(0, NodeId(0), NodeId(1), 1, 8);
        assert_eq!(net.stats().load_by_distance.iter().sum::<u64>(), 1);
        assert!(net.stats().total_hops >= 5); // sqrt(2)/0.25 ≈ 5.66 → 6 hops
    }

    #[test]
    fn delayed_delivery_lands_later() {
        let cfg = NetworkConfig::default().with_delay(UniformDelay::new(3, 3));
        let mut net: SimNetwork<u32> = SimNetwork::new(cfg, 7);
        net.send(0, NodeId(0), NodeId(1), 1, 8);
        assert!(net.drain(2).is_empty());
        assert_eq!(net.drain(3).len(), 1);
    }

    #[test]
    fn send_reports_outcome() {
        let mut net = perfect_net();
        assert_eq!(
            net.send(0, NodeId(0), NodeId(1), 1, 8),
            SendOutcome::Queued { at: 1 }
        );
        let lossy = NetworkConfig::default().with_loss(UniformLoss::new(1.0).unwrap());
        let mut net: SimNetwork<u32> = SimNetwork::new(lossy, 7);
        assert_eq!(
            net.send(0, NodeId(0), NodeId(1), 1, 8),
            SendOutcome::DroppedLoss
        );
        let capped = NetworkConfig::default().with_bandwidth_cap(1);
        let mut net: SimNetwork<u32> = SimNetwork::new(capped, 7);
        net.send(0, NodeId(0), NodeId(1), 1, 8);
        assert_eq!(
            net.send(0, NodeId(0), NodeId(1), 2, 8),
            SendOutcome::DroppedBandwidth
        );
    }

    #[test]
    fn drain_into_reuses_buffer_and_matches_drain() {
        let mut net = perfect_net();
        let mut buf = Vec::new();
        for r in 0..5 {
            net.send(r, NodeId(0), NodeId(1), r as u32, 8);
            net.drain_into(r + 1, &mut buf);
            assert_eq!(buf.len(), 1);
            assert_eq!(buf[0].payload, r as u32);
        }
        // buffer is cleared on every call, not accumulated
        net.drain_into(100, &mut buf);
        assert!(buf.is_empty());
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn peak_in_flight_tracks_high_water_mark() {
        let mut net = perfect_net();
        for i in 0..7 {
            net.send(0, NodeId(0), NodeId(1), i, 8);
        }
        assert_eq!(net.stats().peak_in_flight, 7);
        net.drain(1);
        // draining does not lower the recorded peak
        net.send(1, NodeId(0), NodeId(1), 99, 8);
        assert_eq!(net.stats().peak_in_flight, 7);
    }

    #[test]
    fn reserve_nodes_does_not_change_behavior() {
        let cfg = NetworkConfig::default().with_bandwidth_cap(2);
        let mut net: SimNetwork<u32> = SimNetwork::new(cfg, 7);
        net.reserve_nodes(4);
        for i in 0..5 {
            net.send(0, NodeId(0), NodeId(1), i, 8);
        }
        assert_eq!(net.stats().dropped_bandwidth, 3);
        assert_eq!(net.drain(1).len(), 2);
    }

    #[test]
    fn ring_grows_for_long_delays_and_preserves_order() {
        // a 50-round delay reaches past the initial ring; growth must
        // keep already-queued buckets at their rounds and keep FIFO
        // order within a round
        let cfg = NetworkConfig::default().with_delay(UniformDelay::new(50, 50));
        let mut net: SimNetwork<u32> = SimNetwork::new(cfg, 7);
        for i in 0..10 {
            net.send(0, NodeId(0), NodeId(1), i, 8);
        }
        assert_eq!(net.in_flight(), 10);
        assert!(net.drain(49).is_empty());
        let due = net.drain(50);
        let got: Vec<u32> = due.iter().map(|e| e.payload).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn ring_rebases_across_growth_mid_run() {
        // advance the head a few rounds first, then force growth while
        // messages are in flight at mixed offsets
        let cfg = NetworkConfig::default().with_delay(UniformDelay::new(2, 2));
        let mut net: SimNetwork<u32> = SimNetwork::new(cfg, 7);
        for r in 0..5 {
            net.send(r, NodeId(0), NodeId(1), r as u32, 8);
            net.drain(r); // rotate the ring base
        }
        // swap in a far-reaching delay by sending from a fresh config
        // is not possible mid-run, so grow by draining far ahead and
        // re-queueing near the new head instead
        let due = net.drain(100);
        assert_eq!(due.len(), 2); // rounds 5 and 6 still held messages
        net.send(100, NodeId(0), NodeId(1), 99, 8);
        assert_eq!(net.drain(102).len(), 1);
    }

    #[test]
    fn past_round_send_clamps_to_next_drain() {
        // monotone contract: after draining round 10, a send stamped
        // with an earlier round still delivers (at the next drain)
        // instead of vanishing into an already-passed bucket
        let mut net = perfect_net();
        net.drain(10); // head is now round 11
        let outcome = net.send(0, NodeId(0), NodeId(1), 5, 8);
        assert_eq!(outcome, SendOutcome::Queued { at: 11 });
        assert_eq!(net.drain(11).len(), 1);
    }

    #[test]
    fn determinism_same_seed() {
        let run = |seed| {
            let cfg = NetworkConfig::default().with_loss(UniformLoss::new(0.5).unwrap());
            let mut net: SimNetwork<u32> = SimNetwork::new(cfg, seed);
            for i in 0..100 {
                net.send(0, NodeId(0), NodeId(1), i, 8);
            }
            net.drain(1).iter().map(|e| e.payload).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
