//! The round-based network core.
//!
//! [`SimNetwork`] accepts `send` calls during round `t` and, after loss,
//! bandwidth-cap, and delay decisions, queues survivors for delivery at
//! round `t + delay`. The engine calls [`SimNetwork::drain`] at the start
//! of each round to collect due messages.

use std::collections::BTreeMap;

use crate::delay::{DelayModel, NextRound};
use crate::loss::{LossModel, Perfect};
use crate::rng::DetRng;
use crate::stats::NetworkStats;
use crate::topology::{distance_bucket, hops, Position};
use crate::{NodeId, Round};

/// A message in flight or delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope<P> {
    /// Sending node.
    pub from: NodeId,
    /// Destination node.
    pub to: NodeId,
    /// Round in which the message was sent.
    pub sent_at: Round,
    /// Payload carried by the message.
    pub payload: P,
}

/// What happened to one [`SimNetwork::send`] call.
///
/// Returned so callers (e.g. a tracing simulation engine) can observe
/// per-message fates without the network knowing about trace sinks.
/// Plain senders simply ignore the return value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// The message survived loss and bandwidth checks and is queued for
    /// delivery at the given round.
    Queued {
        /// Round the message will be delivered in.
        at: Round,
    },
    /// Dropped by the per-node, per-round bandwidth cap.
    DroppedBandwidth,
    /// Dropped by the loss model.
    DroppedLoss,
}

/// Static configuration of a [`SimNetwork`].
///
/// Built with a non-consuming builder per Rust API conventions:
///
/// ```
/// use gridagg_simnet::network::NetworkConfig;
/// use gridagg_simnet::loss::UniformLoss;
///
/// let cfg = NetworkConfig::default()
///     .with_loss(UniformLoss::new(0.25).unwrap())
///     .with_bandwidth_cap(8);
/// assert_eq!(cfg.bandwidth_cap(), Some(8));
/// ```
#[derive(Debug)]
pub struct NetworkConfig {
    loss: Box<dyn LossModel>,
    delay: Box<dyn DelayModel>,
    bandwidth_cap: Option<u32>,
    positions: Option<Vec<Position>>,
    hop_range: f64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            loss: Box::new(Perfect),
            delay: Box::new(NextRound),
            bandwidth_cap: None,
            positions: None,
            hop_range: 0.125,
        }
    }
}

impl NetworkConfig {
    /// Set the loss model.
    pub fn with_loss(mut self, loss: impl LossModel + 'static) -> Self {
        self.loss = Box::new(loss);
        self
    }

    /// Set a boxed loss model (for dynamically chosen models).
    pub fn with_boxed_loss(mut self, loss: Box<dyn LossModel>) -> Self {
        self.loss = loss;
        self
    }

    /// Set the delay model.
    pub fn with_delay(mut self, delay: impl DelayModel + 'static) -> Self {
        self.delay = Box::new(delay);
        self
    }

    /// Cap the number of messages each node may send per round; excess
    /// sends are counted in `dropped_bandwidth` and discarded.
    pub fn with_bandwidth_cap(mut self, cap: u32) -> Self {
        self.bandwidth_cap = Some(cap);
        self
    }

    /// Provide node positions, enabling per-distance load accounting.
    pub fn with_positions(mut self, positions: Vec<Position>) -> Self {
        self.positions = Some(positions);
        self
    }

    /// Radio range used to convert distance to hop counts in accounting.
    pub fn with_hop_range(mut self, range: f64) -> Self {
        self.hop_range = range.max(1e-6);
        self
    }

    /// The configured bandwidth cap, if any.
    pub fn bandwidth_cap(&self) -> Option<u32> {
        self.bandwidth_cap
    }
}

/// The simulated network: loss + delay + bandwidth caps + accounting.
///
/// Generic over the payload type `P`, so protocol crates define their own
/// wire payloads without this crate knowing about them.
#[derive(Debug)]
pub struct SimNetwork<P> {
    cfg: NetworkConfig,
    queue: BTreeMap<Round, Vec<Envelope<P>>>,
    /// Recycled per-round delivery buffers: emptied by `drain_into`,
    /// reused by `send` instead of allocating a fresh `Vec` for every
    /// delivery round.
    spare: Vec<Vec<Envelope<P>>>,
    stats: NetworkStats,
    rng: DetRng,
    sends_this_round: Vec<u32>,
    counted_round: Round,
    in_flight_now: u64,
}

/// Cap on recycled round buffers: enough for any realistic delay model
/// (delays span a handful of rounds) without hoarding memory.
const SPARE_BUFFERS: usize = 32;

impl<P> SimNetwork<P> {
    /// Create a network with the given configuration and loss/delay RNG
    /// seed (fork of the run seed).
    pub fn new(cfg: NetworkConfig, seed: u64) -> Self {
        SimNetwork {
            cfg,
            queue: BTreeMap::new(),
            spare: Vec::new(),
            stats: NetworkStats::default(),
            rng: DetRng::seeded(seed).fork(0x6E65_7477), // "netw"
            sends_this_round: Vec::new(),
            counted_round: 0,
            in_flight_now: 0,
        }
    }

    /// Pre-size the per-sender bandwidth counters for `n` nodes so the
    /// hot send path never grows them incrementally.
    pub fn reserve_nodes(&mut self, n: usize) {
        if self.sends_this_round.len() < n {
            self.sends_this_round.resize(n, 0);
        }
    }

    /// Submit a message in `round`; it is delivered (or not) in a later
    /// round according to the loss, bandwidth, and delay models.
    /// `wire_bytes` is the serialized size used for byte accounting.
    /// Returns the message's fate; plain senders may ignore it.
    pub fn send(
        &mut self,
        round: Round,
        from: NodeId,
        to: NodeId,
        payload: P,
        wire_bytes: u32,
    ) -> SendOutcome {
        self.stats.sent += 1;
        self.stats.bytes_sent += wire_bytes as u64;

        if let Some(pos) = &self.cfg.positions {
            if let (Some(a), Some(b)) = (pos.get(from.index()), pos.get(to.index())) {
                let d = a.distance(b);
                self.stats.load_by_distance[distance_bucket(d)] += 1;
                self.stats.total_hops += hops(d, self.cfg.hop_range) as u64;
            }
        }

        if let Some(cap) = self.cfg.bandwidth_cap {
            if round != self.counted_round {
                self.sends_this_round.iter_mut().for_each(|c| *c = 0);
                self.counted_round = round;
            }
            let idx = from.index();
            if idx >= self.sends_this_round.len() {
                self.sends_this_round.resize(idx + 1, 0);
            }
            if self.sends_this_round[idx] >= cap {
                self.stats.dropped_bandwidth += 1;
                return SendOutcome::DroppedBandwidth;
            }
            self.sends_this_round[idx] += 1;
        }

        if self.cfg.loss.dropped(from, to, round, &mut self.rng) {
            self.stats.dropped_loss += 1;
            return SendOutcome::DroppedLoss;
        }

        let delay = self.cfg.delay.delay(&mut self.rng).max(1);
        self.stats.delivered += 1;
        self.stats.bytes_delivered += wire_bytes as u64;
        let at = round + delay;
        let spare = &mut self.spare;
        self.queue
            .entry(at)
            .or_insert_with(|| spare.pop().unwrap_or_default())
            .push(Envelope {
                from,
                to,
                sent_at: round,
                payload,
            });
        self.in_flight_now += 1;
        self.stats.peak_in_flight = self.stats.peak_in_flight.max(self.in_flight_now);
        SendOutcome::Queued { at }
    }

    /// Collect every message due at or before `round`. Call once per round
    /// before stepping the protocols.
    pub fn drain(&mut self, round: Round) -> Vec<Envelope<P>> {
        let mut due = Vec::new();
        self.drain_into(round, &mut due);
        due
    }

    /// Like [`SimNetwork::drain`], but appends into a caller-provided
    /// buffer (cleared first) so a round-loop can reuse one allocation
    /// for the whole run. Emptied per-round queues are recycled for
    /// future sends.
    pub fn drain_into(&mut self, round: Round, due: &mut Vec<Envelope<P>>) {
        due.clear();
        while self
            .queue
            .first_key_value()
            .is_some_and(|(&at, _)| at <= round)
        {
            let (_, mut batch) = self.queue.pop_first().expect("peeked above");
            due.append(&mut batch);
            if self.spare.len() < SPARE_BUFFERS {
                self.spare.push(batch);
            }
        }
        self.in_flight_now -= due.len() as u64;
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.values().map(Vec::len).sum()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::UniformDelay;
    use crate::loss::UniformLoss;

    fn perfect_net() -> SimNetwork<u32> {
        SimNetwork::new(NetworkConfig::default(), 7)
    }

    #[test]
    fn delivers_next_round() {
        let mut net = perfect_net();
        net.send(0, NodeId(0), NodeId(1), 42, 8);
        assert!(net.drain(0).is_empty());
        let due = net.drain(1);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].payload, 42);
        assert_eq!(due[0].from, NodeId(0));
        assert_eq!(due[0].to, NodeId(1));
        assert_eq!(due[0].sent_at, 0);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn drain_collects_overdue() {
        let mut net = perfect_net();
        net.send(0, NodeId(0), NodeId(1), 1, 8);
        net.send(1, NodeId(0), NodeId(1), 2, 8);
        let due = net.drain(10);
        assert_eq!(due.len(), 2);
    }

    #[test]
    fn total_loss_drops_everything() {
        let cfg = NetworkConfig::default().with_loss(UniformLoss::new(1.0).unwrap());
        let mut net: SimNetwork<u32> = SimNetwork::new(cfg, 7);
        for i in 0..50 {
            net.send(0, NodeId(0), NodeId(1), i, 8);
        }
        assert!(net.drain(1).is_empty());
        assert_eq!(net.stats().dropped_loss, 50);
        assert_eq!(net.stats().delivered, 0);
        assert_eq!(net.stats().delivery_rate(), 0.0);
    }

    #[test]
    fn bandwidth_cap_enforced_per_round() {
        let cfg = NetworkConfig::default().with_bandwidth_cap(2);
        let mut net: SimNetwork<u32> = SimNetwork::new(cfg, 7);
        for i in 0..5 {
            net.send(0, NodeId(0), NodeId(1), i, 8);
        }
        // another sender is unaffected
        net.send(0, NodeId(1), NodeId(0), 99, 8);
        assert_eq!(net.stats().dropped_bandwidth, 3);
        assert_eq!(net.drain(1).len(), 3);
        // next round the counter resets
        net.send(1, NodeId(0), NodeId(1), 7, 8);
        assert_eq!(net.drain(2).len(), 1);
    }

    #[test]
    fn byte_accounting() {
        let mut net = perfect_net();
        net.send(0, NodeId(0), NodeId(1), 1, 100);
        net.send(0, NodeId(0), NodeId(1), 2, 50);
        assert_eq!(net.stats().bytes_sent, 150);
        assert_eq!(net.stats().bytes_delivered, 150);
    }

    #[test]
    fn distance_accounting_with_positions() {
        let pos = vec![Position::new(0.0, 0.0), Position::new(1.0, 1.0)];
        let cfg = NetworkConfig::default()
            .with_positions(pos)
            .with_hop_range(0.25);
        let mut net: SimNetwork<u32> = SimNetwork::new(cfg, 7);
        net.send(0, NodeId(0), NodeId(1), 1, 8);
        assert_eq!(net.stats().load_by_distance.iter().sum::<u64>(), 1);
        assert!(net.stats().total_hops >= 5); // sqrt(2)/0.25 ≈ 5.66 → 6 hops
    }

    #[test]
    fn delayed_delivery_lands_later() {
        let cfg = NetworkConfig::default().with_delay(UniformDelay::new(3, 3));
        let mut net: SimNetwork<u32> = SimNetwork::new(cfg, 7);
        net.send(0, NodeId(0), NodeId(1), 1, 8);
        assert!(net.drain(2).is_empty());
        assert_eq!(net.drain(3).len(), 1);
    }

    #[test]
    fn send_reports_outcome() {
        let mut net = perfect_net();
        assert_eq!(
            net.send(0, NodeId(0), NodeId(1), 1, 8),
            SendOutcome::Queued { at: 1 }
        );
        let lossy = NetworkConfig::default().with_loss(UniformLoss::new(1.0).unwrap());
        let mut net: SimNetwork<u32> = SimNetwork::new(lossy, 7);
        assert_eq!(
            net.send(0, NodeId(0), NodeId(1), 1, 8),
            SendOutcome::DroppedLoss
        );
        let capped = NetworkConfig::default().with_bandwidth_cap(1);
        let mut net: SimNetwork<u32> = SimNetwork::new(capped, 7);
        net.send(0, NodeId(0), NodeId(1), 1, 8);
        assert_eq!(
            net.send(0, NodeId(0), NodeId(1), 2, 8),
            SendOutcome::DroppedBandwidth
        );
    }

    #[test]
    fn drain_into_reuses_buffer_and_matches_drain() {
        let mut net = perfect_net();
        let mut buf = Vec::new();
        for r in 0..5 {
            net.send(r, NodeId(0), NodeId(1), r as u32, 8);
            net.drain_into(r + 1, &mut buf);
            assert_eq!(buf.len(), 1);
            assert_eq!(buf[0].payload, r as u32);
        }
        // buffer is cleared on every call, not accumulated
        net.drain_into(100, &mut buf);
        assert!(buf.is_empty());
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn peak_in_flight_tracks_high_water_mark() {
        let mut net = perfect_net();
        for i in 0..7 {
            net.send(0, NodeId(0), NodeId(1), i, 8);
        }
        assert_eq!(net.stats().peak_in_flight, 7);
        net.drain(1);
        // draining does not lower the recorded peak
        net.send(1, NodeId(0), NodeId(1), 99, 8);
        assert_eq!(net.stats().peak_in_flight, 7);
    }

    #[test]
    fn reserve_nodes_does_not_change_behavior() {
        let cfg = NetworkConfig::default().with_bandwidth_cap(2);
        let mut net: SimNetwork<u32> = SimNetwork::new(cfg, 7);
        net.reserve_nodes(4);
        for i in 0..5 {
            net.send(0, NodeId(0), NodeId(1), i, 8);
        }
        assert_eq!(net.stats().dropped_bandwidth, 3);
        assert_eq!(net.drain(1).len(), 2);
    }

    #[test]
    fn determinism_same_seed() {
        let run = |seed| {
            let cfg = NetworkConfig::default().with_loss(UniformLoss::new(0.5).unwrap());
            let mut net: SimNetwork<u32> = SimNetwork::new(cfg, seed);
            for i in 0..100 {
                net.send(0, NodeId(0), NodeId(1), i, 8);
            }
            net.drain(1).iter().map(|e| e.payload).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
