//! Deterministic ordered collections for protocol state.
//!
//! `std::collections::HashMap`/`HashSet` iterate in an order that
//! depends on the hasher's per-process random state — harmless in most
//! programs, fatal in a simulator whose every run must be byte-identical
//! from its seed. Any protocol fold, gossip-body build, or trace dump
//! that walks a hash map becomes a nondeterminism time bomb: it works
//! until someone iterates, and the goldens break in a way that is
//! invisible in review.
//!
//! [`DetMap`] and [`DetSet`] are thin newtypes over `BTreeMap`/`BTreeSet`
//! exposing the `HashMap`/`HashSet` API subset the protocol crates use.
//! Iteration order is the key's `Ord` — stable across runs, processes,
//! and platforms. The in-repo linter (`gridagg-lint`, rule D001) bans
//! the hash variants from protocol-state crates; this module is what
//! code migrates to.
//!
//! The `O(log n)` vs `O(1)` per-op difference is irrelevant at protocol
//! scale: these maps hold at most `K` child aggregates or one grid box
//! of votes — a handful of entries (see DESIGN.md §11).

use std::collections::{btree_map, BTreeMap, BTreeSet};

/// Re-export of the B-tree entry API used by [`DetMap::entry`].
pub use std::collections::btree_map::Entry;

/// A deterministic map: `BTreeMap` behind a `HashMap`-shaped API subset.
///
/// Iteration order is ascending key order, identical on every run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetMap<K, V> {
    inner: BTreeMap<K, V>,
}

impl<K: Ord, V> DetMap<K, V> {
    /// Create an empty map.
    pub fn new() -> Self {
        DetMap {
            inner: BTreeMap::new(),
        }
    }

    /// Insert a key-value pair, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.inner.insert(key, value)
    }

    /// Borrow the value for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.inner.get(key)
    }

    /// Mutably borrow the value for `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.inner.get_mut(key)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.inner.contains_key(key)
    }

    /// Remove `key`, returning its value if it was present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.inner.remove(key)
    }

    /// The in-place entry API (the B-tree flavor — same shape as the
    /// hash-map one for the `Vacant`/`Occupied` match).
    pub fn entry(&mut self, key: K) -> Entry<'_, K, V> {
        self.inner.entry(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterate entries in ascending key order.
    pub fn iter(&self) -> btree_map::Iter<'_, K, V> {
        self.inner.iter()
    }

    /// Iterate keys in ascending order.
    pub fn keys(&self) -> btree_map::Keys<'_, K, V> {
        self.inner.keys()
    }

    /// Iterate values in ascending key order.
    pub fn values(&self) -> btree_map::Values<'_, K, V> {
        self.inner.values()
    }

    /// Remove all entries.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<K: Ord, V> Default for DetMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord, V> std::ops::Index<&K> for DetMap<K, V> {
    type Output = V;

    /// # Panics
    ///
    /// Panics if `key` is absent, matching `HashMap`'s `Index`.
    fn index(&self, key: &K) -> &V {
        self.inner
            .get(key)
            .unwrap_or_else(|| panic!("DetMap: no entry for key"))
    }
}

impl<K: Ord, V> FromIterator<(K, V)> for DetMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        DetMap {
            inner: iter.into_iter().collect(),
        }
    }
}

impl<K: Ord, V> Extend<(K, V)> for DetMap<K, V> {
    fn extend<I: IntoIterator<Item = (K, V)>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<'a, K: Ord, V> IntoIterator for &'a DetMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = btree_map::Iter<'a, K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<K: Ord, V> IntoIterator for DetMap<K, V> {
    type Item = (K, V);
    type IntoIter = btree_map::IntoIter<K, V>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

/// A deterministic set: `BTreeSet` behind a `HashSet`-shaped API subset.
///
/// Iteration order is ascending element order, identical on every run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetSet<T> {
    inner: BTreeSet<T>,
}

impl<T: Ord> DetSet<T> {
    /// Create an empty set.
    pub fn new() -> Self {
        DetSet {
            inner: BTreeSet::new(),
        }
    }

    /// Insert `value`; returns `true` if it was not already present.
    pub fn insert(&mut self, value: T) -> bool {
        self.inner.insert(value)
    }

    /// Whether `value` is present.
    pub fn contains(&self, value: &T) -> bool {
        self.inner.contains(value)
    }

    /// Remove `value`; returns `true` if it was present.
    pub fn remove(&mut self, value: &T) -> bool {
        self.inner.remove(value)
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterate elements in ascending order.
    pub fn iter(&self) -> std::collections::btree_set::Iter<'_, T> {
        self.inner.iter()
    }

    /// Remove all elements.
    pub fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<T: Ord> Default for DetSet<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord> FromIterator<T> for DetSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        DetSet {
            inner: iter.into_iter().collect(),
        }
    }
}

impl<T: Ord> Extend<T> for DetSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<'a, T: Ord> IntoIterator for &'a DetSet<T> {
    type Item = &'a T;
    type IntoIter = std::collections::btree_set::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl<T: Ord> IntoIterator for DetSet<T> {
    type Item = T;
    type IntoIter = std::collections::btree_set::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_iteration_is_sorted_regardless_of_insertion_order() {
        let mut a = DetMap::new();
        for k in [5u32, 1, 9, 3, 7] {
            a.insert(k, k * 10);
        }
        let mut b = DetMap::new();
        for k in [9u32, 7, 5, 3, 1] {
            b.insert(k, k * 10);
        }
        let ka: Vec<u32> = a.keys().copied().collect();
        let kb: Vec<u32> = b.keys().copied().collect();
        assert_eq!(ka, vec![1, 3, 5, 7, 9]);
        assert_eq!(ka, kb, "iteration order must not depend on history");
        assert_eq!(a, b);
    }

    #[test]
    fn map_basic_ops_match_hash_map_semantics() {
        let mut m = DetMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert("k", 1), None);
        assert_eq!(m.insert("k", 2), Some(1));
        assert_eq!(m.get(&"k"), Some(&2));
        assert_eq!(m[&"k"], 2);
        assert!(m.contains_key(&"k"));
        *m.get_mut(&"k").unwrap() += 1;
        assert_eq!(m.remove(&"k"), Some(3));
        assert_eq!(m.len(), 0);
    }

    #[test]
    fn map_entry_api_vacant_and_occupied() {
        let mut m: DetMap<u8, Vec<u8>> = DetMap::new();
        match m.entry(1) {
            Entry::Vacant(v) => {
                v.insert(vec![1]);
            }
            Entry::Occupied(_) => panic!("fresh key must be vacant"),
        }
        match m.entry(1) {
            Entry::Occupied(mut o) => o.get_mut().push(2),
            Entry::Vacant(_) => panic!("key must be occupied now"),
        }
        assert_eq!(m[&1], vec![1, 2]);
    }

    #[test]
    fn set_iteration_is_sorted() {
        let s: DetSet<u32> = [4u32, 2, 8, 6].into_iter().collect();
        let got: Vec<u32> = s.iter().copied().collect();
        assert_eq!(got, vec![2, 4, 6, 8]);
    }

    #[test]
    fn set_insert_contains_remove() {
        let mut s = DetSet::new();
        assert!(s.insert(7u32));
        assert!(!s.insert(7), "duplicate insert reports false");
        assert!(s.contains(&7));
        assert!(s.remove(&7));
        assert!(!s.remove(&7));
        assert!(s.is_empty());
    }
}
