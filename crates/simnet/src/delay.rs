//! Message-delay models.
//!
//! The paper's network is asynchronous; its simulation delivers gossip
//! messages by the next round. [`NextRound`] reproduces that default, and
//! the jittered models let experiments probe sensitivity to extra
//! asynchrony (members already progress through *phases* asynchronously —
//! step 2(b) of the protocol — independent of the delay model).

use crate::rng::DetRng;

/// Decides, per message, how many rounds after sending it is delivered.
/// The returned delay is always at least 1 (no same-round delivery).
pub trait DelayModel: Send + Sync + std::fmt::Debug {
    /// Delay in rounds (>= 1) for one message.
    fn delay(&self, rng: &mut DetRng) -> u64;
}

/// Deliver at the start of the next round — the paper's simulation default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NextRound;

impl DelayModel for NextRound {
    fn delay(&self, _rng: &mut DetRng) -> u64 {
        1
    }
}

/// Uniform delay in `[min, max]` rounds.
#[derive(Debug, Clone, Copy)]
pub struct UniformDelay {
    min: u64,
    max: u64,
}

impl UniformDelay {
    /// Create a uniform delay model over `[min, max]`; both bounds are
    /// clamped to at least 1 and swapped if out of order.
    pub fn new(min: u64, max: u64) -> Self {
        let lo = min.max(1);
        let hi = max.max(1);
        UniformDelay {
            min: lo.min(hi),
            max: lo.max(hi),
        }
    }
}

impl DelayModel for UniformDelay {
    fn delay(&self, rng: &mut DetRng) -> u64 {
        let span = self.max - self.min + 1;
        self.min + rng.below(span as usize) as u64
    }
}

/// Geometric delay: each extra round occurs with probability `p_extra`,
/// capped at `cap`. Models occasional stragglers without unbounded tails.
#[derive(Debug, Clone, Copy)]
pub struct GeometricDelay {
    p_extra: f64,
    cap: u64,
}

impl GeometricDelay {
    /// Create a geometric delay model; `p_extra` is clamped to `[0, 0.99]`.
    pub fn new(p_extra: f64, cap: u64) -> Self {
        GeometricDelay {
            p_extra: p_extra.clamp(0.0, 0.99),
            cap: cap.max(1),
        }
    }
}

impl DelayModel for GeometricDelay {
    fn delay(&self, rng: &mut DetRng) -> u64 {
        let mut d = 1;
        while d < self.cap && rng.chance(self.p_extra) {
            d += 1;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seeded(4)
    }

    #[test]
    fn next_round_is_one() {
        assert_eq!(NextRound.delay(&mut rng()), 1);
    }

    #[test]
    fn uniform_delay_in_range() {
        let m = UniformDelay::new(2, 5);
        let mut r = rng();
        for _ in 0..1000 {
            let d = m.delay(&mut r);
            assert!((2..=5).contains(&d));
        }
    }

    #[test]
    fn uniform_delay_normalizes_bounds() {
        let m = UniformDelay::new(0, 0);
        assert_eq!(m.delay(&mut rng()), 1);
        let swapped = UniformDelay::new(5, 2);
        let mut r = rng();
        for _ in 0..100 {
            assert!((2..=5).contains(&swapped.delay(&mut r)));
        }
    }

    #[test]
    fn geometric_delay_capped_and_positive() {
        let m = GeometricDelay::new(0.9, 4);
        let mut r = rng();
        for _ in 0..1000 {
            let d = m.delay(&mut r);
            assert!((1..=4).contains(&d));
        }
    }

    #[test]
    fn geometric_delay_zero_extra_is_next_round() {
        let m = GeometricDelay::new(0.0, 10);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(m.delay(&mut r), 1);
        }
    }
}
