//! Synthetic 2-D network topology.
//!
//! The paper motivates its protocol with sensor fields (airplane wings,
//! smart dust on terrain) and sketches a *topologically aware* hash that
//! puts nearby members in the same grid box (§6.1, Figure 3). We do not
//! have real sensor deployments, so this module provides synthetic fields
//! with the properties the protocol actually observes: node positions,
//! pairwise distances, and a hop-count model that lets the simulator
//! account for how far each message travels.

use crate::rng::DetRng;

/// A point in the unit square, the simulated deployment region.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// Horizontal coordinate in `[0, 1]`.
    pub x: f64,
    /// Vertical coordinate in `[0, 1]`.
    pub y: f64,
}

impl Position {
    /// Create a position, clamping both coordinates to `[0, 1]`.
    pub fn new(x: f64, y: f64) -> Self {
        Position {
            x: x.clamp(0.0, 1.0),
            y: y.clamp(0.0, 1.0),
        }
    }

    /// Euclidean distance to another position.
    pub fn distance(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }
}

/// How node positions are laid out over the unit square.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// Independently uniform positions (smart dust "randomly dropped on an
    /// inhospitable terrain").
    UniformRandom,
    /// A jittered regular grid (sensors installed on an airplane wing).
    Grid,
    /// A small number of dense clusters (Internet hosts in a few subnets).
    Clustered {
        /// Number of cluster centres.
        clusters: usize,
    },
}

/// Generate `n` positions of the given kind, deterministically from `rng`.
pub fn make_field(kind: FieldKind, n: usize, rng: &mut DetRng) -> Vec<Position> {
    match kind {
        FieldKind::UniformRandom => (0..n)
            .map(|_| Position::new(rng.unit(), rng.unit()))
            .collect(),
        FieldKind::Grid => {
            let side = (n as f64).sqrt().ceil() as usize;
            let step = 1.0 / side.max(1) as f64;
            (0..n)
                .map(|i| {
                    let gx = (i % side) as f64 * step + step / 2.0;
                    let gy = (i / side) as f64 * step + step / 2.0;
                    // Small jitter so ties in coordinates are broken.
                    let jx = (rng.unit() - 0.5) * step * 0.2;
                    let jy = (rng.unit() - 0.5) * step * 0.2;
                    Position::new(gx + jx, gy + jy)
                })
                .collect()
        }
        FieldKind::Clustered { clusters } => {
            let c = clusters.max(1);
            let centres: Vec<Position> = (0..c)
                .map(|_| Position::new(rng.unit(), rng.unit()))
                .collect();
            (0..n)
                .map(|i| {
                    let centre = centres[i % c];
                    let jx = (rng.unit() - 0.5) * 0.1;
                    let jy = (rng.unit() - 0.5) * 0.1;
                    Position::new(centre.x + jx, centre.y + jy)
                })
                .collect()
        }
    }
}

/// Number of distance buckets used in link-load accounting.
pub const DISTANCE_BUCKETS: usize = 8;

/// Bucket a distance in `[0, sqrt(2)]` into one of [`DISTANCE_BUCKETS`]
/// bins, used to report how much traffic travels how far (the §6.1 claim:
/// a topologically aware hash restricts early-phase messages to short
/// network routes).
pub fn distance_bucket(d: f64) -> usize {
    let max = std::f64::consts::SQRT_2;
    let b = ((d / max) * DISTANCE_BUCKETS as f64).floor() as usize;
    b.min(DISTANCE_BUCKETS - 1)
}

/// Hop count for a message over distance `d` in a multihop network whose
/// radio range is `range`: at least one hop, proportional to distance.
pub fn hops(d: f64, range: f64) -> u32 {
    if d <= 0.0 {
        return 0;
    }
    let r = range.max(1e-6);
    (d / r).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seeded(2001)
    }

    #[test]
    fn positions_clamped() {
        let p = Position::new(-0.5, 1.5);
        assert_eq!(p, Position { x: 0.0, y: 1.0 });
    }

    #[test]
    fn distance_is_metric_like() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(1.0, 1.0);
        assert!((a.distance(&b) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn fields_have_n_points_in_unit_square() {
        for kind in [
            FieldKind::UniformRandom,
            FieldKind::Grid,
            FieldKind::Clustered { clusters: 4 },
        ] {
            let f = make_field(kind, 100, &mut rng());
            assert_eq!(f.len(), 100);
            for p in &f {
                assert!((0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y));
            }
        }
    }

    #[test]
    fn grid_field_spreads_points() {
        let f = make_field(FieldKind::Grid, 64, &mut rng());
        // points in opposite corners should be far apart
        let d = f[0].distance(&f[63]);
        assert!(d > 1.0, "grid corners too close: {d}");
    }

    #[test]
    fn clustered_field_is_clustered() {
        let f = make_field(FieldKind::Clustered { clusters: 2 }, 100, &mut rng());
        // Same-cluster members (stride 2 apart) are close.
        let d = f[0].distance(&f[2]);
        assert!(d < 0.25, "same-cluster distance {d}");
    }

    #[test]
    fn buckets_cover_range() {
        assert_eq!(distance_bucket(0.0), 0);
        assert_eq!(
            distance_bucket(std::f64::consts::SQRT_2),
            DISTANCE_BUCKETS - 1
        );
        assert_eq!(distance_bucket(10.0), DISTANCE_BUCKETS - 1);
    }

    #[test]
    fn hops_scale_with_distance() {
        assert_eq!(hops(0.0, 0.1), 0);
        assert_eq!(hops(0.05, 0.1), 1);
        assert_eq!(hops(0.35, 0.1), 4);
    }

    #[test]
    fn field_generation_is_deterministic() {
        let a = make_field(FieldKind::UniformRandom, 10, &mut rng());
        let b = make_field(FieldKind::UniformRandom, 10, &mut rng());
        assert_eq!(a, b);
    }
}
