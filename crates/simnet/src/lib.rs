//! # gridagg-simnet
//!
//! A deterministic, round-based lossy network simulator: the substrate on
//! which the DSN 2001 *Hierarchical Gossiping* experiments run.
//!
//! The paper evaluates its protocol "over a simulated lossy network with
//! fail-prone machines". This crate reproduces that substrate:
//!
//! * **Rounds** — time advances in discrete gossip rounds ([`Round`]).
//! * **Loss models** ([`loss`]) — independent unicast loss `ucastl`,
//!   *soft partitions* with correlated cross-partition loss `partl`
//!   (paper §7, Figure 9), and distance-dependent loss for the
//!   topologically-aware experiments.
//! * **Delay models** ([`delay`]) — next-round delivery by default, with
//!   uniform/geometric jitter available for asynchrony experiments.
//! * **Bandwidth caps** — the paper assumes "a maximum network bandwidth
//!   constraint" per member; [`network::SimNetwork`] enforces a per-node,
//!   per-round send cap.
//! * **Determinism** — all randomness flows from a seeded, splittable
//!   [`rng::DetRng`], so every run is exactly reproducible from its seed.
//!
//! # Example
//!
//! ```
//! use gridagg_simnet::{network::{SimNetwork, NetworkConfig}, NodeId, loss::UniformLoss};
//!
//! let cfg = NetworkConfig::default().with_loss(UniformLoss::new(0.25).unwrap());
//! let mut net: SimNetwork<&'static str> = SimNetwork::new(cfg, 42);
//! net.send(0, NodeId(0), NodeId(1), "hello", 16);
//! let delivered = net.drain(1);
//! // with 25% loss the message may or may not arrive, deterministically per seed
//! assert!(delivered.len() <= 1);
//! ```

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod bitset;
pub mod delay;
pub mod detcol;
pub mod loss;
pub mod network;
pub mod rng;
pub mod stats;
pub mod topology;

/// A discrete gossip round. Round 0 is the first round of a run.
pub type Round = u64;

/// Identifier of a simulated node (process, sensor, group member).
///
/// Node ids are dense indices in `0..n` for a group of `n` members; the
/// group layer maps them to "globally unique identifiers" via hashing, as
/// the paper assumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a dense `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "M{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from(7u32);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "M7");
    }

    #[test]
    fn node_id_ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId::default(), NodeId(0));
    }
}
