//! Network accounting.
//!
//! The paper's metrics are *message complexity*, *time complexity*, and
//! *completeness*. [`NetworkStats`] measures the first directly (messages
//! and bytes, split by fate) and records per-distance-bucket link load for
//! the §6.1 topology-aware claim ("messages in the initial phases of the
//! protocol would be restricted to travel short distances").

use crate::topology::DISTANCE_BUCKETS;

/// Counters accumulated by a [`crate::network::SimNetwork`] over one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages handed to the network by protocols.
    pub sent: u64,
    /// Messages actually delivered to their destination.
    pub delivered: u64,
    /// Messages dropped by the loss model.
    pub dropped_loss: u64,
    /// Messages rejected because the sender exceeded its per-round
    /// bandwidth cap (the paper's "maximum network bandwidth constraint").
    pub dropped_bandwidth: u64,
    /// Bytes handed to the network.
    pub bytes_sent: u64,
    /// Bytes delivered.
    pub bytes_delivered: u64,
    /// Messages sent, bucketed by the sender→receiver distance (only
    /// populated when the network knows node positions).
    pub load_by_distance: [u64; DISTANCE_BUCKETS],
    /// Total hop count of all sent messages (distance-weighted load);
    /// only populated when positions are known.
    pub total_hops: u64,
    /// Largest number of messages simultaneously in flight at any point
    /// of the run — the network's buffering high-water mark, used by the
    /// bench baseline as a deterministic load proxy.
    pub peak_in_flight: u64,
}

impl NetworkStats {
    /// Fraction of sent messages that were delivered (`1.0` when nothing
    /// was sent).
    pub fn delivery_rate(&self) -> f64 {
        if self.sent == 0 {
            1.0
        } else {
            self.delivered as f64 / self.sent as f64
        }
    }

    /// Fraction of sent traffic (messages) that fell in distance buckets
    /// `>= bucket` — "long-haul" load share.
    pub fn long_haul_share(&self, bucket: usize) -> f64 {
        let total: u64 = self.load_by_distance.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let far: u64 = self.load_by_distance[bucket.min(DISTANCE_BUCKETS - 1)..]
            .iter()
            .sum();
        far as f64 / total as f64
    }

    /// Merge another stats block into this one (used when aggregating
    /// multiple runs).
    pub fn merge(&mut self, other: &NetworkStats) {
        self.sent += other.sent;
        self.delivered += other.delivered;
        self.dropped_loss += other.dropped_loss;
        self.dropped_bandwidth += other.dropped_bandwidth;
        self.bytes_sent += other.bytes_sent;
        self.bytes_delivered += other.bytes_delivered;
        for (a, b) in self.load_by_distance.iter_mut().zip(other.load_by_distance) {
            *a += b;
        }
        self.total_hops += other.total_hops;
        // a high-water mark, not a flow count: the merged peak is the
        // worst single-run peak
        self.peak_in_flight = self.peak_in_flight.max(other.peak_in_flight);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_rate_empty_is_one() {
        assert_eq!(NetworkStats::default().delivery_rate(), 1.0);
    }

    #[test]
    fn delivery_rate_counts() {
        let s = NetworkStats {
            sent: 10,
            delivered: 4,
            ..Default::default()
        };
        assert!((s.delivery_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn long_haul_share() {
        let mut s = NetworkStats::default();
        s.load_by_distance[0] = 75;
        s.load_by_distance[7] = 25;
        assert!((s.long_haul_share(4) - 0.25).abs() < 1e-12);
        assert!((s.long_haul_share(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn long_haul_share_empty_is_zero() {
        assert_eq!(NetworkStats::default().long_haul_share(3), 0.0);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = NetworkStats {
            sent: 1,
            delivered: 1,
            bytes_sent: 16,
            ..Default::default()
        };
        let b = NetworkStats {
            sent: 2,
            dropped_loss: 1,
            bytes_sent: 32,
            total_hops: 5,
            peak_in_flight: 9,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.sent, 3);
        assert_eq!(a.delivered, 1);
        assert_eq!(a.dropped_loss, 1);
        assert_eq!(a.bytes_sent, 48);
        assert_eq!(a.total_hops, 5);
        assert_eq!(a.peak_in_flight, 9, "peak merges as a max");
    }
}
