//! Message-loss models.
//!
//! The paper's simulations (§7) use two loss regimes, both reproduced here:
//!
//! * independent unicast loss with probability `ucastl` ([`UniformLoss`]),
//! * a *soft partition*: the group is split into two halves and messages
//!   crossing the boundary are dropped with probability `partl`, while
//!   intra-half messages see the background `ucastl` ([`PartitionLoss`],
//!   Figure 9 — "the most major symptom of congestion and correlated
//!   message delivery failures in wide area networks").
//!
//! [`DistanceLoss`] additionally models multihop radio networks where far
//! links fail more often, used by the topology-aware experiments.

use crate::rng::DetRng;
use crate::topology::Position;
use crate::{NodeId, Round};

/// Error returned when a probability parameter is outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidProbability;

impl std::fmt::Display for InvalidProbability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("probability must lie in [0, 1]")
    }
}

impl std::error::Error for InvalidProbability {}

fn check(p: f64) -> Result<f64, InvalidProbability> {
    if (0.0..=1.0).contains(&p) {
        Ok(p)
    } else {
        Err(InvalidProbability)
    }
}

/// Decides, per message, whether the network drops it.
///
/// Implementations must be deterministic given the `rng` stream: the
/// simulator calls `dropped` exactly once per sent message.
pub trait LossModel: Send + Sync + std::fmt::Debug {
    /// Return `true` if the message from `from` to `to` sent in `round`
    /// should be dropped.
    fn dropped(&self, from: NodeId, to: NodeId, round: Round, rng: &mut DetRng) -> bool;
}

/// A perfectly reliable network (used for correctness tests and Figure 11,
/// where `ucastl = pf = 0`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Perfect;

impl LossModel for Perfect {
    fn dropped(&self, _f: NodeId, _t: NodeId, _r: Round, _rng: &mut DetRng) -> bool {
        false
    }
}

/// Independent unicast loss with fixed probability (`ucastl` in the paper).
#[derive(Debug, Clone, Copy)]
pub struct UniformLoss {
    p: f64,
}

impl UniformLoss {
    /// Create a uniform loss model.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbability`] if `p` is not in `[0, 1]`.
    pub fn new(p: f64) -> Result<Self, InvalidProbability> {
        Ok(UniformLoss { p: check(p)? })
    }

    /// The loss probability.
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl LossModel for UniformLoss {
    fn dropped(&self, _f: NodeId, _t: NodeId, _r: Round, rng: &mut DetRng) -> bool {
        rng.chance(self.p)
    }
}

/// Soft network partition (paper §7, Figure 9).
///
/// Nodes with id `< boundary` form one half; messages crossing the
/// boundary are dropped with probability `partl`, messages inside either
/// half with probability `ucastl`.
#[derive(Debug, Clone, Copy)]
pub struct PartitionLoss {
    boundary: u32,
    partl: f64,
    ucastl: f64,
}

impl PartitionLoss {
    /// Create a partition loss model with the half boundary at `boundary`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbability`] if either probability is not in `[0, 1]`.
    pub fn new(boundary: u32, partl: f64, ucastl: f64) -> Result<Self, InvalidProbability> {
        Ok(PartitionLoss {
            boundary,
            partl: check(partl)?,
            ucastl: check(ucastl)?,
        })
    }

    /// Whether a `from -> to` message crosses the partition boundary.
    pub fn crosses(&self, from: NodeId, to: NodeId) -> bool {
        (from.0 < self.boundary) != (to.0 < self.boundary)
    }
}

impl LossModel for PartitionLoss {
    fn dropped(&self, from: NodeId, to: NodeId, _r: Round, rng: &mut DetRng) -> bool {
        let p = if self.crosses(from, to) {
            self.partl
        } else {
            self.ucastl
        };
        rng.chance(p)
    }
}

/// Distance-dependent loss for multihop radio fields: each hop fails
/// independently with `per_hop`, so a message over `h` hops survives with
/// probability `(1 - per_hop)^h`.
#[derive(Debug, Clone)]
pub struct DistanceLoss {
    positions: Vec<Position>,
    range: f64,
    per_hop: f64,
}

impl DistanceLoss {
    /// Create a distance loss model over the given node positions.
    ///
    /// `range` is the single-hop radio range; `per_hop` the loss
    /// probability of each hop.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidProbability`] if `per_hop` is not in `[0, 1]`.
    pub fn new(
        positions: Vec<Position>,
        range: f64,
        per_hop: f64,
    ) -> Result<Self, InvalidProbability> {
        Ok(DistanceLoss {
            positions,
            range: range.max(1e-6),
            per_hop: check(per_hop)?,
        })
    }

    fn hops(&self, from: NodeId, to: NodeId) -> u32 {
        match (
            self.positions.get(from.index()),
            self.positions.get(to.index()),
        ) {
            (Some(a), Some(b)) => crate::topology::hops(a.distance(b), self.range),
            _ => 1,
        }
    }
}

impl LossModel for DistanceLoss {
    fn dropped(&self, from: NodeId, to: NodeId, _r: Round, rng: &mut DetRng) -> bool {
        let h = self.hops(from, to);
        let survive = (1.0 - self.per_hop).powi(h as i32);
        !rng.chance(survive)
    }
}

/// A loss model that switches between two inner models at a given round,
/// for experiments where the network degrades (or heals) mid-run.
#[derive(Debug)]
pub struct SwitchLoss {
    before: Box<dyn LossModel>,
    after: Box<dyn LossModel>,
    at: Round,
}

impl SwitchLoss {
    /// Use `before` for rounds `< at`, `after` from round `at` onwards.
    pub fn new(before: Box<dyn LossModel>, after: Box<dyn LossModel>, at: Round) -> Self {
        SwitchLoss { before, after, at }
    }
}

impl LossModel for SwitchLoss {
    fn dropped(&self, from: NodeId, to: NodeId, round: Round, rng: &mut DetRng) -> bool {
        if round < self.at {
            self.before.dropped(from, to, round, rng)
        } else {
            self.after.dropped(from, to, round, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seeded(1)
    }

    #[test]
    fn probability_validation() {
        assert!(UniformLoss::new(1.1).is_err());
        assert!(UniformLoss::new(-0.1).is_err());
        assert!(UniformLoss::new(0.25).is_ok());
        assert!(PartitionLoss::new(10, 1.5, 0.0).is_err());
        assert!(DistanceLoss::new(vec![], 0.1, 2.0).is_err());
    }

    #[test]
    fn perfect_never_drops() {
        let mut r = rng();
        for i in 0..100u32 {
            assert!(!Perfect.dropped(NodeId(i), NodeId(i + 1), 0, &mut r));
        }
    }

    #[test]
    fn uniform_loss_rate_matches() {
        let m = UniformLoss::new(0.25).unwrap();
        let mut r = rng();
        let trials = 40_000;
        let drops = (0..trials)
            .filter(|_| m.dropped(NodeId(0), NodeId(1), 0, &mut r))
            .count();
        let rate = drops as f64 / trials as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn partition_crossing_detection() {
        let m = PartitionLoss::new(100, 0.7, 0.1).unwrap();
        assert!(m.crosses(NodeId(0), NodeId(100)));
        assert!(m.crosses(NodeId(150), NodeId(99)));
        assert!(!m.crosses(NodeId(1), NodeId(2)));
        assert!(!m.crosses(NodeId(150), NodeId(199)));
    }

    #[test]
    fn partition_loss_rates_differ() {
        let m = PartitionLoss::new(100, 1.0, 0.0).unwrap();
        let mut r = rng();
        assert!(m.dropped(NodeId(0), NodeId(150), 0, &mut r));
        assert!(!m.dropped(NodeId(0), NodeId(50), 0, &mut r));
    }

    #[test]
    fn distance_loss_worse_for_far_links() {
        let pos = vec![
            Position::new(0.0, 0.0),
            Position::new(0.05, 0.0),
            Position::new(1.0, 1.0),
        ];
        let m = DistanceLoss::new(pos, 0.1, 0.2).unwrap();
        let mut r = rng();
        let trials = 20_000;
        let near = (0..trials)
            .filter(|_| m.dropped(NodeId(0), NodeId(1), 0, &mut r))
            .count() as f64
            / trials as f64;
        let far = (0..trials)
            .filter(|_| m.dropped(NodeId(0), NodeId(2), 0, &mut r))
            .count() as f64
            / trials as f64;
        assert!(near < 0.25, "near link loss {near}");
        assert!(far > 0.9, "far link loss {far}");
    }

    #[test]
    fn switch_loss_changes_at_round() {
        let m = SwitchLoss::new(
            Box::new(Perfect),
            Box::new(UniformLoss::new(1.0).unwrap()),
            5,
        );
        let mut r = rng();
        assert!(!m.dropped(NodeId(0), NodeId(1), 4, &mut r));
        assert!(m.dropped(NodeId(0), NodeId(1), 5, &mut r));
    }

    #[test]
    fn invalid_probability_displays() {
        let e = UniformLoss::new(2.0).unwrap_err();
        assert!(e.to_string().contains("[0, 1]"));
    }
}
