//! Deterministic, splittable randomness.
//!
//! Every stochastic decision in the simulator — message loss, gossipee
//! selection, crash injection — draws from a [`DetRng`] derived from a
//! single run seed. Distinct subsystems *fork* independent streams so that,
//! e.g., adding one more message-loss coin flip does not perturb the crash
//! schedule. This keeps runs exactly reproducible and makes experiments
//! (which average over seeds `base..base+runs`) directly comparable.

/// The xoshiro256++ generator backing [`DetRng`].
///
/// This is the same algorithm `rand 0.8`'s `SmallRng` uses on 64-bit
/// targets, implemented in-repo so the simulator has no external
/// dependencies. [`Xoshiro256PlusPlus::seed_from_u64`] reproduces
/// `rand_core`'s PCG32-based seeding exactly, so historical run seeds
/// keep producing the same streams. Not cryptographic — appropriate for
/// simulation only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Seed from raw state words. All-zero state is forbidden by the
    /// algorithm; it is mapped to a fixed non-zero state.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            // any fixed non-zero state keeps the generator well-defined
            return Xoshiro256PlusPlus::seed_from_u64(0);
        }
        Xoshiro256PlusPlus { s }
    }

    /// Derive the full 256-bit state from a 64-bit seed using the PCG32
    /// stream `rand_core 0.6` uses for `seed_from_u64` (kept
    /// bit-compatible so existing experiment seeds are stable).
    pub fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        let mut s = [0u64; 4];
        for (word, bytes) in s.iter_mut().zip(seed.chunks(8)) {
            *word = u64::from_le_bytes(bytes.try_into().expect("8-byte chunk"));
        }
        Xoshiro256PlusPlus::from_state(s)
    }

    /// The next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// SplitMix64 step: a high-quality 64-bit mixing function.
///
/// Used both for seed derivation here and for the "well-known hash function
/// `H`" of the Grid Box Hierarchy (see `gridagg-hierarchy`).
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a 64-bit hash to the unit interval `[0, 1)`.
///
/// The paper's hash `H` "maps the unique group member identifiers randomly
/// into the interval \[0,1\]"; this is the numeric half of that mapping.
#[inline]
pub fn unit_interval(hash: u64) -> f64 {
    // Use the top 53 bits so the result is uniform over representable doubles.
    (hash >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A deterministic random number generator with cheap stream forking.
///
/// Wraps [`Xoshiro256PlusPlus`] (not cryptographic — appropriate for
/// simulation). `fork(label)` derives an independent stream from the
/// current seed and a label, so subsystems cannot perturb each other.
///
/// ```
/// use gridagg_simnet::rng::DetRng;
///
/// let mut a = DetRng::seeded(7);
/// let mut b = DetRng::seeded(7);
/// assert_eq!(a.unit(), b.unit()); // same seed, same stream
/// let mut fork = a.fork(1);       // independent labelled stream
/// assert!((0.0..1.0).contains(&fork.unit()));
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    inner: Xoshiro256PlusPlus,
}

impl DetRng {
    /// Create a generator from a seed.
    pub fn seeded(seed: u64) -> Self {
        DetRng {
            seed,
            inner: Xoshiro256PlusPlus::seed_from_u64(splitmix64(seed)),
        }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent stream for a labelled subsystem.
    ///
    /// Forking with the same `(seed, label)` always yields the same stream.
    pub fn fork(&self, label: u64) -> DetRng {
        DetRng::seeded(splitmix64(
            self.seed ^ splitmix64(label.wrapping_add(0xA5A5_5A5A)),
        ))
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        unit_interval(self.inner.next_u64())
    }

    /// Bernoulli trial with probability `p` of returning `true`.
    ///
    /// `p <= 0.0` always returns `false`; `p >= 1.0` always returns `true`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "DetRng::below called with bound 0");
        // Rejection-free mapping via 128-bit multiply (Lemire). Bias is
        // negligible for simulation bounds (< 2^32).
        let x = self.inner.next_u64();
        (((x as u128) * (bound as u128)) >> 64) as usize
    }

    /// Choose a random element of a slice, or `None` when empty.
    #[inline]
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len())])
        }
    }

    /// Sample up to `m` *distinct* indices from `0..len`, excluding `skip`.
    ///
    /// This is the paper's gossipee selection: "randomly selecting a few
    /// gossipees only from among other members" of the current scope. Uses
    /// a partial Fisher–Yates over a scratch vector for small scopes and
    /// rejection sampling for large ones.
    pub fn sample_distinct(&mut self, len: usize, skip: Option<usize>, m: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.sample_distinct_into(len, skip, m, &mut out);
        out
    }

    /// Allocation-free variant of [`DetRng::sample_distinct`]: writes the
    /// picks into `out` (cleared first), so round-loops can reuse one
    /// scratch buffer. Draws the *exact same* random sequence as
    /// `sample_distinct` for the same inputs — callers may switch between
    /// the two without perturbing a seeded run.
    pub fn sample_distinct_into(
        &mut self,
        len: usize,
        skip: Option<usize>,
        m: usize,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        let available = len - usize::from(skip.is_some_and(|s| s < len));
        let take = m.min(available);
        if take == 0 {
            return;
        }
        // Rejection sampling is cheap when take << len.
        if len > 8 * take + 8 {
            out.reserve(take);
            while out.len() < take {
                let c = self.below(len);
                if Some(c) != skip && !out.contains(&c) {
                    out.push(c);
                }
            }
            return;
        }
        // Partial Fisher–Yates over the candidate pool. The pool is
        // bounded by `8·take + 8` here, so a stack buffer covers every
        // realistic fanout without touching the heap.
        let mut stack = [0usize; 128];
        let mut heap;
        let pool: &mut [usize] = if len <= stack.len() {
            &mut stack[..len]
        } else {
            heap = vec![0usize; len];
            &mut heap[..]
        };
        let mut filled = 0;
        for i in (0..len).filter(|&i| Some(i) != skip) {
            pool[filled] = i;
            filled += 1;
        }
        let pool = &mut pool[..filled];
        for i in 0..take {
            let j = i + self.below(pool.len() - i);
            pool.swap(i, j);
        }
        out.extend_from_slice(&pool[..take]);
    }

    /// Access the raw generator for direct 64-bit draws.
    pub fn raw(&mut self) -> &mut Xoshiro256PlusPlus {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seeded(7);
        let mut b = DetRng::seeded(7);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn forks_are_independent_and_reproducible() {
        let root = DetRng::seeded(7);
        let mut f1 = root.fork(1);
        let mut f1b = root.fork(1);
        let mut f2 = root.fork(2);
        let s1: Vec<u64> = (0..8).map(|_| f1.raw().next_u64()).collect();
        let s1b: Vec<u64> = (0..8).map(|_| f1b.raw().next_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| f2.raw().next_u64()).collect();
        assert_eq!(s1, s1b);
        assert_ne!(s1, s2);
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seeded(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn unit_is_in_range_and_roughly_uniform() {
        let mut r = DetRng::seeded(99);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = DetRng::seeded(3);
        for bound in [1usize, 2, 3, 17, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    #[should_panic(expected = "bound 0")]
    fn below_zero_panics() {
        DetRng::seeded(0).below(0);
    }

    #[test]
    fn sample_distinct_basic() {
        let mut r = DetRng::seeded(5);
        for _ in 0..100 {
            let s = r.sample_distinct(10, Some(3), 4);
            assert_eq!(s.len(), 4);
            let mut d = s.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 4, "duplicates in {s:?}");
            assert!(!s.contains(&3));
            assert!(s.iter().all(|&i| i < 10));
        }
    }

    #[test]
    fn sample_distinct_exhausts_pool() {
        let mut r = DetRng::seeded(5);
        let s = r.sample_distinct(3, Some(0), 10);
        let mut d = s.clone();
        d.sort_unstable();
        assert_eq!(d, vec![1, 2]);
    }

    #[test]
    fn sample_distinct_empty_cases() {
        let mut r = DetRng::seeded(5);
        assert!(r.sample_distinct(0, None, 3).is_empty());
        assert!(r.sample_distinct(1, Some(0), 3).is_empty());
        assert!(r.sample_distinct(5, None, 0).is_empty());
    }

    #[test]
    fn sample_distinct_large_scope_rejection_path() {
        let mut r = DetRng::seeded(11);
        let s = r.sample_distinct(10_000, Some(42), 2);
        assert_eq!(s.len(), 2);
        assert_ne!(s[0], s[1]);
        assert!(!s.contains(&42));
    }

    #[test]
    fn sample_distinct_into_draws_identical_sequence() {
        // the buffered variant must be a drop-in replacement: same seed,
        // same picks, on both the pool and rejection paths
        for (len, skip, m) in [(10, Some(3), 4), (10_000, Some(42), 2), (3, None, 8)] {
            let mut a = DetRng::seeded(21);
            let mut b = DetRng::seeded(21);
            let mut buf = vec![999; 8]; // stale contents must be cleared
            for _ in 0..50 {
                let plain = a.sample_distinct(len, skip, m);
                b.sample_distinct_into(len, skip, m, &mut buf);
                assert_eq!(plain, buf);
            }
            assert_eq!(a.raw().next_u64(), b.raw().next_u64(), "streams aligned");
        }
    }

    #[test]
    fn splitmix_is_bijective_sample() {
        // distinct inputs -> distinct outputs (spot check)
        let outs: std::collections::HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }

    #[test]
    fn unit_interval_bounds() {
        assert_eq!(unit_interval(0), 0.0);
        assert!(unit_interval(u64::MAX) < 1.0);
    }
}
