//! Fixed-size dense bitsets over `0..n` indices.
//!
//! The struct-of-arrays engine keeps per-member flags (started, active,
//! pending deliveries) and per-member dedup sets (votes seen, keyed by
//! box position) as [`DenseBitSet`]s instead of sorted-vec `DetSet`s:
//! membership tests and inserts are O(1) word operations, iteration is
//! in ascending index order (so it is deterministic and matches what a
//! `DetSet<u32>` would produce), and a million members cost 128 KiB per
//! set instead of a pointer-chasing collection.

/// A bitset over dense indices `0..capacity`, iterating in ascending
/// order. Grows on demand; never shrinks.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DenseBitSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseBitSet {
    /// An empty set sized for indices `0..n`.
    pub fn with_capacity(n: usize) -> Self {
        DenseBitSet {
            words: vec![0; n.div_ceil(64)],
            len: 0,
        }
    }

    /// Insert `index`; returns `true` if newly inserted. Grows the
    /// backing store if `index` exceeds the current capacity.
    pub fn insert(&mut self, index: usize) -> bool {
        let word = index / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let bit = 1u64 << (index % 64);
        if self.words[word] & bit != 0 {
            false
        } else {
            self.words[word] |= bit;
            self.len += 1;
            true
        }
    }

    /// Remove `index`; returns `true` if it was present.
    pub fn remove(&mut self, index: usize) -> bool {
        let word = index / 64;
        let bit = 1u64 << (index % 64);
        match self.words.get_mut(word) {
            Some(w) if *w & bit != 0 => {
                *w &= !bit;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Whether `index` is in the set.
    pub fn contains(&self, index: usize) -> bool {
        self.words
            .get(index / 64)
            .is_some_and(|w| w & (1u64 << (index % 64)) != 0)
    }

    /// Number of set indices.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove all indices, keeping the capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterate set indices in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    None
                } else {
                    let b = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Iterate the union of `self` and `other` in ascending order,
    /// without materialising a merged set. The event-driven engine uses
    /// this to walk "members with pending work" (active ∪ due-to-start)
    /// in member-id order each round.
    pub fn iter_union<'a>(&'a self, other: &'a DenseBitSet) -> impl Iterator<Item = usize> + 'a {
        let words = self.words.len().max(other.words.len());
        (0..words).flat_map(move |wi| {
            let mut rest = self.words.get(wi).copied().unwrap_or(0)
                | other.words.get(wi).copied().unwrap_or(0);
            std::iter::from_fn(move || {
                if rest == 0 {
                    None
                } else {
                    let b = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

impl FromIterator<usize> for DenseBitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = DenseBitSet::default();
        for i in iter {
            s.insert(i);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = DenseBitSet::with_capacity(100);
        assert!(s.is_empty());
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(64));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert_eq!(s.len(), 2);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(!s.contains(5));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn grows_on_demand() {
        let mut s = DenseBitSet::with_capacity(1);
        assert!(s.insert(1000));
        assert!(s.contains(1000));
        assert!(!s.remove(5000));
    }

    #[test]
    fn iterates_ascending_like_a_detset() {
        let s: DenseBitSet = [100usize, 1, 64, 2, 63].into_iter().collect();
        let got: Vec<usize> = s.iter().collect();
        assert_eq!(got, vec![1, 2, 63, 64, 100]);
    }

    #[test]
    fn union_iterates_ascending_across_lengths() {
        let a: DenseBitSet = [1usize, 70, 130].into_iter().collect();
        let b: DenseBitSet = [0usize, 70, 2].into_iter().collect();
        let got: Vec<usize> = a.iter_union(&b).collect();
        assert_eq!(got, vec![0, 1, 2, 70, 130]);
        // asymmetric word lengths work in both directions
        let got: Vec<usize> = b.iter_union(&a).collect();
        assert_eq!(got, vec![0, 1, 2, 70, 130]);
        let empty = DenseBitSet::default();
        assert_eq!(empty.iter_union(&empty).count(), 0);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s: DenseBitSet = [1usize, 2, 3].into_iter().collect();
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.iter().count(), 0);
        assert!(s.insert(2));
    }
}
