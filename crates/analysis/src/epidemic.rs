//! Bailey's deterministic epidemic model.
//!
//! §6.3 models each gossiped value's propagation "as a deterministic
//! epidemic \[1\] among the members of the respective grid box or
//! subtree": with `m` members, one initial infective, and `b` contacts
//! per round, the non-infected count `x(t)` obeys
//!
//! ```text
//! dx/dt = −(b/m) · x · (m − x),   x(0) = m − 1
//! ```
//!
//! whose exact solution is the logistic decay
//!
//! ```text
//! x(t) = m / (1 + e^{bt} / (m − 1)).
//! ```
//!
//! (The paper's display `x = m / (1 + m·e^{−bt})` is this up to the
//! `m ≫ 1` approximation of the initial condition; we use the exact
//! form and verify the asymptotics agree.)

/// Non-infected count `x(t)` after `t` rounds in a population of `m`
/// with one initial infective and contact rate `b` per round.
///
/// Returns 0 for `m <= 1` (a singleton is trivially "fully infected" —
/// the value's owner knows it).
pub fn noninfected(m: f64, b: f64, t: f64) -> f64 {
    if m <= 1.0 {
        return 0.0;
    }
    m / (1.0 + (b * t).exp() / (m - 1.0))
}

/// Fraction of the population that knows the value after `t` rounds:
/// `1 − x(t)/m`.
pub fn infected_fraction(m: f64, b: f64, t: f64) -> f64 {
    if m <= 1.0 {
        return 1.0;
    }
    1.0 - noninfected(m, b, t) / m
}

/// Rounds needed for the expected non-infected count to fall below
/// `target` (e.g. 1.0): solves `x(t) = target` for `t`.
///
/// Returns 0.0 when already below the target at `t = 0`.
pub fn rounds_to_reach(m: f64, b: f64, target: f64) -> f64 {
    if m <= 1.0 || m - 1.0 <= target {
        return 0.0;
    }
    let target = target.max(1e-12);
    // m/(1 + e^{bt}/(m-1)) = target  →  e^{bt} = (m/target − 1)(m−1)
    (((m / target - 1.0) * (m - 1.0)).ln() / b).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_condition_exact() {
        for m in [2.0, 10.0, 1000.0] {
            assert!((noninfected(m, 1.0, 0.0) - (m - 1.0)).abs() < 1e-9, "m={m}");
        }
    }

    #[test]
    fn decays_to_zero() {
        assert!(noninfected(1000.0, 2.0, 50.0) < 1e-9);
        assert!((infected_fraction(1000.0, 2.0, 50.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_t_and_b() {
        let m = 500.0;
        assert!(noninfected(m, 1.0, 5.0) > noninfected(m, 1.0, 6.0));
        assert!(noninfected(m, 1.0, 5.0) > noninfected(m, 2.0, 5.0));
    }

    #[test]
    fn singleton_knows_itself() {
        assert_eq!(noninfected(1.0, 4.0, 0.0), 0.0);
        assert_eq!(infected_fraction(0.0, 4.0, 0.0), 1.0);
    }

    #[test]
    fn asymptotic_matches_paper_form() {
        // For large m and bt, x ≈ m·(m−1)·e^{−bt} ≈ m²e^{−bt}; paper's
        // m/(1+m e^{−bt})^{-1}-style tail also ~ e^{−bt}. Check slope of
        // log x vs t equals −b.
        let m = 10_000.0;
        let b = 3.0;
        let x1 = noninfected(m, b, 10.0).ln();
        let x2 = noninfected(m, b, 11.0).ln();
        assert!(((x1 - x2) - b).abs() < 1e-6, "slope {}", x1 - x2);
    }

    #[test]
    fn rounds_to_reach_inverts() {
        let m = 2000.0;
        let b = 1.5;
        let t = rounds_to_reach(m, b, 1.0);
        assert!((noninfected(m, b, t) - 1.0).abs() < 1e-6);
        assert_eq!(rounds_to_reach(1.0, b, 1.0), 0.0);
        assert_eq!(rounds_to_reach(1.5, b, 1.0), 0.0);
    }
}
