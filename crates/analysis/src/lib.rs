//! # gridagg-analysis
//!
//! The paper's mathematical analysis (§6.3), implemented numerically:
//!
//! * [`special`] — log-gamma and log-binomial helpers.
//! * [`epidemic`] — Bailey's deterministic epidemic model \[1\]: the
//!   logistic decay of the non-infected population under gossip.
//! * [`completeness`] — the per-phase completeness lower bound
//!   `C_i(N, K, b)`, the exact binomial expression for the first-phase
//!   completeness `C_1(N, K, b)` (the paper evaluates it only by
//!   simulation; we compute the sum directly in log space), Postulate 1,
//!   and Theorem 1's `1 − 1/N` bound.
//!
//! These curves are the analytic series in Figures 4, 5, and 11.

#![warn(missing_docs)]
#![warn(rustdoc::broken_intra_doc_links)]
pub mod completeness;
pub mod complexity;
pub mod epidemic;
pub mod special;

pub use completeness::{
    c1, c1_incompleteness, ci_lower_bound, effective_contact_rate, protocol_completeness_bound,
    theorem1_bound,
};
pub use complexity::{
    expected_messages, expected_rounds, phases, rounds_per_phase, suboptimality_factor,
};
pub use epidemic::{infected_fraction, noninfected};
